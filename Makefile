# Single entry point shared by CI and local development.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: verify test bench

# Tier-1 gate: the full unit/integration/property suite, fail-fast.
verify:
	$(PYTHON) -m pytest -x -q

test: verify

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q
