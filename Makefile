# Single entry point shared by CI and local development.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: verify unit profile-smoke perf-smoke mixed-smoke service-smoke chaos-smoke test bench bench-report

# Tier-1 gate: the full test suite plus the profiler, perf, mixed-precision,
# service, and chaos smoke checks.
verify: unit profile-smoke perf-smoke mixed-smoke service-smoke chaos-smoke

# The full unit/integration/property suite, fail-fast.
unit:
	$(PYTHON) -m pytest -x -q

# End-to-end profiler acceptance: attribution coverage, Chrome-trace
# validity, and same-seed trace determinism on a small profiled solve.
profile-smoke:
	$(PYTHON) benchmarks/bench_profile_attribution.py --smoke

# Hot-path acceptance: warm (pooled) solves must beat cold rebuilds by
# >= 1.25x with byte-identical residual histories and same-seed traces.
# Batch acceptance: one batched solve of 64 small systems must beat 64
# sequential scalar solves by >= 3x with byte-identical histories.
# Distributed acceptance: 4-rank CG histories byte-identical to the
# single-rank solve, fused rank regions >= 2x over sequential-rank
# dispatch.
# Fusion acceptance: pg.deferred() must beat the eager operator path by
# >= 1.5x on the simulated clock with byte-identical residual histories
# and same-seed traces, without regressing wall-clock.
perf-smoke: mixed-smoke
	$(PYTHON) benchmarks/bench_hot_path.py --smoke
	$(PYTHON) benchmarks/bench_batch.py --smoke
	$(PYTHON) benchmarks/bench_distributed.py --smoke
	$(PYTHON) benchmarks/bench_overlap.py --smoke
	$(PYTHON) benchmarks/bench_fusion.py --smoke

# Mixed-precision acceptance: float32-storage Jacobi/ILU inside float64
# CG/GMRES must beat uniform float64 by >= 1.2x preconditioner-phase
# simulated time on the bandwidth-bound suite, with iteration counts
# pinned, the default uniform path byte-identical, and mixed applies
# routed through the mixed-suffix binding symbols.
mixed-smoke:
	$(PYTHON) benchmarks/bench_mixed_precision.py --smoke

# Service acceptance: coalesced multi-tenant scheduling must beat the
# naive one-at-a-time FIFO baseline by >= 3x simulated-clock throughput
# with every job's solution byte-identical to its solo solve, and the
# SLO snapshot (latency percentiles, throughput, coalesce ratio) must
# land in BENCH_service.json for the bench report.
service-smoke:
	$(PYTHON) benchmarks/bench_service.py --smoke

# Chaos acceptance: the seeded fault-schedule suite, then the recovery
# sweep — every injectable site across scalar/batch/distributed solves
# must recover bit-identically or report a truthful degraded outcome,
# with recovered distributed solves within 2x fault-free simulated time.
chaos-smoke:
	$(PYTHON) -m pytest -x -q tests/ginkgo/test_chaos.py
	$(PYTHON) benchmarks/bench_chaos.py --smoke

test: verify

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Aggregate every BENCH_*.json acceptance report into one summary table.
bench-report:
	$(PYTHON) benchmarks/bench_report.py
