# Single entry point shared by CI and local development.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: verify unit profile-smoke test bench

# Tier-1 gate: the full test suite plus the profiler smoke check.
verify: unit profile-smoke

# The full unit/integration/property suite, fail-fast.
unit:
	$(PYTHON) -m pytest -x -q

# End-to-end profiler acceptance: attribution coverage, Chrome-trace
# validity, and same-seed trace determinism on a small profiled solve.
profile-smoke:
	$(PYTHON) benchmarks/bench_profile_attribution.py --smoke

test: verify

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q
