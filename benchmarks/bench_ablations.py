"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. CSR SpMV strategy: classical vs load-balanced on imbalanced matrices.
2. GMRES residual-check frequency: Ginkgo's per-update checks vs CuPy's
   per-restart checks (via the two backends' GMRES implementations).
3. GMRES orthogonalisation: fused multi-dot (Ginkgo) vs batched-GEMV
   projection (CuPy) — isolated per-iteration cost.
4. Binding dispatch: direct suffixed call vs dispatching entry point.
5. Jacobi block size: scalar vs block preconditioning quality.
"""

import numpy as np
import pytest

import repro as pg
from repro.baselines import CupyBackend, PyGinkgoBackend
from repro.bench.reporting import format_table
from repro.ginkgo.matrix import Csr, Dense
from repro.perfmodel import spmv_cost
from repro.suitesparse import circuit_like, mesh_delaunay, spd_random

from conftest import report


# ----------------------------------------------------------------------
# 1. CSR strategy ablation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", autouse=True)
def print_strategy_ablation():
    rows = []
    for name, matrix in (
        ("balanced (mesh)", mesh_delaunay(30000, seed=1)),
        ("imbalanced (circuit)", circuit_like(30000, seed=2)),
    ):
        dev = pg.device("cuda", fresh=True)
        times = {}
        for strategy in ("classical", "load_balance", "merge_path"):
            engine = Csr.from_scipy(dev, matrix, strategy=strategy)
            x = Dense.full(dev, (matrix.shape[1], 1), 1.0, np.float64)
            y = Dense.zeros(dev, (matrix.shape[0], 1), np.float64)
            start = dev.clock.now
            for _ in range(5):
                engine.apply(x, y)
            times[strategy] = (dev.clock.now - start) / 5
        rows.append(
            (
                name,
                f"{times['classical'] * 1e6:.1f}",
                f"{times['load_balance'] * 1e6:.1f}",
                f"{times['merge_path'] * 1e6:.1f}",
            )
        )
    report(
        "Ablation 1: CSR SpMV strategy (us per SpMV, simulated A100)",
        format_table(
            ["matrix class", "classical", "load_balance", "merge_path"],
            rows,
        ),
    )


@pytest.mark.parametrize(
    "strategy", ["classical", "load_balance", "merge_path"]
)
def test_csr_strategy(benchmark, strategy, rng):
    matrix = circuit_like(20000, seed=3)
    dev = pg.device("cuda", fresh=True)
    engine = Csr.from_scipy(dev, matrix, strategy=strategy)
    x = Dense(dev, rng.random((matrix.shape[1], 1)))
    y = Dense.zeros(dev, (matrix.shape[0], 1), np.float64)
    benchmark(lambda: engine.apply(x, y))


# ----------------------------------------------------------------------
# 2+3. GMRES implementation-strategy ablation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", autouse=True)
def print_gmres_ablation():
    matrix = spd_random(8000, 0.002, seed=4)
    b = np.ones(matrix.shape[0])
    rows = []
    for restart in (10, 30, 60):
        gk = PyGinkgoBackend(noisy=False)
        cp = CupyBackend(noisy=False)
        t_gk = gk.run_solver(
            gk.prepare(matrix, "csr", np.float64), "gmres", b, 120,
            restart=restart,
        )["time_per_iteration"]
        t_cp = cp.run_solver(
            cp.prepare(matrix, "csr", np.float64), "gmres", b, 120,
            restart=restart,
        )["time_per_iteration"]
        rows.append(
            (restart, f"{t_gk * 1e6:.1f}", f"{t_cp * 1e6:.1f}",
             f"{t_cp / t_gk:.2f}")
        )
    report(
        "Ablation 2/3: GMRES strategy (Ginkgo per-update Givens checks vs "
        "CuPy per-restart CPU least-squares), us/iteration",
        format_table(
            ["restart", "pyGinkgo", "CuPy", "speedup"], rows,
        ),
    )


@pytest.mark.parametrize("restart", [10, 30, 60])
def test_gmres_restart_length(benchmark, restart):
    matrix = spd_random(4000, 0.002, seed=5)
    b = np.ones(matrix.shape[0])
    backend = PyGinkgoBackend(noisy=False)
    handle = backend.prepare(matrix, "csr", np.float64)
    benchmark(
        lambda: backend.run_solver(handle, "gmres", b, 30, restart=restart)
    )


# ----------------------------------------------------------------------
# 4. Dispatch-layer ablation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", autouse=True)
def print_dispatch_ablation(rng):
    from repro import bindings

    data = rng.random(4096)
    dev = pg.device("reference", fresh=True)
    import time

    reps = 200
    start = time.perf_counter()
    for _ in range(reps):
        bindings.dense_double(dev, data)
    direct = (time.perf_counter() - start) / reps
    start = time.perf_counter()
    for _ in range(reps):
        pg.as_tensor(data, device=dev, dtype="double")
    dispatched = (time.perf_counter() - start) / reps
    report(
        "Ablation 4: binding dispatch",
        format_table(
            ["path", "wall us/call"],
            [
                ("direct suffixed binding", f"{direct * 1e6:.1f}"),
                ("dispatching as_tensor", f"{dispatched * 1e6:.1f}"),
                ("dispatch overhead", f"{(dispatched - direct) * 1e6:.1f}"),
            ],
        ),
    )


def test_direct_binding_call(benchmark, rng):
    from repro import bindings

    dev = pg.device("reference", fresh=True)
    data = rng.random(1024)
    benchmark(lambda: bindings.dense_double(dev, data))


def test_dispatching_entry_point(benchmark, rng):
    dev = pg.device("reference", fresh=True)
    data = rng.random(1024)
    benchmark(lambda: pg.as_tensor(data, device=dev, dtype="double"))


# ----------------------------------------------------------------------
# 5. Jacobi block-size ablation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", autouse=True)
def print_jacobi_ablation():
    import scipy.sparse as sp

    rng = np.random.default_rng(6)
    blocks = []
    for _ in range(100):
        q = rng.standard_normal((4, 4))
        blocks.append(q @ q.T + 4 * np.eye(4))
    matrix = (sp.block_diag(blocks) + 0.05 * sp.eye(400)).tocsr()
    rows = []
    for block_size in (1, 2, 4, 8):
        dev = pg.device("reference", fresh=True)
        mtx = pg.matrix(device=dev, data=matrix)
        precond = pg.preconditioner.Jacobi(dev, mtx, max_block_size=block_size)
        solver = pg.solver.cg(dev, mtx, precond, max_iters=1000,
                              reduction_factor=1e-10)
        b = pg.as_tensor(device=dev, dim=(400, 1), fill=1.0)
        x = pg.as_tensor(device=dev, dim=(400, 1), fill=0.0)
        logger, _ = solver.apply(b, x)
        rows.append((block_size, logger.num_iterations, logger.converged))
    report(
        "Ablation 5: Jacobi block size (CG iterations to 1e-10 on a "
        "4x4-block-structured SPD system)",
        format_table(["block size", "iterations", "converged"], rows),
    )


@pytest.mark.parametrize("block_size", [1, 4])
def test_jacobi_generation(benchmark, block_size):
    matrix = spd_random(2000, 0.005, seed=7)
    dev = pg.device("reference", fresh=True)
    mtx = pg.matrix(device=dev, data=matrix)
    benchmark(
        lambda: pg.preconditioner.Jacobi(
            dev, mtx, max_block_size=block_size
        )
    )
