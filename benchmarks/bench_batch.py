"""Batched vs sequential solver benchmark (K small SPD systems, CG).

The paper's overhead analysis shows Python dispatch dominating small
solves.  The batched solver subsystem amortizes that dispatch: one
lockstep kernel call advances all ``K`` systems, so the per-iteration
Python cost is paid once per batch instead of once per system.

This gate solves ``K = 64`` small tridiagonal SPD systems twice:

* **sequential** — one scalar CG handle per system, solved in a loop
  (each solve pays its own binding resolution, solver generation, and
  per-iteration dispatch);
* **batched** — one ``pg.batch.cg`` handle over a ``BatchCsr`` holding
  all systems, with per-system stopping.

Numerics must not drift: every system's batched residual history is
compared byte-for-byte against its sequential counterpart.  The batched
path must be at least ``MIN_SPEEDUP`` faster in wall-clock.

Standalone::

    python benchmarks/bench_batch.py            # full run
    python benchmarks/bench_batch.py --smoke    # CI gate (fast)

Writes ``BENCH_batch.json`` next to the repo root with the timings.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import scipy.sparse as sp

import repro as pg
from repro.bindings import dispatch, reset_models
from repro.ginkgo import cachestats
from repro.ginkgo.matrix import Csr

#: Acceptance threshold: the batched solve must be at least this much
#: faster than K sequential scalar solves.
MIN_SPEEDUP = 3.0


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _fresh_state():
    pg.clear_device_cache()
    reset_models()
    dispatch.clear()
    cachestats.reset()


def make_systems(n, num_systems, seed=1234):
    """K tridiagonal SPD systems sharing one pattern, varied diagonals."""
    rng = np.random.default_rng(seed)
    base = sp.diags(
        [-1.0 * np.ones(n - 1), 4.0 * np.ones(n), -1.0 * np.ones(n - 1)],
        [-1, 0, 1],
    ).tocsr()
    mats, rhs = [], []
    for k in range(num_systems):
        mat = base.copy()
        mat.setdiag(4.0 + (0.2 + 0.8 * k / num_systems) * rng.random(n))
        mat.sort_indices()
        mats.append(mat.tocsr())
        rhs.append(rng.standard_normal((n, 1)))
    return mats, rhs


def run_sequential(dev, mats, rhs, max_iters, tol):
    """One scalar CG handle per system, solved in a loop."""
    n = mats[0].shape[0]
    t0 = time.perf_counter()
    sim0 = dev.clock.now
    histories = []
    for mat, b_np in zip(mats, rhs):
        mtx = Csr.from_scipy(dev, mat)
        handle = pg.solver.cg(
            dev, mtx, max_iters=max_iters, reduction_factor=tol
        )
        b = pg.as_tensor(device=dev, data=b_np, dtype="double")
        x = pg.as_tensor(device=dev, dim=(n, 1), dtype="double")
        logger, _ = handle.apply(b, x)
        if not logger.converged:
            raise RuntimeError("sequential benchmark solve did not converge")
        histories.append(list(logger.residual_norms))
    elapsed = time.perf_counter() - t0
    return histories, elapsed, dev.clock.now - sim0


def run_batched(dev, mats, rhs, max_iters, tol):
    """One batched CG handle over all systems."""
    t0 = time.perf_counter()
    sim0 = dev.clock.now
    batch_mtx = pg.batch.matrices(dev, mats)
    b = pg.batch.vectors(dev, rhs)
    x = pg.batch.zeros_like(b)
    handle = pg.batch.cg(
        dev, batch_mtx, max_iters=max_iters, reduction_factor=tol
    )
    loggers, _ = handle.apply(b, x)
    if not handle.status.all_converged:
        raise RuntimeError("batched benchmark solve did not converge")
    histories = [list(logger.residual_norms) for logger in loggers]
    elapsed = time.perf_counter() - t0
    return histories, elapsed, dev.clock.now - sim0


def run(
    n=24,
    num_systems=64,
    repeats=5,
    max_iters=200,
    tol=1e-9,
    out_path="BENCH_batch.json",
):
    """Run both paths, check the invariants, write the JSON report."""
    failures = []
    mats, rhs = make_systems(n, num_systems)

    _fresh_state()
    dev = pg.device("reference", fresh=True)
    seq_times, seq_hists = [], None
    for _ in range(repeats):
        hists, elapsed, _ = run_sequential(dev, mats, rhs, max_iters, tol)
        seq_times.append(elapsed)
        if seq_hists is None:
            seq_hists = hists
        elif hists != seq_hists:
            failures.append("sequential histories drift across repeats")

    _fresh_state()
    dev = pg.device("reference", fresh=True)
    batch_times, batch_hists = [], None
    batch_sim = None
    for _ in range(repeats):
        hists, elapsed, sim = run_batched(dev, mats, rhs, max_iters, tol)
        batch_times.append(elapsed)
        batch_sim = sim
        if batch_hists is None:
            batch_hists = hists
        elif hists != batch_hists:
            failures.append("batched histories drift across repeats")

    # Numerics: per-system histories must be byte-identical to the
    # sequential solves (masked per-system stopping, no lockstep drift).
    identical = all(
        np.array(a).tobytes() == np.array(b).tobytes()
        for a, b in zip(seq_hists, batch_hists)
    ) and len(seq_hists) == len(batch_hists)
    if not identical:
        failures.append(
            "batched residual histories differ from sequential solves"
        )

    # Threaded batched path: same results, thread pool engaged.
    _fresh_state()
    omp = pg.device("omp", fresh=True, num_threads=8)
    omp_hists, omp_elapsed, _ = run_batched(omp, mats, rhs, max_iters, tol)
    if omp_hists != batch_hists:
        failures.append("omp-threaded batched histories differ")
    if omp.pool_regions == 0:
        failures.append("omp batched solve never engaged the thread pool")

    seq_median = _median(seq_times)
    batch_median = _median(batch_times)
    speedup = seq_median / batch_median if batch_median > 0 else float("inf")
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"batched speedup {speedup:.2f}x below the {MIN_SPEEDUP:.2f}x gate"
        )

    report = {
        "benchmark": "batch_cg_vs_sequential",
        "system_size": n,
        "num_systems": num_systems,
        "repeats": repeats,
        "sequential_median_s": seq_median,
        "batched_median_s": batch_median,
        "sequential_times_s": seq_times,
        "batched_times_s": batch_times,
        "omp_batched_s": omp_elapsed,
        "omp_pool_regions": omp.pool_regions,
        "omp_pool_partitions": omp.pool_partitions,
        "speedup": speedup,
        "min_speedup_gate": MIN_SPEEDUP,
        "residual_histories_identical": identical,
        "batched_simulated_s": batch_sim,
        "iterations_per_system": [len(h) for h in batch_hists[:8]],
        "failures": failures,
    }
    Path(out_path).write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"sequential {seq_median * 1e3:8.2f} ms/{num_systems} systems | "
        f"batched {batch_median * 1e3:8.2f} ms | "
        f"speedup {speedup:5.2f}x (gate {MIN_SPEEDUP:.2f}x)"
    )
    print(
        f"omp batched {omp_elapsed * 1e3:8.2f} ms, "
        f"{omp.pool_regions} pool regions x "
        f"{omp.num_threads} thread partitions"
    )
    print(f"wrote {out_path}")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI gate: fewer repeats, assert the acceptance criteria",
    )
    parser.add_argument("--n", type=int, default=None, help="system size")
    parser.add_argument("--num-systems", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default="BENCH_batch.json")
    args = parser.parse_args()
    report = run(
        n=args.n or 24,
        num_systems=args.num_systems or 64,
        repeats=args.repeats or (3 if args.smoke else 5),
        out_path=args.out,
    )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf-smoke OK" if args.smoke else "batch bench OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
