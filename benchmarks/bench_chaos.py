"""Chaos harness: seeded fault sweep + recovery-overhead gate.

Replays deterministic fault schedules across every injectable site of
the three solve layers and gates the recovery contract:

* **Scalar** — a transient kernel fault is retried; the rerun's final
  residual is byte-identical to the fault-free solve.  A deadline expiry
  returns a truthful ``timed_out``/``partial`` report instead of lying
  about convergence.
* **Batch** — an injected corruption quarantines exactly the poisoned
  system; the per-system retry recovers it and every system converges.
* **Distributed** — a rank failure (shrink + re-gather + checkpoint
  restore), a dropped halo exchange, and a corrupted all-reduce are each
  absorbed mid-solve with residual histories *byte-identical* to the
  fault-free run, and the recovered solve finishes within
  ``MAX_OVERHEAD``x of the fault-free simulated time.

The overhead gate runs on the simulated clock (deterministic, noise
free), so the gate is exact rather than statistical.

Standalone::

    python benchmarks/bench_chaos.py            # full run
    python benchmarks/bench_chaos.py --smoke    # CI gate

Writes ``BENCH_chaos.json`` next to the repo root.
"""

import argparse
import json
import sys
from pathlib import Path

import numpy as np
import scipy.sparse as sp

import repro as pg
from repro.bindings import dispatch, reset_models
from repro.core import FallbackChain, resilient_batch_solve, resilient_solve
from repro.core import batch_api
from repro.core.io import matrix as make_matrix
from repro.ginkgo import cachestats
from repro.ginkgo.distributed import (
    DistributedCg,
    Matrix,
    Partition,
    Vector,
)
from repro.ginkgo.executor import OmpExecutor, ReferenceExecutor
from repro.ginkgo.fault import FaultInjector, FaultyExecutor
from repro.ginkgo.log import ConvergenceLogger
from repro.ginkgo.matrix import Dense
from repro.ginkgo.stop import Iteration, ResidualNorm

#: Recovered distributed solves must finish within this multiple of the
#: fault-free simulated time.
MAX_OVERHEAD = 2.0

NUM_RANKS = 4


def _fresh_state():
    pg.clear_device_cache()
    reset_models()
    dispatch.clear()
    cachestats.reset()


def make_system(n, band=8, seed=99):
    offsets = list(range(-band, 0)) + list(range(1, band + 1))
    mat = sp.diags(
        [-1.0 * np.ones(n - abs(o)) for o in offsets], offsets
    ).tocsr()
    mat.setdiag(2.0 * band + 1.5)
    rng = np.random.default_rng(seed)
    return mat.tocsr(), rng.standard_normal(n)


# ----------------------------------------------------------------------
# Scalar scenarios
# ----------------------------------------------------------------------
def scenario_scalar_retry(mat, rhs, failures):
    """Transient kernel fault -> retry reproduces the fault-free solve."""

    def solve(injector):
        dev = FaultyExecutor.create(
            ReferenceExecutor.create(noisy=False), injector
        )
        with injector.paused():
            mtx = make_matrix(dev, mat)
            b = Dense.create(dev, rhs.reshape(-1, 1))
        report, x = resilient_solve(
            dev, mtx, b, solver="cg", reduction_factor=1e-9,
            fallback=FallbackChain(dev),
        )
        return report, dev

    clean, _ = solve(FaultInjector())
    faulty, _ = solve(
        FaultInjector(schedule={"run": [(25, "transient")]})
    )
    ok = (
        clean.converged
        and faulty.converged
        and faulty.retries == 1
        and faulty.count("workspace_cleared") == 1
        and faulty.final_residual_norm == clean.final_residual_norm
    )
    if not ok:
        failures.append("scalar retry did not reproduce the clean solve")
    return {
        "scenario": "scalar_transient_retry",
        "converged": bool(faulty.converged),
        "retries": faulty.retries,
        "workspace_cleared": faulty.count("workspace_cleared"),
        "residual_matches_fault_free": bool(
            faulty.final_residual_norm == clean.final_residual_norm
        ),
        "ok": bool(ok),
    }


def scenario_scalar_deadline(mat, rhs, failures):
    """An expired deadline returns a truthful partial result."""
    dev = pg.device("reference", fresh=True)
    mtx = make_matrix(dev, mat)
    b = Dense.create(dev, rhs.reshape(-1, 1))
    report, _ = resilient_solve(
        dev, mtx, b, solver="cg", fallback=FallbackChain(dev),
        deadline=1e-9,
    )
    ok = (
        report.timed_out
        and report.partial
        and not report.converged
        and report.count("deadline_exceeded") == 1
    )
    if not ok:
        failures.append("deadline expiry did not report truthfully")
    return {
        "scenario": "scalar_deadline_expiry",
        "timed_out": bool(report.timed_out),
        "partial": bool(report.partial),
        "converged": bool(report.converged),
        "ok": bool(ok),
    }


# ----------------------------------------------------------------------
# Batch scenario
# ----------------------------------------------------------------------
def scenario_batch_quarantine(failures, num_systems=8, n=60):
    """Injected corruption quarantines one system; retry recovers it."""
    injector = FaultInjector(schedule={"batch": [(3, "corruption")]})
    dev = FaultyExecutor.create(
        OmpExecutor.create(num_threads=4, noisy=False), injector
    )
    base, _ = make_system(n)
    rng = np.random.default_rng(17)
    mats = [
        sp.csr_matrix(
            (base.data * (1 + 0.02 * k), base.indices, base.indptr),
            shape=base.shape,
        )
        for k in range(num_systems)
    ]
    with injector.paused():
        mtx = batch_api.matrices(dev, mats)
        b = batch_api.vectors(
            dev, [rng.standard_normal(n) for _ in range(num_systems)]
        )
    report, x = resilient_batch_solve(
        dev, mtx, b, solver="cg", reduction_factor=1e-9
    )
    residual_ok = True
    for k in range(num_systems):
        sol = x.item(k).to_numpy().ravel()
        rhs_k = b.data[k].ravel() if hasattr(b, "data") else b._data[k].ravel()
        rel = np.linalg.norm(rhs_k - mats[k] @ sol) / np.linalg.norm(rhs_k)
        residual_ok = residual_ok and rel < 1e-6
    ok = (
        report.all_converged
        and len(report.quarantined) == 1
        and report.recovered == report.quarantined
        and residual_ok
    )
    if not ok:
        failures.append("batch quarantine/recovery failed")
    return {
        "scenario": "batch_corruption_quarantine",
        "num_systems": num_systems,
        "quarantined": report.quarantined,
        "recovered": report.recovered,
        "all_converged": bool(report.all_converged),
        "residuals_ok": bool(residual_ok),
        "ok": bool(ok),
    }


# ----------------------------------------------------------------------
# Distributed scenarios: bit-identity + simulated-time overhead gate
# ----------------------------------------------------------------------
def run_distributed(mat, rhs, injector=None):
    """One distributed CG solve; returns (solver, history, x, sim_time)."""
    inner = OmpExecutor.create(num_threads=4, noisy=False)
    ex = (
        FaultyExecutor.create(inner, injector)
        if injector is not None
        else inner
    )
    pause = injector.paused() if injector is not None else None
    if pause is not None:
        pause.__enter__()
    try:
        part = Partition.build_uniform(mat.shape[0], NUM_RANKS)
        dist = Matrix(ex, part, mat)
        db = Vector(ex, part, rhs, comm=dist.comm)
        dx = Vector.zeros(ex, part, comm=dist.comm)
        solver = DistributedCg(
            ex,
            criteria=Iteration(500)
            | ResidualNorm(1e-9, baseline="rhs_norm"),
        ).generate(dist)
        logger = ConvergenceLogger()
        solver.add_logger(logger)
    finally:
        if pause is not None:
            pause.__exit__(None, None, None)
    t0 = ex.clock.now
    solver.apply(db, dx)
    sim = ex.clock.now - t0
    return solver, np.asarray(logger.residual_norms), dx.to_numpy(), sim


def scenario_distributed(mat, rhs, name, schedule, expect_shrink, failures):
    _fresh_state()
    base_solver, base_hist, base_x, base_sim = run_distributed(mat, rhs)
    if not base_solver.converged:
        failures.append(f"{name}: fault-free distributed solve diverged")
    _fresh_state()
    solver, hist, x, sim = run_distributed(
        mat, rhs, FaultInjector(schedule=schedule)
    )
    bit_identical = (
        hist.tobytes() == base_hist.tobytes()
        and x.tobytes() == base_x.tobytes()
    )
    overhead = sim / base_sim if base_sim > 0 else float("inf")
    ok = (
        solver.converged
        and solver.num_recoveries == 1
        and bit_identical
        and solver.comm.num_shrinks == (1 if expect_shrink else 0)
        and overhead <= MAX_OVERHEAD
    )
    if not ok:
        failures.append(
            f"{name}: converged={solver.converged} "
            f"recoveries={solver.num_recoveries} "
            f"bit_identical={bit_identical} overhead={overhead:.2f}x"
        )
    return {
        "scenario": name,
        "converged": bool(solver.converged),
        "recoveries": solver.num_recoveries,
        "shrinks": solver.comm.num_shrinks,
        "bit_identical": bool(bit_identical),
        "fault_free_sim_s": base_sim,
        "recovered_sim_s": sim,
        "overhead": overhead,
        "max_overhead_gate": MAX_OVERHEAD,
        "ok": bool(ok),
    }


def run(n=1500, out_path="BENCH_chaos.json"):
    failures = []
    mat, rhs = make_system(n)
    scalar_mat, scalar_rhs = make_system(300)

    scenarios = []
    _fresh_state()
    scenarios.append(scenario_scalar_retry(scalar_mat, scalar_rhs, failures))
    _fresh_state()
    scenarios.append(
        scenario_scalar_deadline(scalar_mat, scalar_rhs, failures)
    )
    _fresh_state()
    scenarios.append(scenario_batch_quarantine(failures))
    scenarios.append(
        scenario_distributed(
            mat, rhs, "distributed_rank_failure",
            {"rank": [(8, "failure")]}, expect_shrink=True,
            failures=failures,
        )
    )
    scenarios.append(
        scenario_distributed(
            mat, rhs, "distributed_halo_drop",
            {"halo": [(12, "drop")]}, expect_shrink=False,
            failures=failures,
        )
    )
    scenarios.append(
        scenario_distributed(
            mat, rhs, "distributed_allreduce_corruption",
            {"allreduce": [(10, "corruption")]}, expect_shrink=False,
            failures=failures,
        )
    )

    worst = max(
        (s.get("overhead", 0.0) for s in scenarios), default=0.0
    )
    report = {
        "benchmark": "chaos_recovery_sweep",
        "system_size": n,
        "num_ranks": NUM_RANKS,
        "scenarios": scenarios,
        "worst_recovery_overhead": worst,
        "max_overhead_gate": MAX_OVERHEAD,
        "failures": failures,
    }
    Path(out_path).write_text(json.dumps(report, indent=2) + "\n")

    for s in scenarios:
        extra = (
            f" overhead {s['overhead']:.2f}x (gate {MAX_OVERHEAD:.2f}x)"
            if "overhead" in s
            else ""
        )
        print(f"{s['scenario']:36s} {'ok' if s['ok'] else 'FAIL'}{extra}")
    print(f"wrote {out_path}")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: smaller systems, assert every scenario passes",
    )
    parser.add_argument("--n", type=int, default=None, help="system size")
    parser.add_argument("--out", default="BENCH_chaos.json")
    args = parser.parse_args()
    report = run(
        n=args.n or (800 if args.smoke else 1500), out_path=args.out
    )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
