"""Distributed CG benchmark: bit-identity + fused-region speedup gate.

Two invariants gate the ``pg.distributed`` subsystem:

* **Bit-identity** — the 4-rank distributed CG on ``OmpExecutor`` must
  reproduce the single-rank residual history (and the scalar ``pg.solver``
  CG history) byte for byte.  Reductions are evaluated in global element
  order and the rank-local SpMV applies full-width CSR row slices, so the
  distribution is a pure execution detail, never a numerical one.

* **Fused-region speedup** — each solver operation dispatches the rank
  loop as ONE modeled kernel (a partitioned region on the thread pool, or
  a single collapsed whole-arena kernel when ranks share one worker).
  The baseline is ``sequential_ranks`` execution: every rank dispatches
  its kernels independently — one clock record per rank per operation,
  per-rank partial reductions combined in rank order — the overhead
  profile of K rank processes time-sharing the machine.  The fused path
  must be at least ``MIN_SPEEDUP`` faster in wall clock.

Standalone::

    python benchmarks/bench_distributed.py            # full run
    python benchmarks/bench_distributed.py --smoke    # CI gate (fast)

Writes ``BENCH_distributed.json`` next to the repo root.
"""

import argparse
import gc
import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import scipy.sparse as sp

import repro as pg
from repro.bindings import dispatch, reset_models
from repro.ginkgo import cachestats
from repro.ginkgo.log import ConvergenceLogger
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.solver import Cg
from repro.ginkgo.stop import Iteration, ResidualNorm

#: Acceptance threshold: fused rank regions vs sequential-rank dispatch.
MIN_SPEEDUP = 2.0

NUM_RANKS = 4


def _best(values):
    """Minimum over repeats: the least-noise wall-clock estimator on a
    machine where any single run can be inflated by scheduler jitter."""
    return min(values)


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _fresh_state():
    pg.clear_device_cache()
    reset_models()
    dispatch.clear()
    cachestats.reset()


def make_system(n, band=10, seed=1234):
    """A banded SPD diagonally dominant system, ~2*band+1 nnz per row."""
    offsets = list(range(-band, 0)) + list(range(1, band + 1))
    mat = sp.diags(
        [-1.0 * np.ones(n - abs(o)) for o in offsets], offsets
    ).tocsr()
    mat.setdiag(2.0 * band + 1.5)
    rng = np.random.default_rng(seed)
    return mat.tocsr(), rng.standard_normal(n)


def run_scalar(mat, rhs, max_iters, tol):
    """Single-rank reference: the scalar CG the histories must match."""
    dev = pg.device("reference", fresh=True)
    solver = Cg(
        dev,
        criteria=Iteration(max_iters) | ResidualNorm(tol, baseline="rhs_norm"),
    ).generate(Csr.from_scipy(dev, mat))
    logger = ConvergenceLogger()
    solver.add_logger(logger)
    n = mat.shape[0]
    b = Dense.create(dev, rhs.reshape(-1, 1))
    x = Dense.create(dev, np.zeros((n, 1)))
    solver.apply(b, x)
    if not solver.converged:
        raise RuntimeError("scalar reference solve did not converge")
    return np.asarray(logger.residual_norms, dtype=np.float64)


def run_distributed(
    mat, rhs, max_iters, tol, num_ranks, num_threads, sequential=False
):
    """One distributed CG solve; returns (elapsed, history, device, stats).

    ``stats`` carries the solve's communication profile from the handle:
    simulated seconds total/comm/hidden and the reduction count.
    """
    dev = pg.device("omp", fresh=True, num_threads=num_threads)
    part = pg.distributed.partition(mat.shape[0], num_ranks)
    dist = pg.distributed.matrix(dev, part, mat)
    b = pg.distributed.vector(dev, part, rhs, comm=dist.comm)
    x = pg.distributed.zeros_like(b)
    handle = pg.distributed.cg(
        dev, dist, max_iters=max_iters, reduction_factor=tol
    )
    sim0 = dev.clock.now
    t0 = time.perf_counter()
    if sequential:
        with pg.distributed.sequential_ranks():
            logger, _ = handle.apply(b, x)
    else:
        logger, _ = handle.apply(b, x)
    elapsed = time.perf_counter() - t0
    if not handle.converged:
        raise RuntimeError("distributed benchmark solve did not converge")
    simulated = dev.clock.now - sim0
    stats = {
        "simulated_s": simulated,
        "comm_time_s": handle.comm_time,
        "comm_hidden_time_s": handle.comm_hidden_time,
        "num_reductions": handle.num_reductions,
        "comm_fraction": handle.comm_time / simulated if simulated else 0.0,
    }
    history = np.asarray(logger.residual_norms, dtype=np.float64)
    return elapsed, history, dev, stats


def run(
    n=2000,
    repeats=5,
    max_iters=500,
    tol=1e-9,
    out_path="BENCH_distributed.json",
):
    """Run the gates and write the JSON report."""
    failures = []
    mat, rhs = make_system(n)
    workers = min(NUM_RANKS, os.cpu_count() or 1)

    # Bit-identity chain: scalar == 1-rank distributed == 4-rank
    # distributed, byte for byte.
    _fresh_state()
    scalar_hist = run_scalar(mat, rhs, max_iters, tol)

    _fresh_state()
    _, single_hist, _, _ = run_distributed(
        mat, rhs, max_iters, tol, num_ranks=1, num_threads=workers
    )
    if single_hist.tobytes() != scalar_hist.tobytes():
        failures.append(
            "single-rank distributed history differs from scalar CG"
        )

    # Timed comparison.  Fused and sequential-rank solves are interleaved
    # in pairs so both sides of every ratio see the same machine load;
    # the gate is the median per-pair ratio, which is immune to the
    # multi-second load swings that skew separately-timed blocks.
    _fresh_state()
    run_distributed(  # untimed warmup: caches, pool spin-up, allocator
        mat, rhs, max_iters, tol, NUM_RANKS, num_threads=workers
    )
    run_distributed(
        mat, rhs, max_iters, tol, NUM_RANKS,
        num_threads=workers, sequential=True,
    )
    fused_times = []
    seq_times = []
    ratios = []
    fused_hist = None
    seq_hist = None
    fused_stats = None
    # Keep collector pauses out of the timed windows: collect at pair
    # boundaries, collector off while the clock runs.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            gc.collect()
            elapsed, hist, _, fused_stats = run_distributed(
                mat, rhs, max_iters, tol, NUM_RANKS, num_threads=workers
            )
            fused_times.append(elapsed)
            if fused_hist is None:
                fused_hist = hist
            elif hist.tobytes() != fused_hist.tobytes():
                failures.append("fused histories drift across repeats")
            seq_elapsed, seq_hist, _, _ = run_distributed(
                mat, rhs, max_iters, tol, NUM_RANKS,
                num_threads=workers, sequential=True,
            )
            seq_times.append(seq_elapsed)
            ratios.append(
                seq_elapsed / elapsed if elapsed > 0 else float("inf")
            )
    finally:
        if gc_was_enabled:
            gc.enable()
    if fused_hist.tobytes() != scalar_hist.tobytes():
        failures.append(
            f"{NUM_RANKS}-rank distributed history differs from the "
            "single-rank history"
        )

    # Thread-pool engagement: with one worker per rank the rank regions
    # run on the pool, and the history must not move a bit.
    _fresh_state()
    _, pooled_hist, pooled_dev, _ = run_distributed(
        mat, rhs, max_iters, tol, NUM_RANKS, num_threads=NUM_RANKS
    )
    if pooled_hist.tobytes() != scalar_hist.tobytes():
        failures.append("thread-pooled distributed history differs")
    if pooled_dev.pool_regions == 0:
        failures.append("distributed solve never engaged the thread pool")

    # Rank-ordered partial reductions round differently — that is the
    # point of the baseline — so compare loosely, not bytewise.
    m = min(seq_hist.size, scalar_hist.size)
    if not np.allclose(seq_hist[:m], scalar_hist[:m], rtol=1e-6):
        failures.append("sequential-rank baseline diverged numerically")

    fused_best = _best(fused_times)
    seq_best = _best(seq_times)
    speedup = _median(ratios)
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"fused speedup {speedup:.2f}x below the {MIN_SPEEDUP:.2f}x gate"
        )

    report = {
        "benchmark": "distributed_cg_fused_vs_sequential_ranks",
        "system_size": n,
        "nnz": int(mat.nnz),
        "num_ranks": NUM_RANKS,
        "num_threads": workers,
        "repeats": repeats,
        "iterations": int(fused_hist.size - 1),
        "fused_best_s": fused_best,
        "sequential_ranks_best_s": seq_best,
        "fused_times_s": fused_times,
        "sequential_ranks_times_s": seq_times,
        "pair_ratios": ratios,
        "speedup": speedup,
        "min_speedup_gate": MIN_SPEEDUP,
        "history_matches_scalar": fused_hist.tobytes()
        == scalar_hist.tobytes(),
        "history_matches_single_rank": fused_hist.tobytes()
        == single_hist.tobytes(),
        "pool_regions": pooled_dev.pool_regions,
        "simulated_s": fused_stats["simulated_s"],
        "comm_time_s": fused_stats["comm_time_s"],
        "comm_hidden_time_s": fused_stats["comm_hidden_time_s"],
        "num_reductions": fused_stats["num_reductions"],
        "comm_fraction": fused_stats["comm_fraction"],
        "failures": failures,
    }
    Path(out_path).write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"distributed CG n={n} ranks={NUM_RANKS}: "
        f"fused {fused_best * 1e3:7.2f} ms | "
        f"sequential-rank {seq_best * 1e3:7.2f} ms | "
        f"median pair speedup {speedup:5.2f}x (gate {MIN_SPEEDUP:.2f}x)"
    )
    print(
        f"residual history: {fused_hist.size - 1} iterations, "
        f"scalar/single-rank/pooled byte-identical="
        f"{not any('histor' in f for f in failures)}"
    )
    print(
        f"comm profile: {fused_stats['comm_fraction']:.1%} of "
        f"{fused_stats['simulated_s'] * 1e3:.2f} ms simulated time "
        f"({fused_stats['num_reductions']} reductions, "
        f"{fused_stats['comm_hidden_time_s'] * 1e3:.2f} ms hidden)"
    )
    print(f"wrote {out_path}")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI gate: fewer repeats, assert the acceptance criteria",
    )
    parser.add_argument("--n", type=int, default=None, help="system size")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default="BENCH_distributed.json")
    args = parser.parse_args()
    report = run(
        n=args.n or 2000,
        repeats=args.repeats or (5 if args.smoke else 7),
        out_path=args.out,
    )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf-smoke OK" if args.smoke else "distributed bench OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
