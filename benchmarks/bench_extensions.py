"""Extension-feature benchmarks: CB-GMRES compressed-basis speedup, AMG
versus single-level preconditioning, RCM reordering effect, and the
stencil/convolution operator the paper lists as future work.
"""

import numpy as np
import pytest

import repro as pg
from repro.bench.reporting import format_table
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.matrix.stencil import KERNELS, StencilOp
from repro.ginkgo.multigrid import Pgm
from repro.ginkgo.reorder import bandwidth, permute, rcm
from repro.ginkgo.solver import CbGmres, Cg, Gmres
from repro.ginkgo.stop import Iteration, ResidualNorm
from repro.suitesparse import banded, poisson_2d

from conftest import report


# ----------------------------------------------------------------------
# CB-GMRES: per-iteration time vs basis storage precision
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", autouse=True)
def print_cb_gmres():
    # Large enough that the Krylov-basis traffic (not launch latency)
    # dominates the iteration — the regime CB-GMRES is built for.
    matrix = poisson_2d(500)
    rows = []
    for label, factory_args in (
        ("GMRES (fp64 basis)", None),
        ("CB-GMRES fp32 basis", "float32"),
        ("CB-GMRES fp16 basis", "half"),
    ):
        dev = pg.device("cuda", fresh=True)
        mtx = Csr.from_scipy(dev, matrix)
        if factory_args is None:
            factory = Gmres(dev, criteria=Iteration(90))
        else:
            factory = CbGmres(
                dev, criteria=Iteration(90), storage_precision=factory_args
            )
        solver = factory.generate(mtx)
        b = Dense.full(dev, (matrix.shape[0], 1), 1.0, np.float64)
        x = Dense.zeros(dev, (matrix.shape[0], 1), np.float64)
        start = dev.clock.now
        solver.apply(b, x)
        per_iter = (dev.clock.now - start) / 90
        rows.append((label, f"{per_iter * 1e6:.1f}"))
    base = float(rows[0][1])
    rows = [(label, t, f"{base / float(t):.2f}x") for label, t in rows]
    report(
        "Extension: CB-GMRES compressed-basis speedup "
        "(simulated A100, 250k dofs)",
        format_table(["solver", "us/iteration", "speedup"], rows),
    )


@pytest.mark.parametrize("storage", [None, "float32", "half"],
                         ids=["fp64", "fp32", "fp16"])
def test_gmres_basis_precision(benchmark, storage):
    matrix = poisson_2d(60)
    dev = pg.device("cuda", fresh=True)
    mtx = Csr.from_scipy(dev, matrix)
    if storage is None:
        factory = Gmres(dev, criteria=Iteration(30))
    else:
        factory = CbGmres(
            dev, criteria=Iteration(30), storage_precision=storage
        )
    solver = factory.generate(mtx)
    b = Dense.full(dev, (matrix.shape[0], 1), 1.0, np.float64)

    def run():
        x = Dense.zeros(dev, (matrix.shape[0], 1), np.float64)
        solver.apply(b, x)

    benchmark(run)


# ----------------------------------------------------------------------
# AMG vs single-level preconditioners
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", autouse=True)
def print_amg_comparison():
    rows = []
    for n in (32, 64, 96):
        matrix = poisson_2d(n)
        row = [f"{n}x{n}"]
        for label in ("none", "jacobi", "ic", "amg"):
            dev = pg.device("reference", fresh=True)
            mtx = Csr.from_scipy(dev, matrix)
            precond = {
                "none": None,
                "jacobi": lambda: pg.preconditioner.Jacobi(dev, mtx),
                "ic": lambda: pg.preconditioner.Ic(dev, mtx),
                "amg": lambda: Pgm(dev).generate(mtx),
            }[label]
            solver = Cg(
                dev,
                criteria=Iteration(2000) | ResidualNorm(1e-9),
                preconditioner=precond() if precond else None,
            ).generate(mtx)
            b = Dense.full(dev, (matrix.shape[0], 1), 1.0, np.float64)
            x = Dense.zeros(dev, (matrix.shape[0], 1), np.float64)
            solver.apply(b, x)
            row.append(solver.num_iterations)
        rows.append(tuple(row))
    report(
        "Extension: CG iterations to 1e-9 by preconditioner "
        "(2-D Poisson; AMG is mesh-robust)",
        format_table(["grid", "none", "jacobi", "ic", "amg"], rows),
    )


@pytest.mark.parametrize("precond", ["none", "amg"])
def test_cg_with_amg(benchmark, precond):
    matrix = poisson_2d(48)
    dev = pg.device("reference", fresh=True)
    mtx = Csr.from_scipy(dev, matrix)
    factory = Cg(
        dev,
        criteria=Iteration(2000) | ResidualNorm(1e-9),
        preconditioner=Pgm(dev).generate(mtx) if precond == "amg" else None,
    )
    solver = factory.generate(mtx)
    b = Dense.full(dev, (matrix.shape[0], 1), 1.0, np.float64)

    def run():
        x = Dense.zeros(dev, (matrix.shape[0], 1), np.float64)
        solver.apply(b, x)

    benchmark(run)


# ----------------------------------------------------------------------
# RCM reordering
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", autouse=True)
def print_rcm(rng):
    rows = []
    for n in (500, 2000):
        base = banded(n, bandwidth=4, seed=1)
        shuffle = rng.permutation(n)
        shuffled = base.tocsr()[shuffle, :][:, shuffle].tocsr()
        dev = pg.device("reference", fresh=True)
        mtx = Csr.from_scipy(dev, shuffled)
        before = bandwidth(mtx)
        after = bandwidth(permute(mtx, rcm(mtx)))
        rows.append((n, before, after, f"{before / max(after, 1):.1f}x"))
    report(
        "Extension: RCM bandwidth reduction on shuffled banded matrices",
        format_table(["n", "bandwidth before", "after", "reduction"], rows),
    )


def test_rcm_reordering(benchmark, rng):
    base = banded(1000, bandwidth=4, seed=2)
    shuffle = rng.permutation(1000)
    shuffled = base.tocsr()[shuffle, :][:, shuffle].tocsr()
    dev = pg.device("reference", fresh=True)
    mtx = Csr.from_scipy(dev, shuffled)
    benchmark(lambda: permute(mtx, rcm(mtx)))


# ----------------------------------------------------------------------
# Stencil / convolution operator (paper's announced future work)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", autouse=True)
def print_stencil(rng):
    image = rng.standard_normal((256, 256))
    rows = []
    for name in ("blur3", "sharpen", "laplace", "sobel_x"):
        dev = pg.device("cuda", fresh=True)
        op = StencilOp(dev, image.shape, KERNELS[name])
        start = dev.clock.now
        op.apply_image(image)
        rows.append(
            (name, op.nnz, f"{(dev.clock.now - start) * 1e6:.1f}")
        )
    report(
        "Extension: convolution operator (256x256 image, simulated A100)",
        format_table(["kernel", "nnz", "us/apply"], rows),
    )


@pytest.mark.parametrize("kernel", ["blur3", "laplace"])
def test_stencil_apply(benchmark, kernel, rng):
    dev = pg.device("cuda", fresh=True)
    image = rng.standard_normal((128, 128))
    op = StencilOp(dev, image.shape, KERNELS[kernel])
    benchmark(lambda: op.apply_image(image))


# ----------------------------------------------------------------------
# ParILU: fixed-point sweeps vs preconditioner quality
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", autouse=True)
def print_parilu():
    from repro.ginkgo.factorization import ilu0, parilu
    from repro.ginkgo.preconditioner import Ilu
    from repro.ginkgo.solver import Gmres
    from repro.suitesparse import circuit_like

    matrix = circuit_like(1500, seed=11)
    dev = pg.device("reference", fresh=True)
    mtx = Csr.from_scipy(dev, matrix)
    exact_u = ilu0(mtx).u_factor.to_scipy()
    rows = []
    for sweeps in (1, 2, 4, 8):
        fact = parilu(mtx, sweeps=sweeps)
        error = abs(fact.u_factor.to_scipy() - exact_u).max()
        precond = Ilu(dev, algorithm="parilu", sweeps=sweeps).generate(mtx)
        solver = Gmres(
            dev, criteria=Iteration(500) | ResidualNorm(1e-9),
            preconditioner=precond,
        ).generate(mtx)
        b = Dense.full(dev, (matrix.shape[0], 1), 1.0, np.float64)
        x = Dense.zeros(dev, (matrix.shape[0], 1), np.float64)
        solver.apply(b, x)
        rows.append((sweeps, f"{error:.2e}", solver.num_iterations))
    report(
        "Extension: ParILU fixed-point sweeps vs exact ILU(0) "
        "(circuit matrix, GMRES iterations to 1e-9)",
        format_table(
            ["sweeps", "max |U - U_exact|", "GMRES iterations"], rows
        ),
    )


@pytest.mark.parametrize("sweeps", [1, 4])
def test_parilu_generation(benchmark, sweeps):
    from repro.ginkgo.factorization import parilu
    from repro.suitesparse import spd_random

    matrix = spd_random(800, 0.01, seed=12)
    dev = pg.device("reference", fresh=True)
    mtx = Csr.from_scipy(dev, matrix)
    benchmark(lambda: parilu(mtx, sweeps=sweeps))
