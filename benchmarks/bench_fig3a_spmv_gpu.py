"""Figure 3a: SpMV on the (simulated) A100, speedup vs SciPy, fp32.

Regenerates the speedup-vs-NNZ series for pyGinkgo / PyTorch / CuPy /
TensorFlow and benchmarks the real wall time of each backend's SpMV on a
representative matrix.
"""

import numpy as np
import pytest

from repro.baselines import (
    CupyBackend,
    PyGinkgoBackend,
    PyTorchBackend,
    ScipyBackend,
    TensorFlowBackend,
)
from repro.bench import fig3a_spmv_gpu

from conftest import report


@pytest.fixture(scope="module", autouse=True)
def print_figure(spmv_matrices):
    report("Figure 3a reproduction", fig3a_spmv_gpu(spmv_matrices)["text"])


@pytest.fixture(scope="module")
def workload(spmv_matrices, rng):
    matrix = spmv_matrices[len(spmv_matrices) // 2].build()
    x = rng.random(matrix.shape[1]).astype(np.float32)
    return matrix, x


@pytest.mark.parametrize(
    "backend_cls,fmt",
    [
        (PyGinkgoBackend, "csr"),
        (PyTorchBackend, "csr"),
        (CupyBackend, "csr"),
        (TensorFlowBackend, "coo"),
        (ScipyBackend, "csr"),
    ],
    ids=["pyginkgo", "pytorch", "cupy", "tensorflow", "scipy"],
)
def test_spmv_backend(benchmark, backend_cls, fmt, workload):
    """Real wall time of one SpMV through each backend."""
    matrix, x = workload
    backend = backend_cls(noisy=False)
    handle = backend.prepare(matrix, fmt, np.float32)
    benchmark(lambda: backend.spmv(handle, x))
