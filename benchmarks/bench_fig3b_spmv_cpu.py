"""Figure 3b: SpMV on the Xeon 8368, speedup vs SciPy across thread counts.

Regenerates the thread-scaling series and benchmarks the engine's CSR SpMV
at several OpenMP widths.
"""

import numpy as np
import pytest

from repro.baselines import PyGinkgoBackend
from repro.bench import fig3b_spmv_cpu
from repro.perfmodel.specs import INTEL_XEON_8368

from conftest import report


@pytest.fixture(scope="module", autouse=True)
def print_figure(spmv_matrices):
    report(
        "Figure 3b reproduction",
        fig3b_spmv_cpu(spmv_matrices, threads=(1, 2, 4, 8, 16, 32))["text"],
    )


@pytest.fixture(scope="module")
def workload(spmv_matrices, rng):
    matrix = spmv_matrices[-1].build()
    x = rng.random(matrix.shape[1]).astype(np.float32)
    return matrix, x


@pytest.mark.parametrize("threads", [1, 4, 16, 32])
def test_spmv_cpu_threads(benchmark, threads, workload):
    """Real wall time of the CPU SpMV path per modeled thread count."""
    matrix, x = workload
    backend = PyGinkgoBackend(
        spec=INTEL_XEON_8368, num_threads=threads, noisy=False
    )
    handle = backend.prepare(matrix, "csr", np.float32)
    benchmark(lambda: backend.spmv(handle, x))
