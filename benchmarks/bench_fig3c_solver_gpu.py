"""Figure 3c: solver time/iteration on the A100 vs CuPy, fp64.

Regenerates the CG/CGS/GMRES speedup-vs-NNZ series (fixed iteration
budget, as in the paper) and benchmarks real iterations of each solver
through both backends.
"""

import numpy as np
import pytest

from repro.baselines import CupyBackend, PyGinkgoBackend
from repro.bench import fig3c_solver_gpu

from conftest import report

#: Fixed iteration budget; the paper uses 1000 (many matrices do not
#: converge unpreconditioned, so time/iteration is the metric).
FIGURE_ITERATIONS = 200
BENCH_ITERATIONS = 20


@pytest.fixture(scope="module", autouse=True)
def print_figure(solver_matrices):
    report(
        "Figure 3c reproduction",
        fig3c_solver_gpu(solver_matrices, iterations=FIGURE_ITERATIONS)[
            "text"
        ],
    )


@pytest.fixture(scope="module")
def workload(solver_matrices):
    matrix = solver_matrices[len(solver_matrices) // 2].build()
    return matrix, np.ones(matrix.shape[0])


@pytest.mark.parametrize("solver", ["cg", "cgs", "gmres"])
@pytest.mark.parametrize(
    "backend_cls", [PyGinkgoBackend, CupyBackend],
    ids=["pyginkgo", "cupy"],
)
def test_solver_iterations(benchmark, solver, backend_cls, workload):
    """Real wall time of a fixed-iteration solve through each backend."""
    matrix, b = workload
    backend = backend_cls(noisy=False)
    handle = backend.prepare(matrix, "csr", np.float64)
    benchmark(
        lambda: backend.run_solver(handle, solver, b, BENCH_ITERATIONS)
    )
