"""Figure 4: speedups vs SciPy for the representative matrices A-F.

Regenerates both panels (GPU and 32-thread CPU) at reduced scale and
benchmarks the engine SpMV on each structure class.
"""

import numpy as np
import pytest

from repro.baselines import PyGinkgoBackend
from repro.bench import fig4_representative
from repro.suitesparse import table2_suite

from conftest import report

SCALE = 0.05


@pytest.fixture(scope="module", autouse=True)
def print_figure():
    report(
        f"Figure 4 reproduction (scale={SCALE})",
        fig4_representative(scale=SCALE)["text"],
    )


@pytest.fixture(scope="module")
def suite():
    return {spec.label: spec for spec in table2_suite(scale=SCALE)}


@pytest.mark.parametrize("label", list("ABCDEF"))
def test_spmv_representative(benchmark, label, suite, rng):
    """Real wall time of the GPU-path SpMV per Table-2 matrix class."""
    matrix = suite[label].build()
    x = rng.random(matrix.shape[1]).astype(np.float32)
    backend = PyGinkgoBackend(noisy=False)
    handle = backend.prepare(matrix, "csr", np.float32)
    benchmark(lambda: backend.spmv(handle, x))
