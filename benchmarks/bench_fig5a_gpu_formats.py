"""Figure 5a: pyGinkgo SpMV GFLOP/s, A100 vs MI100, CSR vs COO.

Regenerates the four throughput series and benchmarks the real engine
SpMV on both devices and formats.
"""

import numpy as np
import pytest

from repro.baselines import PyGinkgoBackend
from repro.bench import fig5a_gpu_formats
from repro.perfmodel.specs import AMD_MI100, NVIDIA_A100

from conftest import report


@pytest.fixture(scope="module", autouse=True)
def print_figure(overhead_matrices):
    report(
        "Figure 5a reproduction", fig5a_gpu_formats(overhead_matrices)["text"]
    )


@pytest.fixture(scope="module")
def workload(overhead_matrices, rng):
    matrix = overhead_matrices[len(overhead_matrices) // 2].build()
    x = rng.random(matrix.shape[1]).astype(np.float32)
    return matrix, x


@pytest.mark.parametrize(
    "spec", [NVIDIA_A100, AMD_MI100], ids=["a100", "mi100"]
)
@pytest.mark.parametrize("fmt", ["csr", "coo"])
def test_spmv_device_format(benchmark, spec, fmt, workload):
    matrix, x = workload
    backend = PyGinkgoBackend(spec=spec, noisy=False)
    handle = backend.prepare(matrix, fmt, np.float32)
    benchmark(lambda: backend.spmv(handle, x))
