"""Figure 5b: relative performance difference pyGinkgo vs native Ginkgo.

Regenerates the overhead-percentage series and benchmarks the real cost
of a binding crossing against the bare engine call.
"""

import numpy as np
import pytest

from repro.baselines import GinkgoNativeBackend, PyGinkgoBackend
from repro.bench import fig5b_overhead

from conftest import report


@pytest.fixture(scope="module", autouse=True)
def print_figure(overhead_matrices):
    report(
        "Figure 5b reproduction", fig5b_overhead(overhead_matrices)["text"]
    )


@pytest.fixture(scope="module")
def workload(overhead_matrices, rng):
    matrix = overhead_matrices[0].build()  # smallest: overhead-dominated
    x = rng.random(matrix.shape[1]).astype(np.float32)
    return matrix, x


@pytest.mark.parametrize(
    "backend_cls", [PyGinkgoBackend, GinkgoNativeBackend],
    ids=["bound", "native"],
)
def test_spmv_with_and_without_bindings(benchmark, backend_cls, workload):
    matrix, x = workload
    backend = backend_cls(noisy=False)
    handle = backend.prepare(matrix, "csr", np.float32)
    benchmark(lambda: backend.spmv(handle, x))
