"""Figure 5b: relative performance difference pyGinkgo vs native Ginkgo.

Regenerates the overhead-percentage series and benchmarks the real cost
of a binding crossing against the bare engine call.  The binding share is
measured two ways: the paper's bound-vs-native differencing, and the span
profiler's attribution table, which decomposes a *single* bound run into
kernel/binding/stall time (no second measurement, no subtraction noise).
"""

import numpy as np
import pytest

from repro.baselines import GinkgoNativeBackend, PyGinkgoBackend
from repro.bench import fig5b_overhead, profile_attribution
from repro.ginkgo.log import ProfilerHook

from conftest import report


@pytest.fixture(scope="module", autouse=True)
def print_figure(overhead_matrices):
    report(
        "Figure 5b reproduction", fig5b_overhead(overhead_matrices)["text"]
    )
    report(
        "Binding share via profiler attribution",
        profile_attribution(overhead_matrices)["text"],
    )


@pytest.fixture(scope="module")
def workload(overhead_matrices, rng):
    matrix = overhead_matrices[0].build()  # smallest: overhead-dominated
    x = rng.random(matrix.shape[1]).astype(np.float32)
    return matrix, x


@pytest.mark.parametrize(
    "backend_cls", [PyGinkgoBackend, GinkgoNativeBackend],
    ids=["bound", "native"],
)
def test_spmv_with_and_without_bindings(benchmark, backend_cls, workload):
    matrix, x = workload
    backend = backend_cls(noisy=False)
    handle = backend.prepare(matrix, "csr", np.float32)
    benchmark(lambda: backend.spmv(handle, x))


def test_spmv_profiled(benchmark, workload):
    """The bound SpMV with a profiler attached: the tracing overhead."""
    matrix, x = workload
    backend = PyGinkgoBackend(noisy=False)
    handle = backend.prepare(matrix, "csr", np.float32)
    prof = ProfilerHook(name="fig5b")
    prof.attach(backend.clock)
    try:
        benchmark(lambda: backend.spmv(handle, x))
    finally:
        prof.detach(backend.clock)
    table = prof.attribution()
    # The profiler must account for (essentially) all simulated time the
    # benchmark observed, and see the binding crossings it charged.
    assert table.coverage >= 0.99
    assert table.binding_time > 0.0
    assert "spmv_apply" in table.bindings
