"""Figure 5c: absolute time difference pyGinkgo minus native Ginkgo.

Regenerates the time-difference series (including the noise-induced
negative values the paper reports) and benchmarks the binding-overhead
sampler itself.
"""

import pytest

from repro.bench import fig5c_timediff
from repro.perfmodel import BindingOverheadModel

from conftest import report


@pytest.fixture(scope="module", autouse=True)
def print_figure(overhead_matrices):
    result = fig5c_timediff(overhead_matrices)
    negatives = sum(
        1 for rec in result["records"] if rec["time_diff"] < 0
    )
    text = result["text"] + (
        f"\n({negatives}/{len(result['records'])} measurements negative "
        "due to timing noise, as in the paper)"
    )
    report("Figure 5c reproduction", text)


@pytest.mark.parametrize("family", ["gpu-nvidia", "gpu-amd", "cpu"])
def test_overhead_sampling(benchmark, family):
    model = BindingOverheadModel.for_device(family)
    benchmark(lambda: model.sample(num_arguments=3))
