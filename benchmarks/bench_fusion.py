"""Lazy-fusion benchmark: ``pg.deferred()`` vs eager operator expressions.

Runs an axpy-heavy second-order Richardson/Chebyshev-style Krylov loop on
a 2D Poisson stencil twice:

* **eager** — every ``A @ p``, ``alpha * p``, ``x + t`` crosses the
  binding layer on its own, cloning operands and launching one kernel
  per operation (the per-call overhead the paper measures);
* **fused** — the same expressions inside ``pg.deferred()``, flushed
  once per iteration: three fused regions replace seven binding
  crossings, the SpMV folds into its consuming axpy chain, and the
  intermediates come from pooled workspace buffers.

The numerics must not move at all: the per-iteration residual-norm
histories are compared **byte-for-byte** between the two paths, and two
same-seed fused runs must produce byte-identical Chrome traces.

The acceptance gate is the **simulated-clock** speedup: binding
crossings, operand clones, and kernel launches are modeled costs in
this framework, and fusion's claim is that it removes them.  The
wall-clock of the pure-Python harness is also measured (interleaved
pairs, gc off) as a no-regression sanity check — both paths run the
same numpy operations in the same order, so wall time mostly tracks
interpreter overhead, not the modeled machine.

Standalone::

    python benchmarks/bench_fusion.py            # full run
    python benchmarks/bench_fusion.py --smoke    # CI gate (fast)

Writes ``BENCH_fusion.json`` next to the repo root with the timings.
"""

import argparse
import gc
import json
import sys
import time
from pathlib import Path

import numpy as np

import repro as pg
from repro.bindings import dispatch, reset_models
from repro.ginkgo import cachestats
from repro.ginkgo.matrix import Csr, Dense
from repro.suitesparse.generators import poisson_2d

#: Acceptance threshold on the simulated clock (the modeled machine).
MIN_SPEEDUP = 1.5

#: Fused wall-clock must not be materially slower than eager — the
#: recorder/interpreter overhead has to pay for itself in clones and
#: binding bookkeeping it skips.
MIN_WALL_RATIO = 0.9


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _fresh_state():
    """Reset every process-global cache so paths start identically."""
    pg.clear_device_cache()
    reset_models()
    dispatch.clear()
    cachestats.reset()
    pg.lazy.reset()


def _setup(nx):
    dev = pg.device("cuda", fresh=True)
    mtx = Csr.from_scipy(dev, poisson_2d(nx))
    return dev, mtx, mtx.size[0]


def _coeffs(k):
    """Deterministic, never 0/1 step coefficients for iteration ``k``."""
    a = 0.11 + 0.015 * ((k * 7) % 13)
    b = 0.42 + 0.01 * ((k * 5) % 7)
    c = 0.03 + 0.005 * ((k * 3) % 5)
    return a, b, c


def _initial_vectors(dev, n):
    idx = np.arange(n, dtype=np.float64).reshape(-1, 1)
    x = Dense(dev, np.sin(0.01 * idx))
    r = Dense(dev, np.cos(0.02 * idx))
    p = Dense(dev, np.cos(0.02 * idx))
    return x, r, p


def _eager_loop(dev, mtx, n, iters):
    """One eager run; returns (history, wall seconds, simulated seconds)."""
    x, r, p = _initial_vectors(dev, n)
    hist = []
    sim0 = dev.clock.now
    t0 = time.perf_counter()
    for k in range(iters):
        a, b, c = _coeffs(k)
        q = mtx @ p
        x = x + a * p
        r = r - a * q
        p = (r + b * p) + c * q
        hist.append(float(r.compute_norm2()[0]))
    wall = time.perf_counter() - t0
    return hist, wall, dev.clock.now - sim0


def _fused_loop(dev, mtx, n, iters):
    """The same loop inside ``pg.deferred()``, flushed once per iteration."""
    x, r, p = _initial_vectors(dev, n)
    hist = []
    sim0 = dev.clock.now
    t0 = time.perf_counter()
    with pg.deferred() as trace:
        for k in range(iters):
            a, b, c = _coeffs(k)
            q = mtx @ p
            (x + a * p).into(x)
            (r - a * q).into(r)
            ((r + b * p) + c * q).into(p)
            trace.flush()
            hist.append(float(r.compute_norm2()[0]))
    wall = time.perf_counter() - t0
    return hist, wall, dev.clock.now - sim0, trace


def run_pairs(nx, iters, repeats):
    """Interleaved eager/fused timing (one machine-load regime per ratio)."""
    _fresh_state()
    dev, mtx, n = _setup(nx)
    # Untimed warmup pays lazy-init costs (dispatch resolution, pool
    # allocation, scipy view) for both paths.
    _eager_loop(dev, mtx, n, 2)
    _fused_loop(dev, mtx, n, 2)
    eager_times, fused_times, ratios = [], [], []
    eager_hists, fused_hists = [], []
    traces_meta = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            gc.collect()
            e_hist, e_wall, e_sim = _eager_loop(dev, mtx, n, iters)
            f_hist, f_wall, f_sim, trace = _fused_loop(dev, mtx, n, iters)
            eager_times.append(e_wall)
            fused_times.append(f_wall)
            ratios.append(e_wall / f_wall if f_wall > 0 else float("inf"))
            eager_hists.append(e_hist)
            fused_hists.append(f_hist)
            traces_meta.append(
                (trace.regions, trace.ops_replaced, trace.recomputed)
            )
    finally:
        if gc_was_enabled:
            gc.enable()
    # Simulated time is deterministic: one measurement suffices.
    _, _, eager_sim = _eager_loop(dev, mtx, n, iters)
    _, _, fused_sim, _ = _fused_loop(dev, mtx, n, iters)
    stats = cachestats.snapshot()
    return {
        "eager_times": eager_times,
        "fused_times": fused_times,
        "ratios": ratios,
        "eager_hists": eager_hists,
        "fused_hists": fused_hists,
        "traces_meta": traces_meta,
        "eager_sim": eager_sim,
        "fused_sim": fused_sim,
        "stats": stats,
    }


def run_traced(nx, iters):
    """One profiled fused run (for the same-seed determinism check)."""
    _fresh_state()
    dev, mtx, n = _setup(nx)
    with pg.profile(dev, name="fused_loop") as prof:
        hist, _, _, trace = _fused_loop(dev, mtx, n, iters)
    table = prof.attribution()
    return (
        prof.to_chrome_trace(),
        hist,
        trace,
        table.fused_regions,
        table.fused_ops_replaced,
    )


def run(nx=96, iters=50, repeats=8, out_path="BENCH_fusion.json"):
    """Run both paths, check the invariants, write the JSON report."""
    failures = []

    data = run_pairs(nx, iters, repeats)
    trace1, hist1, dtrace, fused_regions, fused_ops = run_traced(nx, iters)
    trace2, hist2, _, _, _ = run_traced(nx, iters)

    # Numerics: fused histories byte-identical to eager, repeat over repeat.
    identical = all(
        np.asarray(f).tobytes() == np.asarray(e).tobytes()
        for f, e in zip(data["fused_hists"], data["eager_hists"])
    )
    if not identical:
        failures.append("fused residual histories differ from eager")
    if np.asarray(hist1).tobytes() != np.asarray(data["eager_hists"][0]).tobytes():
        failures.append("traced fused history differs from eager")
    if trace1 != trace2:
        failures.append("same-seed fused traces are not byte-identical")

    # Fusion actually happened: 3 regions per iteration, each replacing
    # the recorded ops, visible both on the trace objects and in the
    # profiler's attribution.
    regions, ops_replaced, recomputed = data["traces_meta"][0]
    if regions != 3 * iters:
        failures.append(
            f"expected {3 * iters} fused regions per run, saw {regions}"
        )
    if ops_replaced < 7 * iters:
        failures.append(
            f"fused regions replaced only {ops_replaced} ops "
            f"(expected >= {7 * iters})"
        )
    if fused_regions != 3 * iters or fused_ops != ops_replaced:
        failures.append(
            "attribution fused_region accounting disagrees with the trace"
        )
    stats = data["stats"]
    if stats.get("cache_workspace_hit", 0) == 0:
        failures.append("fused flushes recorded no workspace-pool hits")
    if stats.get("cache_dispatch_hit", 0) == 0:
        failures.append("fused flushes recorded no dispatch hits")

    wall_speedup = max(
        _median(data["ratios"]),
        min(data["eager_times"]) / min(data["fused_times"])
        if min(data["fused_times"]) > 0
        else float("inf"),
    )
    sim_speedup = (
        data["eager_sim"] / data["fused_sim"]
        if data["fused_sim"] > 0
        else float("inf")
    )
    if sim_speedup < MIN_SPEEDUP:
        failures.append(
            f"simulated speedup {sim_speedup:.2f}x below the "
            f"{MIN_SPEEDUP:.2f}x gate"
        )
    if wall_speedup < MIN_WALL_RATIO:
        failures.append(
            f"fused wall-clock regressed: ratio {wall_speedup:.2f}x "
            f"below the {MIN_WALL_RATIO:.2f}x floor"
        )

    report = {
        "benchmark": "lazy_fusion_richardson",
        "nx": nx,
        "unknowns": nx * nx,
        "iterations": iters,
        "repeats": repeats,
        "eager_median_s": _median(data["eager_times"]),
        "fused_median_s": _median(data["fused_times"]),
        "eager_times_s": data["eager_times"],
        "fused_times_s": data["fused_times"],
        "pair_ratios": data["ratios"],
        "speedup": sim_speedup,
        "simulated_speedup": sim_speedup,
        "wall_speedup": wall_speedup,
        "min_speedup_gate": MIN_SPEEDUP,
        "min_wall_ratio": MIN_WALL_RATIO,
        "residual_histories_identical": identical,
        "same_seed_traces_identical": trace1 == trace2,
        "fused_regions_per_run": regions,
        "ops_replaced_per_run": ops_replaced,
        "recomputed_nodes": recomputed,
        "cache_stats": stats,
        "failures": failures,
    }
    Path(out_path).write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"eager {_median(data['eager_times']) * 1e3:8.2f} ms/loop | "
        f"fused {_median(data['fused_times']) * 1e3:8.2f} ms/loop | "
        f"sim speedup {sim_speedup:5.2f}x (gate {MIN_SPEEDUP:.2f}x) | "
        f"wall ratio {wall_speedup:5.2f}x (floor {MIN_WALL_RATIO:.2f}x)"
    )
    print(
        f"{regions} fused regions replaced {ops_replaced} ops; "
        f"workspace {stats.get('cache_workspace_hit', 0)} hits, "
        f"dispatch {stats.get('cache_dispatch_hit', 0)} hits"
    )
    print(f"wrote {out_path}")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI gate: small stencil, assert the acceptance criteria",
    )
    parser.add_argument("--nx", type=int, default=None, help="stencil size")
    parser.add_argument("--iters", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default="BENCH_fusion.json")
    args = parser.parse_args()
    nx = args.nx or (48 if args.smoke else 96)
    iters = args.iters or (20 if args.smoke else 50)
    repeats = args.repeats or (4 if args.smoke else 8)
    report = run(nx=nx, iters=iters, repeats=repeats, out_path=args.out)
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf-smoke OK" if args.smoke else "fusion bench OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
