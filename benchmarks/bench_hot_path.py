"""Cold vs warm hot-path benchmark (GMRES+ILU on a 2D Poisson stencil).

Measures the host-side wall-clock win of the zero-allocation hot path:

* **cold** — every solve rebuilds the ILU preconditioner and the GMRES
  handle, so binding dispatch, preconditioner generation, and every
  scratch allocation happen from scratch;
* **warm** — one handle solves repeatedly, reusing the solver workspace
  pool, the matrix-side conversion caches, and the pre-resolved binding
  dispatch entries.

Numerics must not drift: every warm solve's residual history is compared
byte-for-byte against its cold counterpart, and two same-seed warm runs
must produce byte-identical Chrome traces.

Standalone::

    python benchmarks/bench_hot_path.py            # full run
    python benchmarks/bench_hot_path.py --smoke    # CI gate (fast)

Writes ``BENCH_hot_path.json`` next to the repo root with the timings.
"""

import argparse
import gc
import json
import sys
import time
from pathlib import Path

import repro as pg
from repro.bindings import dispatch, reset_models
from repro.ginkgo import cachestats
from repro.ginkgo.matrix import Csr
from repro.suitesparse.generators import poisson_2d

#: Acceptance threshold: warm solves must be at least this much faster.
MIN_SPEEDUP = 1.25


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _fresh_state():
    """Reset every process-global cache so paths start identically."""
    pg.clear_device_cache()
    reset_models()
    dispatch.clear()
    cachestats.reset()


def _setup(nx):
    dev = pg.device("cuda", fresh=True)
    mtx = Csr.from_scipy(dev, poisson_2d(nx))
    n = mtx.size[0]
    b = pg.as_tensor(device=dev, dim=(n, 1), dtype="double", fill=1.0)
    return dev, mtx, b, n


def _one_solve(dev, mtx, b, n, handle=None, max_iters=400):
    """Run one GMRES+ILU solve; returns (handle, history, seconds)."""
    t0 = time.perf_counter()
    if handle is None:
        precond = pg.preconditioner.Ilu(dev, mtx)
        handle = pg.solver.gmres(
            dev, mtx, preconditioner=precond,
            max_iters=max_iters, reduction_factor=1e-5,
        )
    x = pg.as_tensor(device=dev, dim=(n, 1), dtype="double")
    logger, _ = handle.apply(b, x)
    elapsed = time.perf_counter() - t0
    if not logger.converged:
        raise RuntimeError("benchmark solve did not converge")
    return handle, list(logger.residual_norms), elapsed


def run_pairs(nx, repeats, max_iters):
    """Interleaved cold/warm timing.

    Each repeat times one cold solve (fresh ILU + handle + workspace)
    back-to-back with one warm solve on a persistent handle, so both
    sides of every ratio see the same machine load.  The gate uses the
    median per-pair ratio, which is immune to the multi-second load
    swings that skew separately-timed blocks.
    """
    _fresh_state()
    dev, mtx, b, n = _setup(nx)
    # Untimed warmup pays one-time import/lazy-init costs and builds the
    # persistent warm handle.
    handle, _, _ = _one_solve(dev, mtx, b, n, max_iters=max_iters)
    cold_times, warm_times, ratios = [], [], []
    cold_hists, warm_hists = [], []
    # Collector pauses from cold-solve garbage (discarded handles, ILU
    # factors) must not land inside a timed window: collect at pair
    # boundaries, keep the collector off while the clock runs.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            gc.collect()
            _, cold_hist, cold_dt = _one_solve(
                dev, mtx, b, n, max_iters=max_iters
            )
            # First warm solve re-warms the CPU caches the cold solve
            # just evicted (untimed); the second one is the steady-state
            # measurement the ratio uses.
            handle, _, _ = _one_solve(
                dev, mtx, b, n, handle=handle, max_iters=max_iters
            )
            handle, warm_hist, warm_dt = _one_solve(
                dev, mtx, b, n, handle=handle, max_iters=max_iters
            )
            cold_times.append(cold_dt)
            warm_times.append(warm_dt)
            ratios.append(
                cold_dt / warm_dt if warm_dt > 0 else float("inf")
            )
            cold_hists.append(cold_hist)
            warm_hists.append(warm_hist)
    finally:
        if gc_was_enabled:
            gc.enable()
    stats = cachestats.snapshot()
    return cold_times, warm_times, ratios, cold_hists, warm_hists, stats


def run_warm(nx, repeats, max_iters, trace=False):
    """One handle, ``repeats`` solves.

    With ``trace=True`` the whole run is profiled (for the same-seed
    determinism check); timings from a traced run carry profiler overhead
    and must not be compared against an untraced cold run.
    """
    _fresh_state()
    dev, mtx, b, n = _setup(nx)
    times, histories = [], []
    handle = None

    def body():
        nonlocal handle
        for _ in range(repeats):
            handle, hist, dt = _one_solve(
                dev, mtx, b, n, handle=handle, max_iters=max_iters
            )
            times.append(dt)
            histories.append(hist)

    trace_json = None
    if trace:
        with pg.profile(dev, name="warm_hot_path") as prof:
            body()
        trace_json = prof.to_chrome_trace()
    else:
        body()
    stats = cachestats.snapshot()
    return times, histories, trace_json, stats


def run(nx=48, repeats=8, max_iters=400, out_path="BENCH_hot_path.json"):
    """Run both paths, check the invariants, write the JSON report."""
    failures = []

    cold_times, warm_times, ratios, cold_hists, warm_hists, stats = (
        run_pairs(nx, repeats, max_iters)
    )
    _, _, trace1, _ = run_warm(nx, repeats, max_iters, trace=True)
    _, _, trace2, _ = run_warm(nx, repeats, max_iters, trace=True)

    # Numerics: every warm history byte-identical to its cold twin.
    if warm_hists != cold_hists:
        failures.append("warm residual histories differ from cold")
    if any(h != cold_hists[0] for h in cold_hists):
        failures.append("cold residual histories drift across repeats")
    # Determinism: same-seed warm runs trace identically.
    if trace1 != trace2:
        failures.append("same-seed warm traces are not byte-identical")

    cold_mean = _median(cold_times)
    warm_mean = _median(warm_times)
    # Two robust estimators of the steady-state advantage: the median
    # per-pair ratio (load-paired) and the ratio of per-side minima (the
    # quiet-machine estimate — min discards every noise-inflated
    # sample).  A genuine hot-path regression drives BOTH to ~1.0, so
    # gate on the better one; that keeps co-tenant load spikes from
    # failing CI without masking a real loss of the cached-path win.
    speedup = max(
        _median(ratios),
        min(cold_times) / min(warm_times) if min(warm_times) > 0
        else float("inf"),
    )
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"warm speedup {speedup:.2f}x below the {MIN_SPEEDUP:.2f}x gate"
        )
    if stats.get("cache_workspace_hit", 0) == 0:
        failures.append("warm path recorded no workspace hits")

    report = {
        "benchmark": "hot_path_gmres_ilu",
        "nx": nx,
        "unknowns": nx * nx,
        "repeats": repeats,
        "cold_median_s": cold_mean,
        "warm_median_s": warm_mean,
        "cold_times_s": cold_times,
        "warm_times_s": warm_times,
        "pair_ratios": ratios,
        "speedup": speedup,
        "min_speedup_gate": MIN_SPEEDUP,
        "residual_histories_identical": warm_hists == cold_hists,
        "same_seed_traces_identical": trace1 == trace2,
        "iterations_per_solve": len(cold_hists[0]),
        "cache_stats_warm": stats,
        "failures": failures,
    }
    Path(out_path).write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"cold {cold_mean * 1e3:8.2f} ms/solve | "
        f"warm {warm_mean * 1e3:8.2f} ms/solve | "
        f"speedup {speedup:5.2f}x (gate {MIN_SPEEDUP:.2f}x)"
    )
    hits = stats.get("cache_workspace_hit", 0)
    misses = stats.get("cache_workspace_miss", 0)
    print(
        f"workspace {hits} hits / {misses} misses, "
        f"dispatch {stats.get('cache_dispatch_hit', 0)} hits, "
        f"format {stats.get('cache_format_hit', 0)} hits"
    )
    print(f"wrote {out_path}")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI gate: small stencil, assert the acceptance criteria",
    )
    parser.add_argument("--nx", type=int, default=None, help="stencil size")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default="BENCH_hot_path.json")
    args = parser.parse_args()
    # Below nx~32 the warm solve hits a fixed dispatch-overhead floor
    # while the cold-only setup keeps shrinking, compressing the ratio
    # toward the gate; nx=48 keeps a stable ~1.5x margin under load.
    nx = args.nx or 48
    repeats = args.repeats or (6 if args.smoke else 10)
    report = run(nx=nx, repeats=repeats, out_path=args.out)
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf-smoke OK" if args.smoke else "hot-path bench OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
