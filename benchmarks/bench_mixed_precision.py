"""Mixed-precision preconditioning benchmark: reduced storage vs uniform.

Runs float64 Krylov solves (CG, GMRES) whose preconditioners store their
data (inverted Jacobi blocks, ILU factors) in float32 through the
accessor layer (:mod:`repro.ginkgo.accessor`), against the same solves
with uniform float64 storage, on the bandwidth-bound suite:

* **cg+jacobi16 / cg+jacobi32** — block-Jacobi on a shifted 2D Poisson
  stencil.  Block storage moves ``rows * block_size`` values per apply,
  several times the matrix's own nnz, so the apply is pure bandwidth.
* **gmres+parilu** — ParILU on a dense-banded (av41092-style) matrix.
  The triangular solves stream the factors; level scheduling caps their
  parallelism, so the band is kept wide enough that bytes, not launches,
  dominate.

All cases run on the OpenMP executor with a fixed thread count in the
linear region of the bandwidth-saturation curve (the paper's Fig. 3b
thread-sweep regime): per-thread bandwidth is the bottleneck and every
kernel in the suite is bytes-bound, which is exactly the regime where
halving storage width is an honest, model-backed win.

The acceptance gate is the **preconditioner-phase simulated time**: the
float32-storage preconditioner applies (including their mixed binding
crossings) must be >= 1.2x faster than uniform float64.  Whole-solve
simulated speedups are reported alongside and gated only against
regression — the solver's own float64 SpMV and BLAS-1 traffic is
unchanged by design, which caps the whole-solve ratio below the
preconditioner-phase ratio (for ILU at 24/20 asymptotically, since SpMV
reads value+index bytes the storage reduction cannot touch).

Invariants checked besides the speedup gate:

* iteration counts of the mixed solves stay within ``ITER_TOLERANCE`` of
  the uniform solves (reduced storage must not degrade convergence);
* explicitly requesting ``storage_precision="double"`` on a float64
  system produces byte-identical solutions to the default — the accessor
  pass-through contract (the uniform path byte-identity against pre-PR
  histories is pinned separately in ``tests/ginkgo/test_mixed_precision``);
* mixed runs route through the mixed-suffix binding symbols
  (``jacobi_apply_double_float``, ``trsv_apply_double_float``) and
  uniform runs never do — checked on the recorded trace, so dispatch
  attribution sees mixed kernels as first-class.

Standalone::

    python benchmarks/bench_mixed_precision.py            # full run
    python benchmarks/bench_mixed_precision.py --smoke    # CI gate (fast)

Writes ``BENCH_mixed.json`` next to the repo root.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import scipy.sparse as sp

import repro as pg
from repro.bindings import dispatch, reset_models
from repro.ginkgo import cachestats
from repro.ginkgo.matrix import Csr, Dense
from repro.suitesparse.generators import banded, poisson_2d

#: Acceptance threshold on the preconditioner-phase simulated time.
MIN_PRECOND_SPEEDUP = 1.2

#: Mixed storage must never slow the whole solve down.
MIN_SOLVE_RATIO = 1.0

#: Allowed drift in iteration count between uniform and mixed solves.
ITER_TOLERANCE = 2

#: OpenMP threads: linear region of the bandwidth-saturation curve.
NUM_THREADS = 4

#: Shift added to the Poisson stencil so CG converges in O(100) steps.
POISSON_SHIFT = 0.05

CRITERIA = [
    {"type": "stop::Iteration", "max_iters": 300},
    {"type": "stop::ResidualNorm", "reduction_factor": 1e-8},
]


def _shifted_poisson(nx):
    n = nx * nx
    return poisson_2d(nx) + POISSON_SHIFT * sp.eye(n, format="csr")


def _cases(smoke):
    """The bandwidth-bound suite; smoke shrinks sizes, not structure."""
    poisson_nx = 96 if smoke else 128
    banded_n, banded_bw = (4096, 24) if smoke else (8192, 24)
    return [
        {
            "name": "cg+jacobi16",
            "matrix": lambda: _shifted_poisson(poisson_nx),
            "config": {
                "type": "cg",
                "preconditioner": {"type": "jacobi", "max_block_size": 16},
            },
            "mixed_symbol": "jacobi_apply_double_float",
        },
        {
            "name": "cg+jacobi32",
            "matrix": lambda: _shifted_poisson(poisson_nx),
            "config": {
                "type": "cg",
                "preconditioner": {"type": "jacobi", "max_block_size": 32},
            },
            "mixed_symbol": "jacobi_apply_double_float",
        },
        {
            "name": "gmres+parilu",
            "matrix": lambda: banded(banded_n, banded_bw, seed=3),
            "config": {
                "type": "gmres",
                "preconditioner": {
                    "type": "ilu", "algorithm": "parilu", "sweeps": 2
                },
            },
            "mixed_symbol": "trsv_apply_double_float",
        },
    ]


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _fresh_state():
    """Reset every process-global cache so variants start identically."""
    pg.clear_device_cache()
    reset_models()
    dispatch.clear()
    cachestats.reset()
    pg.lazy.reset()


def _precond_time(trace):
    """Simulated seconds inside top-level preconditioner apply spans."""
    total = 0.0

    def walk(span, inside):
        nonlocal total
        mine = span.category == "precond" and not inside
        if mine:
            total += span.duration
        for child in span.children:
            walk(child, inside or mine)

    for root in trace.roots:
        walk(root, False)
    return total


def _binding_labels(trace):
    """Names of every binding crossing recorded in the trace."""
    labels = set()

    def walk(span):
        if span.category == "binding":
            labels.add(span.name)
        for child in span.children:
            walk(child)

    for root in trace.roots:
        walk(root)
    return labels


def _run_variant(case, storage_precision, repeats):
    """Solve one case at one storage precision; return the measurements.

    The device is created noise-free: the gate is an analytic regression
    check on the cost model, and determinism keeps the CI signal clean.
    """
    _fresh_state()
    dev = pg.device(
        "omp", fresh=True, num_threads=NUM_THREADS, noisy=False
    )
    mtx = Csr.from_scipy(dev, case["matrix"]())
    n = mtx.size[0]
    config = dict(case["config"])
    config["criteria"] = CRITERIA
    if storage_precision is not None:
        config["preconditioner"] = dict(
            config["preconditioner"], storage_precision=storage_precision
        )
    b = Dense(dev, np.ones((n, 1)))
    gen_start = time.perf_counter()
    solver = pg.config_solver(dev, mtx, config)
    gen_wall = time.perf_counter() - gen_start

    sims, preconds, walls = [], [], []
    iterations = None
    solution = None
    bindings = set()
    for _ in range(repeats):
        x = Dense(dev, np.zeros((n, 1)))
        sim_start = dev.clock.now
        wall_start = time.perf_counter()
        with pg.profile(dev) as prof:
            solver.apply(b, x)
        walls.append(time.perf_counter() - wall_start)
        sims.append(dev.clock.now - sim_start)
        prof.close()
        preconds.append(_precond_time(prof.trace))
        bindings |= _binding_labels(prof.trace)
        iterations = solver.num_iterations
        solution = x.to_numpy().tobytes()
    return {
        "sim": _median(sims),
        "precond_sim": _median(preconds),
        "wall": _median(walls),
        "generate_wall": gen_wall,
        "iterations": iterations,
        "solution": solution,
        "binding_labels": bindings,
    }


def _check_case(case, uniform, explicit, mixed, failures):
    """Apply every per-case invariant; returns the case report entry."""
    name = case["name"]
    symbol = case["mixed_symbol"]
    precond_speedup = (
        uniform["precond_sim"] / mixed["precond_sim"]
        if mixed["precond_sim"] > 0
        else float("inf")
    )
    solve_speedup = (
        uniform["sim"] / mixed["sim"] if mixed["sim"] > 0 else float("inf")
    )
    if precond_speedup < MIN_PRECOND_SPEEDUP:
        failures.append(
            f"{name}: float32-storage preconditioner phase "
            f"{precond_speedup:.3f}x below the "
            f"{MIN_PRECOND_SPEEDUP:.2f}x gate"
        )
    if solve_speedup < MIN_SOLVE_RATIO:
        failures.append(
            f"{name}: mixed solve regressed to {solve_speedup:.3f}x "
            f"of uniform simulated time"
        )
    iter_drift = abs(mixed["iterations"] - uniform["iterations"])
    if iter_drift > ITER_TOLERANCE:
        failures.append(
            f"{name}: iteration count drifted by {iter_drift} "
            f"({uniform['iterations']} -> {mixed['iterations']}, "
            f"tolerance {ITER_TOLERANCE})"
        )
    if explicit["solution"] != uniform["solution"]:
        failures.append(
            f"{name}: storage_precision='double' is not byte-identical "
            "to the default uniform path"
        )
    if symbol not in mixed["binding_labels"]:
        failures.append(
            f"{name}: mixed run never crossed the {symbol} binding symbol"
        )
    leaked = {
        label
        for label in uniform["binding_labels"] | explicit["binding_labels"]
        if "_double_float" in label or "_double_half" in label
    }
    if leaked:
        failures.append(
            f"{name}: uniform run crossed mixed binding symbols {sorted(leaked)}"
        )
    return {
        "case": name,
        "uniform_sim_s": uniform["sim"],
        "mixed_sim_s": mixed["sim"],
        "uniform_precond_sim_s": uniform["precond_sim"],
        "mixed_precond_sim_s": mixed["precond_sim"],
        "precond_speedup": precond_speedup,
        "solve_speedup": solve_speedup,
        "uniform_iterations": uniform["iterations"],
        "mixed_iterations": mixed["iterations"],
        "uniform_wall_s": uniform["wall"],
        "mixed_wall_s": mixed["wall"],
        "generate_wall_s": mixed["generate_wall"],
    }


def run(smoke=False, repeats=None, out_path="BENCH_mixed.json"):
    """Run the suite, check the invariants, write the JSON report."""
    if repeats is None:
        repeats = 2 if smoke else 3
    failures = []
    entries = []
    for case in _cases(smoke):
        uniform = _run_variant(case, None, repeats)
        explicit = _run_variant(case, "double", repeats)
        mixed = _run_variant(case, "float", repeats)
        entry = _check_case(case, uniform, explicit, mixed, failures)
        entries.append(entry)
        print(
            f"{entry['case']:14s} precond {entry['precond_speedup']:5.2f}x "
            f"(gate {MIN_PRECOND_SPEEDUP:.2f}x) | "
            f"solve {entry['solve_speedup']:5.2f}x | "
            f"iters {entry['uniform_iterations']}/{entry['mixed_iterations']}"
        )

    # Half storage on the widest-block case, reported but not gated: the
    # ISSUE gate is float32, float16 shows the accessor's full range.
    half_case = _cases(smoke)[1]
    half = _run_variant(half_case, "half", repeats)
    half_uniform = next(e for e in entries if e["case"] == half_case["name"])
    half_speedup = (
        half_uniform["uniform_precond_sim_s"] / half["precond_sim"]
        if half["precond_sim"] > 0
        else float("inf")
    )
    print(
        f"{half_case['name'] + ' (half)':14s} precond {half_speedup:5.2f}x "
        f"(informational) | iters {half_uniform['uniform_iterations']}"
        f"/{half['iterations']}"
    )

    speedups = [entry["precond_speedup"] for entry in entries]
    geomean = float(np.exp(np.mean(np.log(speedups)))) if speedups else 0.0
    report = {
        "benchmark": "mixed_precision_preconditioning",
        "num_threads": NUM_THREADS,
        "repeats": repeats,
        "smoke": smoke,
        "cases": entries,
        "half_storage_precond_speedup": half_speedup,
        "half_storage_iterations": half["iterations"],
        "speedup": geomean,
        "simulated_speedup": geomean,
        "min_speedup_gate": MIN_PRECOND_SPEEDUP,
        "min_solve_ratio": MIN_SOLVE_RATIO,
        "iteration_tolerance": ITER_TOLERANCE,
        "failures": failures,
    }
    Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    print(f"geomean precond speedup {geomean:.2f}x; wrote {out_path}")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI gate: smaller suite, same acceptance criteria",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default="BENCH_mixed.json")
    args = parser.parse_args()
    report = run(smoke=args.smoke, repeats=args.repeats, out_path=args.out)
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("mixed-smoke OK" if args.smoke else "mixed-precision bench OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
