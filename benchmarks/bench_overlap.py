"""Comm/compute overlap benchmark: pipelined Krylov vs blocking solves.

The distributed layer's communication-hiding stack — non-blocking halo
exchanges overlapped with the rank-local SpMV, and pipelined CG's single
in-flight all-reduce per iteration — is pointless on the intra-node
default network, where a reduction costs nanoseconds.  This benchmark
puts the solvers on the high-latency ``ETHERNET_CLUSTER`` model at 8
ranks, where blocking CG pays three 3-round all-reduces per iteration,
and gates:

* **Speedup** — overlap + pipelined CG must beat blocking distributed
  CG by ``MIN_SPEEDUP`` in *simulated* time (the clock is deterministic,
  so one run per variant suffices);
* **Hiding** — the pipelined solve must report ``comm_hidden_time > 0``
  and leave ``comm_hidden`` annotations in the trace;
* **Blocking contract intact** — blocking CG's residual history stays
  byte-identical to its single-rank run, network notwithstanding;
* **Relaxed contract pinned** — pipelined CG's history matches blocking
  CG within ``PIPELINED_RTOL`` over the shared prefix, and s-step GMRES
  converges to the same tolerance with at most ``1/s`` of the blocking
  reduction count (plus setup).

Standalone::

    python benchmarks/bench_overlap.py            # full run
    python benchmarks/bench_overlap.py --smoke    # CI gate (fast)

Writes ``BENCH_overlap.json`` next to the repo root.
"""

import argparse
import json
import sys
from pathlib import Path

import numpy as np
import scipy.sparse as sp

import repro as pg
from repro.bindings import dispatch, reset_models
from repro.ginkgo import cachestats
from repro.perfmodel.comm import ETHERNET_CLUSTER

#: Acceptance threshold: pipelined+overlap vs blocking CG, simulated time.
MIN_SPEEDUP = 1.5

#: Pinned relaxed-contract tolerance for pipelined CG histories
#: (DESIGN.md): the recurrences reassociate CG arithmetic at rounding
#: level only.
PIPELINED_RTOL = 1e-6

NUM_RANKS = 8


def _fresh_state():
    pg.clear_device_cache()
    reset_models()
    dispatch.clear()
    cachestats.reset()


def make_system(n, seed=1234):
    """A 3-point Laplacian band: the latency-dominated sweet spot.

    Each rank talks to at most two neighbours (14 halo messages at 8
    ranks), so the three blocking all-reduces per CG iteration are the
    dominant communication cost — exactly the regime pipelining targets.
    """
    mat = sp.diags(
        [-np.ones(n - 1), np.full(n, 2.05), -np.ones(n - 1)],
        [-1, 0, 1],
    ).tocsr()
    rng = np.random.default_rng(seed)
    return mat, rng.standard_normal(n)


def run_solver(
    mat, rhs, solver_name, max_iters, tol,
    num_ranks=NUM_RANKS, overlap=True, profile=False, **solver_kwargs
):
    """One simulated-network solve; returns (history, stats, trace)."""
    _fresh_state()
    dev = pg.device("omp", fresh=True, num_threads=4)
    part = pg.distributed.partition(mat.shape[0], num_ranks)
    dist = pg.distributed.matrix(
        dev, part, mat, overlap=overlap, network=ETHERNET_CLUSTER
    )
    b = pg.distributed.vector(dev, part, rhs, comm=dist.comm)
    x = pg.distributed.zeros_like(b)
    handle = getattr(pg.distributed, solver_name)(
        dev, dist, max_iters=max_iters, reduction_factor=tol,
        **solver_kwargs,
    )
    sim0 = dev.clock.now
    trace = None
    if profile:
        with pg.profile(dev) as prof:
            logger, _ = handle.apply(b, x)
        trace = prof.trace
    else:
        logger, _ = handle.apply(b, x)
    if not handle.converged:
        raise RuntimeError(f"{solver_name} did not converge")
    stats = {
        "iterations": handle.num_iterations,
        "simulated_s": dev.clock.now - sim0,
        "comm_time_s": handle.comm_time,
        "comm_hidden_time_s": handle.comm_hidden_time,
        "num_reductions": handle.num_reductions,
    }
    history = np.asarray(logger.residual_norms, dtype=np.float64)
    return history, stats, trace


def run(n=2048, max_iters=2000, tol=1e-9, out_path="BENCH_overlap.json"):
    """Run the overlap gates and write the JSON report."""
    failures = []
    mat, rhs = make_system(n)

    # Blocking baseline and the single-rank identity reference.
    blocking_hist, blocking, _ = run_solver(
        mat, rhs, "cg", max_iters, tol, overlap=False
    )
    single_hist, _, _ = run_solver(
        mat, rhs, "cg", max_iters, tol, num_ranks=1, overlap=False
    )
    if blocking_hist.tobytes() != single_hist.tobytes():
        failures.append(
            "blocking CG history no longer byte-identical to single-rank"
        )

    # Pipelined CG with halo overlap, profiled for the hidden-time trace.
    pipelined_hist, pipelined, trace = run_solver(
        mat, rhs, "pipelined_cg", max_iters, tol, profile=True
    )
    speedup = blocking["simulated_s"] / pipelined["simulated_s"]
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"pipelined speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP:.2f}x gate"
        )
    if pipelined["comm_hidden_time_s"] <= 0.0:
        failures.append("pipelined solve hid no communication time")
    hidden_spans = sum(
        1 for span in trace.walk() if span.name == "comm_hidden"
    )
    if hidden_spans == 0:
        failures.append("no comm_hidden annotations in the trace")
    m = min(pipelined_hist.size, blocking_hist.size)
    if not np.allclose(
        pipelined_hist[:m], blocking_hist[:m], rtol=PIPELINED_RTOL
    ):
        failures.append(
            f"pipelined history outside the pinned {PIPELINED_RTOL:g} "
            "tolerance"
        )

    # s-step GMRES: the reduction-count side of the story.
    gmres_hist, gmres, _ = run_solver(
        mat, rhs, "gmres", max_iters, tol, overlap=False
    )
    sstep_hist, sstep, _ = run_solver(
        mat, rhs, "sstep_gmres", max_iters, tol, s_step=4
    )
    s_cycles = -(-sstep["iterations"] // 4) + 1
    if sstep["num_reductions"] > s_cycles + 2:
        failures.append(
            f"s-step GMRES performed {sstep['num_reductions']} "
            f"reductions, expected <= {s_cycles + 2}"
        )
    if sstep_hist[-1] > gmres_hist[-1] * 10 and sstep_hist[-1] > tol * np.linalg.norm(rhs):
        failures.append("s-step GMRES converged worse than blocking GMRES")

    report = {
        "benchmark": "overlap_pipelined_vs_blocking",
        "system_size": n,
        "nnz": int(mat.nnz),
        "num_ranks": NUM_RANKS,
        "network": ETHERNET_CLUSTER.name,
        "speedup": speedup,
        "min_speedup_gate": MIN_SPEEDUP,
        "pinned_rtol": PIPELINED_RTOL,
        "blocking_cg": blocking,
        "pipelined_cg": pipelined,
        "blocking_gmres": gmres,
        "sstep_gmres": sstep,
        "comm_hidden_spans": hidden_spans,
        "history_matches_single_rank": blocking_hist.tobytes()
        == single_hist.tobytes(),
        "failures": failures,
    }
    Path(out_path).write_text(json.dumps(report, indent=2) + "\n")

    def _line(name, stats):
        frac = (
            stats["comm_time_s"] / stats["simulated_s"]
            if stats["simulated_s"]
            else 0.0
        )
        print(
            f"  {name:<14} {stats['simulated_s'] * 1e3:8.2f} ms simulated | "
            f"{stats['iterations']:4d} iters | "
            f"{stats['num_reductions']:4d} reductions | "
            f"comm {frac:5.1%} "
            f"({stats['comm_hidden_time_s'] * 1e3:.2f} ms hidden)"
        )

    print(
        f"overlap bench n={n} ranks={NUM_RANKS} "
        f"network={ETHERNET_CLUSTER.name}:"
    )
    _line("blocking CG", blocking)
    _line("pipelined CG", pipelined)
    _line("blocking GMRES", gmres)
    _line("s-step GMRES", sstep)
    print(
        f"pipelined speedup {speedup:5.2f}x (gate {MIN_SPEEDUP:.2f}x), "
        f"{hidden_spans} comm_hidden spans, "
        f"blocking byte-identity={report['history_matches_single_rank']}"
    )
    print(f"wrote {out_path}")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI gate: smaller system, assert the acceptance criteria",
    )
    parser.add_argument("--n", type=int, default=None, help="system size")
    parser.add_argument("--out", default="BENCH_overlap.json")
    args = parser.parse_args()
    report = run(n=args.n or (1024 if args.smoke else 2048), out_path=args.out)
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf-smoke OK" if args.smoke else "overlap bench OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
