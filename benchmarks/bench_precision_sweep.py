"""Supplementary: SpMV throughput across the Table-1 value types.

The paper runs its SpMV benchmarks in single precision "since machine
learning workloads primarily rely on SpMV in low precision" and its
solver benchmarks in double.  This sweep quantifies the full precision
stack: half/float/double SpMV on both GPUs, where bandwidth-bound kernels
gain nearly linearly from narrower values.
"""

import numpy as np
import pytest

from repro.baselines import PyGinkgoBackend
from repro.bench.reporting import format_table
from repro.bench.timing import measure_spmv, spmv_gflops
from repro.perfmodel.specs import AMD_MI100, NVIDIA_A100
from repro.suitesparse import mesh_delaunay

from conftest import report

DTYPES = {"half": np.float16, "float": np.float32, "double": np.float64}


@pytest.fixture(scope="module")
def matrix():
    return mesh_delaunay(200000, seed=7)  # ~1.4M nnz


@pytest.fixture(scope="module", autouse=True)
def print_sweep(matrix, rng):
    x64 = rng.random(matrix.shape[1])
    rows = []
    for spec, label in ((NVIDIA_A100, "A100"), (AMD_MI100, "MI100")):
        for name, dtype in DTYPES.items():
            backend = PyGinkgoBackend(spec=spec, noisy=False)
            handle = backend.prepare(matrix, "csr", dtype)
            t = measure_spmv(backend, handle, x64.astype(dtype), 5)
            rows.append(
                (label, name, f"{t * 1e6:.1f}",
                 f"{spmv_gflops(matrix.nnz, t):.0f}")
            )
    report(
        "Precision sweep: pyGinkgo CSR SpMV by value type "
        f"(nnz={matrix.nnz})",
        format_table(["device", "value type", "us/SpMV", "GFLOP/s"], rows),
    )


@pytest.mark.parametrize("dtype_name", list(DTYPES))
def test_spmv_precision(benchmark, dtype_name, matrix, rng):
    backend = PyGinkgoBackend(noisy=False)
    dtype = DTYPES[dtype_name]
    handle = backend.prepare(matrix, "csr", dtype)
    x = rng.random(matrix.shape[1]).astype(dtype)
    benchmark(lambda: backend.spmv(handle, x))
