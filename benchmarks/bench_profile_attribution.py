"""Profiler attribution on a preconditioned solve (GMRES+ILU, 2D stencil).

Two entry points:

* pytest-benchmark tests (run with the rest of ``benchmarks/``) that time
  a profiled solve and report the attribution table;
* a standalone smoke mode asserting the PR's acceptance criteria on a
  tiny stencil matrix::

      python benchmarks/bench_profile_attribution.py --smoke

  checks that the attribution table accounts for >= 99% of the simulated
  wall-clock span, that the Chrome trace export is valid trace-event
  JSON with monotonic timestamps, and that two same-seed runs produce
  byte-identical traces.
"""

import argparse
import json
import sys

import repro as pg
from repro.bindings import get_binding, reset_models
from repro.suitesparse.generators import poisson_2d


def run_profiled_solve(nx: int = 32, max_iters: int = 200):
    """One GMRES+ILU solve on an nx-by-nx Poisson stencil, profiled.

    Returns ``(prof, metrics, logger)``.  Global state (device cache,
    binding-overhead jitter streams) is reset first so same-seed calls
    are bit-reproducible.
    """
    pg.clear_device_cache()
    reset_models()
    dev = pg.device("cuda", fresh=True)
    mtx = get_binding("csr_double_int32")(dev, poisson_2d(nx))
    n = mtx.size[0]
    b = pg.as_tensor(device=dev, dim=(n, 1), dtype="double", fill=1.0)
    metrics = pg.MetricsRegistry()
    with pg.profile(name="gmres_ilu_stencil", metrics=metrics) as prof:
        logger, _ = pg.solve(
            dev, mtx, b,
            solver="gmres",
            preconditioner="ilu",
            max_iters=max_iters,
            reduction_factor=1e-8,
        )
    return prof, metrics, logger


def smoke(nx: int = 16) -> int:
    """Assert the acceptance criteria; returns a process exit code."""
    prof, metrics, logger = run_profiled_solve(nx=nx)
    table = prof.attribution()
    trace_json = prof.to_chrome_trace()

    failures = []
    if not logger.converged:
        failures.append("solve did not converge")
    if table.coverage < 0.99:
        failures.append(f"attribution coverage {table.coverage:.4f} < 0.99")
    data = json.loads(trace_json)
    events = data["traceEvents"]
    if not events:
        failures.append("empty traceEvents")
    ts = [e["ts"] for e in events]
    if any(a > b for a, b in zip(ts, ts[1:])):
        failures.append("trace timestamps not monotonic")
    prof2, _, _ = run_profiled_solve(nx=nx)
    if prof2.to_chrome_trace() != trace_json:
        failures.append("same-seed traces are not byte-identical")
    if metrics.counter("iterations").value != logger.num_iterations + 1:
        failures.append("iteration counter does not match the solve")

    print(table.summary())
    print()
    print(metrics.summary())
    print()
    print(
        f"trace: {len(events)} events, coverage {table.coverage * 100:.2f}%,"
        f" binding share {table.binding_fraction * 100:.2f}%"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("profile-smoke OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="assert the acceptance criteria on a tiny stencil and exit",
    )
    parser.add_argument("--nx", type=int, default=16, help="stencil size")
    parser.add_argument(
        "--trace-out", default=None,
        help="write the Chrome trace JSON of one profiled solve here",
    )
    args = parser.parse_args()
    if args.smoke:
        return smoke(nx=args.nx)
    prof, metrics, logger = run_profiled_solve(nx=args.nx)
    print(prof.attribution().summary())
    if args.trace_out:
        prof.save_chrome_trace(args.trace_out)
        print(f"wrote {args.trace_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())


# ----------------------------------------------------------------------
# pytest-benchmark targets
# ----------------------------------------------------------------------
try:
    import pytest

    from conftest import report
except ImportError:  # standalone invocation outside pytest
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module", autouse=True)
    def print_attribution():
        prof, metrics, _ = run_profiled_solve(nx=32)
        report(
            "Profiler attribution: GMRES+ILU on a 32x32 Poisson stencil",
            prof.attribution().summary() + "\n\n" + metrics.summary(),
        )

    def test_profiled_gmres_ilu_solve(benchmark):
        result = benchmark(lambda: run_profiled_solve(nx=16))
        prof, _, logger = result
        assert logger.converged
        assert prof.attribution().coverage >= 0.99
