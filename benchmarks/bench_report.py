"""Aggregate every ``BENCH_*.json`` acceptance report into one summary.

Each acceptance benchmark (``bench_hot_path.py``, ``bench_batch.py``,
...) writes a ``BENCH_<name>.json`` next to the repo root with its
timings, its gate, and a ``failures`` list.  This tool collects them
into a single table — the one-stop view of the repo's performance
claims — and exits nonzero if any report carries failures.

Standalone::

    python benchmarks/bench_report.py             # table to stdout
    python benchmarks/bench_report.py --json out  # combined JSON too
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def collect(root: Path, skipped: list | None = None) -> list:
    """Load every BENCH_*.json under ``root`` (sorted by name).

    A missing, empty, truncated, or otherwise malformed file is skipped
    with a warning on stderr (and recorded in ``skipped`` when given)
    rather than poisoning the whole report — one bad writer must not
    take down the CI summary for every other benchmark.
    """
    reports = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(
                f"warning: skipping {path.name}: {err}", file=sys.stderr
            )
            if skipped is not None:
                skipped.append(path.name)
            continue
        if not isinstance(data, dict):
            print(
                f"warning: skipping {path.name}: expected a JSON object, "
                f"got {type(data).__name__}",
                file=sys.stderr,
            )
            if skipped is not None:
                skipped.append(path.name)
            continue
        data.setdefault("benchmark", path.stem)
        data["_file"] = path.name
        reports.append(data)
    return reports


def _fmt_speedup(report) -> str:
    speedup = report.get("speedup")
    gate = report.get("min_speedup_gate")
    if speedup is None:
        return "-"
    text = f"{speedup:.2f}x"
    if gate is not None:
        text += f" (gate {gate:.2f}x)"
    return text


def _fmt_slo_cell(value, fmt) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    return format(value, fmt)


def render_slo(report) -> list:
    """SLO percentile table lines for a report carrying an ``"slo"`` key.

    ``slo`` maps run labels (e.g. ``coalesced``/``baseline``) to the
    service's SLO snapshot; one row per run with the latency
    percentiles, throughput, and coalesce ratio.
    """
    slo = report.get("slo")
    if not isinstance(slo, dict) or not slo:
        return []
    rows = [
        (
            "run",
            "p50 latency",
            "p99 latency",
            "throughput",
            "coalesce",
            "miss rate",
        )
    ]
    for label in sorted(slo):
        snapshot = slo[label]
        if not isinstance(snapshot, dict):
            continue
        rows.append(
            (
                str(label),
                _fmt_slo_cell(snapshot.get("p50_latency"), ".3e"),
                _fmt_slo_cell(snapshot.get("p99_latency"), ".3e"),
                _fmt_slo_cell(snapshot.get("throughput"), ".1f"),
                _fmt_slo_cell(snapshot.get("coalesce_ratio"), ".2f"),
                _fmt_slo_cell(snapshot.get("deadline_miss_rate"), ".2f"),
            )
        )
    if len(rows) == 1:
        return []
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = [f"SLO — {report.get('benchmark')}:"]
    for index, row in enumerate(rows):
        lines.append(
            "  "
            + "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append(
                "  " + "  ".join("-" * width for width in widths)
            )
    return lines


def render_mixed_cases(report) -> list:
    """Per-case table lines for the mixed-precision report.

    ``cases`` holds one entry per suite configuration with the
    preconditioner-phase and whole-solve speedups plus the pinned
    iteration counts (written by ``bench_mixed_precision.py``).
    """
    cases = report.get("cases")
    if not isinstance(cases, list) or not cases:
        return []
    rows = [("case", "precond speedup", "solve speedup", "iters (f64/f32)")]
    for case in cases:
        if not isinstance(case, dict):
            continue
        rows.append(
            (
                str(case.get("case")),
                _fmt_slo_cell(case.get("precond_speedup"), ".2f"),
                _fmt_slo_cell(case.get("solve_speedup"), ".2f"),
                f"{case.get('uniform_iterations')}"
                f"/{case.get('mixed_iterations')}",
            )
        )
    if len(rows) == 1:
        return []
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = [f"Mixed precision — {report.get('benchmark')}:"]
    for index, row in enumerate(rows):
        lines.append(
            "  "
            + "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  " + "  ".join("-" * width for width in widths))
    return lines


def render(reports) -> str:
    rows = [("benchmark", "speedup", "status", "file")]
    for report in reports:
        failures = report.get("failures") or []
        status = "OK" if not failures else f"FAIL ({len(failures)})"
        rows.append(
            (
                str(report.get("benchmark")),
                _fmt_speedup(report),
                status,
                report["_file"],
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    for report in reports:
        slo_lines = render_slo(report)
        if slo_lines:
            lines.append("")
            lines.extend(slo_lines)
        mixed_lines = render_mixed_cases(report)
        if mixed_lines:
            lines.append("")
            lines.extend(mixed_lines)
    for report in reports:
        for failure in report.get("failures") or []:
            lines.append(f"  {report.get('benchmark')}: FAIL {failure}")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", default=str(REPO_ROOT),
        help="directory holding the BENCH_*.json reports",
    )
    parser.add_argument(
        "--json", default=None,
        help="also write the combined reports to this JSON file",
    )
    args = parser.parse_args()
    skipped: list = []
    reports = collect(Path(args.root), skipped=skipped)
    if not reports:
        # Exit nonzero only when *zero* reports parse; skipped files
        # alongside healthy reports are a warning, not a failure.
        if skipped:
            print(
                f"no parseable BENCH_*.json reports "
                f"({len(skipped)} skipped)",
                file=sys.stderr,
            )
        else:
            print("no BENCH_*.json reports found", file=sys.stderr)
        return 1
    print(render(reports))
    if skipped:
        print(
            f"({len(skipped)} unreadable report(s) skipped: "
            f"{', '.join(skipped)})"
        )
    if args.json:
        combined = [
            {k: v for k, v in r.items() if k != "_file"} for r in reports
        ]
        Path(args.json).write_text(json.dumps(combined, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 1 if any(r.get("failures") for r in reports) else 0


if __name__ == "__main__":
    sys.exit(main())
