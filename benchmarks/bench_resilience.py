"""Resilience benchmarks: solve survival and overhead under injected faults.

Sweeps the transient-kernel-fault rate on a simulated cuda executor and
measures, for a GMRES+Jacobi solve:

1. completion rate — how often ``resilient_solve`` still reaches the
   tolerance (via retry or fallback) vs a plain unprotected solve;
2. time-to-solution overhead — simulated wall time of the resilient path
   (including backoff delays, re-staging, and fallback executors)
   relative to the fault-free solve;
3. the cost of checkpointing — overhead of periodic solution snapshots
   and the iterations saved when restarting from one.
"""

import numpy as np
import pytest

import repro as pg
from repro.bench.reporting import format_table
from repro.core.resilient import FallbackChain, RetryPolicy, resilient_solve
from repro.ginkgo import (
    CudaExecutor,
    FaultInjector,
    FaultyExecutor,
    ResilienceExhausted,
)
from repro.ginkgo.matrix import Csr
from repro.suitesparse import spd_random

from conftest import report

N = 1000
DENSITY = 0.005
FAULT_RATES = (0.0, 0.001, 0.005, 0.02, 0.05)
TRIALS = 5
SOLVE_KWARGS = dict(
    solver="gmres",
    preconditioner="jacobi",
    max_iters=400,
    reduction_factor=1e-8,
    krylov_dim=50,
)


def _system():
    matrix = spd_random(N, DENSITY, seed=17)
    rng = np.random.default_rng(23)
    return matrix, rng.standard_normal((N, 1))


def _staged(rate: float, seed: int):
    """A faulty cuda executor with operands staged fault-free."""
    injector = FaultInjector(seed=seed, kernel_rate=rate)
    exec_ = FaultyExecutor.create(
        CudaExecutor.create(noisy=False), injector
    )
    matrix, b_np = _system()
    with injector.paused():
        mtx = Csr.from_scipy(exec_, matrix)
        b = pg.as_tensor(b_np, device=exec_)
    return exec_, mtx, b


def _plain_solve_survives(rate: float, seed: int) -> bool:
    from repro.ginkgo.exceptions import GinkgoError

    exec_, mtx, b = _staged(rate, seed)
    try:
        logger, _ = pg.solve(exec_, mtx, b, **SOLVE_KWARGS)
        return bool(logger.converged)
    except GinkgoError:
        return False


def _resilient_outcome(rate: float, seed: int, checkpoint_every: int = 0):
    """(completed, simulated seconds, attempts, fallbacks) for one trial."""
    exec_, mtx, b = _staged(rate, seed)
    start = exec_.clock.now
    try:
        rep, _ = resilient_solve(
            exec_, mtx, b, checkpoint_every=checkpoint_every, **SOLVE_KWARGS
        )
    except ResilienceExhausted:
        return False, 0.0, 0, 0
    # Fallback executors keep their own clocks; the primary's clock still
    # carries the retries, backoff delays, and staging it burned, which is
    # the overhead this sweep is after.
    elapsed = exec_.clock.now - start
    return bool(rep.converged), elapsed, rep.attempts, rep.fallbacks


# ----------------------------------------------------------------------
# Completion rate and overhead vs fault rate
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", autouse=True)
def print_survival_sweep():
    baseline = None
    rows = []
    for rate in FAULT_RATES:
        plain_ok = sum(
            _plain_solve_survives(rate, seed) for seed in range(TRIALS)
        )
        outcomes = [
            _resilient_outcome(rate, seed) for seed in range(TRIALS)
        ]
        completed = sum(ok for ok, _, _, _ in outcomes)
        times = [t for ok, t, _, _ in outcomes if ok]
        attempts = [a for ok, _, a, _ in outcomes if ok]
        fallbacks = sum(f for ok, _, _, f in outcomes if ok)
        mean_time = float(np.mean(times)) if times else float("nan")
        if rate == 0.0:
            baseline = mean_time
        overhead = (
            f"{mean_time / baseline:.2f}x"
            if times and baseline
            else "-"
        )
        rows.append(
            (
                f"{rate:.3f}",
                f"{plain_ok}/{TRIALS}",
                f"{completed}/{TRIALS}",
                f"{np.mean(attempts):.1f}" if attempts else "-",
                str(fallbacks),
                overhead,
            )
        )
    report(
        "Resilience: GMRES+Jacobi completion under transient kernel faults "
        f"(n={N}, {TRIALS} trials/rate, simulated A100)",
        format_table(
            [
                "fault rate",
                "plain ok",
                "resilient ok",
                "attempts",
                "fallbacks",
                "time vs fault-free",
            ],
            rows,
        ),
    )


# ----------------------------------------------------------------------
# Checkpoint cost and payoff
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", autouse=True)
def print_checkpoint_tradeoff():
    rows = []
    for every in (0, 20, 5):
        outcomes = [
            _resilient_outcome(0.02, seed, checkpoint_every=every)
            for seed in range(TRIALS)
        ]
        times = [t for ok, t, _, _ in outcomes if ok]
        completed = sum(ok for ok, _, _, _ in outcomes)
        rows.append(
            (
                "off" if every == 0 else f"every {every}",
                f"{completed}/{TRIALS}",
                f"{np.mean(times) * 1e3:.2f}" if times else "-",
            )
        )
    report(
        "Resilience: checkpoint interval vs simulated time-to-solution "
        "(fault rate 0.02)",
        format_table(
            ["checkpointing", "completed", "mean time (ms, simulated)"],
            rows,
        ),
    )


# ----------------------------------------------------------------------
# pytest-benchmark hooks: host-side cost of the machinery itself
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rate", [0.0, 0.02])
def test_resilient_solve_host_cost(benchmark, rate):
    """Wall-clock (host) cost of a resilient solve at a given fault rate."""

    def run():
        ok, _, _, _ = _resilient_outcome(rate, seed=1)
        return ok

    assert benchmark(run)


def test_injector_decision_cost(benchmark):
    """Per-boundary-call overhead of the injector's decision path."""
    injector = FaultInjector(seed=0, kernel_rate=0.01)

    def run():
        for _ in range(1000):
            injector.decide("run", detail="spmv")

    benchmark(run)


def test_retry_policy_pinned_chain(benchmark):
    """Retries on a pinned executor (no fallback): failure path cost."""
    retry = RetryPolicy(max_retries=1, base_delay=1e-4)

    def run():
        exec_, mtx, b = _staged(1.0, seed=3)
        try:
            resilient_solve(
                exec_,
                mtx,
                b,
                retry=retry,
                fallback=FallbackChain(exec_),
                **SOLVE_KWARGS,
            )
        except ResilienceExhausted:
            return True
        return False

    assert benchmark(run)
