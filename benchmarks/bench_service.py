"""Solver-service throughput benchmark (coalesced vs naive FIFO).

The service layer's headline claim: scheduling a multi-tenant stream of
small solves with batch-lane coalescing (same-pattern jobs fused into
one PR-4 lockstep solve) over a worker pool beats the naive baseline —
one worker, FIFO, one job at a time — by at least ``MIN_SPEEDUP`` in
simulated-clock throughput, while every job's solution stays
byte-identical to solving it alone.

The gate runs the same seeded workload (64 jobs, 4 shared sparsity
patterns, bursty arrivals) through both configurations on virtual time,
then solo-solves every job on a fresh device and compares bytes.  The
SLO snapshot (latency percentiles, throughput, queue depth, coalesce
ratio, deadline misses) of both runs lands in the report under
``"slo"`` for ``bench_report.py`` to render.

Standalone::

    python benchmarks/bench_service.py            # full run
    python benchmarks/bench_service.py --smoke    # CI gate (fast)

Writes ``BENCH_service.json`` next to the repo root.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

import repro as pg
from repro.bindings import dispatch, reset_models
from repro.core.resilient import FallbackChain, resilient_solve
from repro.ginkgo import cachestats
from repro.ginkgo.matrix.dense import Dense

#: Acceptance threshold: coalesced scheduling must deliver at least this
#: multiple of the naive baseline's simulated-clock throughput.
MIN_SPEEDUP = 3.0


def _fresh_state():
    pg.clear_device_cache()
    reset_models()
    dispatch.clear()
    cachestats.reset()


def make_workload(num_jobs, num_patterns, small_n, seed):
    """The seeded tenant stream (rebuilt identically for every run)."""
    dev = pg.device("reference")
    return pg.service.synthetic_workload(
        dev,
        num_jobs=num_jobs,
        num_patterns=num_patterns,
        small_n=small_n,
        mean_interarrival=1e-6,
        seed=seed,
    )


def run_service(jobs, **kwargs):
    """One service run; returns (results, slo snapshot, wall seconds)."""
    _fresh_state()
    service = pg.service.SolverService(**kwargs)
    t0 = time.perf_counter()
    results = service.run(jobs)
    elapsed = time.perf_counter() - t0
    return results, service.slo_report(), elapsed


def solo_solutions(jobs):
    """Each job solved alone on a fresh device (the identity oracle)."""
    solutions = []
    for job in jobs:
        dev = pg.device("reference", fresh=True)
        mtx = job.matrix.copy_to(dev)
        b = Dense.create(dev, job.rhs)
        _, x = resilient_solve(
            dev,
            mtx,
            b,
            solver=job.solver,
            max_iters=job.max_iters,
            reduction_factor=job.reduction_factor,
            fallback=FallbackChain(dev),
        )
        solutions.append(np.array(pg.to_numpy(x), copy=True))
    return solutions


def run(
    num_jobs=64,
    num_patterns=4,
    small_n=40,
    num_workers=4,
    max_lane=16,
    seed=1234,
    out_path="BENCH_service.json",
):
    """Run both configurations, check the invariants, write the report."""
    failures = []

    coalesced, slo_co, wall_co = run_service(
        make_workload(num_jobs, num_patterns, small_n, seed),
        num_workers=num_workers,
        coalesce=True,
        max_lane=max_lane,
        policy="edf",
    )
    # Same-seed determinism: a repeat must reproduce the schedule.
    repeat, slo_repeat, _ = run_service(
        make_workload(num_jobs, num_patterns, small_n, seed),
        num_workers=num_workers,
        coalesce=True,
        max_lane=max_lane,
        policy="edf",
    )
    if slo_repeat["makespan"] != slo_co["makespan"]:
        failures.append("coalesced makespan drifts across same-seed repeats")
    if not all(np.array_equal(a.x, b.x) for a, b in zip(coalesced, repeat)):
        failures.append("coalesced solutions drift across same-seed repeats")

    baseline, slo_base, wall_base = run_service(
        make_workload(num_jobs, num_patterns, small_n, seed),
        num_workers=1,
        coalesce=False,
        policy="fifo",
    )

    for results, label in ((coalesced, "coalesced"), (baseline, "baseline")):
        if any(r.status != "completed" for r in results):
            failures.append(f"{label} run left jobs unanswered or timed out")
        if any(not r.converged for r in results):
            failures.append(f"{label} run has unconverged jobs")

    # Byte identity: every job's solution — whether it ran solo, in a
    # coalesced lane, or on the baseline — must match the solo oracle.
    _fresh_state()
    oracle = solo_solutions(make_workload(num_jobs, num_patterns, small_n, seed))
    identical_co = all(
        np.array_equal(r.x, x) for r, x in zip(coalesced, oracle)
    )
    identical_base = all(
        np.array_equal(r.x, x) for r, x in zip(baseline, oracle)
    )
    if not identical_co:
        failures.append("coalesced solutions differ from solo solves")
    if not identical_base:
        failures.append("baseline solutions differ from solo solves")

    if slo_co["coalesced_jobs"] == 0:
        failures.append("coalesced run never formed a batch lane")

    speedup = (
        slo_co["throughput"] / slo_base["throughput"]
        if slo_base["throughput"] > 0
        else float("inf")
    )
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"service throughput speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP:.2f}x gate"
        )

    report = {
        "benchmark": "service_coalesced_vs_fifo",
        "num_jobs": num_jobs,
        "num_patterns": num_patterns,
        "system_size": small_n,
        "num_workers": num_workers,
        "max_lane": max_lane,
        "speedup": speedup,
        "min_speedup_gate": MIN_SPEEDUP,
        "solutions_byte_identical": identical_co and identical_base,
        "wall_coalesced_s": wall_co,
        "wall_baseline_s": wall_base,
        "slo": {"coalesced": slo_co, "baseline": slo_base},
        "failures": failures,
    }
    Path(out_path).write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"coalesced {slo_co['throughput']:10.1f} jobs/sim-s "
        f"(lanes: {slo_co['coalesced_jobs']}/{num_jobs} jobs, "
        f"p99 {slo_co['p99_latency']:.3e} s) | "
        f"baseline {slo_base['throughput']:10.1f} jobs/sim-s | "
        f"speedup {speedup:5.2f}x (gate {MIN_SPEEDUP:.2f}x)"
    )
    print(f"wrote {out_path}")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI gate: smaller stream, assert the acceptance criteria",
    )
    parser.add_argument("--num-jobs", type=int, default=None)
    parser.add_argument("--num-workers", type=int, default=None)
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args()
    report = run(
        num_jobs=args.num_jobs or (48 if args.smoke else 64),
        num_workers=args.num_workers or 4,
        out_path=args.out,
    )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("service-smoke OK" if args.smoke else "service bench OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
