"""Section 6.2.2: CPU solver comparison vs SciPy.

Regenerates the pyGinkgo-vs-SciPy per-iteration speedups (paper: around
3-8x for CG) and benchmarks real solver iterations on the CPU path.
"""

import numpy as np
import pytest

from repro.baselines import PyGinkgoBackend, ScipyBackend
from repro.bench import solver_cpu_comparison
from repro.perfmodel.specs import INTEL_XEON_8368

from conftest import report


@pytest.fixture(scope="module", autouse=True)
def print_figure(solver_matrices):
    report(
        "Section 6.2.2 reproduction",
        solver_cpu_comparison(solver_matrices, iterations=100)["text"],
    )


@pytest.fixture(scope="module")
def workload(solver_matrices):
    matrix = solver_matrices[2].build()
    return matrix, np.ones(matrix.shape[0])


@pytest.mark.parametrize("solver", ["cg", "cgs", "gmres"])
@pytest.mark.parametrize("backend", ["pyginkgo", "scipy"])
def test_cpu_solver(benchmark, solver, backend, workload):
    matrix, b = workload
    if backend == "pyginkgo":
        impl = PyGinkgoBackend(
            spec=INTEL_XEON_8368, num_threads=32, noisy=False
        )
    else:
        impl = ScipyBackend(noisy=False)
    handle = impl.prepare(matrix, "csr", np.float64)
    benchmark(lambda: impl.run_solver(handle, solver, b, 20))
