"""Supplementary: SpMM (sparse matrix x dense block) scaling.

The paper's introduction motivates pyGinkgo with sparse neural networks,
whose core operation is the sparse-times-dense-block product (one SpMV per
feature column, fused).  This bench sweeps the block width: launch latency
and matrix traffic amortise over columns, so throughput per column rises
steeply — the reason batched inference favours wide blocks.
"""

import numpy as np
import pytest

from repro.baselines import PyGinkgoBackend
from repro.bench.reporting import format_table
from repro.ginkgo.matrix import Csr, Dense
from repro.suitesparse import kronecker_graph

from conftest import report

import repro as pg

WIDTHS = (1, 4, 16, 64)


@pytest.fixture(scope="module")
def graph_matrix():
    return kronecker_graph(scale=14, edge_factor=10, seed=3)  # 16k nodes


@pytest.fixture(scope="module", autouse=True)
def print_spmm(graph_matrix, rng):
    rows = []
    for width in WIDTHS:
        dev = pg.device("cuda", fresh=True)
        mtx = Csr.from_scipy(dev, graph_matrix, value_dtype=np.float32)
        x = Dense(
            dev, rng.random((graph_matrix.shape[1], width)).astype(np.float32)
        )
        y = Dense.zeros(dev, (graph_matrix.shape[0], width), np.float32)
        start = dev.clock.now
        reps = 5
        for _ in range(reps):
            mtx.apply(x, y)
        elapsed = (dev.clock.now - start) / reps
        gflops = 2.0 * graph_matrix.nnz * width / elapsed / 1e9
        rows.append(
            (width, f"{elapsed * 1e6:.1f}", f"{gflops:.0f}",
             f"{elapsed / width * 1e6:.2f}")
        )
    report(
        "Supplementary: SpMM block-width sweep "
        f"(Kronecker graph, nnz={graph_matrix.nnz}, fp32, simulated A100)",
        format_table(
            ["block width", "us/apply", "GFLOP/s", "us/column"],
            rows,
        ),
    )


@pytest.mark.parametrize("width", WIDTHS)
def test_spmm_width(benchmark, width, graph_matrix, rng):
    dev = pg.device("cuda", fresh=True)
    mtx = Csr.from_scipy(dev, graph_matrix, value_dtype=np.float32)
    x = Dense(
        dev, rng.random((graph_matrix.shape[1], width)).astype(np.float32)
    )
    y = Dense.zeros(dev, (graph_matrix.shape[0], width), np.float32)
    benchmark(lambda: mtx.apply(x, y))
