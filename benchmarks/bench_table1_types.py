"""Table 1: available value and index types.

Regenerates the type table and benchmarks the dispatch layer's overhead
for each value type (the funcxx -> funcxx_<type> mechanism of section 5.1).
"""

import numpy as np
import pytest

import repro as pg
from repro.bench import table1_types

from conftest import report


@pytest.fixture(scope="module", autouse=True)
def print_table():
    report("Table 1 reproduction", table1_types()["text"])


@pytest.mark.parametrize("dtype", ["half", "float", "double"])
def test_as_tensor_dispatch(benchmark, dtype):
    """Wall time of the dtype-dispatching as_tensor entry point."""
    dev = pg.device("reference", fresh=True)
    data = np.random.default_rng(0).random(4096)
    benchmark(lambda: pg.as_tensor(data, device=dev, dtype=dtype))


@pytest.mark.parametrize("index_dtype", ["int32", "int64"])
def test_matrix_dispatch(benchmark, index_dtype, rng):
    """Wall time of sparse-matrix construction per index type."""
    import scipy.sparse as sp

    dev = pg.device("reference", fresh=True)
    mat = sp.random(500, 500, density=0.01, random_state=rng, format="csr")
    benchmark(
        lambda: pg.matrix(
            device=dev, data=mat, dtype="double", index_dtype=index_dtype
        )
    )
