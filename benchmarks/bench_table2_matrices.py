"""Table 2: the six representative matrices A-F.

Regenerates the matrix-attribute table (at reduced scale) and benchmarks
the generators that produce each structure class.
"""

import pytest

from repro.bench import table2_matrices
from repro.suitesparse import (
    circuit_like,
    diagonal_mass,
    mesh_delaunay,
    banded,
)

from conftest import report

SCALE = 0.05


@pytest.fixture(scope="module", autouse=True)
def print_table():
    report(
        f"Table 2 reproduction (scale={SCALE})",
        table2_matrices(scale=SCALE)["text"],
    )


def test_generate_diagonal_mass(benchmark):
    benchmark(lambda: diagonal_mass(25503 // 20, 0.392, seed=37))


def test_generate_circuit(benchmark):
    benchmark(lambda: circuit_like(25187 // 20, avg_row_nnz=6.6, seed=1))


def test_generate_mesh(benchmark):
    benchmark(lambda: mesh_delaunay(131072 // 20, seed=17))


def test_generate_banded(benchmark):
    benchmark(lambda: banded(41092 // 20, bandwidth=20, seed=41))
