"""Shared fixtures for the benchmark suite.

Every ``bench_*`` module regenerates one of the paper's tables or figures:
a session fixture computes the figure's data on a reduced (but same-shape)
matrix suite and prints the rows/series; the pytest-benchmark functions
then time representative real kernels.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.suitesparse import overhead_suite, solver_suite, spmv_suite

#: Reduced suite sizes so the full benchmark run completes in minutes.
#: The NNZ ranges keep the paper's span (launch-bound through
#: bandwidth-bound) so every figure's shape is preserved.
SPMV_COUNT = 12
SOLVER_COUNT = 8
OVERHEAD_COUNT = 10
MAX_NNZ = 2e6
OVERHEAD_MAX_NNZ = 1e7


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure: marks benchmarks that regenerate a paper figure"
    )


@pytest.fixture(scope="session")
def spmv_matrices():
    return spmv_suite(count=SPMV_COUNT, min_nnz=2e4, max_nnz=MAX_NNZ)


@pytest.fixture(scope="session")
def solver_matrices():
    return solver_suite(count=SOLVER_COUNT, min_nnz=2e4, max_nnz=5e5)


@pytest.fixture(scope="session")
def overhead_matrices():
    return overhead_suite(
        count=OVERHEAD_COUNT, min_nnz=2e4, max_nnz=OVERHEAD_MAX_NNZ
    )


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2025)


#: Figure blocks accumulated during the run, flushed after the benchmark
#: table so they survive pytest's output capture.
_REPORTS: list = []


def report(title: str, text: str) -> None:
    """Queue a figure reproduction block for the end-of-run summary.

    pytest captures stdout at the file-descriptor level during tests, so
    the regenerated tables/figures are emitted from the
    ``pytest_terminal_summary`` hook instead — that output always reaches
    the terminal/log, even without ``-s``.
    """
    _REPORTS.append((title, text))


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    bar = "=" * 72
    terminalreporter.write_line("")
    terminalreporter.write_line(bar)
    terminalreporter.write_line(
        "REPRODUCED TABLES AND FIGURES (paper: pyGinkgo, ICPP 2025)"
    )
    terminalreporter.write_line(bar)
    for title, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {title} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)
