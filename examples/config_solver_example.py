"""The config-solver route (the paper's Listing 2).

Builds the configuration dictionary on the Python side, shows the JSON
Ginkgo would receive, and sweeps several solver/preconditioner
combinations at runtime *without touching any solver bindings* — the
flexibility the paper highlights in section 5.

Run with::

    python examples/config_solver_example.py
"""

import numpy as np

import repro as pg
from repro.suitesparse import spd_random


def main() -> None:
    dev = pg.device("cuda")
    matrix = spd_random(2000, 0.005, seed=1)
    mtx = pg.matrix(device=dev, data=matrix, dtype="double", format="Csr")
    b = pg.as_tensor(device=dev, dim=(mtx.size[0], 1), dtype="double",
                     fill=1.0)

    # --- Listing 2: the dictionary handed to the config-solver ---------
    config = pg.build_config(
        solver="solver::Gmres",
        preconditioner={"type": "preconditioner::Jacobi",
                        "max_block_size": 1},
        max_iters=1000,
        reduction_factor=1e-6,
        krylov_dim=30,
    )
    print("configuration JSON passed to the engine:")
    print(pg.config_to_json(config))
    print()

    handle = pg.config_solver(dev, mtx, config)
    x = pg.as_tensor(device=dev, dim=(mtx.size[0], 1), fill=0.0)
    logger, _ = handle.apply(b, x)
    print(f"Listing-2 GMRES+Jacobi: {logger}")
    print()

    # Runtime solver selection: swap solvers/preconditioners by editing
    # the dictionary only (no recompilation, no new bindings).
    print(f"{'solver':<10} {'preconditioner':<10} {'iters':>6} "
          f"{'residual':>12} {'sim. time':>12}")
    for solver in ("cg", "cgs", "bicgstab", "gmres"):
        for precond in (None, "jacobi", "ilu"):
            run_dev = pg.device("cuda", fresh=True)
            run_mtx = pg.matrix(device=run_dev, data=matrix)
            run_b = pg.as_tensor(device=run_dev, dim=(mtx.size[0], 1),
                                 fill=1.0)
            start = run_dev.clock.now
            logger, _ = pg.solve(
                run_dev, run_mtx, run_b,
                solver=solver, preconditioner=precond,
                max_iters=500, reduction_factor=1e-8,
            )
            elapsed = run_dev.clock.now - start
            print(f"{solver:<10} {str(precond):<10} "
                  f"{logger.num_iterations:>6} "
                  f"{logger.final_residual_norm:>12.3e} "
                  f"{elapsed * 1e3:>9.2f} ms")


if __name__ == "__main__":
    main()
