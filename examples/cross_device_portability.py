"""Platform portability: one program, four executors.

Demonstrates the executor abstraction of paper section 4.1: the same
solver pipeline runs unchanged on the reference, OpenMP, CUDA, and HIP
executors; data moves between memory spaces with explicit copies, and each
device reports its own simulated timeline.

Run with::

    python examples/cross_device_portability.py
"""

import numpy as np

import repro as pg
from repro.suitesparse import poisson_2d


def main() -> None:
    matrix = poisson_2d(120)  # 14400 unknowns
    n = matrix.shape[0]
    print(f"system: {n} x {n}, nnz={matrix.nnz}\n")

    # Stage the RHS once on the host, then copy it to each device —
    # executors own distinct memory spaces, exactly like real GPUs.
    host = pg.device("omp")
    b_host = pg.as_tensor(np.ones((n, 1)), device=host)

    print(f"{'executor':<30} {'iters':>6} {'solve (sim.)':>14} "
          f"{'H2D copy':>10}")
    results = {}
    for name in ("reference", "omp", "cuda", "hip"):
        dev = pg.device(name, fresh=True)
        mtx = pg.matrix(device=dev, data=matrix, dtype="double")

        copy_start = dev.clock.now
        b = b_host.to(dev) if dev is not host else b_host.clone()
        copy_time = dev.clock.now - copy_start

        x = pg.as_tensor(device=dev, dim=(n, 1), fill=0.0)
        solve_start = dev.clock.now
        solver = pg.solver.cg(dev, mtx, max_iters=1000,
                              reduction_factor=1e-8)
        logger, result = solver.apply(b, x)
        solve_time = dev.clock.now - solve_start

        results[name] = result.numpy()
        print(f"{dev.spec.name:<30} {logger.num_iterations:>6} "
              f"{solve_time * 1e3:>11.2f} ms {copy_time * 1e6:>7.1f} us")

    # Every executor computes the same answer.
    for name, solution in results.items():
        np.testing.assert_allclose(
            solution, results["reference"], atol=1e-6
        )
    print("\nall executors agree to 1e-6 — platform portability verified")


if __name__ == "__main__":
    main()
