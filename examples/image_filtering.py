"""Convolution kernels through the operator framework (future work of the
paper, implemented).

The paper's conclusion announces a convolution kernel "required in image
processing and convolutional neural networks" as future Ginkgo/pyGinkgo
work.  This example uses the implemented stencil operator: classic image
filters run as LinOps (so they compose, chain, and profile like any other
operator), plus a deconvolution — recovering a sharp image from a blurred
one by *solving* with the blur operator using pyGinkgo's own GMRES.

Run with::

    python examples/image_filtering.py
"""

import numpy as np

import repro as pg
from repro.ginkgo.lin_op import Composition
from repro.ginkgo.matrix import Dense
from repro.ginkgo.matrix.stencil import KERNELS, StencilOp


def make_test_image(size: int = 96) -> np.ndarray:
    """Synthetic test pattern: rectangles, a disc, and a gradient."""
    image = np.zeros((size, size))
    image[size // 6 : size // 2, size // 6 : size // 3] = 1.0
    yy, xx = np.mgrid[:size, :size]
    disc = (yy - 2 * size // 3) ** 2 + (xx - 2 * size // 3) ** 2
    image[disc < (size // 6) ** 2] = 0.7
    image += 0.2 * xx / size
    return image


def ascii_render(image: np.ndarray, width: int = 48) -> str:
    levels = " .:-=+*#%@"
    step = max(image.shape[0] // (width // 2), 1)
    lo, hi = image.min(), image.max()
    span = (hi - lo) or 1.0
    rows = []
    for i in range(0, image.shape[0], 2 * step):
        rows.append("".join(
            levels[min(int((image[i, j] - lo) / span * (len(levels) - 1)),
                       len(levels) - 1)]
            for j in range(0, image.shape[1], step)
        ))
    return "\n".join(rows)


def main() -> None:
    dev = pg.device("cuda")
    image = make_test_image(96)
    print("input image:")
    print(ascii_render(image))

    # Individual filters as LinOps.
    print(f"\n{'filter':<10} {'nnz':>8} {'sim. time':>10}")
    filtered = {}
    for name in ("blur3", "sharpen", "laplace", "sobel_x"):
        op = StencilOp(dev, image.shape, KERNELS[name])
        start = dev.clock.now
        filtered[name] = op.apply_image(image)
        print(f"{name:<10} {op.nnz:>8} "
              f"{(dev.clock.now - start) * 1e6:>7.1f} us")

    # Edge magnitude from the two Sobel operators (operator arithmetic).
    gx = StencilOp(dev, image.shape, KERNELS["sobel_x"]).apply_image(image)
    gy = StencilOp(dev, image.shape, KERNELS["sobel_y"]).apply_image(image)
    edges = np.hypot(gx, gy)
    print("\nSobel edge magnitude:")
    print(ascii_render(edges))

    # Composition: blur-then-laplace in one operator pipeline.
    blur = StencilOp(dev, image.shape, KERNELS["blur3"])
    laplace = StencilOp(dev, image.shape, KERNELS["laplace"])
    log_op = Composition(laplace, blur)  # Laplacian-of-Gaussian-ish
    flat = Dense(dev, image.reshape(-1, 1))
    out = Dense.zeros(dev, flat.size, np.float64)
    log_op.apply(flat, out)
    print("\nblur+laplace composition applied through one Composition op")

    # Deconvolution: a box blur annihilates high frequencies, so plain
    # inversion is ill-posed.  Tikhonov-regularise instead and solve the
    # SPD normal equations (B B + lambda I) x = B y with pyGinkgo's CG —
    # the whole system operator is built from operator combinators.
    from repro.ginkgo.lin_op import Combination, Identity

    blurred = blur.apply_image(image)
    lam = 1e-4
    normal_op = Combination(
        [1.0, lam],
        [Composition(blur, blur), Identity(dev, image.size)],
    )
    rhs = blur.apply_image(blurred)  # B^T y (B is symmetric)
    b = pg.as_tensor(rhs.reshape(-1, 1), device=dev)
    x = pg.as_tensor(device=dev, dim=(image.size, 1), fill=0.0)
    solver = pg.solver.cg(dev, normal_op, max_iters=800,
                          reduction_factor=1e-9)
    logger, result = solver.apply(b, x)
    recovered = result.numpy().reshape(image.shape)
    blur_err = np.abs(blurred - image).mean()
    rec_err = np.abs(recovered - image).mean()
    print(f"\nTikhonov deconvolution with CG on (B B + {lam} I): "
          f"{logger.num_iterations} iterations")
    print(f"mean error blurred {blur_err:.4f} -> recovered {rec_err:.4f}")
    assert logger.converged
    assert rec_err < blur_err


if __name__ == "__main__":
    main()
