"""Mixed-precision iterative refinement.

A flagship use of the half/float/double type stack (paper Table 1 and
section 5.1): solve a double-precision system with a *single-precision*
inner solver wrapped in double-precision iterative refinement.  The inner
solve moves half the bytes (SpMV is bandwidth-bound), while the outer IR
recurrence restores full fp64 accuracy — the classic
low-precision-inner / high-precision-outer scheme.

Run with::

    python examples/mixed_precision_refinement.py
"""

import numpy as np

import repro as pg
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.solver import Cg, Ir
from repro.ginkgo.stop import Iteration, ResidualNorm
from repro.suitesparse import poisson_2d


def main() -> None:
    matrix = poisson_2d(80)  # 6.4k dofs, fp64 data
    n = matrix.shape[0]
    rng = np.random.default_rng(0)
    xstar = rng.standard_normal((n, 1))
    b = matrix @ xstar

    results = {}
    for label, make in (
        ("fp64 CG (direct solve to 1e-12)", _fp64_cg),
        ("fp32 CG alone (stagnates)", _fp32_cg),
        ("fp64 IR around fp32 CG", _mixed_ir),
    ):
        dev = pg.device("cuda", fresh=True)
        start = dev.clock.now
        x, iterations = make(dev, matrix, b)
        elapsed = dev.clock.now - start
        error = np.linalg.norm(x - xstar) / np.linalg.norm(xstar)
        results[label] = (iterations, error, elapsed)

    print(f"{'scheme':<36} {'iters':>6} {'rel. error':>12} {'sim time':>10}")
    for label, (iters, error, elapsed) in results.items():
        print(f"{label:<36} {iters:>6} {error:>12.3e} "
              f"{elapsed * 1e3:>7.2f} ms")

    # The mixed scheme reaches fp64-level accuracy...
    assert results["fp64 IR around fp32 CG"][1] < 1e-9
    # ...which plain fp32 cannot.
    assert results["fp32 CG alone (stagnates)"][1] > 1e-8


def _fp64_cg(dev, matrix, b):
    mtx = Csr.from_scipy(dev, matrix)
    solver = Cg(
        dev, criteria=Iteration(3000) | ResidualNorm(1e-12)
    ).generate(mtx)
    x = Dense.zeros(dev, b.shape, np.float64)
    solver.apply(Dense(dev, b), x)
    return x.to_numpy(), solver.num_iterations


def _fp32_cg(dev, matrix, b):
    # The matrix and all vectors live in single precision: the recurrence
    # stagnates around fp32 round-off.
    mtx32 = Csr.from_scipy(dev, matrix, value_dtype=np.float32)
    solver = Cg(
        dev, criteria=Iteration(3000) | ResidualNorm(1e-12)
    ).generate(mtx32)
    x = Dense.zeros(dev, b.shape, np.float32)
    solver.apply(Dense(dev, b.astype(np.float32)), x)
    return x.to_numpy().astype(np.float64), solver.num_iterations


def _mixed_ir(dev, matrix, b):
    # Outer loop: fp64 residuals against the fp64 matrix.
    # Inner solver: a loose fp32 CG on the single-precision copy.
    mtx64 = Csr.from_scipy(dev, matrix)
    mtx32 = Csr.from_scipy(dev, matrix, value_dtype=np.float32)
    inner = Cg(
        dev, criteria=Iteration(50) | ResidualNorm(1e-4)
    ).generate(mtx32)
    outer = Ir(
        dev,
        criteria=Iteration(60) | ResidualNorm(1e-12),
        solver=inner,
    ).generate(mtx64)
    x = Dense.zeros(dev, b.shape, np.float64)
    outer.apply(Dense(dev, b), x)
    return x.to_numpy(), outer.num_iterations


if __name__ == "__main__":
    main()
