"""Steady-state heat conduction on a 2-D plate (scientific workflow).

Discretises ``-div(k grad T) = q`` with finite differences, assembles the
sparse system with SciPy, hands it to pyGinkgo through the zero-copy
interop path, and solves with IC-preconditioned CG in double precision —
the "scientific computing workflows demand double precision" setting of
the paper's solver benchmarks.

Run with::

    python examples/poisson_heat_transfer.py
"""

import numpy as np

import repro as pg
from repro.suitesparse import poisson_2d


def main(nx: int = 96) -> None:
    # Assemble: unit square, Dirichlet walls at T=0, uniform source.
    h = 1.0 / (nx + 1)
    a_sp = poisson_2d(nx) / h**2
    n = a_sp.shape[0]
    source = np.full((n, 1), 100.0)  # W/m^3 heat generation

    dev = pg.device("cuda")
    mtx = pg.matrix(device=dev, data=a_sp, dtype="double", format="Csr")
    b = pg.as_tensor(source, device=dev, dtype="double")
    temperature = pg.as_tensor(device=dev, dim=(n, 1), dtype="double",
                               fill=0.0)

    preconditioner = pg.preconditioner.Ic(dev, mtx)
    solver = pg.solver.cg(
        dev, mtx, preconditioner, max_iters=2000, reduction_factor=1e-10,
    )
    start = dev.clock.now
    logger, result = solver.apply(b, temperature)
    elapsed = dev.clock.now - start

    field = result.numpy().reshape(nx, nx)
    print(f"grid:               {nx} x {nx} ({n} unknowns, nnz={mtx.nnz})")
    print(f"converged:          {logger.converged} in "
          f"{logger.num_iterations} iterations")
    print(f"simulated time:     {elapsed * 1e3:.2f} ms on {dev.spec.name}")
    print(f"peak temperature:   {field.max():.4f} (centre "
          f"{field[nx // 2, nx // 2]:.4f})")

    # Verification 1: the discrete residual is tiny.
    residual = np.linalg.norm(a_sp @ result.numpy() - source)
    print(f"residual norm:      {residual:.3e}")

    # Verification 2: compare with the analytic series solution for the
    # Poisson problem on the unit square at the centre point.
    analytic = _series_solution_centre(q=100.0, terms=99)
    print(f"analytic centre:    {analytic:.4f} "
          f"(discretisation error {abs(analytic - field[nx // 2, nx // 2]):.2e})")

    # ASCII rendering of the temperature field.
    print("\ntemperature field (quartile shading):")
    levels = " .:-=+*#%@"
    step = max(nx // 24, 1)
    scale = field.max() or 1.0
    for i in range(0, nx, step):
        row = "".join(
            levels[min(int(field[i, j] / scale * (len(levels) - 1)),
                       len(levels) - 1)]
            for j in range(0, nx, step)
        )
        print("  " + row)


def _series_solution_centre(q: float, terms: int) -> float:
    """Analytic centre temperature of -lap T = q on the unit square."""
    total = 0.0
    for m in range(1, terms + 1, 2):
        for k in range(1, terms + 1, 2):
            coeff = 16.0 * q / (np.pi**4 * m * k * (m**2 + k**2))
            total += coeff * np.sin(m * np.pi / 2) * np.sin(k * np.pi / 2)
    return total


if __name__ == "__main__":
    main()
