"""Quickstart: the paper's Listing 1, end to end.

Solves a sparse linear system ``A x = b`` with ILU-preconditioned GMRES on
a (simulated) CUDA device, reading the matrix from a MatrixMarket file.

Run with::

    python examples/quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

import repro as pg
from repro.ginkgo.mtx_io import write_mtx
from repro.suitesparse import poisson_2d


def main() -> None:
    # The paper reads 'm1.mtx'; we generate an equivalent SPD system.
    workdir = Path(tempfile.mkdtemp())
    fn = workdir / "m1.mtx"
    write_mtx(fn, poisson_2d(64), comment="2-D Poisson, 64x64 grid")

    # --- Listing 1 ----------------------------------------------------
    dev = pg.device("cuda")
    mtx = pg.read(device=dev, path=fn, dtype="double", format="Csr")
    n_rows = mtx.size[0]

    b = pg.as_tensor(device=dev, dim=(n_rows, 1), dtype="double", fill=1.0)
    x = pg.as_tensor(device=dev, dim=(n_rows, 1), dtype="double", fill=0.0)

    # Create ILU preconditioner
    preconditioner = pg.preconditioner.Ilu(dev, mtx)

    # Setup GMRES solver
    solver = pg.solver.gmres(
        dev, mtx, preconditioner,
        max_iters=1000, krylov_dim=30, reduction_factor=1e-06,
    )

    # Apply
    logger, result = solver.apply(b, x)
    # -------------------------------------------------------------------

    print(f"matrix:               {n_rows} x {mtx.size[1]}, nnz={mtx.nnz}")
    print(f"converged:            {logger.converged}")
    print(f"iterations:           {logger.num_iterations}")
    print(f"final residual norm:  {logger.final_residual_norm:.3e}")
    print(f"simulated solve time: {dev.clock.now * 1e3:.3f} ms on "
          f"{dev.spec.name}")

    # Verify against the true residual on the host.
    solution = result.numpy()
    a_host = mtx.to_scipy()
    residual = np.linalg.norm(a_host @ solution - 1.0)
    print(f"true residual:        {residual:.3e}")
    assert logger.converged, "GMRES did not converge"


if __name__ == "__main__":
    main()
