"""Pure-Python eigensolvers composed from pyGinkgo operator primitives.

The paper's section 3.4 implements Rayleigh-Ritz on the Python side as
proof that complex algorithms can be prototyped from the exposed operator
API "without worrying about low-level GPU or CPU parallelization details".
This example runs the Rayleigh-Ritz subspace eigensolver, Lanczos, and
power iteration on a graph Laplacian, on whichever device you pick.

Run with::

    python examples/rayleigh_ritz_eigen.py [cuda|hip|omp|reference]
"""

import sys

import numpy as np

import repro as pg
from repro.suitesparse import mesh_delaunay


def main(device_name: str = "cuda") -> None:
    dev = pg.device(device_name)
    laplacian = mesh_delaunay(3000, seed=42)
    mtx = pg.matrix(device=dev, data=laplacian, dtype="double")
    print(f"graph Laplacian: {mtx.size[0]} vertices, nnz={mtx.nnz}, "
          f"device={dev.spec.name}")

    # Exact reference spectrum (small enough to check densely).
    dense = laplacian.toarray()
    exact = np.sort(np.linalg.eigvalsh(dense))

    # 1. Rayleigh-Ritz subspace iteration for the dominant eigenpairs.
    start = dev.clock.now
    pairs = pg.rayleigh_ritz_eigensolver(
        mtx, num_eigenpairs=4, num_iterations=30, seed=0
    )
    rr_time = dev.clock.now - start
    print("\nRayleigh-Ritz (dominant 4):")
    for value, residual, true in zip(
        pairs.values, pairs.residual_norms, exact[-4:]
    ):
        print(f"  ritz {value:12.6f}  true {true:12.6f}  "
              f"residual {residual:.2e}")
    print(f"  simulated time: {rr_time * 1e3:.2f} ms")

    # 2. Lanczos: extreme eigenvalues from a short Krylov recurrence.
    start = dev.clock.now
    lanczos = pg.lanczos(mtx, num_steps=60, seed=1)
    ritz = lanczos.eigenvalues()
    print(f"\nLanczos(60): lambda_max ~ {ritz.max():.6f} "
          f"(true {exact[-1]:.6f}), "
          f"lambda_min ~ {ritz.min():.6f} (true {exact[0]:.6f})")
    print(f"  simulated time: {(dev.clock.now - start) * 1e3:.2f} ms")

    # 3. Power iteration for the single dominant pair.
    start = dev.clock.now
    value, _ = pg.power_iteration(mtx, num_iterations=500, seed=2, tol=1e-10)
    print(f"\npower iteration: lambda_max ~ {value:.6f} "
          f"(true {exact[-1]:.6f})")
    print(f"  simulated time: {(dev.clock.now - start) * 1e3:.2f} ms")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "cuda")
