"""Sparse machine-learning inference: a GCN-style forward pass.

The paper motivates pyGinkgo as "a compelling backend for sparse machine
learning models": graph neural networks reduce to repeated SpMV/SpMM with
the (normalised) adjacency matrix, in single precision.  This example runs
a 3-layer graph-convolution forward pass over a synthetic social graph on
every device and compares the simulated execution times — reproducing the
CPU-vs-GPU crossover of the paper's Fig. 4.

Run with::

    python examples/sparse_ml_inference.py
"""

import numpy as np
import scipy.sparse as sp

import repro as pg
from repro.ginkgo.matrix import Dense
from repro.suitesparse import kronecker_graph


def normalised_adjacency(graph: sp.csr_matrix) -> sp.csr_matrix:
    """Symmetric GCN normalisation D^-1/2 (A + I) D^-1/2."""
    a_hat = (graph + sp.eye(graph.shape[0], format="csr")).tocsr()
    degrees = np.asarray(a_hat.sum(axis=1)).ravel()
    inv_sqrt = 1.0 / np.sqrt(degrees)
    d_half = sp.diags(inv_sqrt)
    return (d_half @ a_hat @ d_half).tocsr()


def gcn_forward(device, adjacency, features: np.ndarray, weights) -> np.ndarray:
    """3-layer GCN: X_{l+1} = relu(A X_l W_l), through engine operators."""
    mtx = pg.matrix(device=device, data=adjacency, dtype="float",
                    format="Csr")
    x = Dense(device, features.astype(np.float32))
    for layer, w in enumerate(weights):
        # Propagation: H = A X  (sparse x dense multi-vector product).
        h = Dense.zeros(device, (x.size.rows, x.size.cols), np.float32)
        mtx.apply(x, h)
        # Transform: X = H W (dense apply through the same LinOp interface).
        w_op = Dense(device, w.astype(np.float32))
        out = Dense.zeros(device, (h.size.rows, w.shape[1]), np.float32)
        # H (n x f) times W (f x g): apply H^T?  Dense.apply computes
        # self @ b, so build the product as h_op.apply(w_op).
        h_op = h
        h_op.apply(w_op, out)
        # ReLU on the device buffer (elementwise kernel).
        np.maximum(out._data, 0.0, out=out._data)
        device.run(
            __import__("repro.perfmodel", fromlist=["blas1_cost"]).blas1_cost(
                "relu", out.size.num_elements, 4, 2
            )
        )
        x = out
    return x.to_numpy()


def main() -> None:
    rng = np.random.default_rng(0)
    graph = kronecker_graph(scale=13, edge_factor=12, seed=1)  # 8192 nodes
    adjacency = normalised_adjacency(graph)
    n = adjacency.shape[0]
    feature_dims = [64, 64, 32, 16]
    features = rng.standard_normal((n, feature_dims[0]))
    weights = [
        rng.standard_normal((feature_dims[i], feature_dims[i + 1])) * 0.1
        for i in range(3)
    ]
    print(f"graph: {n} nodes, {adjacency.nnz} edges (+self loops), "
          f"features {feature_dims[0]} -> {feature_dims[-1]}")

    reference_out = None
    print(f"\n{'device':<28} {'sim. time':>12} {'speedup':>9}")
    baseline = None
    for name in ("reference", "omp", "cuda", "hip"):
        dev = pg.device(name, fresh=True)
        start = dev.clock.now
        out = gcn_forward(dev, adjacency, features, weights)
        elapsed = dev.clock.now - start
        if baseline is None:
            baseline = elapsed
            reference_out = out
        else:
            np.testing.assert_allclose(out, reference_out, atol=1e-3)
        print(f"{dev.spec.name:<28} {elapsed * 1e3:>9.2f} ms "
              f"{baseline / elapsed:>8.1f}x")
    print("\nembedding sample (node 0):", np.round(reference_out[0, :5], 4))


if __name__ == "__main__":
    main()
