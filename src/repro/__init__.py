"""repro — a reproduction of pyGinkgo (ICPP 2025) in pure Python.

``import repro as pg`` gives the paper's user-facing API::

    import repro as pg
    import numpy as np

    dev = pg.device("cuda")
    mtx = pg.read(device=dev, path="m1.mtx", dtype="double", format="Csr")
    n_rows = mtx.size[0]
    b = pg.as_tensor(device=dev, dim=(n_rows, 1), dtype="double", fill=1.0)
    x = pg.as_tensor(device=dev, dim=(n_rows, 1), dtype="double", fill=0.0)
    preconditioner = pg.preconditioner.Ilu(dev, mtx)
    solver = pg.solver.gmres(
        dev, mtx, preconditioner,
        max_iters=1000, krylov_dim=30, reduction_factor=1e-6,
    )
    logger, result = solver.apply(b, x)

Subpackages:

* :mod:`repro.core` — the Pythonic API (this module re-exports it);
* :mod:`repro.bindings` — the simulated pybind11 layer with
  type-suffixed pre-instantiated symbols;
* :mod:`repro.ginkgo` — the computational engine (executors, LinOp,
  formats, solvers, preconditioners, config-solver, MTX I/O);
* :mod:`repro.perfmodel` — the roofline hardware model substituting for
  the paper's A100/MI100/Xeon testbed;
* :mod:`repro.baselines` — SciPy (real) and CuPy/PyTorch/TensorFlow
  (simulated) comparators;
* :mod:`repro.suitesparse` — synthetic stand-ins for the SuiteSparse
  benchmark matrices;
* :mod:`repro.bench` — the harness regenerating every table and figure.
"""

from repro.core import (
    FallbackChain,
    ResilienceReport,
    RetryPolicy,
    BatchSolverHandle,
    DeferredTrace,
    LazyExpr,
    RitzPairs,
    SolverHandle,
    TABLE1,
    Tensor,
    deferred,
    lazy,
    arnoldi,
    array,
    as_tensor,
    batch,
    build_config,
    clear_device_cache,
    config_solver,
    config_to_json,
    device,
    distributed,
    from_numpy,
    from_scipy,
    index_dtype,
    lanczos,
    matrix,
    orthonormalize,
    power_iteration,
    preconditioner,
    profile,
    rayleigh_ritz,
    rayleigh_ritz_eigensolver,
    read,
    resilient_solve,
    shares_memory,
    solve,
    solver,
    to_numpy,
    to_scipy,
    value_dtype,
    write,
)
from repro.ginkgo.log import MetricsRegistry, ProfilerHook

# Imported after repro.core: the service layer builds on the core solve,
# batch, distributed, and resilient APIs.
from repro import service

__version__ = "1.0.0"

__all__ = [
    "BatchSolverHandle",
    "DeferredTrace",
    "FallbackChain",
    "LazyExpr",
    "MetricsRegistry",
    "ProfilerHook",
    "ResilienceReport",
    "RetryPolicy",
    "RitzPairs",
    "SolverHandle",
    "TABLE1",
    "Tensor",
    "__version__",
    "arnoldi",
    "array",
    "as_tensor",
    "batch",
    "build_config",
    "clear_device_cache",
    "config_solver",
    "config_to_json",
    "deferred",
    "device",
    "distributed",
    "lazy",
    "from_numpy",
    "from_scipy",
    "index_dtype",
    "lanczos",
    "matrix",
    "orthonormalize",
    "power_iteration",
    "preconditioner",
    "profile",
    "rayleigh_ritz",
    "rayleigh_ritz_eigensolver",
    "read",
    "resilient_solve",
    "service",
    "shares_memory",
    "solve",
    "solver",
    "to_numpy",
    "to_scipy",
    "value_dtype",
    "write",
]
