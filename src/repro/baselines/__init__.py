"""Comparator libraries benchmarked in the paper.

SciPy is installed and used for real; CuPy, PyTorch, and TensorFlow are not
available in this environment, so each is re-implemented as a *simulated
backend*: the numerics run on NumPy/SciPy (identical results), while the
timing comes from the shared roofline model configured with that library's
measured efficiency profile (:mod:`repro.perfmodel.libraries`) and — for
the solvers — with each library's actual dispatch behaviour (CuPy's
per-op Python dispatch, scalar device-to-host synchronisation, unfused
element-wise updates, CPU Hessenberg least-squares in GMRES, per-restart
residual checks).

All backends implement the :class:`~repro.baselines.base.Backend`
interface so the benchmark harness treats them uniformly.
"""

from repro.baselines.base import Backend, MatrixHandle
from repro.baselines.scipy_backend import ScipyBackend
from repro.baselines.cupy_sim import CupyBackend
from repro.baselines.torch_sim import PyTorchBackend
from repro.baselines.tf_sim import TensorFlowBackend
from repro.baselines.ginkgo_backend import GinkgoNativeBackend, PyGinkgoBackend

__all__ = [
    "Backend",
    "CupyBackend",
    "GinkgoNativeBackend",
    "MatrixHandle",
    "PyGinkgoBackend",
    "PyTorchBackend",
    "ScipyBackend",
    "TensorFlowBackend",
]
