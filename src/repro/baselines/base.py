"""Common interface of the comparator backends."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.exceptions import NotSupported
from repro.perfmodel import SimClock, dot_cost, blas1_cost, spmv_cost
from repro.perfmodel.specs import DeviceSpec


@dataclass
class MatrixHandle:
    """A matrix as prepared by one backend.

    Attributes:
        matrix: The CSR matrix used for the numerics.
        fmt: The storage format the backend pretends to use (drives costs).
        dtype: Value dtype of the prepared data.
        index_bytes: Bytes per index of the pretend storage.
    """

    matrix: sp.csr_matrix
    fmt: str
    dtype: np.dtype
    index_bytes: int = 4

    @property
    def shape(self) -> tuple:
        return self.matrix.shape

    @property
    def nnz(self) -> int:
        return int(self.matrix.nnz)

    @property
    def value_bytes(self) -> int:
        return int(self.dtype.itemsize)


class Backend:
    """A library under benchmark: numerics + its own simulated clock.

    Args:
        spec: Device the library runs on.
        num_threads: CPU thread count (ignored on GPUs).
        seed: Clock noise seed.
        noisy: Disable for exact analytic timings.
    """

    #: Library profile name registered in :mod:`repro.perfmodel.libraries`.
    library = "scipy"
    #: Display name used in benchmark tables.
    display_name = "backend"
    #: Storage formats the library supports.
    supported_formats: tuple = ("csr", "coo")
    #: Iterative solvers the library supports.
    supported_solvers: tuple = ()

    def __init__(
        self,
        spec: DeviceSpec,
        num_threads: int | None = None,
        seed: int = 0,
        noisy: bool = True,
    ) -> None:
        self.spec = spec
        self.num_threads = num_threads
        self.clock = SimClock(
            spec, library=self.library, num_threads=num_threads,
            seed=seed, noisy=noisy,
        )

    # ------------------------------------------------------------------
    # preparation
    # ------------------------------------------------------------------
    def prepare(self, matrix: sp.spmatrix, fmt: str = "csr", dtype=np.float32) -> MatrixHandle:
        """Convert a SciPy matrix into this backend's benchmark handle."""
        fmt = fmt.lower()
        if fmt not in self.supported_formats:
            raise NotSupported(
                f"{self.display_name} does not support the {fmt!r} format; "
                f"supported: {self.supported_formats}"
            )
        dtype = np.dtype(dtype)
        csr = sp.csr_matrix(matrix)
        compute_dtype = np.float32 if dtype == np.float16 else dtype
        return MatrixHandle(
            matrix=csr.astype(compute_dtype), fmt=fmt, dtype=dtype
        )

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def _charge_spmv(self, handle: MatrixHandle, num_rhs: int = 1) -> None:
        self.clock.record(
            spmv_cost(
                handle.fmt,
                handle.shape[0],
                handle.shape[1],
                handle.nnz,
                handle.value_bytes,
                handle.index_bytes,
                num_rhs=num_rhs,
            )
        )

    def spmv(self, handle: MatrixHandle, x: np.ndarray) -> np.ndarray:
        """Compute ``y = A x`` and charge the modeled kernel time."""
        y = handle.matrix @ x
        self._charge_spmv(handle, num_rhs=1 if x.ndim == 1 else x.shape[1])
        return y

    def _charge_dot(self, length: int, value_bytes: int, sync: bool = True) -> None:
        self.clock.record(dot_cost(length, value_bytes))
        if sync:
            self.clock.synchronize()

    def _charge_vector_op(
        self, name: str, length: int, value_bytes: int,
        num_vectors: int = 3, kernels: int = 1,
    ) -> None:
        cost = blas1_cost(name, length, value_bytes, num_vectors)
        for _ in range(kernels):
            self.clock.record(cost)

    # ------------------------------------------------------------------
    # solvers
    # ------------------------------------------------------------------
    def run_solver(
        self, handle: MatrixHandle, solver: str, b: np.ndarray,
        iterations: int, **kwargs,
    ) -> dict:
        """Run ``iterations`` of ``solver`` on ``A x = b``.

        Returns:
            Dict with ``x`` (the iterate), ``iterations``, ``elapsed``
            (simulated seconds), and ``time_per_iteration``.
        """
        solver = solver.lower()
        if solver not in self.supported_solvers:
            raise NotSupported(
                f"{self.display_name} does not provide the {solver!r} "
                f"solver; supported: {self.supported_solvers}"
            )
        runner = getattr(self, f"_solve_{solver}")
        start = self.clock.now
        x = runner(handle, b.astype(handle.matrix.dtype), iterations, **kwargs)
        elapsed = self.clock.now - start
        return {
            "x": x,
            "iterations": iterations,
            "elapsed": elapsed,
            "time_per_iteration": elapsed / max(iterations, 1),
        }

    def __repr__(self) -> str:
        return f"<{type(self).__name__} on {self.spec.name}>"
