"""Simulated CuPy backend.

Reproduces the dispatch behaviour of ``cupyx.scipy.sparse.linalg`` that
section 6.2.1 of the paper identifies as the performance-relevant
differences from Ginkgo:

* every logical operation is a separate Python-dispatched kernel launch
  (the library profile carries the per-op host overhead and launch
  multiplier);
* element-wise vector updates are *unfused*: an expression like
  ``r + beta * q`` launches one kernel per arithmetic operation and
  allocates a temporary;
* scalar reductions consumed by Python control flow synchronise the
  device (``sync_overhead`` per dot);
* GMRES uses the orthonormal-projection update (two batched GEMV kernels
  per inner step instead of j sequential dots), solves the Hessenberg
  least-squares problem **on the CPU**, and checks the residual only once
  per restart cycle — the reasons it slightly outperforms Ginkgo's GMRES
  under a fixed iteration budget.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Backend, MatrixHandle
from repro.perfmodel import blas1_cost, dot_cost
from repro.perfmodel.specs import NVIDIA_A100, DeviceSpec

#: Device memory-pool allocation cost per temporary array (seconds).
ALLOCATION_OVERHEAD = 1.5e-6


class CupyBackend(Backend):
    """CuPy on an (simulated) NVIDIA GPU."""

    library = "cupy"
    display_name = "CuPy"
    supported_formats = ("csr", "coo")
    supported_solvers = ("cg", "cgs", "gmres")

    def __init__(self, spec: DeviceSpec = NVIDIA_A100, **kwargs) -> None:
        super().__init__(spec, **kwargs)

    # ------------------------------------------------------------------
    # CuPy dispatch cost helpers
    # ------------------------------------------------------------------
    def _charge_unfused_update(
        self, length: int, value_bytes: int, num_arith_ops: int
    ) -> None:
        """An element-wise expression with N arithmetic operations.

        CuPy launches one kernel per operation and allocates a temporary
        for each intermediate result.
        """
        for _ in range(num_arith_ops):
            self.clock.record(
                blas1_cost("elementwise", length, value_bytes, 3)
            )
            self.clock.advance(ALLOCATION_OVERHEAD)

    def _charge_scalar_dot(self, length: int, value_bytes: int) -> None:
        """A reduction whose result Python inspects: kernel + D2H sync."""
        self.clock.record(dot_cost(length, value_bytes))
        self.clock.synchronize()

    # ------------------------------------------------------------------
    # solvers (cupyx.scipy.sparse.linalg algorithms)
    # ------------------------------------------------------------------
    def _solve_cg(self, handle: MatrixHandle, b: np.ndarray, iterations: int):
        n = b.shape[0]
        vb = handle.value_bytes
        x = np.zeros_like(b)
        r = b.copy()
        p = r.copy()
        rs = float(r @ r)
        self._charge_scalar_dot(n, vb)
        for _ in range(iterations):
            q = self.spmv(handle, p)
            pq = float(p @ q)
            self._charge_scalar_dot(n, vb)
            alpha = rs / pq if pq != 0 else 0.0
            x += alpha * p       # mul + iadd -> 2 kernels
            self._charge_unfused_update(n, vb, 2)
            r -= alpha * q
            self._charge_unfused_update(n, vb, 2)
            rs_new = float(r @ r)
            self._charge_scalar_dot(n, vb)
            beta = rs_new / rs if rs != 0 else 0.0
            p = r + beta * p     # mul + add -> 2 kernels
            self._charge_unfused_update(n, vb, 2)
            rs = rs_new
        return x

    def _solve_cgs(self, handle: MatrixHandle, b: np.ndarray, iterations: int):
        n = b.shape[0]
        vb = handle.value_bytes
        x = np.zeros_like(b)
        r = b.copy()
        r_tld = r.copy()
        p = np.zeros_like(b)
        q = np.zeros_like(b)
        rho_old = 1.0
        for _ in range(iterations):
            rho = float(r_tld @ r)
            self._charge_scalar_dot(n, vb)
            beta = rho / rho_old if rho_old != 0 else 0.0
            u = r + beta * q                 # 2 kernels
            self._charge_unfused_update(n, vb, 2)
            p = u + beta * (q + beta * p)    # 4 kernels
            self._charge_unfused_update(n, vb, 4)
            v = self.spmv(handle, p)
            sigma = float(r_tld @ v)
            self._charge_scalar_dot(n, vb)
            alpha = rho / sigma if sigma != 0 else 0.0
            q = u - alpha * v                # 2 kernels
            self._charge_unfused_update(n, vb, 2)
            t = u + q                        # 1 kernel
            self._charge_unfused_update(n, vb, 1)
            x += alpha * t                   # 2 kernels
            self._charge_unfused_update(n, vb, 2)
            w = self.spmv(handle, t)
            r -= alpha * w                   # 2 kernels
            self._charge_unfused_update(n, vb, 2)
            rho_old = rho
        return x

    def _solve_gmres(
        self, handle: MatrixHandle, b: np.ndarray, iterations: int,
        restart: int = 30,
    ):
        """CuPy-style GMRES: batched-GEMV orthogonalisation, CPU LS solve.

        Residual check happens once per restart cycle (after the full
        Hessenberg is built), not after each update.
        """
        n = b.shape[0]
        vb = handle.value_bytes
        x = np.zeros_like(b)
        done = 0
        while done < iterations:
            r = b - self.spmv(handle, x)
            self._charge_unfused_update(n, vb, 1)
            beta = float(np.linalg.norm(r))
            self._charge_scalar_dot(n, vb)
            if beta == 0:
                return x
            m = min(restart, iterations - done)
            v = np.zeros((m + 1, n), dtype=b.dtype)
            h = np.zeros((m + 1, m))
            v[0] = r / beta
            self._charge_unfused_update(n, vb, 1)
            for j in range(m):
                w = self.spmv(handle, v[j])
                # Orthonormal projection with two batched GEMVs:
                # h[:j+1] = V w ; w -= V^T h.
                coeffs = v[: j + 1] @ w
                h[: j + 1, j] = coeffs
                w = w - v[: j + 1].T @ coeffs
                self.clock.record(
                    blas1_cost("gemv_project", n * (j + 1), vb, 2)
                )
                self.clock.record(
                    blas1_cost("gemv_correct", n * (j + 1), vb, 2)
                )
                h[j + 1, j] = float(np.linalg.norm(w))
                # The normalisation norm stays on the device (no Python
                # control flow consumes it until the restart boundary).
                self.clock.record(dot_cost(n, vb))
                if h[j + 1, j] != 0:
                    v[j + 1] = w / h[j + 1, j]
                    self._charge_unfused_update(n, vb, 1)
                done += 1
            # Hessenberg least squares solved ON THE CPU: copy H down,
            # solve with LAPACK, copy y back up.
            self.clock.advance(2 * 8.0e-6)  # D2H + H2D of the small system
            g = np.zeros(m + 1)
            g[0] = beta
            y, *_ = np.linalg.lstsq(h, g, rcond=None)
            # Residual check: once per restart, after the cycle.
            self._charge_scalar_dot(n, vb)
            x = x + v[:m].T @ y
            self.clock.record(blas1_cost("basis_update", n * m, vb, 2))
        return x
