"""pyGinkgo and native-Ginkgo backends for the benchmark harness.

Both run the same engine; the difference is whether calls cross the
(simulated) pybind11 boundary.  :class:`PyGinkgoBackend` charges the
binding overhead per crossing; :class:`GinkgoNativeBackend` does not —
their timing difference is precisely what Figs. 5b/5c measure.

Unlike CuPy, the solver loop lives *inside* the engine (C++ in the real
system), so one ``apply`` is one binding crossing regardless of iteration
count — which is why pyGinkgo's solver overhead is negligible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import Backend, MatrixHandle
from repro.bindings.overhead import charge_binding
from repro.ginkgo.exceptions import NotSupported
from repro.ginkgo.executor import (
    CudaExecutor,
    HipExecutor,
    OmpExecutor,
)
from repro.ginkgo.matrix import Coo, Csr, Dense, Ell, Hybrid, Sellp
from repro.ginkgo.solver import Bicgstab, Cg, Cgs, Fcg, Gmres, Minres
from repro.ginkgo.stop import Iteration
from repro.perfmodel.specs import AMD_MI100, INTEL_XEON_8368, NVIDIA_A100, DeviceSpec

_FORMAT_CLASSES = {
    "csr": Csr,
    "coo": Coo,
    "ell": Ell,
    "sellp": Sellp,
    "hybrid": Hybrid,
}

_SOLVER_CLASSES = {
    "cg": Cg,
    "fcg": Fcg,
    "cgs": Cgs,
    "bicgstab": Bicgstab,
    "gmres": Gmres,
    "minres": Minres,
}


@dataclass
class GinkgoHandle(MatrixHandle):
    """Handle carrying the engine matrix and pre-staged device vectors."""

    engine_matrix: object = None
    x_dense: Dense = None
    y_dense: Dense = None


class PyGinkgoBackend(Backend):
    """The paper's library: engine kernels called through the bindings."""

    library = "ginkgo"
    display_name = "pyGinkgo"
    supported_formats = ("csr", "coo", "ell", "sellp", "hybrid")
    supported_solvers = ("cg", "fcg", "cgs", "bicgstab", "gmres", "minres")
    #: Whether calls cross the simulated pybind11 boundary.
    binding_overhead = True

    def __init__(
        self,
        spec: DeviceSpec = NVIDIA_A100,
        num_threads: int | None = None,
        seed: int = 0,
        noisy: bool = True,
    ) -> None:
        super().__init__(spec, num_threads=num_threads, seed=seed, noisy=noisy)
        # Dispatch on the spec's vendor tag, not its display name: custom
        # AMD specs need not spell out "AMD" (e.g. "Instinct MI250X").
        if spec.kind == "gpu" and spec.vendor == "amd":
            self.executor = HipExecutor.create(seed=seed, noisy=noisy, spec=spec)
        elif spec.kind == "gpu":
            self.executor = CudaExecutor.create(seed=seed, noisy=noisy, spec=spec)
        else:
            self.executor = OmpExecutor.create(
                num_threads=num_threads, seed=seed, noisy=noisy, spec=spec
            )
        # The backend clock *is* the executor clock: all engine work lands
        # on the same timeline as the binding-overhead charges.
        self.clock = self.executor.clock

    # ------------------------------------------------------------------
    def _charge_crossing(
        self, num_arguments: int = 2, tag: str | None = None
    ) -> None:
        if self.binding_overhead:
            charge_binding(self.executor, num_arguments, tag=tag)

    def prepare(self, matrix: sp.spmatrix, fmt: str = "csr", dtype=np.float32):
        fmt = fmt.lower()
        if fmt not in self.supported_formats:
            raise NotSupported(
                f"{self.display_name} does not support the {fmt!r} format"
            )
        dtype = np.dtype(dtype)
        csr = sp.csr_matrix(matrix)
        cls = _FORMAT_CLASSES[fmt]
        self._charge_crossing(3, tag=f"{fmt}_from_scipy")
        engine_matrix = cls.from_scipy(self.executor, csr, value_dtype=dtype)
        rows, cols = csr.shape
        handle = GinkgoHandle(
            matrix=csr.astype(np.float32 if dtype == np.float16 else dtype),
            fmt=fmt,
            dtype=dtype,
            engine_matrix=engine_matrix,
            x_dense=Dense.zeros(self.executor, (cols, 1), dtype),
            y_dense=Dense.zeros(self.executor, (rows, 1), dtype),
        )
        return handle

    def spmv(self, handle: GinkgoHandle, x: np.ndarray) -> np.ndarray:
        np.copyto(handle.x_dense._data, x.reshape(-1, 1).astype(handle.dtype))
        self._charge_crossing(2, tag="spmv_apply")
        handle.engine_matrix.apply(handle.x_dense, handle.y_dense)
        return handle.y_dense._data.reshape(x.shape).astype(
            handle.matrix.dtype, copy=False
        )

    def run_solver(
        self, handle: GinkgoHandle, solver: str, b: np.ndarray,
        iterations: int, **kwargs,
    ) -> dict:
        solver = solver.lower()
        if solver not in self.supported_solvers:
            raise NotSupported(
                f"{self.display_name} does not provide the {solver!r} solver"
            )
        params = {}
        if solver == "gmres":
            params["krylov_dim"] = kwargs.get("restart", 30)
        self._charge_crossing(3, tag=f"{solver}_factory")
        factory = _SOLVER_CLASSES[solver](
            self.executor, criteria=Iteration(iterations), **params
        )
        engine_solver = factory.generate(handle.engine_matrix)
        x = Dense.zeros(self.executor, (b.shape[0], 1), handle.dtype)
        rhs = Dense(self.executor, b.reshape(-1, 1).astype(handle.dtype))
        start = self.clock.now
        self._charge_crossing(2, tag="solver_apply")  # one crossing per solve
        engine_solver.apply(rhs, x)
        elapsed = self.clock.now - start
        return {
            "x": x._data.reshape(b.shape),
            "iterations": iterations,
            "elapsed": elapsed,
            "time_per_iteration": elapsed / max(iterations, 1),
        }


class GinkgoNativeBackend(PyGinkgoBackend):
    """Native Ginkgo: identical kernels, no binding crossings."""

    display_name = "Ginkgo (native)"
    binding_overhead = False


def backend_for_device(name: str, **kwargs) -> PyGinkgoBackend:
    """Convenience: pyGinkgo backend on 'a100', 'mi100', or 'xeon8368'."""
    specs = {"a100": NVIDIA_A100, "mi100": AMD_MI100, "xeon8368": INTEL_XEON_8368}
    key = name.lower()
    if key not in specs:
        raise KeyError(f"unknown device {name!r}; available: {sorted(specs)}")
    return PyGinkgoBackend(spec=specs[key], **kwargs)
