"""SciPy baseline (the only comparator that is real in this environment).

SciPy's sparse kernels are single-threaded C: on one core they are the
fastest CPU baseline in the paper, but they do not scale with threads —
which is exactly how the library profile models them (``parallel_cpu=
False``).  The solver implementations below mirror ``scipy.sparse.linalg``'s
unpreconditioned algorithms with per-operation cost charging.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Backend, MatrixHandle
from repro.perfmodel.specs import INTEL_XEON_8368, DeviceSpec


class ScipyBackend(Backend):
    """scipy.sparse on one Xeon core."""

    library = "scipy"
    display_name = "SciPy"
    supported_formats = ("csr", "coo", "csc")
    supported_solvers = ("cg", "cgs", "gmres", "bicgstab")

    def __init__(self, spec: DeviceSpec = INTEL_XEON_8368, **kwargs) -> None:
        kwargs.setdefault("num_threads", 1)
        super().__init__(spec, **kwargs)

    # SciPy's C loop has no per-op dispatch penalty worth modelling beyond
    # the profile's host_overhead_per_op; solvers just charge each BLAS op.

    def _solve_cg(self, handle: MatrixHandle, b: np.ndarray, iterations: int):
        a = handle.matrix
        n = b.shape[0]
        vb = handle.value_bytes
        x = np.zeros_like(b)
        r = b.copy()
        p = r.copy()
        rs = float(r @ r)
        self._charge_dot(n, vb, sync=False)
        for _ in range(iterations):
            q = self.spmv(handle, p)
            pq = float(p @ q)
            self._charge_dot(n, vb, sync=False)
            alpha = rs / pq if pq != 0 else 0.0
            x += alpha * p
            r -= alpha * q
            self._charge_vector_op("axpy", n, vb)
            self._charge_vector_op("axpy", n, vb)
            rs_new = float(r @ r)
            self._charge_dot(n, vb, sync=False)
            beta = rs_new / rs if rs != 0 else 0.0
            p = r + beta * p
            self._charge_vector_op("xpby", n, vb)
            rs = rs_new
        return x

    def _solve_cgs(self, handle: MatrixHandle, b: np.ndarray, iterations: int):
        a = handle.matrix
        n = b.shape[0]
        vb = handle.value_bytes
        x = np.zeros_like(b)
        r = b.copy()
        r_tld = r.copy()
        p = np.zeros_like(b)
        q = np.zeros_like(b)
        rho_old = 1.0
        for k in range(iterations):
            rho = float(r_tld @ r)
            self._charge_dot(n, vb, sync=False)
            beta = rho / rho_old if rho_old != 0 else 0.0
            u = r + beta * q
            p = u + beta * (q + beta * p)
            self._charge_vector_op("update", n, vb)
            self._charge_vector_op("update", n, vb, num_vectors=4)
            v = self.spmv(handle, p)
            sigma = float(r_tld @ v)
            self._charge_dot(n, vb, sync=False)
            alpha = rho / sigma if sigma != 0 else 0.0
            q = u - alpha * v
            t = u + q
            self._charge_vector_op("update", n, vb)
            self._charge_vector_op("add", n, vb)
            x += alpha * t
            self._charge_vector_op("axpy", n, vb)
            w = self.spmv(handle, t)
            r -= alpha * w
            self._charge_vector_op("axpy", n, vb)
            rho_old = rho
        return x

    def _solve_bicgstab(self, handle: MatrixHandle, b: np.ndarray, iterations: int):
        n = b.shape[0]
        vb = handle.value_bytes
        x = np.zeros_like(b)
        r = b.copy()
        r_tld = r.copy()
        p = r.copy()
        rho_old, alpha, omega = 1.0, 1.0, 1.0
        v = np.zeros_like(b)
        for k in range(iterations):
            rho = float(r_tld @ r)
            self._charge_dot(n, vb, sync=False)
            if k > 0:
                beta = (rho / rho_old) * (alpha / omega) if rho_old and omega else 0.0
                p = r + beta * (p - omega * v)
                self._charge_vector_op("update", n, vb, num_vectors=4)
            v = self.spmv(handle, p)
            denom = float(r_tld @ v)
            self._charge_dot(n, vb, sync=False)
            alpha = rho / denom if denom != 0 else 0.0
            s = r - alpha * v
            self._charge_vector_op("axpy", n, vb)
            t = self.spmv(handle, s)
            tt = float(t @ t)
            ts = float(t @ s)
            self._charge_dot(n, vb, sync=False)
            self._charge_dot(n, vb, sync=False)
            omega = ts / tt if tt != 0 else 0.0
            x += alpha * p + omega * s
            r = s - omega * t
            self._charge_vector_op("update", n, vb, num_vectors=4)
            self._charge_vector_op("axpy", n, vb)
            rho_old = rho
        return x

    def _solve_gmres(
        self, handle: MatrixHandle, b: np.ndarray, iterations: int,
        restart: int = 30,
    ):
        n = b.shape[0]
        vb = handle.value_bytes
        x = np.zeros_like(b)
        done = 0
        while done < iterations:
            r = b - self.spmv(handle, x)
            self._charge_vector_op("residual", n, vb)
            beta = float(np.linalg.norm(r))
            self._charge_dot(n, vb, sync=False)
            if beta == 0:
                return x
            m = min(restart, iterations - done)
            v = np.zeros((m + 1, n), dtype=b.dtype)
            h = np.zeros((m + 1, m))
            v[0] = r / beta
            self._charge_vector_op("scale", n, vb, num_vectors=2)
            for j in range(m):
                w = self.spmv(handle, v[j])
                for i in range(j + 1):
                    h[i, j] = float(v[i] @ w)
                    w -= h[i, j] * v[i]
                    self._charge_dot(n, vb, sync=False)
                    self._charge_vector_op("axpy", n, vb)
                h[j + 1, j] = float(np.linalg.norm(w))
                self._charge_dot(n, vb, sync=False)
                if h[j + 1, j] != 0:
                    v[j + 1] = w / h[j + 1, j]
                    self._charge_vector_op("scale", n, vb, num_vectors=2)
                done += 1
            g = np.zeros(m + 1)
            g[0] = beta
            y, *_ = np.linalg.lstsq(h, g, rcond=None)
            x = x + v[:m].T @ y
            self._charge_vector_op("basis_update", n, vb, num_vectors=m + 1)
        return x
