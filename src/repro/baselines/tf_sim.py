"""Simulated TensorFlow backend.

``tf.sparse`` supports only the COO format (paper section 2), provides no
iterative solvers, and carries the heaviest per-op dispatch cost of the
compared frameworks; its measured SpMV peak on the A100 is ~50 GFLOP/s.
"""

from __future__ import annotations

from repro.baselines.base import Backend
from repro.perfmodel.specs import NVIDIA_A100, DeviceSpec


class TensorFlowBackend(Backend):
    """tf.sparse on a (simulated) GPU or CPU."""

    library = "tensorflow"
    display_name = "TensorFlow"
    supported_formats = ("coo",)  # COO only
    supported_solvers = ()

    def __init__(self, spec: DeviceSpec = NVIDIA_A100, **kwargs) -> None:
        super().__init__(spec, **kwargs)
