"""Simulated PyTorch backend.

``torch.sparse`` provides SpMV for COO and CSR tensors but no iterative
solvers or preconditioners (paper sections 2 and 6.2.1).  On GPU its fp32
SpMV is decent (~110 GFLOP/s measured in the paper); fp64 is heavily
de-prioritised, and the CPU sparse kernels are poor and scale badly —
all encoded in the ``pytorch`` library profile.
"""

from __future__ import annotations

from repro.baselines.base import Backend
from repro.perfmodel.specs import NVIDIA_A100, DeviceSpec


class PyTorchBackend(Backend):
    """torch.sparse on a (simulated) GPU or CPU."""

    library = "pytorch"
    display_name = "PyTorch"
    supported_formats = ("csr", "coo")
    supported_solvers = ()  # no iterative solvers

    def __init__(self, spec: DeviceSpec = NVIDIA_A100, **kwargs) -> None:
        super().__init__(spec, **kwargs)
