"""Benchmark harness regenerating every table and figure of the paper.

The harness wires the matrix suites (:mod:`repro.suitesparse`) through the
backends (:mod:`repro.baselines`) and reports the same rows/series the
paper plots.  Each figure has a dedicated entry point in
:mod:`repro.bench.figures`; the ``benchmarks/`` directory wraps them in
pytest-benchmark targets.
"""

from repro.bench.timing import (
    geometric_mean,
    measure_solver,
    measure_spmv,
)
from repro.bench.reporting import format_series, format_table
from repro.bench.figures import (
    fig3a_spmv_gpu,
    fig3b_spmv_cpu,
    fig3c_solver_gpu,
    fig4_representative,
    fig5a_gpu_formats,
    fig5b_overhead,
    fig5c_timediff,
    profile_attribution,
    solver_cpu_comparison,
    table1_types,
    table2_matrices,
)

__all__ = [
    "fig3a_spmv_gpu",
    "fig3b_spmv_cpu",
    "fig3c_solver_gpu",
    "fig4_representative",
    "fig5a_gpu_formats",
    "fig5b_overhead",
    "fig5c_timediff",
    "format_series",
    "format_table",
    "geometric_mean",
    "measure_solver",
    "measure_spmv",
    "profile_attribution",
    "solver_cpu_comparison",
    "table1_types",
    "table2_matrices",
]
