"""Command-line entry point: ``python -m repro.bench``.

Prints every table and figure of the paper at a reduced suite size
(pass ``--full`` for the paper-sized 30/40/45-matrix suites; expect
several minutes).
"""

from __future__ import annotations

import sys

from repro.bench import figures
from repro.suitesparse import overhead_suite, solver_suite, spmv_suite


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    full = "--full" in argv
    if full:
        spmv = spmv_suite()
        solver = solver_suite()
        overhead = overhead_suite()
        iterations = 1000
    else:
        spmv = spmv_suite(count=10, max_nnz=1e6)
        solver = solver_suite(count=8, max_nnz=5e5)
        overhead = overhead_suite(count=10, max_nnz=5e6)
        iterations = 200

    print(figures.table1_types()["text"], "\n")
    print(figures.table2_matrices(scale=1.0 if full else 0.1)["text"], "\n")
    print(figures.fig3a_spmv_gpu(spmv)["text"], "\n")
    print(figures.fig3b_spmv_cpu(spmv)["text"], "\n")
    print(
        figures.fig3c_solver_gpu(solver, iterations=iterations)["text"], "\n"
    )
    print(
        figures.fig4_representative(scale=1.0 if full else 0.05)["text"],
        "\n",
    )
    print(figures.fig5a_gpu_formats(overhead)["text"], "\n")
    print(figures.fig5b_overhead(overhead)["text"], "\n")
    print(figures.fig5c_timediff(overhead)["text"], "\n")
    print(
        figures.solver_cpu_comparison(solver, iterations=iterations)["text"]
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
