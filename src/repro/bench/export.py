"""Persist benchmark results (figure series / tables) to CSV.

Every figure entry point returns ``{"series": {name: [(x, y), ...]}}`` or
``{"rows": [...]}``; these helpers write them in a form external plotting
tools can consume, so the reproduction's data is portable.
"""

from __future__ import annotations

import csv
import os


def save_series_csv(result: dict, path) -> None:
    """Write a figure's series to CSV with columns ``x,<curve names...>``.

    Args:
        result: A figure dict containing ``series``.
        path: Destination file path.
    """
    series = result.get("series")
    if not series:
        raise ValueError("result has no 'series' to export")
    names = sorted(series)
    xs = sorted({x for points in series.values() for x, _ in points})
    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    with open(os.fspath(path), "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x"] + names)
        for x in xs:
            writer.writerow(
                [x] + [lookup[name].get(x, "") for name in names]
            )


def save_rows_csv(result: dict, headers, path, key: str = "rows") -> None:
    """Write a figure's row table to CSV.

    Args:
        result: A figure dict containing ``key`` (default ``rows``).
        headers: Column names for the header line.
        path: Destination file path.
        key: Which entry of ``result`` holds the rows.
    """
    rows = result.get(key)
    if rows is None:
        raise ValueError(f"result has no {key!r} to export")
    with open(os.fspath(path), "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        writer.writerows(rows)


def load_series_csv(path) -> dict:
    """Read a series CSV back into ``{name: [(x, y), ...]}``."""
    with open(os.fspath(path), newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        names = header[1:]
        series: dict = {name: [] for name in names}
        for row in reader:
            x = float(row[0])
            for name, cell in zip(names, row[1:]):
                if cell != "":
                    series[name].append((x, float(cell)))
    return series
