"""One entry point per table/figure of the paper's evaluation (section 6).

Every function returns a dict with the raw data (``series`` keyed by curve
name with (x, y) points, or ``rows``) plus a ``text`` rendering.  The
``benchmarks/`` directory wraps these in pytest-benchmark targets; they can
also be run directly::

    python -m repro.bench.figures            # prints everything
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    CupyBackend,
    GinkgoNativeBackend,
    PyGinkgoBackend,
    PyTorchBackend,
    ScipyBackend,
    TensorFlowBackend,
)
from repro.bench.reporting import format_series, format_table
from repro.bench.timing import measure_spmv, spmv_gflops
from repro.core.types import TABLE1
from repro.perfmodel.specs import AMD_MI100, INTEL_XEON_8368, NVIDIA_A100
from repro.suitesparse import (
    matrix_stats,
    overhead_suite,
    solver_suite,
    spmv_suite,
    table2_suite,
)

#: Default repetitions per timing, mirroring the paper's averaging.
DEFAULT_REPS = 5


def _scipy_baseline_time(matrix, x, reps: int) -> float:
    backend = ScipyBackend(seed=11)
    handle = backend.prepare(matrix, "csr", x.dtype)
    return measure_spmv(backend, handle, x, repetitions=reps)


def _best_format_time(backend, matrix, x, formats, reps: int) -> float:
    """Best (lowest) SpMV time across the formats the backend supports."""
    times = []
    for fmt in formats:
        if fmt not in backend.supported_formats:
            continue
        handle = backend.prepare(matrix, fmt, x.dtype)
        times.append(measure_spmv(backend, handle, x, repetitions=reps))
    if not times:
        raise ValueError(f"{backend.display_name}: no supported format")
    return min(times)


# ----------------------------------------------------------------------
# Figure 3a — SpMV on the A100, speedup vs SciPy, fp32
# ----------------------------------------------------------------------
def fig3a_spmv_gpu(suite=None, reps: int = DEFAULT_REPS) -> dict:
    """SpMV speedup over single-core SciPy on the (simulated) A100.

    Best-performing format per library, single precision — the setting of
    the paper's Fig. 3a.
    """
    suite = suite if suite is not None else spmv_suite()
    backends = {
        "pyGinkgo": lambda i: PyGinkgoBackend(spec=NVIDIA_A100, seed=i),
        "PyTorch": lambda i: PyTorchBackend(spec=NVIDIA_A100, seed=i),
        "CuPy": lambda i: CupyBackend(spec=NVIDIA_A100, seed=i),
        "TensorFlow": lambda i: TensorFlowBackend(spec=NVIDIA_A100, seed=i),
    }
    series: dict = {name: [] for name in backends}
    for index, spec in enumerate(suite):
        matrix = spec.build()
        x = np.random.default_rng(index).random(matrix.shape[1]).astype(
            np.float32
        )
        base = _scipy_baseline_time(matrix, x, reps)
        for name, make in backends.items():
            t = _best_format_time(
                make(index), matrix, x, ("csr", "coo"), reps
            )
            series[name].append((matrix.nnz, base / t))
        spec.clear()
    return {
        "series": series,
        "text": format_series(
            series, x_label="nnz",
            title="Fig 3a: SpMV speedup vs SciPy (A100, fp32, best format)",
        ),
    }


# ----------------------------------------------------------------------
# Figure 3b — SpMV on the Xeon 8368, speedup vs SciPy across threads
# ----------------------------------------------------------------------
def fig3b_spmv_cpu(
    suite=None,
    threads=(1, 2, 4, 8, 16, 32),
    reps: int = DEFAULT_REPS,
) -> dict:
    """pyGinkgo-on-CPU speedup over SciPy for increasing thread counts."""
    suite = suite if suite is not None else spmv_suite()
    series: dict = {f"pyGinkgo {t}T": [] for t in threads}
    series["PyTorch 32T"] = []
    series["TensorFlow 32T"] = []
    for index, spec in enumerate(suite):
        matrix = spec.build()
        x = np.random.default_rng(index).random(matrix.shape[1]).astype(
            np.float32
        )
        base = _scipy_baseline_time(matrix, x, reps)
        for t in threads:
            backend = PyGinkgoBackend(
                spec=INTEL_XEON_8368, num_threads=t, seed=index
            )
            tt = _best_format_time(backend, matrix, x, ("csr",), reps)
            series[f"pyGinkgo {t}T"].append((matrix.nnz, base / tt))
        for name, cls in (
            ("PyTorch 32T", PyTorchBackend),
            ("TensorFlow 32T", TensorFlowBackend),
        ):
            backend = cls(spec=INTEL_XEON_8368, num_threads=32, seed=index)
            formats = ("coo",) if name.startswith("Tensor") else ("csr",)
            tt = _best_format_time(backend, matrix, x, formats, reps)
            series[name].append((matrix.nnz, base / tt))
        spec.clear()
    return {
        "series": series,
        "text": format_series(
            series, x_label="nnz",
            title="Fig 3b: SpMV speedup vs SciPy (Xeon 8368, fp32)",
        ),
    }


# ----------------------------------------------------------------------
# Figure 3c — solver time/iteration on the A100, speedup vs CuPy, fp64
# ----------------------------------------------------------------------
def fig3c_solver_gpu(
    suite=None,
    solvers=("cg", "cgs", "gmres"),
    iterations: int = 1000,
) -> dict:
    """Per-iteration solver speedup over CuPy (1000 iterations, fp64).

    Many of the paper's matrices do not converge without preconditioning,
    so — exactly as in the paper — the comparison is time per iteration at
    a fixed iteration budget.
    """
    suite = suite if suite is not None else solver_suite()
    series: dict = {s.upper(): [] for s in solvers}
    for index, spec in enumerate(suite):
        matrix = spec.build()
        b = np.ones(matrix.shape[0])
        for solver in solvers:
            gk = PyGinkgoBackend(spec=NVIDIA_A100, seed=index)
            cp = CupyBackend(spec=NVIDIA_A100, seed=index)
            r_gk = gk.run_solver(
                gk.prepare(matrix, "csr", np.float64), solver, b, iterations
            )
            r_cp = cp.run_solver(
                cp.prepare(matrix, "csr", np.float64), solver, b, iterations
            )
            series[solver.upper()].append(
                (
                    matrix.nnz,
                    r_cp["time_per_iteration"] / r_gk["time_per_iteration"],
                )
            )
        spec.clear()
    return {
        "series": series,
        "text": format_series(
            series, x_label="nnz",
            title=(
                "Fig 3c: solver time/iteration speedup vs CuPy "
                f"(A100, fp64, {iterations} iterations)"
            ),
        ),
    }


# ----------------------------------------------------------------------
# Figure 4 — representative matrices A-F, GPU and CPU speedups
# ----------------------------------------------------------------------
def fig4_representative(scale: float = 1.0, reps: int = DEFAULT_REPS) -> dict:
    """Speedups vs SciPy for the Table-2 matrices, on GPU and CPU."""
    suite = table2_suite(scale=scale)
    gpu_backends = {
        "pyGinkgo": PyGinkgoBackend,
        "PyTorch": PyTorchBackend,
        "CuPy": CupyBackend,
        "TensorFlow": TensorFlowBackend,
    }
    rows_gpu, rows_cpu = [], []
    for index, spec in enumerate(suite):
        matrix = spec.build()
        x = np.random.default_rng(index).random(matrix.shape[1]).astype(
            np.float32
        )
        base = _scipy_baseline_time(matrix, x, reps)
        gpu_row = [spec.label, spec.name, matrix.nnz]
        for name, cls in gpu_backends.items():
            backend = cls(spec=NVIDIA_A100, seed=index)
            fmts = (
                ("coo",) if name == "TensorFlow" else ("csr", "coo")
            )
            t = _best_format_time(backend, matrix, x, fmts, reps)
            gpu_row.append(base / t)
        rows_gpu.append(tuple(gpu_row))

        # CuPy is CUDA-only; the CPU panel compares the frameworks that
        # have CPU sparse kernels (as in the paper's Fig. 4b).
        cpu_backends = {
            k: v for k, v in gpu_backends.items() if k != "CuPy"
        }
        cpu_row = [spec.label, spec.name, matrix.nnz]
        for name, cls in cpu_backends.items():
            backend = cls(
                spec=INTEL_XEON_8368, num_threads=32, seed=index
            )
            fmts = ("coo",) if name == "TensorFlow" else ("csr",)
            t = _best_format_time(backend, matrix, x, fmts, reps)
            cpu_row.append(base / t)
        rows_cpu.append(tuple(cpu_row))
        spec.clear()
    headers = ["label", "matrix", "nnz"] + list(gpu_backends)
    cpu_headers = ["label", "matrix", "nnz"] + [
        k for k in gpu_backends if k != "CuPy"
    ]
    return {
        "rows_gpu": rows_gpu,
        "rows_cpu": rows_cpu,
        "text": (
            format_table(
                headers, rows_gpu,
                title="Fig 4a: speedup vs SciPy, representative matrices (A100)",
            )
            + "\n\n"
            + format_table(
                cpu_headers, rows_cpu,
                title="Fig 4b: speedup vs SciPy, representative matrices "
                "(Xeon 8368, 32 threads)",
            )
        ),
    }


# ----------------------------------------------------------------------
# Figure 5a — pyGinkgo SpMV GFLOP/s, A100 vs MI100, CSR vs COO
# ----------------------------------------------------------------------
def fig5a_gpu_formats(suite=None, reps: int = DEFAULT_REPS) -> dict:
    """pyGinkgo SpMV throughput across devices and formats."""
    suite = suite if suite is not None else overhead_suite()
    combos = [
        ("A100 CSR", NVIDIA_A100, "csr"),
        ("A100 COO", NVIDIA_A100, "coo"),
        ("MI100 CSR", AMD_MI100, "csr"),
        ("MI100 COO", AMD_MI100, "coo"),
    ]
    series: dict = {name: [] for name, _, _ in combos}
    for index, spec in enumerate(suite):
        matrix = spec.build()
        x = np.random.default_rng(index).random(matrix.shape[1]).astype(
            np.float32
        )
        for name, device, fmt in combos:
            backend = PyGinkgoBackend(spec=device, seed=index)
            handle = backend.prepare(matrix, fmt, np.float32)
            t = measure_spmv(backend, handle, x, repetitions=reps)
            series[name].append((matrix.nnz, spmv_gflops(matrix.nnz, t)))
        spec.clear()
    return {
        "series": series,
        "text": format_series(
            series, x_label="nnz",
            title="Fig 5a: pyGinkgo SpMV GFLOP/s (fp32)",
        ),
    }


# ----------------------------------------------------------------------
# Figures 5b/5c — binding overhead vs native Ginkgo
# ----------------------------------------------------------------------
#: Per-span timer noise (seconds): the paper measures pyGinkgo with
#: Python's ``time`` module and Ginkgo with C++ ``steady_clock``, "both
#: after explicit GPU synchronization", and attributes part of the
#: measured difference (including negative values) to these differing
#: timer implementations and synchronisation effects.
TIMER_SIGMA = {"NVIDIA A100": 2.0e-6, "AMD Instinct MI100": 5.0e-6}


def _overhead_measurements(suite, reps: int) -> list:
    combos = [
        ("A100 CSR", NVIDIA_A100, "csr"),
        ("A100 COO", NVIDIA_A100, "coo"),
        ("MI100 CSR", AMD_MI100, "csr"),
        ("MI100 COO", AMD_MI100, "coo"),
    ]
    timer_rng = np.random.default_rng(55)
    records = []
    for index, spec in enumerate(suite):
        matrix = spec.build()
        x = np.random.default_rng(index).random(matrix.shape[1]).astype(
            np.float32
        )
        for name, device, fmt in combos:
            bound = PyGinkgoBackend(spec=device, seed=2 * index)
            native = GinkgoNativeBackend(spec=device, seed=2 * index + 1)
            hb = bound.prepare(matrix, fmt, np.float32)
            hn = native.prepare(matrix, fmt, np.float32)
            sigma = TIMER_SIGMA.get(device.name, 1.0e-6) / np.sqrt(reps)
            t_py = measure_spmv(
                bound, hb, x, repetitions=reps
            ) + sigma * float(timer_rng.standard_normal())
            t_native = measure_spmv(
                native, hn, x, repetitions=reps
            ) + sigma * float(timer_rng.standard_normal())
            p_py = spmv_gflops(matrix.nnz, t_py)
            p_native = spmv_gflops(matrix.nnz, t_native)
            records.append(
                {
                    "combo": name,
                    "nnz": matrix.nnz,
                    "perf_diff_percent": (p_native - p_py) / p_native * 100,
                    "time_diff": t_py - t_native,
                }
            )
        spec.clear()
    return records


def fig5b_overhead(suite=None, reps: int = 20) -> dict:
    """Relative performance difference pyGinkgo vs native Ginkgo (%)."""
    suite = suite if suite is not None else overhead_suite()
    records = _overhead_measurements(suite, reps)
    series: dict = {}
    for rec in records:
        series.setdefault(rec["combo"], []).append(
            (rec["nnz"], rec["perf_diff_percent"])
        )
    return {
        "series": series,
        "records": records,
        "text": format_series(
            series, x_label="nnz",
            title="Fig 5b: relative performance difference vs native "
            "Ginkgo (%)",
        ),
    }


def profile_attribution(suite=None, reps: int = DEFAULT_REPS) -> dict:
    """Binding overhead decomposed by the span profiler, not differencing.

    Fig. 5b infers the binding cost by subtracting a native run from a
    bound run — two measurements, two noise draws.  The profiler answers
    the same question from *one* run: every crossing is a tagged leaf
    span, so the attribution table reports the binding share (and the
    kernel/stall split) directly, per matrix.
    """
    from repro.ginkgo.log import ProfilerHook

    suite = suite if suite is not None else overhead_suite()
    combos = [
        ("A100 CSR", NVIDIA_A100, "csr"),
        ("MI100 CSR", AMD_MI100, "csr"),
    ]
    records = []
    for index, spec in enumerate(suite):
        matrix = spec.build()
        x = np.random.default_rng(index).random(matrix.shape[1]).astype(
            np.float32
        )
        for name, device, fmt in combos:
            backend = PyGinkgoBackend(spec=device, seed=index)
            handle = backend.prepare(matrix, fmt, np.float32)
            prof = ProfilerHook(name=f"spmv-{spec.name}-{name}")
            prof.attach(backend.clock)
            try:
                measure_spmv(backend, handle, x, repetitions=reps)
            finally:
                prof.detach(backend.clock)
            table = prof.attribution()
            records.append(
                {
                    "combo": name,
                    "nnz": matrix.nnz,
                    "kernel": table.kernel_time,
                    "binding": table.binding_time,
                    "stall": table.stall_time,
                    "coverage": table.coverage,
                    "binding_percent": table.binding_fraction * 100,
                }
            )
        spec.clear()
    series: dict = {}
    for rec in records:
        series.setdefault(rec["combo"], []).append(
            (rec["nnz"], rec["binding_percent"])
        )
    return {
        "series": series,
        "records": records,
        "text": format_series(
            series, x_label="nnz",
            title="Binding share of SpMV time, from profiler attribution (%)",
        ),
    }


def fig5c_timediff(suite=None, reps: int = 3) -> dict:
    """Absolute time difference pyGinkgo minus native Ginkgo (seconds).

    Uses few repetitions per point so system noise is visible — the paper
    notes the difference "can sometimes be below zero due to variability
    from system noise".
    """
    suite = suite if suite is not None else overhead_suite()
    records = _overhead_measurements(suite, reps)
    series: dict = {}
    for rec in records:
        series.setdefault(rec["combo"], []).append(
            (rec["nnz"], rec["time_diff"])
        )
    return {
        "series": series,
        "records": records,
        "text": format_series(
            series, x_label="nnz",
            title="Fig 5c: SpMV time difference vs native Ginkgo (s)",
        ),
    }


# ----------------------------------------------------------------------
# Section 6.2.2 — CPU solver comparison vs SciPy
# ----------------------------------------------------------------------
def solver_cpu_comparison(
    suite=None,
    solvers=("cg", "cgs", "gmres"),
    iterations: int = 200,
    threads: int = 32,
) -> dict:
    """pyGinkgo (OpenMP) vs SciPy per-iteration solver times (fp64).

    The paper reports pyGinkgo around 3-8x faster than SciPy for CG on
    the same systems (section 6.2.2).
    """
    suite = suite if suite is not None else solver_suite()
    series: dict = {s.upper(): [] for s in solvers}
    for index, spec in enumerate(suite):
        matrix = spec.build()
        b = np.ones(matrix.shape[0])
        for solver in solvers:
            gk = PyGinkgoBackend(
                spec=INTEL_XEON_8368, num_threads=threads, seed=index
            )
            sc = ScipyBackend(seed=index)
            r_gk = gk.run_solver(
                gk.prepare(matrix, "csr", np.float64), solver, b, iterations
            )
            r_sc = sc.run_solver(
                sc.prepare(matrix, "csr", np.float64), solver, b, iterations
            )
            series[solver.upper()].append(
                (
                    matrix.nnz,
                    r_sc["time_per_iteration"] / r_gk["time_per_iteration"],
                )
            )
        spec.clear()
    return {
        "series": series,
        "text": format_series(
            series, x_label="nnz",
            title=(
                "Sec 6.2.2: solver time/iteration speedup vs SciPy "
                f"(Xeon 8368, {threads} threads, fp64)"
            ),
        ),
    }


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table1_types() -> dict:
    """Table 1: available value and index types."""
    rows = [
        (size, value or "", index or "") for size, value, index in TABLE1
    ]
    return {
        "rows": rows,
        "text": format_table(
            ["Size (bytes)", "Value Type", "Index Type"],
            rows,
            title="Table 1: available data and index types",
        ),
    }


def table2_matrices(scale: float = 1.0) -> dict:
    """Table 2: the representative matrices and their attributes."""
    paper = {
        "A": (25503, 1.55e4),
        "B": (46772, 4.68e4),
        "C": (25187, 1.93e5),
        "D": (131072, 7.86e5),
        "E": (41092, 1.68e6),
        "F": (321671, 1.83e6),
    }
    rows = []
    for spec in table2_suite(scale=scale):
        stats = matrix_stats(spec.build())
        target_dim, target_nnz = paper[spec.label]
        rows.append(
            (
                spec.label,
                spec.name,
                stats["rows"],
                stats["nnz"],
                int(target_dim * scale),
                f"{target_nnz * scale:.2e}",
            )
        )
        spec.clear()
    return {
        "rows": rows,
        "text": format_table(
            ["Label", "Matrix", "Dimension", "NNZ", "Paper dim", "Paper NNZ"],
            rows,
            title=f"Table 2: test matrices (scale={scale})",
        ),
    }


def main() -> None:  # pragma: no cover - manual entry point
    """Print every table and figure at a reduced suite size."""
    print(table1_types()["text"], "\n")
    print(table2_matrices(scale=0.1)["text"], "\n")
    small_spmv = spmv_suite(count=10, max_nnz=1e6)
    small_solver = solver_suite(count=10, max_nnz=5e5)
    small_overhead = overhead_suite(count=10, max_nnz=2e6)
    print(fig3a_spmv_gpu(small_spmv)["text"], "\n")
    print(fig3b_spmv_cpu(spmv_suite(count=10, max_nnz=1e6))["text"], "\n")
    print(fig3c_solver_gpu(small_solver, iterations=100)["text"], "\n")
    print(fig4_representative(scale=0.05)["text"], "\n")
    print(fig5a_gpu_formats(small_overhead)["text"], "\n")
    print(fig5b_overhead(overhead_suite(count=10, max_nnz=2e6))["text"], "\n")
    print(fig5c_timediff(overhead_suite(count=10, max_nnz=2e6))["text"], "\n")
    print(solver_cpu_comparison(solver_suite(count=8, max_nnz=5e5),
                                iterations=50)["text"])


if __name__ == "__main__":  # pragma: no cover
    main()
