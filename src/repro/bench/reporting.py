"""Plain-text rendering of benchmark tables and figure series."""

from __future__ import annotations


def format_table(headers, rows, title: str = "") -> str:
    """Render an aligned ASCII table.

    Args:
        headers: Column names.
        rows: Iterable of row tuples; cells are stringified with ``str``
            (floats pre-format upstream).
        title: Optional heading line.
    """
    headers = [str(h) for h in headers]
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_series(series: dict, x_label: str = "x", title: str = "") -> str:
    """Render {name: [(x, y), ...]} figure series as aligned columns."""
    names = sorted(series)
    xs = sorted({x for points in series.values() for x, _ in points})
    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    headers = [x_label] + names
    rows = []
    for x in xs:
        row = [_cell(float(x))]
        for name in names:
            y = lookup[name].get(x)
            row.append("-" if y is None else _cell(float(y)))
        rows.append(row)
    return format_table(headers, rows, title=title)
