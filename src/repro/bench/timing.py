"""Timing utilities over the backends' simulated clocks."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Backend, MatrixHandle


def measure_spmv(
    backend: Backend,
    handle: MatrixHandle,
    x: np.ndarray,
    repetitions: int = 10,
    warmup: int = 2,
) -> float:
    """Average simulated seconds per SpMV over ``repetitions`` runs.

    Mirrors the paper's methodology: warm-up runs first, then the mean of
    timed repetitions, with device synchronisation folded into the clock.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    for _ in range(warmup):
        backend.spmv(handle, x)
    start = backend.clock.now
    for _ in range(repetitions):
        backend.spmv(handle, x)
    return (backend.clock.now - start) / repetitions


def measure_solver(
    backend: Backend,
    handle: MatrixHandle,
    solver: str,
    b: np.ndarray,
    iterations: int,
    **kwargs,
) -> dict:
    """Run a fixed-iteration solve; returns the backend's result dict."""
    return backend.run_solver(handle, solver, b, iterations, **kwargs)


def spmv_gflops(nnz: int, seconds: float) -> float:
    """Achieved GFLOP/s of one SpMV (2 flops per stored nonzero)."""
    if seconds <= 0:
        return 0.0
    return 2.0 * nnz / seconds / 1e9


def geometric_mean(values) -> float:
    """Geometric mean, ignoring non-positive entries."""
    arr = np.asarray([v for v in values if v > 0], dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    return float(np.exp(np.log(arr).mean()))
