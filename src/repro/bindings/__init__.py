"""Simulated pybind11 bindings layer (``pyGinkgo.pyGinkgoBindings``).

The paper's architecture (section 5.1) pre-instantiates every C++ template
combination and exposes it as a *type-suffixed* Python symbol —
``funcxx_int`` / ``funcxx_float`` — because Python has no function
overloading; the Pythonic layer on top dispatches to the right suffix from
the argument types.

This package reproduces that layer faithfully: :mod:`repro.bindings.generate`
auto-generates one callable per (class, value type, index type) combination
(``dense_float``, ``csr_double_int32``, ``cg_factory_double``, ...), and
every call through the layer charges the per-call binding overhead of
:class:`repro.perfmodel.BindingOverheadModel` to the executor's simulated
clock.  Disabling the overhead (``set_binding_overhead(False)``) models
calling native Ginkgo directly — the comparison behind Figs. 5b/5c.

Access symbols as attributes::

    from repro import bindings
    mat = bindings.csr_double_int32(exec_, size, row_ptrs, col_idxs, values)
"""

from repro.bindings.overhead import (
    binding_overhead,
    binding_overhead_enabled,
    charge_binding,
    device_family,
    reset_models,
    set_binding_overhead,
)
from repro.bindings.registry import BINDINGS, binding_names, get_binding
from repro.bindings import dispatch
from repro.bindings.dispatch import resolve, symbol_for

__all__ = [
    "BINDINGS",
    "binding_names",
    "binding_overhead",
    "binding_overhead_enabled",
    "charge_binding",
    "device_family",
    "dispatch",
    "get_binding",
    "reset_models",
    "resolve",
    "set_binding_overhead",
    "symbol_for",
]


def __getattr__(name: str):
    """Expose every generated binding as a module attribute."""
    try:
        return get_binding(name)
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None


def __dir__():
    return sorted(set(__all__) | set(binding_names()))
