"""Pre-resolved binding dispatch cache.

Every Pythonic-layer call used to re-derive the suffixed symbol name
(``f"{op}_{value}_{index}"``), re-hash it into :data:`~repro.bindings.registry.BINDINGS`,
and re-classify the executor's device family for the overhead model — all
on every call.  This module memoizes that resolution once per
``(op, value suffix, index suffix, device family)`` and hands back the
*same* bound wrapper from the registry, so the per-call binding-overhead
charge (``charge_binding`` inside the wrapper) is completely unchanged;
only the Python-side lookup work disappears.

The suffix maps are built locally by inverting the registry's
``VALUE_TYPES``/``INDEX_TYPES`` tables instead of importing
``repro.core.types`` (which would close an import cycle through the
``repro.core`` package ``__init__``).

Hits and misses are reported under the ``dispatch`` kind of
:mod:`repro.ginkgo.cachestats`; :func:`clear` resets the cache (the test
suite does this around every test).

The expression layer resolves through here too: eager operator
expressions use the ``apply``/``scal``/``axpy`` symbols (one resolve +
one crossing per operation), while a ``pg.deferred()`` flush resolves
``fused_region`` once per region — that single lookup standing in for
every operation the region replaced is exactly the amortisation
:mod:`repro.ginkgo.lazy` is built around.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.bindings import overhead
from repro.bindings.registry import INDEX_TYPES, VALUE_TYPES, get_binding
from repro.ginkgo import cachestats
from repro.ginkgo.accessor import VALUE_SUFFIX_ALIASES
from repro.ginkgo.exceptions import GinkgoError

#: numpy dtype -> C++-style suffix, inverted from the registry tables.
_VALUE_SUFFIXES = {np.dtype(dt): name for name, dt in VALUE_TYPES.items()}
_INDEX_SUFFIXES = {np.dtype(dt): name for name, dt in INDEX_TYPES.items()}

#: (op, value suffix, index suffix, device family) -> bound wrapper.
_CACHE: dict = {}
#: Guards misses so concurrent worker threads resolve each key once.
_LOCK = threading.Lock()


def _suffix(dtype, names: dict, inverted: dict, kind: str) -> str | None:
    """Normalise ``dtype`` (suffix string, numpy dtype, ...) to a suffix.

    Value types additionally accept every spelling in
    :data:`repro.ginkgo.accessor.VALUE_SUFFIX_ALIASES` (``"float32"``,
    ``"single"``, ...), so anything the config validator lets through
    resolves here, and a ``(working, storage)`` tuple for mixed-precision
    symbols: ``("double", np.float32)`` -> ``"double_float"`` (collapsing
    to the plain suffix when both precisions coincide).
    """
    if dtype is None:
        return None
    if isinstance(dtype, tuple):
        if kind != "value":
            raise GinkgoError(
                f"mixed-precision suffix tuples are only valid for value "
                f"types, not {kind}"
            )
        working, storage = dtype
        ws = _suffix(working, names, inverted, kind)
        ss = _suffix(storage, names, inverted, kind)
        return ws if ss is None or ss == ws else f"{ws}_{ss}"
    if isinstance(dtype, str):
        if dtype in names:
            return dtype
        if kind == "value":
            alias = VALUE_SUFFIX_ALIASES.get(dtype.lower())
            if alias is not None:
                return alias
        raise GinkgoError(
            f"unknown {kind} suffix {dtype!r}; available: {sorted(names)}"
        )
    dt = np.dtype(dtype)
    try:
        return inverted[dt]
    except KeyError:
        raise GinkgoError(
            f"unsupported {kind} dtype {dt}; supported: "
            f"{sorted(str(k) for k in inverted)}"
        ) from None


def symbol_for(op: str, value_dtype=None, index_dtype=None) -> str:
    """The suffixed registry symbol name for an operation.

    ``value_dtype``/``index_dtype`` accept a suffix string (``"double"``,
    ``"int32"``) or anything ``np.dtype`` accepts; ``None`` omits that
    suffix (untemplated symbols like ``"CUDA"`` pass both as ``None``).
    ``value_dtype`` may also be a ``(working, storage)`` tuple naming a
    mixed-precision symbol (``jacobi_apply_double_float``).
    """
    name = op
    vs = _suffix(value_dtype, VALUE_TYPES, _VALUE_SUFFIXES, "value")
    if vs is not None:
        name = f"{name}_{vs}"
    is_ = _suffix(index_dtype, INDEX_TYPES, _INDEX_SUFFIXES, "index")
    if is_ is not None:
        name = f"{name}_{is_}"
    return name


def resolve(op: str, value_dtype=None, index_dtype=None, exec_=None):
    """Resolve ``op`` to its bound registry wrapper, memoized.

    Args:
        op: Un-suffixed operation name (``"gmres_factory"``, ``"csr"``).
        value_dtype: Value type as suffix string or numpy dtype (or None).
        index_dtype: Index type as suffix string or numpy dtype (or None).
        exec_: Optional executor; when given, the cache key additionally
            pins the device family (pre-resolving the overhead-model
            routing) and hit/miss marks land on its simulated clock.

    Returns:
        The same callable :func:`repro.bindings.registry.get_binding`
        would return — including its per-call binding-overhead charge.
    """
    vs = _suffix(value_dtype, VALUE_TYPES, _VALUE_SUFFIXES, "value")
    is_ = _suffix(index_dtype, INDEX_TYPES, _INDEX_SUFFIXES, "index")
    family = overhead.device_family(exec_) if exec_ is not None else None
    key = (op, vs, is_, family)
    entry = _CACHE.get(key)
    hit = entry is not None
    if not hit:
        with _LOCK:
            entry = _CACHE.get(key)
            if entry is None:
                name = op
                if vs is not None:
                    name = f"{name}_{vs}"
                if is_ is not None:
                    name = f"{name}_{is_}"
                try:
                    entry = get_binding(name)
                except KeyError:
                    raise GinkgoError(
                        f"no binding symbol {name!r} for op {op!r}"
                    ) from None
                # Warm the overhead model for the family so the first
                # bound call finds it pre-resolved (the jitter stream is
                # untouched: models are created lazily either way, and
                # sampling only happens inside charge_binding).
                if exec_ is not None:
                    overhead.overhead_model_for(exec_)
                _CACHE[key] = entry
    cachestats.record(
        "dispatch",
        hit,
        clock=exec_.clock if exec_ is not None else None,
        op=op,
        symbol=getattr(entry, "_binding_tag", op),
    )
    return entry


def cache_size() -> int:
    """Number of pre-resolved (op, types, family) entries."""
    return len(_CACHE)


def clear() -> None:
    """Drop all pre-resolved entries (tests call this between cases)."""
    _CACHE.clear()
