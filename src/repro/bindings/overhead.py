"""Per-call binding-overhead accounting.

Every crossing of the simulated Python/C++ boundary costs a small fixed
amount (argument conversion, GIL, smart-pointer marshalling).  The charge
lands on the executor's simulated clock, so it shows up in measured spans
exactly like it would with real pybind11 bindings.  A global switch turns
the charge off to model native C++ calls (the Ginkgo side of Fig. 5b/5c).
"""

from __future__ import annotations

from repro.perfmodel import BindingOverheadModel

_ENABLED = True

#: One shared model per device family so the jitter streams are stable.
_MODELS: dict[str, BindingOverheadModel] = {}


def set_binding_overhead(enabled: bool) -> None:
    """Globally enable/disable binding-overhead charging."""
    global _ENABLED
    _ENABLED = bool(enabled)


def binding_overhead_enabled() -> bool:
    """Whether binding calls currently charge overhead."""
    return _ENABLED


def _device_family(exec_) -> str:
    if exec_.spec.kind == "cpu":
        return "cpu"
    return "gpu-amd" if "AMD" in exec_.spec.name else "gpu-nvidia"


def overhead_model_for(exec_) -> BindingOverheadModel:
    """The (shared) overhead model for an executor's device family."""
    family = _device_family(exec_)
    if family not in _MODELS:
        _MODELS[family] = BindingOverheadModel.for_device(family)
    return _MODELS[family]


def charge_binding(exec_, num_arguments: int = 2) -> float:
    """Charge one binding crossing to the executor clock; returns seconds."""
    if not _ENABLED or exec_ is None:
        return 0.0
    overhead = overhead_model_for(exec_).sample(num_arguments)
    exec_.clock.advance(overhead)
    return overhead


def reset_models() -> None:
    """Drop the cached models (restarts their jitter streams)."""
    _MODELS.clear()
