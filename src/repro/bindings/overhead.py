"""Per-call binding-overhead accounting.

Every crossing of the simulated Python/C++ boundary costs a small fixed
amount (argument conversion, GIL, smart-pointer marshalling).  The charge
lands on the executor's simulated clock, so it shows up in measured spans
exactly like it would with real pybind11 bindings.  A global switch turns
the charge off to model native C++ calls (the Ginkgo side of Fig. 5b/5c).

The module-level state (:data:`_ENABLED`, :data:`_MODELS`) is process
global; use the :func:`binding_overhead` context manager for scoped
toggling and :func:`reset_models` to restore the pristine state (the test
suite does this automatically around every test).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.perfmodel import BindingOverheadModel

#: Default state of the global charge switch.
_DEFAULT_ENABLED = True

_ENABLED = _DEFAULT_ENABLED

#: One shared model per device family so the jitter streams are stable.
_MODELS: dict[str, BindingOverheadModel] = {}

#: Guards model creation and jitter-stream draws: the models (and their
#: RNG state) are shared across every executor of a family, so the
#: service layer's concurrent workers must serialize their draws.  The
#: draw *order* under true concurrency still follows thread timing, so
#: virtual durations may differ in the last digits between a threaded
#: and a sequential run of the same schedule; solutions never do.
_MODELS_LOCK = threading.Lock()


def set_binding_overhead(enabled: bool) -> None:
    """Globally enable/disable binding-overhead charging."""
    global _ENABLED
    _ENABLED = bool(enabled)


def binding_overhead_enabled() -> bool:
    """Whether binding calls currently charge overhead."""
    return _ENABLED


@contextmanager
def binding_overhead(enabled: bool):
    """Scoped enable/disable of binding-overhead charging.

    Restores the previous state on exit, so nested uses and exceptions
    cannot leak the global switch across tests or benchmark runs::

        with binding_overhead(False):   # model native C++ calls
            matrix.apply(b, x)
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = previous


def device_family(exec_) -> str:
    """Classify an executor into a binding-overhead device family.

    The classification is a pure function of the executor's device spec,
    so the result is memoized on the executor itself (it survives
    :func:`reset_models`, which only restarts the jitter streams).
    """
    family = getattr(exec_, "_binding_family", None)
    if family is None:
        family = _classify_family(exec_)
        try:
            exec_._binding_family = family
        except AttributeError:  # exotic executors with __slots__
            pass
    return family


# Backwards-compatible alias of the pre-memoization name.
_device_family = device_family


def _classify_family(exec_) -> str:
    """Uncached family classification.

    Routes through the device spec's ``kind``/``vendor`` fields — never
    the display name, which need not contain the vendor string (e.g.
    ``"Instinct MI250X"``).
    """
    spec = exec_.spec
    if spec.kind == "cpu":
        return "cpu"
    vendor = (spec.vendor or "").lower()
    if vendor == "amd":
        return "gpu-amd"
    if vendor == "nvidia":
        return "gpu-nvidia"
    # Specs without a vendor tag (user-defined): fall back to the name,
    # defaulting to the NVIDIA calibration.
    return "gpu-amd" if "amd" in spec.name.lower() else "gpu-nvidia"


def overhead_model_for(exec_) -> BindingOverheadModel:
    """The (shared) overhead model for an executor's device family."""
    family = device_family(exec_)
    with _MODELS_LOCK:
        if family not in _MODELS:
            _MODELS[family] = BindingOverheadModel.for_device(family)
        return _MODELS[family]


def charge_binding(exec_, num_arguments: int = 2, tag: str | None = None) -> float:
    """Charge one binding crossing to the executor clock; returns seconds.

    Args:
        exec_: Executor whose clock receives the charge (None: no-op).
        num_arguments: Converted-argument count of the crossing.
        tag: Call-site tag recorded on the trace span (the suffixed
            binding symbol name, e.g. ``"gmres_factory_double"``).
    """
    if not _ENABLED or exec_ is None:
        return 0.0
    model = overhead_model_for(exec_)
    with _MODELS_LOCK:
        overhead = model.sample(num_arguments)
    exec_.clock.advance(
        overhead,
        category="binding",
        label=tag or "binding_call",
        num_arguments=num_arguments,
    )
    return overhead


def reset_models() -> None:
    """Restore pristine module state.

    Drops the cached models (restarting their jitter streams) *and*
    restores the global enable switch, so a test or benchmark that
    flipped :func:`set_binding_overhead` cannot break the same-seed
    determinism of whatever runs next.
    """
    global _ENABLED
    _MODELS.clear()
    _ENABLED = _DEFAULT_ENABLED
