"""Auto-generated type-suffixed binding symbols.

Reproduces the paper's pre-instantiation scheme (section 5.1): for every
(value type x index type) combination the C++ side would instantiate, a
suffixed Python callable exists here.  Value-type suffixes follow Ginkgo's
C++ names (``half``/``float``/``double``); index suffixes are
``int32``/``int64``.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.bindings.overhead import charge_binding
from repro.ginkgo.batch import (
    BatchBicgstab,
    BatchCg,
    BatchCsr,
    BatchDense,
    BatchGmres,
    BatchJacobi,
    BatchLowerTrs,
    BatchUpperTrs,
)
from repro.ginkgo.distributed import (
    DistributedCg,
    DistributedGmres,
    DistributedPipelinedCg,
    DistributedSStepGmres,
)
from repro.ginkgo.distributed import Matrix as DistributedMatrix
from repro.ginkgo.distributed import Vector as DistributedVector
from repro.ginkgo.executor import (
    CudaExecutor,
    HipExecutor,
    OmpExecutor,
    ReferenceExecutor,
)
from repro.ginkgo.dim import Dim
from repro.ginkgo.matrix import Coo, Csr, Dense, Ell, Hybrid, Sellp
from repro.ginkgo.mtx_io import read_mtx
from repro.ginkgo.preconditioner import Ic, Ilu, Isai, Jacobi
from repro.ginkgo.multigrid import Pgm
from repro.ginkgo.solver import (
    Bicg,
    Bicgstab,
    CbGmres,
    Cg,
    Cgs,
    Direct,
    Fcg,
    Gmres,
    Idr,
    Ir,
    LowerTrs,
    Minres,
    UpperTrs,
)

#: C++-style value-type suffix -> numpy dtype (paper Table 1).
VALUE_TYPES = {
    "half": np.float16,
    "float": np.float32,
    "double": np.float64,
}

#: Index-type suffix -> numpy dtype (paper Table 1).
INDEX_TYPES = {
    "int32": np.int32,
    "int64": np.int64,
}

#: Batched solver factories (``gko::batch::solver``): one binding
#: crossing sets up a whole K-system solve.
_BATCH_SOLVER_FACTORIES = {
    "batch_cg": BatchCg,
    "batch_bicgstab": BatchBicgstab,
    "batch_gmres": BatchGmres,
}

#: Distributed solver factories (``gko::experimental::distributed``):
#: generated against a distributed Matrix, not a scalar format.
_DISTRIBUTED_SOLVER_FACTORIES = {
    "distributed_cg": DistributedCg,
    "distributed_gmres": DistributedGmres,
    "distributed_pipelined_cg": DistributedPipelinedCg,
    "distributed_sstep_gmres": DistributedSStepGmres,
}

_SOLVER_FACTORIES = {
    "cg": Cg,
    "fcg": Fcg,
    "cgs": Cgs,
    "bicg": Bicg,
    "bicgstab": Bicgstab,
    "gmres": Gmres,
    "cb_gmres": CbGmres,
    "idr": Idr,
    "minres": Minres,
    "ir": Ir,
}


def _bound(func, num_arguments: int):
    """Wrap an engine entry point with binding-overhead accounting.

    The first positional argument of every binding is the executor, which
    is where the crossing cost is charged.  The crossing is tagged with
    the registry symbol name (``wrapper._binding_tag``, filled in by
    :func:`_build_registry`), so profiler traces show *which* binding was
    crossed, not just that one was.
    """

    def wrapper(exec_, *args, **kwargs):
        charge_binding(
            exec_,
            num_arguments,
            tag=getattr(wrapper, "_binding_tag", wrapper.__name__),
        )
        return func(exec_, *args, **kwargs)

    wrapper.__name__ = getattr(func, "__name__", "binding")
    wrapper.__doc__ = func.__doc__
    wrapper._is_binding = True
    return wrapper


def _make_dense(value_dtype):
    def dense(exec_, data):
        data = np.asarray(data, dtype=value_dtype)
        return Dense(exec_, data)

    dense.__doc__ = f"Create a Dense matrix with {np.dtype(value_dtype).name} values."
    return dense


def _make_dense_empty(value_dtype):
    def dense_empty(exec_, rows, cols=1):
        return Dense.zeros(exec_, (int(rows), int(cols)), value_dtype)

    dense_empty.__doc__ = (
        f"Allocate a zero Dense matrix with {np.dtype(value_dtype).name} values."
    )
    return dense_empty


def _make_sparse(cls, value_dtype, index_dtype):
    def factory(exec_, scipy_matrix, **kwargs):
        return cls.from_scipy(
            exec_,
            scipy_matrix,
            value_dtype=value_dtype,
            index_dtype=index_dtype,
            **kwargs,
        )

    factory.__doc__ = (
        f"Create a {cls.__name__} matrix "
        f"({np.dtype(value_dtype).name} values, "
        f"{np.dtype(index_dtype).name} indices) from a SciPy matrix."
    )
    return factory


def _make_read(cls, value_dtype, index_dtype):
    def reader(exec_, path, **kwargs):
        return cls.from_scipy(
            exec_,
            read_mtx(path),
            value_dtype=value_dtype,
            index_dtype=index_dtype,
            **kwargs,
        )

    reader.__doc__ = (
        f"Read a MatrixMarket file into a {cls.__name__} matrix "
        f"({np.dtype(value_dtype).name}/{np.dtype(index_dtype).name})."
    )
    return reader


def _make_apply(value_dtype):
    def apply(exec_, op, operand):
        out = Dense.empty(
            exec_,
            Dim(op.size.rows, operand.size.cols),
            np.promote_types(getattr(op, "dtype", value_dtype), operand.dtype),
        )
        op.apply(operand, out)
        return out

    apply.__doc__ = (
        f"Apply a LinOp to a Dense operand, returning a fresh "
        f"{np.dtype(value_dtype).name} result (``op @ x``)."
    )
    return apply


def _make_scal(value_dtype):
    def scal(exec_, alpha, operand):
        out = operand.clone()
        out.scale(alpha)
        return out

    scal.__doc__ = (
        f"Out-of-place ``alpha * x`` on {np.dtype(value_dtype).name} values."
    )
    return scal


def _make_axpy(value_dtype):
    def axpy(exec_, alpha, x, y):
        out = y.clone()
        out.add_scaled(alpha, x)
        return out

    axpy.__doc__ = (
        f"Out-of-place ``y + alpha * x`` on {np.dtype(value_dtype).name} "
        f"values."
    )
    return axpy


def _make_fused_region(value_dtype):
    def fused_region(exec_, plan):
        return plan()

    fused_region.__doc__ = (
        f"Execute one lazily-recorded fused region "
        f"({np.dtype(value_dtype).name} values): a single crossing covers "
        f"every operation the flush collapsed into the region."
    )
    return fused_region


def _make_mixed_apply(op: str, working_dtype, storage_dtype):
    def mixed_apply(exec_, plan):
        return plan()

    mixed_apply.__doc__ = (
        f"Execute one mixed-precision {op} "
        f"({np.dtype(working_dtype).name} arithmetic over "
        f"{np.dtype(storage_dtype).name} storage): the accessor converts "
        f"at read, so a single crossing covers the whole apply."
    )
    return mixed_apply


#: Accessor-backed apply kernels that exist in a mixed working/storage
#: precision variant (``{op}_{working}_{storage}`` symbols).
_MIXED_APPLY_OPS = ("jacobi_apply", "trsv_apply", "isai_apply")


def _make_batch_dense(value_dtype):
    def batch_dense(exec_, items):
        arrays = [np.asarray(item, dtype=value_dtype) for item in items]
        return BatchDense.from_dense_list(exec_, arrays)

    batch_dense.__doc__ = (
        f"Stack array-likes into a BatchDense with "
        f"{np.dtype(value_dtype).name} values."
    )
    return batch_dense


def _make_batch_csr(value_dtype, index_dtype):
    def batch_csr(exec_, scipy_matrices, **kwargs):
        return BatchCsr.from_scipy_list(
            exec_,
            scipy_matrices,
            value_dtype=value_dtype,
            index_dtype=index_dtype,
            **kwargs,
        )

    batch_csr.__doc__ = (
        f"Stack SciPy matrices sharing one pattern into a BatchCsr "
        f"({np.dtype(value_dtype).name} values, "
        f"{np.dtype(index_dtype).name} indices)."
    )
    return batch_csr


def _make_distributed_matrix(value_dtype, index_dtype):
    def factory(exec_, partition, data, **kwargs):
        return DistributedMatrix(
            exec_,
            partition,
            data,
            value_dtype=value_dtype,
            index_dtype=index_dtype,
            **kwargs,
        )

    factory.__doc__ = (
        f"Distribute a SciPy matrix over a Partition "
        f"({np.dtype(value_dtype).name} values, "
        f"{np.dtype(index_dtype).name} indices)."
    )
    return factory


def _make_distributed_vector(value_dtype):
    def factory(exec_, partition, data=None, **kwargs):
        if data is None:
            return DistributedVector.zeros(
                exec_, partition, dtype=value_dtype, **kwargs
            )
        data = np.asarray(data, dtype=value_dtype)
        return DistributedVector(exec_, partition, data, **kwargs)

    factory.__doc__ = (
        f"Create a distributed Vector with "
        f"{np.dtype(value_dtype).name} values (zeros when no data given)."
    )
    return factory


def _make_batch_jacobi():
    def factory(exec_, max_block_size: int = 1):
        return BatchJacobi(max_block_size=max_block_size)

    factory.__doc__ = "Create a BatchJacobi preconditioner factory."
    return factory


def _make_solver_factory(cls):
    def factory(exec_, *args, **kwargs):
        return cls(exec_, *args, **kwargs)

    factory.__doc__ = f"Create a {cls.__name__} solver factory."
    return factory


def _build_registry() -> dict:
    registry: dict = {}

    # Executor classes are bound once, not per type (they are untemplated).
    registry["CUDA"] = CudaExecutor
    registry["HIP"] = HipExecutor
    registry["Omp"] = OmpExecutor
    registry["Reference"] = ReferenceExecutor

    for vt_name, vt in VALUE_TYPES.items():
        registry[f"dense_{vt_name}"] = _bound(_make_dense(vt), 2)
        registry[f"dense_empty_{vt_name}"] = _bound(_make_dense_empty(vt), 3)
        registry[f"apply_{vt_name}"] = _bound(_make_apply(vt), 3)
        registry[f"scal_{vt_name}"] = _bound(_make_scal(vt), 3)
        registry[f"axpy_{vt_name}"] = _bound(_make_axpy(vt), 4)
        registry[f"fused_region_{vt_name}"] = _bound(_make_fused_region(vt), 2)
        registry[f"batch_dense_{vt_name}"] = _bound(_make_batch_dense(vt), 2)
        for solver_name, solver_cls in _SOLVER_FACTORIES.items():
            registry[f"{solver_name}_factory_{vt_name}"] = _bound(
                _make_solver_factory(solver_cls), 3
            )
        for solver_name, solver_cls in _BATCH_SOLVER_FACTORIES.items():
            registry[f"{solver_name}_factory_{vt_name}"] = _bound(
                _make_solver_factory(solver_cls), 3
            )
        for solver_name, solver_cls in _DISTRIBUTED_SOLVER_FACTORIES.items():
            registry[f"{solver_name}_factory_{vt_name}"] = _bound(
                _make_solver_factory(solver_cls), 3
            )
        registry[f"distributed_vector_{vt_name}"] = _bound(
            _make_distributed_vector(vt), 3
        )
        registry[f"batch_jacobi_factory_{vt_name}"] = _bound(
            _make_batch_jacobi(), 2
        )
        registry[f"batch_lower_trs_factory_{vt_name}"] = _bound(
            _make_solver_factory(BatchLowerTrs), 2
        )
        registry[f"batch_upper_trs_factory_{vt_name}"] = _bound(
            _make_solver_factory(BatchUpperTrs), 2
        )
        registry[f"direct_factory_{vt_name}"] = _bound(
            _make_solver_factory(Direct), 1
        )
        registry[f"lower_trs_factory_{vt_name}"] = _bound(
            _make_solver_factory(LowerTrs), 2
        )
        registry[f"upper_trs_factory_{vt_name}"] = _bound(
            _make_solver_factory(UpperTrs), 2
        )
        registry[f"jacobi_factory_{vt_name}"] = _bound(
            _make_solver_factory(Jacobi), 2
        )
        registry[f"ilu_factory_{vt_name}"] = _bound(
            _make_solver_factory(Ilu), 1
        )
        registry[f"ic_factory_{vt_name}"] = _bound(_make_solver_factory(Ic), 1)
        registry[f"isai_factory_{vt_name}"] = _bound(
            _make_solver_factory(Isai), 2
        )
        registry[f"multigrid_factory_{vt_name}"] = _bound(
            _make_solver_factory(Pgm), 2
        )
        for it_name, it in INDEX_TYPES.items():
            for cls, prefix in (
                (Csr, "csr"),
                (Coo, "coo"),
                (Ell, "ell"),
                (Sellp, "sellp"),
                (Hybrid, "hybrid"),
            ):
                registry[f"{prefix}_{vt_name}_{it_name}"] = _bound(
                    _make_sparse(cls, vt, it), 3
                )
                registry[f"read_{prefix}_{vt_name}_{it_name}"] = _bound(
                    _make_read(cls, vt, it), 2
                )
            registry[f"batch_csr_{vt_name}_{it_name}"] = _bound(
                _make_batch_csr(vt, it), 3
            )
            registry[f"distributed_matrix_{vt_name}_{it_name}"] = _bound(
                _make_distributed_matrix(vt, it), 3
            )
    # Mixed-precision accessor kernels: one symbol per (working, storage)
    # pair with distinct precisions, mirroring Ginkgo's cross-precision
    # instantiations.  Uniform applies keep using the operator's regular
    # path, so these never fire on the default route.
    for wt_name, wt in VALUE_TYPES.items():
        for st_name, st in VALUE_TYPES.items():
            if wt_name == st_name:
                continue
            for op in _MIXED_APPLY_OPS:
                registry[f"{op}_{wt_name}_{st_name}"] = _bound(
                    _make_mixed_apply(op, wt, st), 2
                )
    for name, func in registry.items():
        if getattr(func, "_is_binding", False):
            func._binding_tag = name
    return registry


BINDINGS: dict = _build_registry()


def get_binding(name: str):
    """Look up one generated binding symbol by its suffixed name."""
    return BINDINGS[name]


def binding_names() -> list:
    """All generated binding symbol names (sorted)."""
    return sorted(BINDINGS)
