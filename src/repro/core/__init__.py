"""pyGinkgo's Pythonic API layer (the paper's primary contribution).

Implements the user-facing entry points of the paper's Listings 1 and 2 —
``device``, ``read``, ``as_tensor``, ``array``, ``solve``, the
``solver``/``preconditioner`` namespaces — plus the pure-Python algorithms
(Rayleigh-Ritz, Lanczos/Arnoldi eigensolvers) built from operator
primitives, and NumPy/SciPy interoperability.
"""

from repro.core import batch_api as batch
from repro.core import distributed_api as distributed
from repro.core import preconditioner_api as preconditioner
from repro.core import solver_api as solver
from repro.core.batch_api import BatchSolverHandle
from repro.core.device import clear_device_cache, device
from repro.core.eigensolvers import arnoldi, lanczos, power_iteration
from repro.core.interop import (
    from_numpy,
    from_scipy,
    shares_memory,
    to_numpy,
    to_scipy,
)
from repro.core.io import matrix, read, write
from repro.core.profile import profile
from repro.core.rayleigh_ritz import (
    RitzPairs,
    orthonormalize,
    rayleigh_ritz,
    rayleigh_ritz_eigensolver,
)
from repro.core.resilient import (
    BatchResilienceReport,
    CircuitBreaker,
    FallbackChain,
    ResilienceReport,
    RetryPolicy,
    resilient_batch_solve,
    resilient_solve,
)
from repro.core.solve import (
    build_config,
    config_solver,
    config_to_json,
    solve,
)
from repro.core.solver_api import SolverHandle
from repro.core.tensor import Tensor, array, as_tensor
from repro.core.types import TABLE1, index_dtype, value_dtype
from repro.ginkgo import lazy
from repro.ginkgo.lazy import DeferredTrace, LazyExpr, deferred

__all__ = [
    "BatchResilienceReport",
    "BatchSolverHandle",
    "CircuitBreaker",
    "FallbackChain",
    "ResilienceReport",
    "RetryPolicy",
    "RitzPairs",
    "SolverHandle",
    "TABLE1",
    "Tensor",
    "arnoldi",
    "array",
    "as_tensor",
    "batch",
    "build_config",
    "clear_device_cache",
    "config_solver",
    "config_to_json",
    "DeferredTrace",
    "LazyExpr",
    "deferred",
    "device",
    "distributed",
    "lazy",
    "from_numpy",
    "from_scipy",
    "index_dtype",
    "lanczos",
    "matrix",
    "orthonormalize",
    "power_iteration",
    "preconditioner",
    "profile",
    "rayleigh_ritz",
    "rayleigh_ritz_eigensolver",
    "read",
    "resilient_batch_solve",
    "resilient_solve",
    "shares_memory",
    "solve",
    "solver",
    "to_numpy",
    "to_scipy",
    "value_dtype",
    "write",
]
