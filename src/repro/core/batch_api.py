"""The ``pg.batch`` namespace: batched solver bindings.

Mirrors ``pg.solver`` for many small systems at once: each function
resolves the type-suffixed batched factory through the binding layer
(one binding crossing per batch, not per system), generates it on the
stacked system matrix, and returns a :class:`BatchSolverHandle` whose
``apply(b, x)`` returns ``(loggers, x)`` — one convergence logger per
system, so per-system diagnostics keep the scalar API's shape.
"""

from __future__ import annotations

import numpy as np

from repro import bindings
from repro.core.types import value_dtype
from repro.ginkgo.batch.matrix import BatchCsr, BatchDense
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.log import ConvergenceLogger
from repro.ginkgo.stop import Iteration, ResidualNorm


def _unwrap(operand) -> BatchDense:
    if isinstance(operand, BatchDense):
        return operand
    raise GinkgoError(
        f"expected a BatchDense operand, got {type(operand).__name__}"
    )


def matrices(device, scipy_matrices, value_dtype=None, index_dtype=np.int32):
    """Stack SciPy matrices sharing one sparsity pattern into a BatchCsr."""
    binding = bindings.resolve("batch_csr", value_dtype or np.float64,
                               index_dtype, exec_=device)
    return binding(device, scipy_matrices)


def vectors(device, arrays, value_dtype=np.float64) -> BatchDense:
    """Stack equally-shaped array-likes into a BatchDense."""
    binding = bindings.resolve("batch_dense", value_dtype, exec_=device)
    return binding(device, arrays)


def zeros_like(operand: BatchDense) -> BatchDense:
    """A zero BatchDense with ``operand``'s batch shape and dtype."""
    b = _unwrap(operand)
    return BatchDense.zeros(b.executor, b.num_systems, b.size, b.dtype)


class BatchSolverHandle:
    """A generated batched solver with pyGinkgo's apply contract.

    ``apply(b, x)`` solves all systems in place on ``x`` (the initial
    guesses) and returns ``(loggers, x)``: one
    :class:`~repro.ginkgo.log.ConvergenceLogger` per system — each
    holding exactly the history a scalar solve of that system would
    produce — and the stacked solution.  The full per-system stopping
    record is also available as :attr:`status` after the solve.
    """

    def __init__(self, solver) -> None:
        self._solver = solver
        self._loggers = [
            ConvergenceLogger() for _ in range(solver.num_systems)
        ]
        for k, logger in enumerate(self._loggers):
            solver.add_system_logger(k, logger)

    @property
    def solver(self):
        """The underlying engine batch solver."""
        return self._solver

    @property
    def num_systems(self) -> int:
        return self._solver.num_systems

    @property
    def loggers(self) -> list:
        return self._loggers

    @property
    def status(self):
        """Per-system stopping record of the last ``apply``."""
        return self._solver.status

    @property
    def num_iterations(self) -> np.ndarray:
        """Per-system iteration counts of the last ``apply`` (length K)."""
        return self._solver.status.num_iterations

    @property
    def converged(self) -> np.ndarray:
        """Per-system convergence flags of the last ``apply`` (length K)."""
        return self._solver.status.converged

    @property
    def all_converged(self) -> bool:
        """Whether every system converged in the last ``apply``."""
        return self._solver.status.all_converged

    @property
    def final_residual_norm(self) -> np.ndarray:
        """Per-system final residual norms of the last ``apply``."""
        return self._solver.status.final_residual_norm

    def apply(self, b, x):
        """Solve ``A[k] x[k] = b[k]`` for all systems from the guesses in ``x``."""
        self._solver.apply(_unwrap(b), _unwrap(x))
        return self._loggers, x

    def __repr__(self) -> str:
        return (
            f"BatchSolverHandle({type(self._solver).__name__}, "
            f"K={self.num_systems})"
        )


def _build_criteria(max_iters, reduction_factor, criteria):
    if criteria is not None:
        return criteria
    built = Iteration(max_iters)
    if reduction_factor is not None:
        built = built | ResidualNorm(reduction_factor, baseline="rhs_norm")
    return built


def _make_batch_solver(
    name,
    device,
    mtx,
    preconditioner=None,
    max_iters=1000,
    reduction_factor=1e-6,
    criteria=None,
    **params,
) -> BatchSolverHandle:
    factory_binding = bindings.resolve(
        f"{name}_factory",
        value_dtype(getattr(mtx, "dtype", np.float64)),
        exec_=device,
    )
    factory = factory_binding(
        device,
        criteria=_build_criteria(max_iters, reduction_factor, criteria),
        preconditioner=preconditioner,
        **params,
    )
    return BatchSolverHandle(factory.generate(mtx))


def cg(device, mtx, preconditioner=None, **kwargs) -> BatchSolverHandle:
    """Batched Conjugate Gradient solver (SPD systems)."""
    return _make_batch_solver("batch_cg", device, mtx, preconditioner, **kwargs)


def bicgstab(device, mtx, preconditioner=None, **kwargs) -> BatchSolverHandle:
    """Batched BiCGSTAB solver (general systems)."""
    return _make_batch_solver(
        "batch_bicgstab", device, mtx, preconditioner, **kwargs
    )


def gmres(device, mtx, preconditioner=None, **kwargs) -> BatchSolverHandle:
    """Batched restarted GMRES solver (general systems)."""
    return _make_batch_solver(
        "batch_gmres", device, mtx, preconditioner, **kwargs
    )


def jacobi(device, mtx=None, max_block_size: int = 1):
    """Batched scalar-Jacobi preconditioner (factory, or generated on ``mtx``)."""
    dtype = getattr(mtx, "dtype", np.float64) if mtx is not None else np.float64
    binding = bindings.resolve(
        "batch_jacobi_factory", value_dtype(dtype), exec_=device
    )
    factory = binding(device, max_block_size=max_block_size)
    if mtx is None:
        return factory
    return factory.generate(mtx)


def lower_trs(device, mtx, unit_diagonal: bool = False):
    """Batched forward substitution on lower-triangular systems."""
    binding = bindings.resolve(
        "batch_lower_trs_factory",
        value_dtype(getattr(mtx, "dtype", np.float64)),
        exec_=device,
    )
    return binding(device, unit_diagonal=unit_diagonal).generate(mtx)


def upper_trs(device, mtx, unit_diagonal: bool = False):
    """Batched backward substitution on upper-triangular systems."""
    binding = bindings.resolve(
        "batch_upper_trs_factory",
        value_dtype(getattr(mtx, "dtype", np.float64)),
        exec_=device,
    )
    return binding(device, unit_diagonal=unit_diagonal).generate(mtx)
