"""The ``pg.device`` factory (paper section 4.1).

``device(name, id=0)`` abstracts Ginkgo's executor: it decides where data
lives and kernels run.  Devices are cached per (name, id, threads) so the
same executor instance (and its memory space and clock) is shared across a
program, matching Ginkgo's shared-pointer executor semantics.
"""

from __future__ import annotations

import threading

from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.executor import (
    CudaExecutor,
    Executor,
    HipExecutor,
    OmpExecutor,
    ReferenceExecutor,
)

_EXECUTOR_CLASSES = {
    "cuda": CudaExecutor,
    "hip": HipExecutor,
    "omp": OmpExecutor,
    "openmp": OmpExecutor,
    "cpu": OmpExecutor,
    "reference": ReferenceExecutor,
    "ref": ReferenceExecutor,
}

_CACHE: dict = {}
#: Guards the cache so concurrent worker threads resolving one device
#: name share a single executor instance (clock, memory, noise stream).
_CACHE_LOCK = threading.Lock()


def device(
    name: str = "reference",
    id: int = 0,
    num_threads: int | None = None,
    fresh: bool = False,
    **kwargs,
) -> Executor:
    """Create (or fetch the cached) executor for a device.

    Args:
        name: ``"cuda"``, ``"hip"``, ``"omp"`` (aliases ``openmp``/``cpu``),
            or ``"reference"`` (alias ``ref``).  Case-insensitive.
        id: Device ordinal for GPU executors.
        num_threads: Thread count for the OpenMP executor.
        fresh: Bypass the cache and build a brand-new executor (own memory
            space, clock, and noise stream) — used by benchmarks that need
            isolated timelines.
        **kwargs: Forwarded to the executor constructor (e.g. ``seed``,
            ``noisy``, ``library``).

    Returns:
        The executor instance.

    Raises:
        GinkgoError: For unknown device names.
    """
    key = str(name).lower()
    if key not in _EXECUTOR_CLASSES:
        raise GinkgoError(
            f"unknown device {name!r}; available: "
            f"{sorted(set(_EXECUTOR_CLASSES))}"
        )
    cls = _EXECUTOR_CLASSES[key]
    cache_key = (cls, id, num_threads, tuple(sorted(kwargs.items())))
    if fresh:
        return _create(cls, id, num_threads, kwargs)
    with _CACHE_LOCK:
        if cache_key not in _CACHE:
            _CACHE[cache_key] = _create(cls, id, num_threads, kwargs)
        return _CACHE[cache_key]


def _create(cls, id: int, num_threads, kwargs) -> Executor:
    if cls is OmpExecutor:
        return cls.create(num_threads=num_threads, **kwargs)
    if cls is ReferenceExecutor:
        return cls.create(**kwargs)
    return cls.create(device_id=id, **kwargs)


def clear_device_cache() -> None:
    """Drop all cached executors (mainly for test isolation)."""
    with _CACHE_LOCK:
        _CACHE.clear()
