"""The ``pg.distributed`` namespace: simulated multi-rank solves.

Mirrors ``pg.solver`` for row-distributed operators: build a
:class:`~repro.ginkgo.distributed.partition.Partition`, distribute the
global matrix and vectors over it, and solve with distributed CG or
GMRES.  Rank-local kernels run thread-parallel on the OpenMP device;
every collective charges the simulated clock through the matrix's
communicator; and the residual history is bitwise identical to the same
solve on a single rank (see DESIGN.md).

    part = pg.distributed.partition(n, num_ranks=4)
    A = pg.distributed.matrix(dev, part, scipy_csr)
    b = pg.distributed.vector(dev, part, rhs, comm=A.comm)
    x = pg.distributed.zeros_like(b)
    solver = pg.distributed.cg(dev, A, reduction_factor=1e-10)
    logger, x = solver.apply(b, x)
"""

from __future__ import annotations

import numpy as np

from repro import bindings
from repro.core.types import value_dtype
from repro.ginkgo.distributed import Partition, sequential_ranks
from repro.ginkgo.distributed import Vector as _Vector
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.log import ConvergenceLogger
from repro.ginkgo.stop import Iteration, ResidualNorm

__all__ = [
    "DistributedSolverHandle",
    "Partition",
    "cg",
    "gmres",
    "matrix",
    "partition",
    "pipelined_cg",
    "sequential_ranks",
    "sstep_gmres",
    "vector",
    "zeros_like",
]


def partition(global_size, num_ranks, weights=None) -> Partition:
    """Build a row partition over ``num_ranks`` simulated ranks.

    With ``weights`` (per-row work, e.g. nonzeros per row), ranges are
    cut at equal cumulative weight; otherwise rows split evenly.
    """
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (int(global_size),):
            raise GinkgoError(
                f"weights must have length {int(global_size)}, got shape "
                f"{weights.shape}"
            )
        return Partition.build_from_weights(weights, num_ranks)
    return Partition.build_uniform(global_size, num_ranks)


def _as_partition(part, global_size) -> Partition:
    if isinstance(part, Partition):
        return part
    return Partition.build_uniform(global_size, int(part))


def matrix(
    device,
    part,
    scipy_matrix,
    value_dtype=None,
    index_dtype=np.int32,
    overlap=False,
    network=None,
):
    """Distribute a global SciPy matrix over ``part`` ranks.

    ``part`` is a :class:`Partition` or a rank count (uniform split).
    With ``overlap=True`` every SpMV posts its halo exchange
    non-blocking and hides it behind the rank-local block multiply
    (relaxes bit identity to a rounding tolerance — see DESIGN.md);
    ``network`` picks the interconnect model (a
    :class:`~repro.perfmodel.comm.NetworkSpec`) for the communicator
    built with the matrix.
    """
    binding = bindings.resolve(
        "distributed_matrix",
        value_dtype or np.float64,
        index_dtype,
        exec_=device,
    )
    part = _as_partition(part, scipy_matrix.shape[0])
    return binding(
        device, part, scipy_matrix, overlap=overlap, network=network
    )


def vector(device, part, data=None, value_dtype=np.float64, comm=None):
    """Create a distributed vector on ``part`` (zeros when no data).

    Pass ``comm=A.comm`` to charge its reductions on the same
    communicator as the matrix it will be used with.
    """
    binding = bindings.resolve(
        "distributed_vector", value_dtype, exec_=device
    )
    return binding(device, part, data, comm=comm)


def zeros_like(operand: _Vector) -> _Vector:
    """A zero distributed vector with ``operand``'s partition and dtype."""
    if not isinstance(operand, _Vector):
        raise GinkgoError(
            f"expected a distributed Vector, got {type(operand).__name__}"
        )
    return _Vector.zeros_like(operand)


class DistributedSolverHandle:
    """A generated distributed solver with pyGinkgo's apply contract.

    ``apply(b, x)`` runs the solve in place on ``x`` (the initial guess)
    and returns ``(logger, x)`` like the scalar handles; iteration stats
    are exposed afterwards as :attr:`num_iterations`,
    :attr:`converged`, and :attr:`final_residual_norm`, and
    communication stats (deltas over the solve) as :attr:`comm_time`,
    :attr:`comm_hidden_time`, and :attr:`num_reductions`.
    """

    def __init__(self, solver) -> None:
        self._solver = solver
        self._logger = ConvergenceLogger()
        solver.add_logger(self._logger)
        #: Modeled communication seconds of the last apply (hidden +
        #: exposed), from the solve's communicator.
        self.comm_time = 0.0
        #: Communication seconds the last apply hid behind overlapped
        #: compute (0.0 for fully blocking solvers).
        self.comm_hidden_time = 0.0
        #: Global reductions (all-reduces) the last apply performed.
        self.num_reductions = 0

    @property
    def solver(self):
        """The underlying engine solver LinOp."""
        return self._solver

    @property
    def size(self):
        return self._solver.size

    @property
    def comm(self):
        """The communicator charged for this solver's reductions."""
        return self._solver.comm

    @property
    def num_iterations(self) -> int:
        """Iterations run by the most recent ``apply`` (0 before any)."""
        return self._solver.num_iterations

    @property
    def converged(self) -> bool:
        """Whether the most recent ``apply`` met its residual criterion."""
        return self._solver.converged

    @property
    def final_residual_norm(self) -> float:
        """Residual norm at the end of the most recent ``apply``."""
        return self._solver.final_residual_norm

    def apply(self, b, x):
        """Solve ``A x = b`` starting from the initial guess in ``x``."""
        for name, operand in (("b", b), ("x", x)):
            if not isinstance(operand, _Vector):
                raise GinkgoError(
                    f"expected a distributed Vector for {name}, got "
                    f"{type(operand).__name__}"
                )
        comm = self._solver.comm
        seconds0 = comm.comm_seconds
        hidden0 = comm.comm_hidden_seconds
        reductions0 = comm.num_all_reduces
        self._solver.apply(b, x)
        self.comm_time = comm.comm_seconds - seconds0
        self.comm_hidden_time = comm.comm_hidden_seconds - hidden0
        self.num_reductions = comm.num_all_reduces - reductions0
        return self._logger, x

    def __repr__(self) -> str:
        return f"DistributedSolverHandle({type(self._solver).__name__})"


def _build_criteria(max_iters, reduction_factor, criteria):
    if criteria is not None:
        return criteria
    built = Iteration(max_iters)
    if reduction_factor is not None:
        built = built | ResidualNorm(reduction_factor, baseline="rhs_norm")
    return built


def _make_solver(
    name,
    device,
    mtx,
    max_iters=1000,
    reduction_factor=1e-6,
    criteria=None,
    **params,
) -> DistributedSolverHandle:
    factory_binding = bindings.resolve(
        f"{name}_factory",
        value_dtype(getattr(mtx, "dtype", np.float64)),
        exec_=device,
    )
    factory = factory_binding(
        device,
        criteria=_build_criteria(max_iters, reduction_factor, criteria),
        **params,
    )
    return DistributedSolverHandle(factory.generate(mtx))


def cg(device, mtx, **kwargs) -> DistributedSolverHandle:
    """Distributed Conjugate Gradient solver (SPD systems)."""
    return _make_solver("distributed_cg", device, mtx, **kwargs)


def gmres(device, mtx, krylov_dim=30, **kwargs) -> DistributedSolverHandle:
    """Distributed restarted GMRES solver (single right-hand side)."""
    return _make_solver(
        "distributed_gmres", device, mtx, krylov_dim=krylov_dim, **kwargs
    )


def pipelined_cg(device, mtx, **kwargs) -> DistributedSolverHandle:
    """Pipelined CG: one non-blocking all-reduce per iteration.

    The Ghysels–Vanroose formulation overlaps the fused reduction with
    the next preconditioner apply and SpMV; residual histories match
    blocking CG to a rounding tolerance rather than bitwise (see
    DESIGN.md).  Combine with ``matrix(..., overlap=True)`` to also
    hide the halo exchanges.
    """
    return _make_solver("distributed_pipelined_cg", device, mtx, **kwargs)


def sstep_gmres(device, mtx, s_step=4, **kwargs) -> DistributedSolverHandle:
    """s-step (communication-avoiding) GMRES: one reduction per cycle.

    Each ``s_step``-long cycle performs a single Gram-matrix all-reduce
    instead of two reductions per iteration; residual histories are
    tolerance-pinned against blocking GMRES (see DESIGN.md).
    """
    return _make_solver(
        "distributed_sstep_gmres", device, mtx, s_step=s_step, **kwargs
    )
