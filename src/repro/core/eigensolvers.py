"""Krylov eigensolvers composed from engine primitives (pure Python).

Companions to :mod:`repro.core.rayleigh_ritz`: Lanczos (symmetric) and
Arnoldi (general) factorisations plus a power iteration, all driven through
the LinOp apply interface so they run on any executor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.lin_op import LinOp
from repro.ginkgo.matrix.dense import Dense


@dataclass
class LanczosResult:
    """Lanczos factorisation ``A V ~= V T`` with tridiagonal T."""

    alphas: np.ndarray
    betas: np.ndarray
    basis: Dense

    def eigenvalues(self) -> np.ndarray:
        """Eigenvalues of the tridiagonal projection (ascending)."""
        from scipy.linalg import eigh_tridiagonal

        if self.alphas.size == 1:
            return self.alphas.copy()
        return eigh_tridiagonal(self.alphas, self.betas)[0]


def lanczos(
    operator: LinOp, num_steps: int, seed: int = 0, reorthogonalize: bool = True
) -> LanczosResult:
    """Run ``num_steps`` of the Lanczos iteration on a symmetric operator.

    Args:
        operator: Symmetric LinOp.
        num_steps: Krylov steps (= size of the tridiagonal projection).
        seed: Seed for the random start vector.
        reorthogonalize: Apply full reorthogonalisation (costlier, stabler).

    Returns:
        :class:`LanczosResult`; ``result.eigenvalues()`` gives the Ritz
        values.
    """
    if not operator.size.is_square:
        raise GinkgoError(f"Lanczos needs a square operator, got {operator.size}")
    n = operator.size.rows
    m = min(num_steps, n)
    if m < 1:
        raise GinkgoError(f"num_steps must be >= 1, got {num_steps}")
    exec_ = operator.executor
    rng = np.random.default_rng(seed)

    v = Dense(exec_, rng.standard_normal((n, 1)))
    v.scale(1.0 / float(v.compute_norm2()[0]))
    basis = [v]
    alphas, betas = [], []
    w = Dense.empty(exec_, v.size, v.dtype)

    for j in range(m):
        operator.apply(basis[j], w)
        alpha = float(basis[j].compute_dot(w)[0])
        alphas.append(alpha)
        w.sub_scaled(alpha, basis[j])
        if j > 0:
            w.sub_scaled(betas[-1], basis[j - 1])
        if reorthogonalize:
            for q in basis:
                coeff = float(q.compute_dot(w)[0])
                w.sub_scaled(coeff, q)
        beta = float(w.compute_norm2()[0])
        if j + 1 < m:
            if beta <= 1e-14:
                break  # invariant subspace found
            betas.append(beta)
            nxt = w.clone()
            nxt.scale(1.0 / beta)
            basis.append(nxt)
            w = Dense.empty(exec_, v.size, v.dtype)

    block = Dense.empty(exec_, (n, len(basis)), v.dtype)
    for j, q in enumerate(basis):
        block._data[:, j : j + 1] = q._data
    return LanczosResult(
        alphas=np.asarray(alphas[: len(basis)]),
        betas=np.asarray(betas[: len(basis) - 1]),
        basis=block,
    )


@dataclass
class ArnoldiResult:
    """Arnoldi factorisation ``A V_m = V_{m+1} H``."""

    hessenberg: np.ndarray
    basis: Dense

    def eigenvalues(self) -> np.ndarray:
        """Ritz values from the square part of the Hessenberg matrix."""
        m = self.hessenberg.shape[1]
        return np.linalg.eigvals(self.hessenberg[:m, :m])


def arnoldi(operator: LinOp, num_steps: int, seed: int = 0) -> ArnoldiResult:
    """Run ``num_steps`` of the Arnoldi iteration on a general operator."""
    if not operator.size.is_square:
        raise GinkgoError(f"Arnoldi needs a square operator, got {operator.size}")
    n = operator.size.rows
    m = min(num_steps, n)
    if m < 1:
        raise GinkgoError(f"num_steps must be >= 1, got {num_steps}")
    exec_ = operator.executor
    rng = np.random.default_rng(seed)

    v = Dense(exec_, rng.standard_normal((n, 1)))
    v.scale(1.0 / float(v.compute_norm2()[0]))
    basis = [v]
    h = np.zeros((m + 1, m))
    w = Dense.empty(exec_, v.size, v.dtype)

    actual = m
    for j in range(m):
        operator.apply(basis[j], w)
        for i in range(j + 1):
            h[i, j] = float(basis[i].compute_dot(w)[0])
            w.sub_scaled(h[i, j], basis[i])
        h[j + 1, j] = float(w.compute_norm2()[0])
        if h[j + 1, j] <= 1e-14:
            actual = j + 1
            break
        nxt = w.clone()
        nxt.scale(1.0 / h[j + 1, j])
        basis.append(nxt)
        w = Dense.empty(exec_, v.size, v.dtype)

    block = Dense.empty(exec_, (n, len(basis)), v.dtype)
    for j, q in enumerate(basis):
        block._data[:, j : j + 1] = q._data
    # Without breakdown the basis holds m+1 vectors and H is (m+1, m);
    # on a lucky breakdown after `actual` steps the last subdiagonal is
    # zero and the relation closes with a square H.
    return ArnoldiResult(hessenberg=h[: len(basis), :actual], basis=block)


def power_iteration(
    operator: LinOp, num_iterations: int = 100, seed: int = 0, tol: float = 0.0
):
    """Dominant eigenpair by power iteration.

    Returns:
        ``(eigenvalue, eigenvector)`` where the eigenvector is an ``n x 1``
        Dense on the operator's executor.
    """
    if not operator.size.is_square:
        raise GinkgoError(
            f"power iteration needs a square operator, got {operator.size}"
        )
    n = operator.size.rows
    exec_ = operator.executor
    rng = np.random.default_rng(seed)
    v = Dense(exec_, rng.standard_normal((n, 1)))
    v.scale(1.0 / float(v.compute_norm2()[0]))
    w = Dense.empty(exec_, v.size, v.dtype)
    eigenvalue = 0.0
    for _ in range(num_iterations):
        operator.apply(v, w)
        new_eigenvalue = float(v.compute_dot(w)[0])
        norm = float(w.compute_norm2()[0])
        if norm == 0.0:
            return 0.0, v
        w.scale(1.0 / norm)
        v, w = w, v
        if tol and abs(new_eigenvalue - eigenvalue) <= tol * abs(new_eigenvalue):
            eigenvalue = new_eigenvalue
            break
        eigenvalue = new_eigenvalue
    return eigenvalue, v
