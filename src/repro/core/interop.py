"""Interoperability helpers (paper section 5.2).

Zero-copy exchange with NumPy via the buffer protocol on host executors,
and conversion to/from SciPy sparse matrices.  Device-resident data follows
GPU semantics: an explicit copy is required (and modeled).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.device import device as _device_factory
from repro.core.tensor import Tensor
from repro.core.types import index_dtype, value_dtype
from repro.ginkgo.executor import Executor
from repro.ginkgo.matrix.base import SparseBase
from repro.ginkgo.matrix.csr import Csr
from repro.ginkgo.matrix.dense import Dense


def from_numpy(array: np.ndarray, device=None, dtype=None) -> Tensor:
    """Wrap/copy a NumPy array into a tensor.

    On host executors the engine copies once into its tracked memory space;
    the returned tensor then shares that buffer zero-copy with
    ``numpy.asarray(tensor)``.
    """
    exec_ = (
        device
        if isinstance(device, Executor)
        else _device_factory(device or "reference")
    )
    arr = np.asarray(array)
    if dtype is not None:
        arr = arr.astype(value_dtype(dtype), copy=False)
    return Tensor(Dense(exec_, arr))


def to_numpy(operand) -> np.ndarray:
    """Copy any tensor/Dense/engine-sparse operand out to NumPy."""
    if isinstance(operand, Tensor):
        return operand.numpy()
    if isinstance(operand, Dense):
        return operand.to_numpy()
    if isinstance(operand, SparseBase):
        return np.asarray(operand._scipy_view().todense())
    return np.asarray(operand)


def from_scipy(
    matrix: sp.spmatrix,
    device=None,
    dtype=None,
    index_type="int32",
    format: str = "csr",
    **kwargs,
):
    """Convert a SciPy sparse matrix to an engine matrix on a device."""
    from repro.core.io import matrix as _matrix

    exec_ = (
        device
        if isinstance(device, Executor)
        else _device_factory(device or "reference")
    )
    dt = value_dtype(dtype) if dtype is not None else matrix.dtype
    return _matrix(
        device=exec_,
        data=matrix,
        dtype=np.dtype(dt).name if not isinstance(dt, str) else dt,
        format=format,
        index_dtype=index_type,
        **kwargs,
    )


def to_scipy(matrix) -> sp.spmatrix:
    """Copy an engine sparse matrix out as a SciPy sparse matrix."""
    if isinstance(matrix, SparseBase):
        return matrix.to_scipy()
    if sp.issparse(matrix):
        return matrix
    raise TypeError(
        f"to_scipy expects an engine sparse matrix, got {type(matrix).__name__}"
    )


def shares_memory(tensor: Tensor, array: np.ndarray) -> bool:
    """Whether a host tensor and a NumPy array view the same buffer."""
    try:
        view = np.asarray(tensor)
    except Exception:
        return False
    return np.shares_memory(view, array)
