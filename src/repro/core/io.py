"""The ``pg.read``/``pg.write`` front-end (Listing 1's matrix loading)."""

from __future__ import annotations

from repro import bindings
from repro.core.device import device as _device_factory
from repro.core.types import index_suffix, value_suffix
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.executor import Executor
from repro.ginkgo.mtx_io import write_mtx

#: Format name (as used in Listing 1's ``format="Csr"``) -> binding prefix.
FORMAT_PREFIXES = {
    "csr": "csr",
    "coo": "coo",
    "ell": "ell",
    "sellp": "sellp",
    "hybrid": "hybrid",
}


def read(
    device=None,
    path=None,
    dtype="double",
    format="Csr",
    index_dtype="int32",
    **kwargs,
):
    """Read a MatrixMarket file into a device-resident sparse matrix.

    Mirrors Listing 1::

        mtx = pg.read(device=dev, path="m1.mtx", dtype="double",
                      format="Csr")

    Args:
        device: Target executor or device name.
        path: Path to the ``.mtx`` file.
        dtype: Value type name (``half``/``float``/``double``/...).
        format: Storage format (``Csr``, ``Coo``, ``Ell``, ``Sellp``,
            ``Hybrid``); case-insensitive.
        index_dtype: Index type name (``int32``/``int64``).
        **kwargs: Format-specific options (e.g. ``strategy=`` for CSR).

    Returns:
        The engine matrix (a LinOp) resident on the device.
    """
    if path is None:
        raise GinkgoError("read() requires a path")
    exec_ = (
        device
        if isinstance(device, Executor)
        else _device_factory(device or "reference")
    )
    fmt = str(format).lower()
    if fmt not in FORMAT_PREFIXES:
        raise GinkgoError(
            f"unknown matrix format {format!r}; "
            f"available: {sorted(FORMAT_PREFIXES)}"
        )
    return bindings.resolve(
        f"read_{FORMAT_PREFIXES[fmt]}",
        value_suffix(dtype),
        index_suffix(index_dtype),
        exec_=exec_,
    )(exec_, path, **kwargs)


def matrix(
    device=None,
    data=None,
    dtype="double",
    format="Csr",
    index_dtype="int32",
    **kwargs,
):
    """Build a device-resident sparse matrix from a SciPy matrix or array.

    The in-memory companion of :func:`read`; accepts anything
    ``scipy.sparse`` can convert.
    """
    if data is None:
        raise GinkgoError("matrix() requires data")
    exec_ = (
        device
        if isinstance(device, Executor)
        else _device_factory(device or "reference")
    )
    fmt = str(format).lower()
    if fmt not in FORMAT_PREFIXES:
        raise GinkgoError(
            f"unknown matrix format {format!r}; "
            f"available: {sorted(FORMAT_PREFIXES)}"
        )
    import scipy.sparse as sp

    mat = data if sp.issparse(data) else sp.csr_matrix(data)
    return bindings.resolve(
        FORMAT_PREFIXES[fmt],
        value_suffix(dtype),
        index_suffix(index_dtype),
        exec_=exec_,
    )(exec_, mat, **kwargs)


def write(path, matrix, **kwargs) -> None:
    """Write an engine matrix (or SciPy matrix) to MatrixMarket format."""
    write_mtx(path, matrix, **kwargs)
