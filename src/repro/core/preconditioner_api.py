"""The ``pg.preconditioner`` namespace (Listing 1's ``pg.preconditioner.Ilu``).

Each entry point dispatches through the type-suffixed binding for the
matrix's value type and immediately generates the preconditioner on the
matrix, returning an operator ready to pass to a solver.  Symbol lookup
goes through the pre-resolved dispatch cache
(:mod:`repro.bindings.dispatch`), so repeated construction skips the
per-call name mangling without losing the binding-overhead charge.
"""

from __future__ import annotations

from repro import bindings


def Ilu(
    device, mtx, algorithm: str = "exact", sweeps: int = 5,
    storage_precision=None,
):
    """ILU(0) preconditioner generated on ``mtx`` (Listing 1).

    ``algorithm="parilu"`` selects Ginkgo's fixed-point construction with
    the given number of ``sweeps``.  ``storage_precision`` stores the L/U
    factors reduced (accessor layer); ``None`` stores at ``mtx``'s
    precision.
    """
    factory = bindings.resolve("ilu_factory", mtx.dtype, exec_=device)(
        device, algorithm=algorithm, sweeps=sweeps,
        storage_precision=storage_precision,
    )
    return factory.generate(mtx)


def Ic(device, mtx, storage_precision=None):
    """IC(0) preconditioner for symmetric positive-definite matrices."""
    factory = bindings.resolve("ic_factory", mtx.dtype, exec_=device)(
        device, storage_precision=storage_precision
    )
    return factory.generate(mtx)


def Jacobi(device, mtx, max_block_size: int = 1, storage_precision=None):
    """Scalar (block size 1) or block Jacobi preconditioner.

    ``storage_precision`` stores the inverted blocks reduced; pass
    ``"adaptive"`` for per-block precision keyed on condition estimates.
    """
    factory = bindings.resolve("jacobi_factory", mtx.dtype, exec_=device)(
        device, max_block_size=max_block_size,
        storage_precision=storage_precision,
    )
    return factory.generate(mtx)


def Isai(device, mtx, sparsity_power: int = 1, storage_precision=None):
    """Incomplete sparse approximate inverse preconditioner."""
    factory = bindings.resolve("isai_factory", mtx.dtype, exec_=device)(
        device, sparsity_power=sparsity_power,
        storage_precision=storage_precision,
    )
    return factory.generate(mtx)


def Amg(device, mtx, **kwargs):
    """Aggregation-AMG preconditioner (one V-cycle per apply)."""
    factory = bindings.resolve("multigrid_factory", mtx.dtype, exec_=device)(
        device, **kwargs
    )
    return factory.generate(mtx)
