"""The public ``pg.profile()`` context manager.

Wraps :class:`~repro.ginkgo.log.ProfilerHook` wiring into one line::

    with pg.profile() as prof:
        logger, x = pg.solve(dev, A, b, preconditioner="ilu")
    print(prof.attribution().summary())
    prof.save_chrome_trace("solve.json")

With no targets the profiler observes *every* simulated clock — including
executors created mid-region, e.g. by a fallback chain.  Passing targets
(device names, executors, solver handles, or LinOps) restricts tracing to
those clocks.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.core.device import device as _device_factory
from repro.ginkgo import cachestats
from repro.ginkgo.log import ProfilerHook
from repro.ginkgo.log.profiler import _resolve_clock
from repro.perfmodel import SimClock


@contextmanager
def profile(*targets, name: str = "pyginkgo", metrics=None):
    """Profile everything inside the ``with`` block on the simulated clock.

    Args:
        *targets: What to trace — device names (``"cuda"``), executors,
            solver handles, or LinOps.  Empty: trace all clocks globally.
        name: Name of the recorded trace.
        metrics: Optional :class:`~repro.ginkgo.log.MetricsRegistry` fed
            with kernel/binding/iteration/fault counters while tracing.

    Yields:
        The :class:`~repro.ginkgo.log.ProfilerHook`; query
        ``prof.trace``, ``prof.attribution()``, ``prof.to_chrome_trace()``
        after (or inside) the block.
    """
    prof = ProfilerHook(name=name, metrics=metrics)
    clocks = []
    for target in targets:
        if isinstance(target, str):
            target = _device_factory(target)
        clock = _resolve_clock(target)
        if clock not in clocks:
            clocks.append(clock)
    if metrics is not None:
        # Workspace/format/dispatch cache hits and misses inside the
        # region land as cache_* counters next to the kernel counters.
        # Registered only once target resolution cannot raise any more
        # (a leaked registration would keep mirroring — and with another
        # profile region sharing the registry, double-count — forever),
        # and released in the finally below; registration is refcounted,
        # so nested regions sharing one registry mirror exactly once.
        cachestats.register_sink(metrics)
    if clocks:
        for clock in clocks:
            prof.attach(clock)
    else:
        SimClock.add_global_tracer(prof)
    try:
        yield prof
    finally:
        if clocks:
            for clock in clocks:
                prof.detach(clock)
        else:
            SimClock.remove_global_tracer(prof)
        if metrics is not None:
            cachestats.unregister_sink(metrics)
        prof.close()
