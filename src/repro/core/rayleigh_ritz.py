"""Rayleigh-Ritz method implemented purely in Python (paper section 3.4).

The paper implements Rayleigh-Ritz on the Python side as proof that
complex algorithms can be composed from the exposed operator primitives
(SpMV, dots, axpys) "without worrying about low-level GPU or CPU
parallelization details".  This module is exactly that: every numerical
step goes through engine operators, so it runs — and is timed — on
whatever device the operands live on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.lin_op import LinOp
from repro.ginkgo.matrix.dense import Dense


@dataclass
class RitzPairs:
    """Result of a Rayleigh-Ritz extraction.

    Attributes:
        values: Ritz values, ascending (length k).
        vectors: Ritz vectors as an ``n x k`` Dense on the operator's
            executor.
        residual_norms: ``||A y_i - theta_i y_i||`` per Ritz pair.
    """

    values: np.ndarray
    vectors: Dense
    residual_norms: np.ndarray


def orthonormalize(basis: Dense) -> Dense:
    """Orthonormalise the columns of a Dense block (modified Gram-Schmidt).

    Performed with engine dot/axpy/scale primitives so the work is charged
    to the owning executor.
    """
    exec_ = basis.executor
    n, k = basis.shape
    columns = []
    for j in range(k):
        v = Dense(exec_, basis._data[:, j : j + 1])
        for q in columns:
            coeff = float(q.compute_dot(v)[0])
            v.sub_scaled(coeff, q)
        norm = float(v.compute_norm2()[0])
        if norm <= 1e-14 * max(n, 1):
            raise GinkgoError(
                f"orthonormalize: column {j} is (numerically) linearly "
                "dependent on the previous columns"
            )
        v.scale(1.0 / norm)
        columns.append(v)
    out = Dense.empty(exec_, basis.size, basis.dtype)
    for j, q in enumerate(columns):
        out._data[:, j : j + 1] = q._data
    return out


def rayleigh_ritz(operator: LinOp, basis: Dense, orthonormal: bool = False) -> RitzPairs:
    """Extract Ritz approximations of ``operator`` from ``span(basis)``.

    Args:
        operator: Symmetric LinOp A (n x n).
        basis: ``n x k`` Dense whose columns span the trial subspace.
        orthonormal: Set when the basis columns are already orthonormal to
            skip the Gram-Schmidt pass.

    Returns:
        :class:`RitzPairs` with ascending Ritz values.
    """
    if not operator.size.is_square:
        raise GinkgoError(
            f"Rayleigh-Ritz needs a square operator, got {operator.size}"
        )
    if basis.size.rows != operator.size.rows:
        raise GinkgoError(
            f"basis has {basis.size.rows} rows for an "
            f"{operator.size.rows}-dimensional operator"
        )
    exec_ = operator.executor
    v = basis if orthonormal else orthonormalize(basis)
    k = v.size.cols

    # Projected operator S = V^T (A V), built column-wise with applies.
    av = Dense.empty(exec_, v.size, v.dtype)
    operator.apply(v, av)
    vt = v.transpose()
    s = Dense.empty(exec_, (k, k), v.dtype)
    vt.apply(av, s)

    # Small dense symmetric eigenproblem on the host.
    s_host = s.to_numpy().astype(np.float64)
    s_host = 0.5 * (s_host + s_host.T)  # symmetrise away roundoff
    theta, y = np.linalg.eigh(s_host)

    # Ritz vectors: X = V Y via the engine's dense mat-mat apply.
    y_op = Dense(exec_, y.astype(v.dtype))
    ritz_vectors = Dense.empty(exec_, v.size, v.dtype)
    v.apply(y_op, ritz_vectors)

    # Residuals ||A x_i - theta_i x_i||.
    residual = Dense.empty(exec_, v.size, v.dtype)
    operator.apply(ritz_vectors, residual)
    residual.add_scaled(-theta.astype(np.float64), ritz_vectors)
    res_norms = residual.compute_norm2()

    return RitzPairs(
        values=theta,
        vectors=ritz_vectors,
        residual_norms=np.asarray(res_norms, dtype=np.float64),
    )


def rayleigh_ritz_eigensolver(
    operator: LinOp,
    num_eigenpairs: int,
    num_iterations: int = 20,
    subspace_factor: int = 2,
    seed: int = 0,
    tol: float | None = None,
) -> RitzPairs:
    """Subspace-iteration eigensolver built on Rayleigh-Ritz extraction.

    Repeatedly applies the operator to a block of vectors, re-orthonormalises,
    and extracts Ritz pairs — a pure-Python advanced eigensolver composed
    entirely of engine primitives (the paper's "ongoing development" use
    case for the Python layer).

    Args:
        operator: Symmetric LinOp.
        num_eigenpairs: Number of (largest-magnitude) eigenpairs to return.
        num_iterations: Subspace iteration count.
        subspace_factor: Subspace size = factor * num_eigenpairs.
        seed: Seed for the random initial block.
        tol: Optional early-exit tolerance on the max Ritz residual.

    Returns:
        :class:`RitzPairs` restricted to the ``num_eigenpairs`` dominant
        pairs (ascending by value).
    """
    if num_eigenpairs < 1:
        raise GinkgoError(
            f"num_eigenpairs must be >= 1, got {num_eigenpairs}"
        )
    if num_iterations < 1:
        raise GinkgoError(
            f"num_iterations must be >= 1, got {num_iterations}"
        )
    n = operator.size.rows
    k = min(max(num_eigenpairs * subspace_factor, num_eigenpairs + 2), n)
    rng = np.random.default_rng(seed)
    exec_ = operator.executor
    block = Dense(exec_, rng.standard_normal((n, k)))

    pairs = None
    for _ in range(num_iterations):
        block = orthonormalize(block)
        out = Dense.empty(exec_, block.size, block.dtype)
        operator.apply(block, out)
        block = out
        pairs = rayleigh_ritz(operator, block)
        if tol is not None and float(np.max(pairs.residual_norms)) < tol:
            break

    # Keep the num_eigenpairs of largest magnitude, reported ascending.
    order = np.argsort(np.abs(pairs.values))[::-1][:num_eigenpairs]
    order = order[np.argsort(pairs.values[order])]
    vectors = Dense(exec_, pairs.vectors._data[:, order])
    return RitzPairs(
        values=pairs.values[order],
        vectors=vectors,
        residual_norms=pairs.residual_norms[order],
    )
