"""Resilient solves: retry, backoff, executor fallback, checkpoint/restart.

``resilient_solve`` wraps the config-solver route of
:mod:`repro.core.solve` with the failure handling a production deployment
needs on unreliable heterogeneous devices:

* **retry with exponential backoff** (in simulated time) for transient
  faults — :class:`CudaError`, :class:`AllocationError`, and
  :class:`SolverBreakdown` (NaN/Inf residuals);
* **graceful degradation** down an executor chain
  (``cuda -> omp -> reference`` by default), rebuilding the vectors from
  pristine host snapshots and moving the matrix with ``copy_to``;
* **periodic checkpointing** of the solution vector via a
  :class:`~repro.ginkgo.log.CheckpointLogger`, so a retry restarts from
  the last checkpoint instead of from scratch;
* a structured, deterministic **event trail** (`fault_injected`,
  `attempt_failed`, `retry`, `fallback`, `checkpoint_saved`, ...) so tests
  and benchmarks can assert on exactly what happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.device import device as _device_factory
from repro.core.solve import build_config, config_solver
from repro.core.solver_api import _unwrap
from repro.core.tensor import Tensor
from repro.ginkgo.exceptions import (
    AllocationError,
    CudaError,
    GinkgoError,
    ResilienceExhausted,
    SolverBreakdown,
)
from repro.ginkgo.executor import PCIE_BANDWIDTH, PCIE_LATENCY, Executor
from repro.ginkgo.log import CheckpointLogger, ConvergenceLogger, Logger
from repro.ginkgo.matrix.dense import Dense

#: Exceptions the retry layer treats as transient by default.
TRANSIENT_ERRORS = (CudaError, AllocationError, SolverBreakdown)


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and how patiently, a failed attempt is retried.

    Attributes:
        max_retries: Additional attempts per executor after the first.
        base_delay: Backoff before the first retry, in simulated seconds.
        backoff_factor: Multiplier applied per subsequent retry
            (exponential backoff).
        retry_on: Exception types treated as transient; anything else
            propagates immediately.
    """

    max_retries: int = 3
    base_delay: float = 1e-3
    backoff_factor: float = 2.0
    retry_on: tuple = TRANSIENT_ERRORS

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise GinkgoError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0:
            raise GinkgoError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.backoff_factor < 1.0:
            raise GinkgoError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay(self, retry_index: int) -> float:
        """Simulated backoff before retry number ``retry_index`` (0-based)."""
        return self.base_delay * self.backoff_factor**retry_index


class FallbackChain:
    """Ordered executors to degrade onto when one keeps failing.

    Entries are device names (resolved through :func:`repro.core.device`)
    or executor instances.  Entries matching the currently-failing
    executor's device name are skipped, so the default chain
    ``("cuda", "omp", "reference")`` does the right thing from any
    starting executor.
    """

    DEFAULT = ("cuda", "omp", "reference")

    def __init__(self, *devices) -> None:
        if len(devices) == 1 and isinstance(devices[0], (list, tuple)):
            devices = tuple(devices[0])
        self.devices = devices or self.DEFAULT

    def resolve(self, primary: Executor) -> list[Executor]:
        """Executors to try after ``primary``, in order, deduplicated."""
        chain: list[Executor] = []
        seen = {primary.name}
        for entry in self.devices:
            exec_ = (
                entry
                if isinstance(entry, Executor)
                else _device_factory(entry)
            )
            if exec_.name in seen:
                continue
            seen.add(exec_.name)
            chain.append(exec_)
        return chain

    def __repr__(self) -> str:
        return f"FallbackChain{self.devices!r}"


@dataclass
class ResilienceReport:
    """What a resilient solve did and how it ended.

    The event trail is a list of ``(name, payload)`` tuples in occurrence
    order; payloads hold only plain scalars/strings, so two runs with the
    same seeds produce identical trails.
    """

    converged: bool
    breakdown: bool
    num_iterations: int
    final_residual_norm: float
    residual_norms: list = field(default_factory=list)
    events: list = field(default_factory=list)
    attempts: int = 1
    executor_name: str = ""
    logger: ConvergenceLogger | None = None

    @property
    def faults_injected(self) -> int:
        """Injected faults observed during the solve."""
        return sum(1 for name, _ in self.events if name == "fault_injected")

    @property
    def retries(self) -> int:
        return sum(1 for name, _ in self.events if name == "retry")

    @property
    def fallbacks(self) -> int:
        return sum(1 for name, _ in self.events if name == "fallback")

    def count(self, event: str) -> int:
        """Number of trail events with the given name."""
        return sum(1 for name, _ in self.events if name == event)

    def __repr__(self) -> str:
        return (
            f"ResilienceReport(converged={self.converged}, "
            f"iterations={self.num_iterations}, "
            f"attempts={self.attempts}, executor={self.executor_name!r}, "
            f"faults={self.faults_injected}, retries={self.retries}, "
            f"fallbacks={self.fallbacks})"
        )


class _FaultTrail(Logger):
    """Mirrors executor fault events into the report's event trail."""

    def __init__(self, events: list) -> None:
        self._events = events

    def on_fault_injected(self, exec_, **kwargs) -> None:
        self._events.append(("fault_injected", dict(kwargs)))

    def on_data_corrupted(self, exec_, **kwargs) -> None:
        self._events.append(("data_corrupted", dict(kwargs)))


def _restore_solution(exec_: Executor, x_dense: Dense, values: np.ndarray):
    """Write a host checkpoint back into the solution buffer.

    Models the host-to-device transfer on the clock without allocating, so
    the recovery path itself cannot hit an allocation fault.
    """
    if not exec_.is_host:
        exec_.clock.advance(
            PCIE_LATENCY + values.nbytes / PCIE_BANDWIDTH,
            category="transfer",
            label="checkpoint_restore",
            bytes=values.nbytes,
        )
    np.copyto(x_dense._data, values.astype(x_dense.dtype, copy=False))


def _emit(exec_: Executor, events: list, name: str, payload: dict) -> None:
    """Append to the event trail and mirror the event onto the clock trace."""
    events.append((name, payload))
    exec_.clock.annotate(name, **payload)


def _feed_metrics(metrics, report: "ResilienceReport") -> None:
    """Mirror a finished solve's report into a metrics registry."""
    if metrics is None:
        return
    metrics.counter("solves").inc()
    if report.converged:
        metrics.counter("solves_converged").inc()
    metrics.counter("attempts").inc(report.attempts)
    metrics.counter("retries").inc(report.retries)
    metrics.counter("fallbacks").inc(report.fallbacks)
    metrics.counter("faults_injected").inc(report.faults_injected)
    metrics.counter("data_corrupted").inc(report.count("data_corrupted"))
    metrics.counter("breakdowns").inc(report.count("breakdown"))
    metrics.counter("checkpoint_restores").inc(
        report.count("checkpoint_restored")
    )
    metrics.histogram("iterations_per_solve").observe(report.num_iterations)


def resilient_solve(
    device,
    mtx,
    b,
    x=None,
    solver: str = "gmres",
    preconditioner=None,
    max_iters: int = 1000,
    reduction_factor: float | None = 1e-6,
    retry: RetryPolicy | None = None,
    fallback: FallbackChain | None = None,
    checkpoint_every: int = 0,
    divergence_limit: float | None = None,
    metrics=None,
    **solver_params,
):
    """Fault-tolerant one-call linear solve through the config-solver.

    Accepts everything :func:`repro.core.solve.solve` accepts, plus the
    resilience knobs.  Transient failures (device errors, failed
    allocations, NaN/Inf breakdowns) are retried with exponential backoff
    in simulated time; an executor that exhausts its retries is abandoned
    for the next one in the fallback chain, with operands rebuilt from
    pristine host snapshots.  When checkpointing is on, retries restart
    from the last captured solution instead of from scratch.

    Args:
        device: Executor or device name the solve starts on (may be a
            :class:`~repro.ginkgo.fault.FaultyExecutor`).
        mtx: System matrix (engine LinOp, resident on ``device``).
        b: Right-hand side (Tensor or Dense).
        x: Initial guess; zeros when omitted.
        solver: Solver name (default GMRES).
        preconditioner: Preconditioner name or config dict.
        max_iters: Iteration limit per attempt.
        reduction_factor: Relative residual threshold.
        retry: :class:`RetryPolicy`; default retries 3 times.
        fallback: :class:`FallbackChain`; default
            ``cuda -> omp -> reference``.  Pass
            ``FallbackChain(device)`` to pin the solve to one device
            (no degradation, retries only).
        checkpoint_every: Capture the solution every N iterations
            (0 disables checkpointing).
        divergence_limit: Abandon an attempt early when the residual
            exceeds this multiple of the initial residual (adds a
            ``stop::Divergence`` criterion).
        metrics: Optional :class:`~repro.ginkgo.log.MetricsRegistry`;
            receives ``solves``/``attempts``/``retries``/``fallbacks``/
            ``faults_injected`` counters and an ``iterations_per_solve``
            histogram.
        **solver_params: Extra solver parameters (``krylov_dim=...``).

    Returns:
        ``(report, x)`` — the :class:`ResilienceReport` and the solution
        tensor (on whichever executor completed the solve).

    Raises:
        ResilienceExhausted: Every retry on every executor failed.
    """
    retry = retry or RetryPolicy()
    fallback = fallback or FallbackChain()
    primary = (
        device
        if isinstance(device, Executor)
        else _device_factory(device or "reference")
    )

    # Pristine host snapshots: fallback rebuilds operands from these, so a
    # corrupted device buffer cannot poison the next executor.
    b_dense = _unwrap(b)
    b_host = b_dense.to_numpy()
    if x is None:
        x_host = np.zeros_like(b_host)
        x_dense = Dense.create(primary, x_host)
    else:
        x_dense = _unwrap(x)
        x_host = x_dense.to_numpy()
    wrap_result = x is None or isinstance(x, Tensor)

    config = build_config(
        solver=solver,
        preconditioner=preconditioner,
        max_iters=max_iters,
        reduction_factor=reduction_factor,
        **solver_params,
    )
    # Strict breakdowns let the retry layer catch NaN/Inf poisoning.
    config["strict_breakdown"] = True
    if divergence_limit is not None:
        config["criteria"].append(
            {"type": "stop::Divergence", "limit": float(divergence_limit)}
        )

    events: list = []
    history: list = []
    attempts = 0
    checkpoint: tuple[int, np.ndarray] | None = None

    chain = [primary] + fallback.resolve(primary)
    for position, exec_ in enumerate(chain):
        # Stage the operands on this executor.
        try:
            if exec_ is primary:
                mtx_cur, b_cur, x_cur = mtx, b_dense, x_dense
            else:
                if not hasattr(mtx, "copy_to"):
                    raise GinkgoError(
                        f"matrix {type(mtx).__name__} cannot be moved to "
                        f"{exec_.name} (no copy_to); fallback impossible"
                    )
                mtx_cur = mtx.copy_to(exec_)
                b_cur = Dense.create(exec_, b_host)
                x_cur = Dense.create(exec_, x_host)
        except retry.retry_on as err:
            history.append((exec_.name, err))
            _emit(
                exec_,
                events,
                "staging_failed",
                {"executor": exec_.name, "error": type(err).__name__},
            )
            continue

        trail = _FaultTrail(events)
        exec_.add_logger(trail)
        try:
            for attempt in range(retry.max_retries + 1):
                attempts += 1
                _emit(
                    exec_,
                    events,
                    "attempt_started",
                    {"executor": exec_.name, "attempt": attempts},
                )
                checkpointer = (
                    CheckpointLogger(every=checkpoint_every, sink=events)
                    if checkpoint_every
                    else None
                )
                try:
                    handle = config_solver(exec_, mtx_cur, config)
                    if checkpointer is not None:
                        handle.solver.add_logger(checkpointer)
                    logger, _ = handle.apply(b_cur, x_cur)
                except retry.retry_on as err:
                    history.append((exec_.name, err))
                    _emit(
                        exec_,
                        events,
                        "attempt_failed",
                        {
                            "executor": exec_.name,
                            "attempt": attempts,
                            "error": type(err).__name__,
                        },
                    )
                    # A checkpoint captured during the failed attempt is
                    # still valid state to restart from.
                    if (
                        checkpointer is not None
                        and checkpointer.solution is not None
                        and (
                            checkpoint is None
                            or checkpointer.iteration > checkpoint[0]
                        )
                    ):
                        checkpoint = (
                            checkpointer.iteration,
                            checkpointer.solution,
                        )
                    if attempt == retry.max_retries:
                        break
                    delay = retry.delay(attempt)
                    exec_.clock.advance(
                        delay, category="stall", label="retry_backoff"
                    )
                    restart_from = 0
                    if checkpoint is not None:
                        restart_from = checkpoint[0]
                        _restore_solution(exec_, x_cur, checkpoint[1])
                        _emit(
                            exec_,
                            events,
                            "checkpoint_restored",
                            {"iteration": restart_from},
                        )
                    else:
                        _restore_solution(exec_, x_cur, x_host)
                    _emit(
                        exec_,
                        events,
                        "retry",
                        {
                            "executor": exec_.name,
                            "attempt": attempts + 1,
                            "delay": delay,
                            "restart_iteration": restart_from,
                        },
                    )
                    continue
                # Success: the apply ran to a verdict without faulting.
                _emit(
                    exec_,
                    events,
                    "solve_completed",
                    {
                        "executor": exec_.name,
                        "attempt": attempts,
                        "converged": logger.converged,
                        "iterations": logger.num_iterations,
                    },
                )
                report = ResilienceReport(
                    converged=logger.converged,
                    breakdown=logger.breakdown,
                    num_iterations=logger.num_iterations,
                    final_residual_norm=logger.final_residual_norm,
                    residual_norms=list(logger.residual_norms),
                    events=events,
                    attempts=attempts,
                    executor_name=exec_.name,
                    logger=logger,
                )
                _feed_metrics(metrics, report)
                result = Tensor(x_cur) if wrap_result else x_cur
                return report, result
        finally:
            exec_.remove_logger(trail)
        if position + 1 < len(chain):
            _emit(
                exec_,
                events,
                "fallback",
                {
                    "from": exec_.name,
                    "to": chain[position + 1].name,
                },
            )

    if metrics is not None:
        metrics.counter("solves").inc()
        metrics.counter("solves_exhausted").inc()
        metrics.counter("attempts").inc(attempts)
    raise ResilienceExhausted(attempts, history)
