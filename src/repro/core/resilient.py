"""Resilient solves: retry, backoff, executor fallback, checkpoint/restart.

``resilient_solve`` wraps the config-solver route of
:mod:`repro.core.solve` with the failure handling a production deployment
needs on unreliable heterogeneous devices:

* **retry with exponential backoff** (in simulated time) for transient
  faults — :class:`CudaError`, :class:`AllocationError`, and
  :class:`SolverBreakdown` (NaN/Inf residuals);
* **graceful degradation** down an executor chain
  (``cuda -> omp -> reference`` by default), rebuilding the vectors from
  pristine host snapshots and moving the matrix with ``copy_to``;
* **periodic checkpointing** of the solution vector via a
  :class:`~repro.ginkgo.log.CheckpointLogger`, so a retry restarts from
  the last checkpoint instead of from scratch;
* a structured, deterministic **event trail** (`fault_injected`,
  `attempt_failed`, `retry`, `fallback`, `checkpoint_saved`, ...) so tests
  and benchmarks can assert on exactly what happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.device import device as _device_factory
from repro.core.solve import build_config, config_solver
from repro.core.solver_api import _unwrap
from repro.core.tensor import Tensor
from repro.ginkgo.exceptions import (
    AllocationError,
    CommunicationError,
    CudaError,
    GinkgoError,
    ResilienceExhausted,
    SolverBreakdown,
)
from repro.ginkgo.executor import PCIE_BANDWIDTH, PCIE_LATENCY, Executor
from repro.ginkgo.log import CheckpointLogger, ConvergenceLogger, Logger
from repro.ginkgo.matrix.dense import Dense
from repro.ginkgo.stop import Deadline

#: Exceptions the retry layer treats as transient by default.
#: CommunicationError covers distributed failures (dropped exchanges,
#: rank failures) that escape the solvers' own checkpoint/replay budget.
TRANSIENT_ERRORS = (
    CudaError,
    AllocationError,
    SolverBreakdown,
    CommunicationError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and how patiently, a failed attempt is retried.

    Attributes:
        max_retries: Additional attempts per executor after the first.
        base_delay: Backoff before the first retry, in simulated seconds.
        backoff_factor: Multiplier applied per subsequent retry
            (exponential backoff).
        retry_on: Exception types treated as transient; anything else
            propagates immediately.
    """

    max_retries: int = 3
    base_delay: float = 1e-3
    backoff_factor: float = 2.0
    retry_on: tuple = TRANSIENT_ERRORS

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise GinkgoError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0:
            raise GinkgoError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.backoff_factor < 1.0:
            raise GinkgoError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay(self, retry_index: int) -> float:
        """Simulated backoff before retry number ``retry_index`` (0-based)."""
        return self.base_delay * self.backoff_factor**retry_index


class CircuitBreaker:
    """Per-device circuit breaker over repeated executor failures.

    Tracks consecutive failures per device name.  Once a device fails
    ``failure_threshold`` times in a row its circuit *opens*: resilient
    solves skip it (no staging, no retries) until ``cooldown`` simulated
    seconds have passed on that device's clock, after which one probe
    attempt is admitted (half-open) — a success closes the circuit, a
    failure re-opens it immediately.  Shared across solves by passing
    one instance to :class:`FallbackChain`; this is the admission-control
    primitive the solver-as-a-service layer builds on.
    """

    def __init__(
        self, failure_threshold: int = 3, cooldown: float = 1.0
    ) -> None:
        if failure_threshold < 1:
            raise GinkgoError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise GinkgoError(f"cooldown must be >= 0, got {cooldown}")
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self._failures: dict[str, int] = {}
        self._opened_at: dict[str, float] = {}

    def is_open(self, exec_: Executor) -> bool:
        """Whether ``exec_``'s circuit currently rejects attempts.

        An expired cooldown flips the circuit to half-open: this call
        returns False once, admitting a single probe, and the failure
        count is primed so one more failure re-opens it.
        """
        opened = self._opened_at.get(exec_.name)
        if opened is None:
            return False
        if exec_.clock.now - opened >= self.cooldown:
            del self._opened_at[exec_.name]
            self._failures[exec_.name] = self.failure_threshold - 1
            return False
        return True

    def record_failure(self, exec_: Executor) -> bool:
        """Count one failure; returns True when this opens the circuit."""
        count = self._failures.get(exec_.name, 0) + 1
        self._failures[exec_.name] = count
        if count >= self.failure_threshold:
            self._opened_at[exec_.name] = exec_.clock.now
            return True
        return False

    def record_success(self, exec_: Executor) -> None:
        """A completed solve closes the circuit and resets the count."""
        self._failures[exec_.name] = 0
        self._opened_at.pop(exec_.name, None)

    def state(self, name: str) -> str:
        """``"open"``/``"closed"`` for the given device name."""
        return "open" if name in self._opened_at else "closed"

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(threshold={self.failure_threshold}, "
            f"cooldown={self.cooldown}, open={sorted(self._opened_at)})"
        )


class FallbackChain:
    """Ordered executors to degrade onto when one keeps failing.

    Entries are device names (resolved through :func:`repro.core.device`)
    or executor instances.  Entries matching the currently-failing
    executor's device name are skipped, so the default chain
    ``("cuda", "omp", "reference")`` does the right thing from any
    starting executor.

    An optional :class:`CircuitBreaker` (``breaker=...``) makes
    resilient solves skip devices whose circuit is open — share one
    breaker across chains/solves to pool failure history.
    """

    DEFAULT = ("cuda", "omp", "reference")

    def __init__(self, *devices, breaker: CircuitBreaker | None = None) -> None:
        if len(devices) == 1 and isinstance(devices[0], (list, tuple)):
            devices = tuple(devices[0])
        self.devices = devices or self.DEFAULT
        self.breaker = breaker

    def resolve(self, primary: Executor) -> list[Executor]:
        """Executors to try after ``primary``, in order, deduplicated."""
        chain: list[Executor] = []
        seen = {primary.name}
        for entry in self.devices:
            exec_ = (
                entry
                if isinstance(entry, Executor)
                else _device_factory(entry)
            )
            if exec_.name in seen:
                continue
            seen.add(exec_.name)
            chain.append(exec_)
        return chain

    def __repr__(self) -> str:
        return f"FallbackChain{self.devices!r}"


@dataclass
class ResilienceReport:
    """What a resilient solve did and how it ended.

    The event trail is a list of ``(name, payload)`` tuples in occurrence
    order; payloads hold only plain scalars/strings, so two runs with the
    same seeds produce identical trails.
    """

    converged: bool
    breakdown: bool
    num_iterations: int
    final_residual_norm: float
    residual_norms: list = field(default_factory=list)
    events: list = field(default_factory=list)
    attempts: int = 1
    executor_name: str = ""
    logger: ConvergenceLogger | None = None
    #: The solve hit its deadline before converging.
    timed_out: bool = False
    #: The returned solution is a best-effort partial result (deadline
    #: expiry), not a converged one.
    partial: bool = False

    @property
    def faults_injected(self) -> int:
        """Injected faults observed during the solve."""
        return sum(1 for name, _ in self.events if name == "fault_injected")

    @property
    def retries(self) -> int:
        return sum(1 for name, _ in self.events if name == "retry")

    @property
    def fallbacks(self) -> int:
        return sum(1 for name, _ in self.events if name == "fallback")

    def count(self, event: str) -> int:
        """Number of trail events with the given name."""
        return sum(1 for name, _ in self.events if name == event)

    def __repr__(self) -> str:
        return (
            f"ResilienceReport(converged={self.converged}, "
            f"iterations={self.num_iterations}, "
            f"attempts={self.attempts}, executor={self.executor_name!r}, "
            f"faults={self.faults_injected}, retries={self.retries}, "
            f"fallbacks={self.fallbacks})"
        )


class _FaultTrail(Logger):
    """Mirrors executor fault events into the report's event trail."""

    def __init__(self, events: list) -> None:
        self._events = events

    def on_fault_injected(self, exec_, **kwargs) -> None:
        self._events.append(("fault_injected", dict(kwargs)))

    def on_data_corrupted(self, exec_, **kwargs) -> None:
        self._events.append(("data_corrupted", dict(kwargs)))


def _restore_solution(exec_: Executor, x_dense: Dense, values: np.ndarray):
    """Write a host checkpoint back into the solution buffer.

    Models the host-to-device transfer on the clock without allocating, so
    the recovery path itself cannot hit an allocation fault.
    """
    if not exec_.is_host:
        exec_.clock.advance(
            PCIE_LATENCY + values.nbytes / PCIE_BANDWIDTH,
            category="transfer",
            label="checkpoint_restore",
            bytes=values.nbytes,
        )
    np.copyto(x_dense._data, values.astype(x_dense.dtype, copy=False))


def _emit(exec_: Executor, events: list, name: str, payload: dict) -> None:
    """Append to the event trail and mirror the event onto the clock trace."""
    events.append((name, payload))
    exec_.clock.annotate(name, **payload)


def _feed_metrics(metrics, report: "ResilienceReport") -> None:
    """Mirror a finished solve's report into a metrics registry."""
    if metrics is None:
        return
    metrics.counter("solves").inc()
    if report.converged:
        metrics.counter("solves_converged").inc()
    metrics.counter("attempts").inc(report.attempts)
    metrics.counter("retries").inc(report.retries)
    metrics.counter("fallbacks").inc(report.fallbacks)
    metrics.counter("faults_injected").inc(report.faults_injected)
    metrics.counter("data_corrupted").inc(report.count("data_corrupted"))
    metrics.counter("breakdowns").inc(report.count("breakdown"))
    metrics.counter("checkpoint_restores").inc(
        report.count("checkpoint_restored")
    )
    metrics.histogram("iterations_per_solve").observe(report.num_iterations)


def _find_deadline_factory(handle):
    """Locate the mutable :class:`Deadline` factory in a solver's criteria.

    The config route builds criteria factories once per solver; the
    deadline instant is only known per attempt, so ``resilient_solve``
    registers a placeholder and re-aims its ``at`` here before each
    apply (criteria bind factory state freshly on every apply).
    """
    criteria = handle.solver._factory.criteria
    for factory in getattr(criteria, "factories", (criteria,)):
        if isinstance(factory, Deadline):
            return factory
    return None


def resilient_solve(
    device,
    mtx,
    b,
    x=None,
    solver: str = "gmres",
    preconditioner=None,
    max_iters: int = 1000,
    reduction_factor: float | None = 1e-6,
    retry: RetryPolicy | None = None,
    fallback: FallbackChain | None = None,
    checkpoint_every: int = 0,
    divergence_limit: float | None = None,
    deadline: float | None = None,
    metrics=None,
    **solver_params,
):
    """Fault-tolerant one-call linear solve through the config-solver.

    Accepts everything :func:`repro.core.solve.solve` accepts, plus the
    resilience knobs.  Transient failures (device errors, failed
    allocations, NaN/Inf breakdowns) are retried with exponential backoff
    in simulated time; an executor that exhausts its retries is abandoned
    for the next one in the fallback chain, with operands rebuilt from
    pristine host snapshots.  When checkpointing is on, retries restart
    from the last captured solution instead of from scratch.

    Args:
        device: Executor or device name the solve starts on (may be a
            :class:`~repro.ginkgo.fault.FaultyExecutor`).
        mtx: System matrix (engine LinOp, resident on ``device``).
        b: Right-hand side (Tensor or Dense).
        x: Initial guess; zeros when omitted.
        solver: Solver name (default GMRES).
        preconditioner: Preconditioner name or config dict.
        max_iters: Iteration limit per attempt.
        reduction_factor: Relative residual threshold.
        retry: :class:`RetryPolicy`; default retries 3 times.
        fallback: :class:`FallbackChain`; default
            ``cuda -> omp -> reference``.  Pass
            ``FallbackChain(device)`` to pin the solve to one device
            (no degradation, retries only).
        checkpoint_every: Capture the solution every N iterations
            (0 disables checkpointing).
        divergence_limit: Abandon an attempt early when the residual
            exceeds this multiple of the initial residual (adds a
            ``stop::Divergence`` criterion).
        deadline: Total simulated-seconds budget for the whole resilient
            solve — staging, retries, backoff, and fallbacks included.
            When the budget runs out the solve stops (via a
            ``stop::Deadline`` criterion inside an attempt, or before
            the next attempt starts) and returns the best-effort partial
            solution with ``report.timed_out`` and ``report.partial``
            set, instead of raising.  ``None`` (default) disables it.
        metrics: Optional :class:`~repro.ginkgo.log.MetricsRegistry`;
            receives ``solves``/``attempts``/``retries``/``fallbacks``/
            ``faults_injected`` counters and an ``iterations_per_solve``
            histogram.
        **solver_params: Extra solver parameters (``krylov_dim=...``).

    Returns:
        ``(report, x)`` — the :class:`ResilienceReport` and the solution
        tensor (on whichever executor completed the solve).

    Raises:
        ResilienceExhausted: Every retry on every executor failed.
    """
    retry = retry or RetryPolicy()
    fallback = fallback or FallbackChain()
    primary = (
        device
        if isinstance(device, Executor)
        else _device_factory(device or "reference")
    )

    # Pristine host snapshots: fallback rebuilds operands from these, so a
    # corrupted device buffer cannot poison the next executor.
    b_dense = _unwrap(b)
    b_host = b_dense.to_numpy()
    if x is None:
        x_host = np.zeros_like(b_host)
        x_dense = Dense.create(primary, x_host)
    else:
        x_dense = _unwrap(x)
        x_host = x_dense.to_numpy()
    wrap_result = x is None or isinstance(x, Tensor)

    config = build_config(
        solver=solver,
        preconditioner=preconditioner,
        max_iters=max_iters,
        reduction_factor=reduction_factor,
        **solver_params,
    )
    # Strict breakdowns let the retry layer catch NaN/Inf poisoning.
    config["strict_breakdown"] = True
    if divergence_limit is not None:
        config["criteria"].append(
            {"type": "stop::Divergence", "limit": float(divergence_limit)}
        )
    if deadline is not None:
        if deadline <= 0:
            raise GinkgoError(
                f"deadline must be > 0 simulated seconds, got {deadline}"
            )
        # Placeholder instant; _find_deadline_factory re-aims `at` per
        # executor once the absolute deadline on its clock is known.
        config["criteria"].append({"type": "stop::Deadline", "at": 0.0})

    events: list = []
    history: list = []
    attempts = 0
    checkpoint: tuple[int, np.ndarray] | None = None
    # Budget already consumed on earlier executors' clocks; each executor
    # has its own clock, so the deadline is tracked as elapsed simulated
    # seconds, not as one absolute instant.
    spent = 0.0

    def _partial_return(exec_, x_cur, logger, iterations, residual):
        """Best-effort result when the deadline expires mid-flight."""
        _emit(
            exec_,
            events,
            "deadline_exceeded",
            {"executor": exec_.name, "iterations": iterations},
        )
        report = ResilienceReport(
            converged=False,
            breakdown=bool(logger.breakdown) if logger else False,
            num_iterations=iterations,
            final_residual_norm=residual,
            residual_norms=list(logger.residual_norms) if logger else [],
            events=events,
            attempts=attempts,
            executor_name=exec_.name,
            logger=logger,
            timed_out=True,
            partial=True,
        )
        _feed_metrics(metrics, report)
        return report, (Tensor(x_cur) if wrap_result else x_cur)

    chain = [primary] + fallback.resolve(primary)
    for position, exec_ in enumerate(chain):
        if fallback.breaker is not None and fallback.breaker.is_open(exec_):
            _emit(
                exec_,
                events,
                "circuit_skipped",
                {"executor": exec_.name},
            )
            continue
        exec_enter = exec_.clock.now
        deadline_at = (
            None if deadline is None else exec_enter + (deadline - spent)
        )
        # Stage the operands on this executor.
        try:
            if exec_ is primary:
                mtx_cur, b_cur, x_cur = mtx, b_dense, x_dense
            else:
                if not hasattr(mtx, "copy_to"):
                    raise GinkgoError(
                        f"matrix {type(mtx).__name__} cannot be moved to "
                        f"{exec_.name} (no copy_to); fallback impossible"
                    )
                mtx_cur = mtx.copy_to(exec_)
                b_cur = Dense.create(exec_, b_host)
                x_cur = Dense.create(exec_, x_host)
        except retry.retry_on as err:
            history.append((exec_.name, err))
            _emit(
                exec_,
                events,
                "staging_failed",
                {"executor": exec_.name, "error": type(err).__name__},
            )
            spent += exec_.clock.now - exec_enter
            continue

        trail = _FaultTrail(events)
        exec_.add_logger(trail)
        # The handle is built once per executor and reused across retries
        # (PR-3 workspace pools make rebuilds wasteful); a retry clears
        # the pooled workspace instead, so a fault-poisoned scratch
        # buffer cannot leak into the rerun.
        handle = None
        dl_factory = None
        try:
            for attempt in range(retry.max_retries + 1):
                if (
                    deadline_at is not None
                    and exec_.clock.now >= deadline_at
                ):
                    iterations = checkpoint[0] if checkpoint else 0
                    if checkpoint is not None:
                        _restore_solution(exec_, x_cur, checkpoint[1])
                        _emit(
                            exec_,
                            events,
                            "checkpoint_restored",
                            {"iteration": iterations},
                        )
                    return _partial_return(
                        exec_, x_cur, None, iterations, float("nan")
                    )
                attempts += 1
                _emit(
                    exec_,
                    events,
                    "attempt_started",
                    {"executor": exec_.name, "attempt": attempts},
                )
                checkpointer = (
                    CheckpointLogger(every=checkpoint_every, sink=events)
                    if checkpoint_every
                    else None
                )
                checkpointer_added = False
                logger = None
                try:
                    if handle is None:
                        handle = config_solver(exec_, mtx_cur, config)
                        if deadline_at is not None:
                            dl_factory = _find_deadline_factory(handle)
                    else:
                        handle.solver.clear_workspace()
                        _emit(
                            exec_,
                            events,
                            "workspace_cleared",
                            {"executor": exec_.name},
                        )
                    if checkpointer is not None:
                        handle.solver.add_logger(checkpointer)
                        checkpointer_added = True
                    if dl_factory is not None:
                        dl_factory.at = deadline_at
                    logger, _ = handle.apply(b_cur, x_cur)
                except retry.retry_on as err:
                    history.append((exec_.name, err))
                    _emit(
                        exec_,
                        events,
                        "attempt_failed",
                        {
                            "executor": exec_.name,
                            "attempt": attempts,
                            "error": type(err).__name__,
                        },
                    )
                    # A checkpoint captured during the failed attempt is
                    # still valid state to restart from.
                    if (
                        checkpointer is not None
                        and checkpointer.solution is not None
                        and (
                            checkpoint is None
                            or checkpointer.iteration > checkpoint[0]
                        )
                    ):
                        checkpoint = (
                            checkpointer.iteration,
                            checkpointer.solution,
                        )
                    if (
                        fallback.breaker is not None
                        and fallback.breaker.record_failure(exec_)
                    ):
                        _emit(
                            exec_,
                            events,
                            "circuit_opened",
                            {"executor": exec_.name},
                        )
                        break
                    if attempt == retry.max_retries:
                        break
                    delay = retry.delay(attempt)
                    exec_.clock.advance(
                        delay, category="stall", label="retry_backoff"
                    )
                    restart_from = 0
                    if checkpoint is not None:
                        restart_from = checkpoint[0]
                        _restore_solution(exec_, x_cur, checkpoint[1])
                        _emit(
                            exec_,
                            events,
                            "checkpoint_restored",
                            {"iteration": restart_from},
                        )
                    else:
                        _restore_solution(exec_, x_cur, x_host)
                    _emit(
                        exec_,
                        events,
                        "retry",
                        {
                            "executor": exec_.name,
                            "attempt": attempts + 1,
                            "delay": delay,
                            "restart_iteration": restart_from,
                        },
                    )
                    continue
                finally:
                    if checkpointer_added:
                        handle.solver.remove_logger(checkpointer)
                if getattr(handle.solver, "timed_out", False):
                    # The Deadline criterion stopped the apply: the
                    # iterate in x_cur is the truthful partial result.
                    if fallback.breaker is not None:
                        fallback.breaker.record_success(exec_)
                    return _partial_return(
                        exec_,
                        x_cur,
                        logger,
                        logger.num_iterations,
                        logger.final_residual_norm,
                    )
                # Success: the apply ran to a verdict without faulting.
                if fallback.breaker is not None:
                    fallback.breaker.record_success(exec_)
                _emit(
                    exec_,
                    events,
                    "solve_completed",
                    {
                        "executor": exec_.name,
                        "attempt": attempts,
                        "converged": logger.converged,
                        "iterations": logger.num_iterations,
                    },
                )
                report = ResilienceReport(
                    converged=logger.converged,
                    breakdown=logger.breakdown,
                    num_iterations=logger.num_iterations,
                    final_residual_norm=logger.final_residual_norm,
                    residual_norms=list(logger.residual_norms),
                    events=events,
                    attempts=attempts,
                    executor_name=exec_.name,
                    logger=logger,
                )
                _feed_metrics(metrics, report)
                result = Tensor(x_cur) if wrap_result else x_cur
                return report, result
        finally:
            exec_.remove_logger(trail)
        spent += exec_.clock.now - exec_enter
        if position + 1 < len(chain):
            _emit(
                exec_,
                events,
                "fallback",
                {
                    "from": exec_.name,
                    "to": chain[position + 1].name,
                },
            )

    if metrics is not None:
        metrics.counter("solves").inc()
        metrics.counter("solves_exhausted").inc()
        metrics.counter("attempts").inc(attempts)
    raise ResilienceExhausted(attempts, history)


@dataclass
class BatchResilienceReport:
    """What a resilient batched solve did, per system and overall.

    ``converged``/``num_iterations``/``final_residual_norm`` are length-K
    arrays reflecting the *final* outcome — a quarantined system that a
    scalar retry recovered reports its retry's verdict, not the faulted
    batch attempt's.
    """

    num_systems: int
    converged: np.ndarray
    num_iterations: np.ndarray
    final_residual_norm: np.ndarray
    #: Systems isolated out of the batch (breakdown or poisoned iterate).
    quarantined: list = field(default_factory=list)
    #: Quarantined systems whose per-system retry converged.
    recovered: list = field(default_factory=list)
    events: list = field(default_factory=list)
    attempts: int = 1
    executor_name: str = ""

    @property
    def all_converged(self) -> bool:
        return bool(np.all(self.converged))

    @property
    def faults_injected(self) -> int:
        return sum(1 for name, _ in self.events if name == "fault_injected")

    def count(self, event: str) -> int:
        """Number of trail events with the given name."""
        return sum(1 for name, _ in self.events if name == event)

    def __repr__(self) -> str:
        return (
            f"BatchResilienceReport(K={self.num_systems}, "
            f"converged={int(np.sum(self.converged))}, "
            f"quarantined={self.quarantined}, recovered={self.recovered}, "
            f"attempts={self.attempts})"
        )


def resilient_batch_solve(
    device,
    mtx,
    b,
    x=None,
    solver: str = "cg",
    preconditioner=None,
    max_iters: int = 1000,
    reduction_factor: float | None = 1e-6,
    retry: RetryPolicy | None = None,
    metrics=None,
    **solver_params,
):
    """Fault-tolerant batched solve with per-system quarantine.

    Runs the batched solver once; transient failures of the *whole*
    batch (device errors, allocation faults) are retried with backoff
    from pristine snapshots.  Systems the batch run could not finish
    cleanly — a breakdown flag (the batch monitors compact faulted
    systems out of the active set) or a non-finite iterate — are
    *quarantined* and re-solved one at a time through
    :func:`resilient_solve` on copies of their pristine operands, and
    the recovered solutions are scattered back into the stacked result.

    Args:
        device: Executor or device name (may be a
            :class:`~repro.ginkgo.fault.FaultyExecutor`).
        mtx: :class:`~repro.ginkgo.batch.matrix.BatchCsr` system matrices.
        b: Stacked right-hand sides (:class:`BatchDense`).
        x: Stacked initial guesses; zeros when omitted.
        solver: ``"cg"``, ``"bicgstab"``, or ``"gmres"``.
        preconditioner: Batched preconditioner passed through to the
            batch factory (the per-system retry runs unpreconditioned).
        max_iters / reduction_factor: Per-system stopping controls.
        retry: :class:`RetryPolicy` for whole-batch transient failures.
        metrics: Optional metrics registry; receives ``batch_solves``,
            ``batch_systems``, ``batch_quarantined``, ``batch_recovered``
            counters.
        **solver_params: Extra batch-solver parameters.

    Returns:
        ``(report, x)`` — the :class:`BatchResilienceReport` and the
        stacked solution (solved in place when ``x`` was given).

    Raises:
        ResilienceExhausted: Every whole-batch retry failed.
    """
    # Lazy import: batch_api pulls the binding layer, which imports this
    # module's consumers.
    from repro.core import batch_api

    retry = retry or RetryPolicy()
    exec_ = (
        device
        if isinstance(device, Executor)
        else _device_factory(device or "reference")
    )
    makers = {
        "cg": batch_api.cg,
        "bicgstab": batch_api.bicgstab,
        "gmres": batch_api.gmres,
    }
    if solver not in makers:
        raise GinkgoError(
            f"unknown batch solver {solver!r}; expected one of "
            f"{sorted(makers)}"
        )
    if x is None:
        x = batch_api.zeros_like(b)
    b_host = np.array(b._data, copy=True)
    x_host = np.array(x._data, copy=True)

    events: list = []
    history: list = []
    attempts = 0
    trail = _FaultTrail(events)
    exec_.add_logger(trail)
    handle = None
    try:
        for attempt in range(retry.max_retries + 1):
            attempts += 1
            _emit(
                exec_,
                events,
                "batch_attempt_started",
                {"executor": exec_.name, "attempt": attempts},
            )
            try:
                if handle is None:
                    handle = makers[solver](
                        exec_,
                        mtx,
                        preconditioner=preconditioner,
                        max_iters=max_iters,
                        reduction_factor=reduction_factor,
                        **solver_params,
                    )
                handle.apply(b, x)
            except retry.retry_on as err:
                history.append((exec_.name, err))
                _emit(
                    exec_,
                    events,
                    "attempt_failed",
                    {
                        "executor": exec_.name,
                        "attempt": attempts,
                        "error": type(err).__name__,
                    },
                )
                if attempt == retry.max_retries:
                    if metrics is not None:
                        metrics.counter("batch_solves").inc()
                        metrics.counter("solves_exhausted").inc()
                    raise ResilienceExhausted(attempts, history)
                delay = retry.delay(attempt)
                exec_.clock.advance(
                    delay, category="stall", label="retry_backoff"
                )
                np.copyto(x._data, x_host)
                _emit(
                    exec_,
                    events,
                    "retry",
                    {
                        "executor": exec_.name,
                        "attempt": attempts + 1,
                        "delay": delay,
                    },
                )
                continue
            break
    finally:
        exec_.remove_logger(trail)

    status = handle.status
    converged = np.array(status.converged, copy=True)
    num_iterations = np.array(status.num_iterations, copy=True)
    final_residual_norm = np.array(status.final_residual_norm, copy=True)

    # Quarantine: breakdown (injected corruption compacts the system out
    # of the batch) or a non-finite iterate that slipped through.
    quarantined = sorted(
        set(np.flatnonzero(status.breakdown).tolist())
        | {
            k
            for k in range(b.num_systems)
            if not np.all(np.isfinite(x._data[k]))
        }
    )
    recovered: list = []
    for k in quarantined:
        _emit(
            exec_,
            events,
            "system_quarantined",
            {"system": int(k), "breakdown": bool(status.breakdown[k])},
        )
        try:
            sys_report, x_sys = resilient_solve(
                exec_,
                mtx.item(k),
                Dense.create(exec_, b_host[k]),
                x=Dense.create(exec_, x_host[k]),
                solver=solver,
                max_iters=max_iters,
                reduction_factor=reduction_factor,
                retry=retry,
                fallback=FallbackChain(exec_),
            )
        except ResilienceExhausted:
            _emit(
                exec_, events, "system_unrecovered", {"system": int(k)}
            )
            continue
        np.copyto(x._data[k], x_sys._data)
        converged[k] = sys_report.converged
        num_iterations[k] = sys_report.num_iterations
        final_residual_norm[k] = sys_report.final_residual_norm
        if sys_report.converged:
            recovered.append(int(k))
            _emit(
                exec_,
                events,
                "system_recovered",
                {
                    "system": int(k),
                    "iterations": sys_report.num_iterations,
                    "attempts": sys_report.attempts,
                },
            )

    report = BatchResilienceReport(
        num_systems=b.num_systems,
        converged=converged,
        num_iterations=num_iterations,
        final_residual_norm=final_residual_norm,
        quarantined=[int(k) for k in quarantined],
        recovered=recovered,
        events=events,
        attempts=attempts,
        executor_name=exec_.name,
    )
    if metrics is not None:
        metrics.counter("batch_solves").inc()
        metrics.counter("batch_systems").inc(b.num_systems)
        metrics.counter("batch_quarantined").inc(len(quarantined))
        metrics.counter("batch_recovered").inc(len(recovered))
        metrics.counter("faults_injected").inc(report.faults_injected)
    return report, x
