"""The generic ``pg.solve`` entry point (config-solver route, Listing 2).

``solve`` builds a configuration dictionary from its arguments on the
Python side and hands it to the engine's config-solver — the same flow the
paper describes: "a dictionary that is based on the arguments that are
passed is created at the python backend ... then used to call Ginkgo's
config_solve method", with no temporary files on disk.
"""

from __future__ import annotations

from repro.core.device import device as _device_factory
from repro.core.solver_api import SolverHandle, _unwrap
from repro.core.tensor import Tensor, as_tensor
from repro.ginkgo.config import parse
from repro.ginkgo.config.parser import to_json
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.executor import Executor


def build_config(
    solver: str = "gmres",
    preconditioner: str | dict | None = None,
    max_iters: int = 1000,
    reduction_factor: float | None = 1e-6,
    **solver_params,
) -> dict:
    """Assemble the Listing-2-style configuration dictionary.

    Args:
        solver: Solver name or ``solver::X`` type string.
        preconditioner: Preconditioner name (``"jacobi"``/``"ilu"``/...)
            or a full preconditioner config dict, or None.
        max_iters: Iteration criterion.
        reduction_factor: Relative residual criterion (None to omit).
        **solver_params: Extra solver parameters (e.g. ``krylov_dim=30``).

    Returns:
        A config dictionary ready for the engine's config-solver.
    """
    criteria = [{"type": "stop::Iteration", "max_iters": int(max_iters)}]
    if reduction_factor is not None:
        criteria.append(
            {
                "type": "stop::ResidualNorm",
                "reduction_factor": float(reduction_factor),
                "baseline": "rhs_norm",
            }
        )
    config: dict = {"type": solver, "criteria": criteria}
    config.update(solver_params)
    if preconditioner is not None:
        if isinstance(preconditioner, str):
            config["preconditioner"] = {"type": preconditioner}
        elif isinstance(preconditioner, dict):
            config["preconditioner"] = preconditioner
        else:
            raise GinkgoError(
                "preconditioner must be a name or a config dict in the "
                "config-solver route; pass generated operators to "
                "pg.solver.* instead"
            )
    return config


def config_solver(device, mtx, config: dict) -> SolverHandle:
    """Instantiate a solver from a configuration dictionary."""
    exec_ = (
        device
        if isinstance(device, Executor)
        else _device_factory(device or "reference")
    )
    factory = parse(exec_, config)
    return SolverHandle(factory.generate(mtx))


def solve(
    device,
    mtx,
    b,
    x=None,
    solver: str = "gmres",
    preconditioner=None,
    max_iters: int = 1000,
    reduction_factor: float | None = 1e-6,
    retry=None,
    fallback=None,
    checkpoint_every: int = 0,
    metrics=None,
    **solver_params,
):
    """One-call linear solve through the config-solver.

    Args:
        device: Executor or device name.
        mtx: System matrix (engine LinOp).
        b: Right-hand side (Tensor or Dense).
        x: Initial guess; zeros when omitted.
        solver: Solver name (default GMRES, as in Listing 2).
        preconditioner: Preconditioner name or config dict.
        max_iters: Iteration limit.
        reduction_factor: Relative residual threshold.
        retry: A :class:`~repro.core.resilient.RetryPolicy`; setting it
            (or ``fallback``/``checkpoint_every``) routes the solve
            through :func:`~repro.core.resilient.resilient_solve`, which
            then returns ``(report, x)`` instead of ``(logger, x)``.
        fallback: A :class:`~repro.core.resilient.FallbackChain` of
            executors to degrade onto.
        checkpoint_every: Checkpoint the solution every N iterations
            (resilient route only).
        metrics: Optional :class:`~repro.ginkgo.log.MetricsRegistry`
            receiving solve/iteration counters (resilient route only).
        **solver_params: Extra solver parameters (``krylov_dim=...``).

    Returns:
        ``(logger, x)`` — the convergence logger and the solution tensor
        (``(report, x)`` on the resilient route).
    """
    if retry is not None or fallback is not None or checkpoint_every:
        from repro.core.resilient import resilient_solve

        return resilient_solve(
            device,
            mtx,
            b,
            x=x,
            solver=solver,
            preconditioner=preconditioner,
            max_iters=max_iters,
            reduction_factor=reduction_factor,
            retry=retry,
            fallback=fallback,
            checkpoint_every=checkpoint_every,
            metrics=metrics,
            **solver_params,
        )
    exec_ = (
        device
        if isinstance(device, Executor)
        else _device_factory(device or "reference")
    )
    if x is None:
        rows = _unwrap(b).size.rows
        cols = _unwrap(b).size.cols
        x = as_tensor(
            device=exec_, dim=(rows, cols), dtype=_unwrap(b).dtype, fill=0.0
        )
    config = build_config(
        solver=solver,
        preconditioner=preconditioner,
        max_iters=max_iters,
        reduction_factor=reduction_factor,
        **solver_params,
    )
    handle = config_solver(exec_, mtx, config)
    return handle.apply(b, x)


def config_to_json(config: dict) -> str:
    """Serialise a config dict to the JSON string Ginkgo would receive."""
    return to_json(config)
