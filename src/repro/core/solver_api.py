"""The ``pg.solver`` namespace: direct solver bindings (Listing 1).

Each function builds the solver factory through the type-suffixed binding
layer, generates it on the system matrix, and returns a
:class:`SolverHandle` whose ``apply(b, x)`` returns ``(logger, result)``
exactly as in the paper's Listing 1.
"""

from __future__ import annotations

import numpy as np

from repro import bindings
from repro.core.tensor import Tensor
from repro.core.types import value_dtype
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.log import ConvergenceLogger
from repro.ginkgo.matrix.dense import Dense
from repro.ginkgo.stop import Iteration, ResidualNorm


def _unwrap(operand) -> Dense:
    if isinstance(operand, Tensor):
        return operand.dense
    if isinstance(operand, Dense):
        return operand
    raise GinkgoError(
        f"expected a Tensor or Dense operand, got {type(operand).__name__}"
    )


class SolverHandle:
    """A generated solver with pyGinkgo's apply contract.

    ``apply(b, x)`` runs the solve in place on ``x`` (the initial guess)
    and returns ``(logger, x)``: the convergence logger with diagnostic
    information, and the solution (same object as the ``x`` passed in).
    """

    def __init__(self, solver) -> None:
        self._solver = solver
        self._logger = ConvergenceLogger()
        solver.add_logger(self._logger)

    @property
    def solver(self):
        """The underlying engine solver LinOp."""
        return self._solver

    @property
    def size(self):
        return self._solver.size

    @property
    def num_iterations(self) -> int:
        """Iterations run by the most recent ``apply`` (0 before any)."""
        return self._solver.num_iterations

    @property
    def converged(self) -> bool:
        """Whether the most recent ``apply`` met its residual criterion."""
        return self._solver.converged

    @property
    def final_residual_norm(self) -> float:
        """Residual norm at the end of the most recent ``apply``."""
        return self._solver.final_residual_norm

    def apply(self, b, x):
        """Solve ``A x = b`` starting from the initial guess in ``x``."""
        self._solver.apply(_unwrap(b), _unwrap(x))
        return self._logger, x

    def __repr__(self) -> str:
        return f"SolverHandle({type(self._solver).__name__})"


def _build_criteria(max_iters, reduction_factor, criteria):
    if criteria is not None:
        return criteria
    built = Iteration(max_iters)
    if reduction_factor is not None:
        built = built | ResidualNorm(reduction_factor, baseline="rhs_norm")
    return built


def _make_solver(
    name,
    device,
    mtx,
    preconditioner=None,
    max_iters=1000,
    reduction_factor=1e-6,
    criteria=None,
    **params,
) -> SolverHandle:
    # Abstract LinOps (compositions, stencils, ...) carry no dtype; the
    # engine iterates in double precision for them.
    factory_binding = bindings.resolve(
        f"{name}_factory",
        value_dtype(getattr(mtx, "dtype", np.float64)),
        exec_=device,
    )
    factory = factory_binding(
        device,
        criteria=_build_criteria(max_iters, reduction_factor, criteria),
        preconditioner=preconditioner,
        **params,
    )
    return SolverHandle(factory.generate(mtx))


def cg(device, mtx, preconditioner=None, **kwargs) -> SolverHandle:
    """Conjugate Gradient solver (SPD systems)."""
    return _make_solver("cg", device, mtx, preconditioner, **kwargs)


def fcg(device, mtx, preconditioner=None, **kwargs) -> SolverHandle:
    """Flexible Conjugate Gradient solver."""
    return _make_solver("fcg", device, mtx, preconditioner, **kwargs)


def cgs(device, mtx, preconditioner=None, **kwargs) -> SolverHandle:
    """Conjugate Gradient Squared solver (general systems)."""
    return _make_solver("cgs", device, mtx, preconditioner, **kwargs)


def bicg(device, mtx, preconditioner=None, **kwargs) -> SolverHandle:
    """Biconjugate Gradient solver."""
    return _make_solver("bicg", device, mtx, preconditioner, **kwargs)


def bicgstab(device, mtx, preconditioner=None, **kwargs) -> SolverHandle:
    """BiCGSTAB solver."""
    return _make_solver("bicgstab", device, mtx, preconditioner, **kwargs)


def gmres(
    device,
    mtx,
    preconditioner=None,
    max_iters=1000,
    krylov_dim=30,
    reduction_factor=1e-6,
    criteria=None,
) -> SolverHandle:
    """Restarted GMRES (Listing 1's solver).

    Args:
        device: Executor the solver runs on.
        mtx: System matrix (engine LinOp).
        preconditioner: Generated preconditioner LinOp or factory.
        max_iters: Iteration limit.
        krylov_dim: Restart length (paper uses 30).
        reduction_factor: Relative residual threshold (vs the RHS norm).
        criteria: Explicit criteria factory overriding the above two.
    """
    return _make_solver(
        "gmres",
        device,
        mtx,
        preconditioner,
        max_iters=max_iters,
        reduction_factor=reduction_factor,
        criteria=criteria,
        krylov_dim=krylov_dim,
    )


def minres(device, mtx, preconditioner=None, **kwargs) -> SolverHandle:
    """MINRES solver (symmetric indefinite systems)."""
    return _make_solver("minres", device, mtx, preconditioner, **kwargs)


def idr(device, mtx, preconditioner=None, subspace_dim=2, **kwargs) -> SolverHandle:
    """IDR(s) solver (general systems, short recurrences)."""
    return _make_solver(
        "idr", device, mtx, preconditioner, subspace_dim=subspace_dim,
        **kwargs,
    )


def cb_gmres(
    device,
    mtx,
    preconditioner=None,
    krylov_dim=30,
    storage_precision="float32",
    **kwargs,
) -> SolverHandle:
    """Compressed-basis GMRES: Krylov basis stored in reduced precision."""
    return _make_solver(
        "cb_gmres", device, mtx, preconditioner, krylov_dim=krylov_dim,
        storage_precision=storage_precision, **kwargs,
    )


def ir(device, mtx, inner_solver=None, **kwargs) -> SolverHandle:
    """Iterative refinement / Richardson."""
    if inner_solver is not None:
        kwargs["solver"] = inner_solver
    return _make_solver("ir", device, mtx, None, **kwargs)


def direct(device, mtx) -> SolverHandle:
    """Sparse direct (LU) solver."""
    factory = bindings.resolve("direct_factory", mtx.dtype, exec_=device)(
        device
    )
    return SolverHandle(factory.generate(mtx))


def lower_trs(device, mtx, unit_diagonal: bool = False) -> SolverHandle:
    """Lower triangular solver."""
    factory = bindings.resolve("lower_trs_factory", mtx.dtype, exec_=device)(
        device, unit_diagonal=unit_diagonal
    )
    return SolverHandle(factory.generate(mtx))


def upper_trs(device, mtx, unit_diagonal: bool = False) -> SolverHandle:
    """Upper triangular solver."""
    factory = bindings.resolve("upper_trs_factory", mtx.dtype, exec_=device)(
        device, unit_diagonal=unit_diagonal
    )
    return SolverHandle(factory.generate(mtx))
