"""The ``Tensor`` type and the ``as_tensor``/``array`` entry points.

``as_tensor`` is one of the paper's complex-dispatching entry points
(section 3.4): it accepts NumPy arrays (zero-copy on host executors via
the buffer protocol), nested lists, scalars-with-shape (Listing 1's
``fill=`` form), other tensors, and engine Dense operands, and dispatches
to the type-suffixed binding matching the requested dtype.
"""

from __future__ import annotations

import numpy as np

from repro import bindings
from repro.core.device import device as _device_factory
from repro.core.types import value_dtype
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.executor import Executor
from repro.ginkgo.matrix.dense import Dense


class Tensor:
    """A dense tensor bound to a device, wrapping the engine's Dense.

    Tensors are what pyGinkgo's vector-level API traffics in: NumPy-like
    construction and arithmetic on top of executor-resident storage.
    """

    def __init__(self, dense: Dense) -> None:
        if not isinstance(dense, Dense):
            raise GinkgoError(
                f"Tensor wraps an engine Dense, got {type(dense).__name__}"
            )
        self._dense = dense

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def dense(self) -> Dense:
        """The underlying engine operand."""
        return self._dense

    @property
    def shape(self) -> tuple:
        return self._dense.shape

    @property
    def size(self):
        """Ginkgo-style dimension object (supports ``size[0]``)."""
        return self._dense.size

    @property
    def dtype(self) -> np.dtype:
        return self._dense.dtype

    @property
    def device(self) -> Executor:
        return self._dense.executor

    @property
    def T(self) -> "Tensor":
        return Tensor(self._dense.transpose())

    def __len__(self) -> int:
        return self.shape[0]

    # ------------------------------------------------------------------
    # data access / interop
    # ------------------------------------------------------------------
    def numpy(self) -> np.ndarray:
        """Copy out to a host NumPy array (works from any device)."""
        return self._dense.to_numpy()

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        """Zero-copy buffer-protocol view (host executors only)."""
        return self._dense.__array__(dtype)

    def item(self) -> float:
        """The single element of a 1x1 tensor."""
        if self.size.num_elements != 1:
            raise GinkgoError(f"item() needs a 1-element tensor, got {self.shape}")
        return float(self._dense.at(0, 0))

    def __getitem__(self, key):
        data = self.numpy()
        return data[key]

    # ------------------------------------------------------------------
    # movement
    # ------------------------------------------------------------------
    def to(self, target) -> "Tensor":
        """Copy to another device (accepts an executor or a device name)."""
        exec_ = target if isinstance(target, Executor) else _device_factory(target)
        if exec_ is self.device:
            return self
        return Tensor(self._dense.copy_to(exec_))

    def clone(self) -> "Tensor":
        return Tensor(self._dense.clone())

    def astype(self, dtype) -> "Tensor":
        return Tensor(self._dense.astype(value_dtype(dtype)))

    # ------------------------------------------------------------------
    # arithmetic (NumPy-idiomatic, returning new tensors)
    # ------------------------------------------------------------------
    def _coerce(self, other) -> Dense:
        if isinstance(other, Tensor):
            return other._dense
        if isinstance(other, Dense):
            return other
        raise TypeError(
            f"cannot combine Tensor with {type(other).__name__}"
        )

    def __add__(self, other):
        from repro.ginkgo import lazy

        if lazy.is_recording() or isinstance(other, lazy.LazyExpr):
            return lazy.add_expr(self, other)
        out = self._dense.clone()
        out.add_scaled(1.0, self._coerce(other))
        return Tensor(out)

    def __sub__(self, other):
        from repro.ginkgo import lazy

        if lazy.is_recording() or isinstance(other, lazy.LazyExpr):
            return lazy.add_expr(self, other, sign=-1.0)
        out = self._dense.clone()
        out.sub_scaled(1.0, self._coerce(other))
        return Tensor(out)

    def __mul__(self, scalar):
        from repro.ginkgo import lazy

        if lazy.is_recording():
            return lazy.scale_expr(float(scalar), self)
        out = self._dense.clone()
        out.scale(float(scalar))
        return Tensor(out)

    __rmul__ = __mul__

    def __truediv__(self, scalar) -> "Tensor":
        out = self._dense.clone()
        out.inv_scale(float(scalar))
        return Tensor(out)

    def __neg__(self) -> "Tensor":
        return self * -1.0

    # in-place ops
    def fill_(self, value) -> "Tensor":
        self._dense.fill(value)
        return self

    def add_(self, other, alpha: float = 1.0) -> "Tensor":
        self._dense.add_scaled(alpha, self._coerce(other))
        return self

    def scale_(self, alpha) -> "Tensor":
        self._dense.scale(alpha)
        return self

    # reductions
    def dot(self, other) -> float:
        """Dot product (single-column tensors) or per-column dots."""
        result = self._dense.compute_dot(self._coerce(other))
        return float(result[0]) if result.size == 1 else result

    def norm(self) -> float:
        """Euclidean norm (single column) or per-column norms."""
        result = self._dense.compute_norm2()
        return float(result[0]) if result.size == 1 else result

    def __repr__(self) -> str:
        return (
            f"Tensor(shape={self.shape}, dtype={self.dtype}, "
            f"device={self.device.name})"
        )


def as_tensor(
    data=None,
    device=None,
    dim=None,
    dtype="double",
    fill=None,
) -> Tensor:
    """Create a tensor, dispatching on the argument types (Listing 1).

    Three forms are supported::

        as_tensor(device=dev, dim=(n, 1), dtype="double", fill=1.0)
        as_tensor(numpy_array, device=dev)           # zero-copy on host
        as_tensor(existing_tensor, device=other_dev) # device migration

    Args:
        data: Array-like, Tensor, or engine Dense; None with ``dim``+
            ``fill`` allocates.
        device: Target executor or device name (default: reference).
        dim: Shape for the allocate-and-fill form.
        dtype: Value type name or numpy dtype.
        fill: Fill value for the allocate form (default 0.0).

    Returns:
        The tensor on the requested device.
    """
    exec_ = (
        device
        if isinstance(device, Executor)
        else _device_factory(device or "reference")
    )
    dt = value_dtype(dtype)

    if data is None:
        if dim is None:
            raise GinkgoError("as_tensor needs either data or dim=")
        rows, cols = (dim, 1) if np.isscalar(dim) else (dim[0], dim[1])
        dense = bindings.resolve("dense_empty", dt, exec_=exec_)(
            exec_, rows, cols
        )
        if fill is not None and fill != 0.0:
            dense.fill(fill)
        return Tensor(dense)

    if isinstance(data, Tensor):
        moved = data.to(exec_)
        return moved.astype(dt) if moved.dtype != dt else moved
    if isinstance(data, Dense):
        return as_tensor(Tensor(data), device=exec_, dtype=dt)

    arr = np.asarray(data)
    if arr.dtype != dt:
        arr = arr.astype(dt)
    dense = bindings.resolve("dense", dt, exec_=exec_)(exec_, arr)
    return Tensor(dense)


def array(data, device=None, dtype="double") -> Tensor:
    """NumPy-style alias: ``pg.array([...])`` builds a tensor."""
    return as_tensor(data, device=device, dtype=dtype)
