"""Value/index type registry and dispatch helpers (paper Table 1).

The Pythonic API accepts friendly type names ("double", "float32", ...)
and dispatches to the pre-instantiated binding whose suffix matches —
the ``funcxx(a) -> funcxx_float(a)`` mechanism of section 5.1.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.accessor import SUFFIX_DTYPES, VALUE_SUFFIX_ALIASES
from repro.ginkgo.exceptions import GinkgoError

#: Friendly name -> numpy value dtype, derived from the accessor layer's
#: alias table so the Pythonic API, config validation, and binding
#: dispatch all accept exactly the same spellings.
VALUE_TYPE_NAMES = {
    name: SUFFIX_DTYPES[suffix].type
    for name, suffix in VALUE_SUFFIX_ALIASES.items()
}

#: Friendly name -> numpy index dtype.
INDEX_TYPE_NAMES = {
    "int": np.int32,
    "int32": np.int32,
    "long": np.int64,
    "int64": np.int64,
}

#: numpy value dtype -> C++-style binding suffix.
VALUE_SUFFIXES = {
    np.dtype(np.float16): "half",
    np.dtype(np.float32): "float",
    np.dtype(np.float64): "double",
}

#: numpy index dtype -> binding suffix.
INDEX_SUFFIXES = {
    np.dtype(np.int32): "int32",
    np.dtype(np.int64): "int64",
}

#: Rows of the paper's Table 1: (size bytes, value type, index type).
TABLE1 = (
    (2, "half", None),
    (4, "float", "int32"),
    (8, "double", "int64"),
)


def value_dtype(dtype) -> np.dtype:
    """Normalise a value-type name or dtype to a supported numpy dtype."""
    if isinstance(dtype, str):
        key = dtype.lower()
        if key not in VALUE_TYPE_NAMES:
            raise GinkgoError(
                f"unknown value type {dtype!r}; "
                f"available: {sorted(set(VALUE_TYPE_NAMES))}"
            )
        return np.dtype(VALUE_TYPE_NAMES[key])
    dt = np.dtype(dtype)
    if dt not in VALUE_SUFFIXES:
        raise GinkgoError(
            f"unsupported value dtype {dt}; supported: "
            f"{sorted(str(k) for k in VALUE_SUFFIXES)}"
        )
    return dt


def index_dtype(dtype) -> np.dtype:
    """Normalise an index-type name or dtype to a supported numpy dtype."""
    if isinstance(dtype, str):
        key = dtype.lower()
        if key not in INDEX_TYPE_NAMES:
            raise GinkgoError(
                f"unknown index type {dtype!r}; "
                f"available: {sorted(set(INDEX_TYPE_NAMES))}"
            )
        return np.dtype(INDEX_TYPE_NAMES[key])
    dt = np.dtype(dtype)
    if dt not in INDEX_SUFFIXES:
        raise GinkgoError(
            f"unsupported index dtype {dt}; supported: "
            f"{sorted(str(k) for k in INDEX_SUFFIXES)}"
        )
    return dt


def value_suffix(dtype) -> str:
    """Binding suffix ('half'/'float'/'double') for a value dtype."""
    return VALUE_SUFFIXES[value_dtype(dtype)]


def index_suffix(dtype) -> str:
    """Binding suffix ('int32'/'int64') for an index dtype."""
    return INDEX_SUFFIXES[index_dtype(dtype)]
