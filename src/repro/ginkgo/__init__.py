"""Pure-Python re-implementation of the Ginkgo computational engine.

This package substitutes for Ginkgo's C++ core in the pyGinkgo
reproduction: executors, the LinOp abstraction, sparse matrix formats,
Krylov solvers, preconditioners, factorizations, stopping criteria,
loggers, the generic config-solver entry point, and MatrixMarket I/O.

The class architecture deliberately mirrors Ginkgo's (executors created via
static ``create`` factories, ``LinOpFactory.generate(matrix)`` producing
solver LinOps, criteria factories, ...) so that the binding layer in
:mod:`repro.bindings` and the Pythonic API in :mod:`repro.core` relate to
this engine exactly the way the paper's pybind11 layer relates to Ginkgo.

Numerics are computed with NumPy/SciPy; execution time is modeled by the
executor's simulated clock (see :mod:`repro.perfmodel`).
"""

from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import (
    AllocationError,
    BadDimension,
    CudaError,
    DimensionMismatch,
    ExecutorMismatch,
    GinkgoError,
    NotConverged,
    NotSupported,
    ResilienceExhausted,
    SolverBreakdown,
)
from repro.ginkgo.executor import (
    CudaExecutor,
    Executor,
    HipExecutor,
    OmpExecutor,
    ReferenceExecutor,
)
from repro.ginkgo.array import Array
from repro.ginkgo.fault import FaultInjector, FaultyExecutor, InjectedFault
from repro.ginkgo.lin_op import (
    Combination,
    Composition,
    Identity,
    LinOp,
    LinOpFactory,
    Perturbation,
)

__all__ = [
    "AllocationError",
    "Array",
    "BadDimension",
    "Combination",
    "Composition",
    "CudaError",
    "CudaExecutor",
    "Dim",
    "DimensionMismatch",
    "Executor",
    "ExecutorMismatch",
    "FaultInjector",
    "FaultyExecutor",
    "GinkgoError",
    "InjectedFault",
    "HipExecutor",
    "Identity",
    "LinOp",
    "LinOpFactory",
    "NotConverged",
    "NotSupported",
    "OmpExecutor",
    "Perturbation",
    "ReferenceExecutor",
    "ResilienceExhausted",
    "SolverBreakdown",
]
