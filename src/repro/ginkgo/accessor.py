"""Accessor layer: storage precision decoupled from arithmetic precision.

Ginkgo's headline mixed-precision results (Anzt et al., *Ginkgo: A Modern
Linear Operator Algebra Framework for HPC*) come from one mechanism: an
**accessor** that separates the precision values are *stored* in from the
precision arithmetic *runs* in.  A float64 Krylov solver can then read a
float32 (or float16) preconditioner — the kernels convert on the fly at
read time, memory traffic drops with the storage width, and because SpMV
and triangular solves are bandwidth-bound the saving is a real speedup,
not an accounting trick.

This module is the pure-Python reproduction of that layer:

* :class:`ReducedPrecisionAccessor` wraps a values array, stores it at a
  configurable ``storage_dtype``, and serves reads converted to the
  arithmetic dtype.  When storage and arithmetic precision coincide the
  accessor is a zero-cost pass-through — *the same array object*, so the
  default uniform-precision path stays byte-identical to code that never
  heard of accessors.
* :func:`resolve_storage_dtype` turns a user-facing storage spec
  (``None``, ``"float"``, ``"float32"``, a numpy dtype, ...) into the
  dtype values are stored at, defaulting to the working precision.
* :func:`canonical_value_suffix` / :data:`VALUE_SUFFIX_ALIASES` are the
  **single** normalisation point for value-type spellings.  The binding
  registry names types ``half``/``float``/``double`` (C++ style); the
  config layer and the Pythonic API also accept ``float16``/``float32``/
  ``float64``/``single``.  Both :mod:`repro.bindings.dispatch` and
  :mod:`repro.ginkgo.config.validate` route through this table, so a
  spelling accepted by validation can never crash at dispatch.
* :func:`select_block_precision` is Ginkgo's adaptive block-Jacobi rule:
  each diagonal block is stored at the narrowest precision whose unit
  roundoff its condition number tolerates, never wider than the working
  precision.

This module is intentionally a leaf (numpy + exceptions only) so the
bindings, config, and preconditioner layers can all import it without
cycles.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.exceptions import GinkgoError

#: Canonical C++-style suffix -> numpy storage dtype (paper Table 1).
SUFFIX_DTYPES = {
    "half": np.dtype(np.float16),
    "float": np.dtype(np.float32),
    "double": np.dtype(np.float64),
}

#: Every accepted value-type spelling -> canonical suffix.  This is the
#: one table the config validator, the dispatch layer, and the Pythonic
#: API all normalise through.
VALUE_SUFFIX_ALIASES = {
    "half": "half",
    "float16": "half",
    "float": "float",
    "float32": "float",
    "single": "float",
    "double": "double",
    "float64": "double",
}

#: numpy dtype -> canonical suffix.
_DTYPE_SUFFIXES = {
    np.dtype(np.float16): "half",
    np.dtype(np.float32): "float",
    np.dtype(np.float64): "double",
}

#: Adaptive block-Jacobi thresholds: a block is stored at the narrowest
#: precision whose unit roundoff u satisfies cond(block) * u << 1.  With
#: u(half) ~ 5e-4 and u(float) ~ 6e-8, the usual Ginkgo-style cutoffs:
ADAPTIVE_HALF_COND_LIMIT = 1.0e2
ADAPTIVE_FLOAT_COND_LIMIT = 1.0e6


def canonical_value_suffix(spec) -> str:
    """Normalise any accepted value-type spelling/dtype to its suffix.

    Accepts the C++-style suffixes (``half``/``float``/``double``), the
    numpy-style names (``float16``/``float32``/``float64``), ``single``,
    or anything ``np.dtype`` resolves to a supported float type.

    Raises:
        GinkgoError: For unknown spellings or unsupported dtypes.
    """
    if isinstance(spec, str):
        suffix = VALUE_SUFFIX_ALIASES.get(spec.lower())
        if suffix is None:
            raise GinkgoError(
                f"unknown value type {spec!r}; "
                f"accepted spellings: {sorted(VALUE_SUFFIX_ALIASES)}"
            )
        return suffix
    dt = np.dtype(spec)
    suffix = _DTYPE_SUFFIXES.get(dt)
    if suffix is None:
        raise GinkgoError(
            f"unsupported value dtype {dt}; supported: "
            f"{sorted(str(k) for k in _DTYPE_SUFFIXES)}"
        )
    return suffix


def value_dtype_for(spec) -> np.dtype:
    """The numpy storage dtype for any accepted value-type spelling."""
    return SUFFIX_DTYPES[canonical_value_suffix(spec)]


def resolve_storage_dtype(storage_precision, working_dtype) -> np.dtype:
    """Resolve a storage-precision spec against the working precision.

    Args:
        storage_precision: ``None`` (store at working precision — the
            default, uniform path), a spelling accepted by
            :func:`canonical_value_suffix`, or a numpy dtype.
        working_dtype: The operator's working (arithmetic) precision.

    Returns:
        The dtype values are stored at.
    """
    working = np.dtype(working_dtype)
    if storage_precision is None:
        return working
    return value_dtype_for(storage_precision)


def arithmetic_dtype_for(dtype) -> np.dtype:
    """The dtype arithmetic actually runs in for a working dtype.

    Mirrors the engine's half-precision kernel contract (see
    :mod:`repro.ginkgo.matrix.base`): numpy/SciPy cannot compute with
    ``float16`` operands reliably, so half-precision kernels accumulate
    in ``float32`` and round back — exactly like Ginkgo's half kernels.
    """
    dt = np.dtype(dtype)
    if dt == np.float16:
        return np.dtype(np.float32)
    return dt


def select_block_precision(cond_estimate: float, working_dtype) -> np.dtype:
    """Adaptive block-Jacobi storage precision for one diagonal block.

    Ginkgo's adaptive precision block-Jacobi stores each inverted block
    at the narrowest precision whose unit roundoff the block's condition
    number tolerates (Anzt et al., *Adaptive Precision in Block-Jacobi
    Preconditioning*): well-conditioned blocks lose nothing in half
    precision, ill-conditioned ones keep full precision.  The result is
    never wider than the working precision.

    Args:
        cond_estimate: Condition-number estimate of the block (1-norm or
            2-norm; non-finite estimates force the working precision).
        working_dtype: The solve's working precision (upper bound).

    Returns:
        The storage dtype for this block.
    """
    working = np.dtype(working_dtype)
    if not np.isfinite(cond_estimate) or cond_estimate <= 0:
        return working
    if cond_estimate <= ADAPTIVE_HALF_COND_LIMIT:
        chosen = np.dtype(np.float16)
    elif cond_estimate <= ADAPTIVE_FLOAT_COND_LIMIT:
        chosen = np.dtype(np.float32)
    else:
        chosen = np.dtype(np.float64)
    # Never store wider than the working precision.
    return chosen if chosen.itemsize <= working.itemsize else working


class ReducedPrecisionAccessor:
    """Store values at one precision, read them at another.

    The accessor owns the only stored copy of the values (at
    ``storage_dtype``) and serves :meth:`read` in ``arithmetic_dtype``,
    converting on the fly.  The converted view is cached — accessor
    payloads (preconditioner storage) are immutable, and the real
    machine's accessor converts in registers without materialising
    anything; host-side caching keeps the wall-clock overhead one-off
    while the *simulated* cost of every kernel touching the data is
    charged at :attr:`storage_bytes` width by the call sites.

    When ``storage_dtype == values.dtype`` the accessor stores the array
    object as-is and :meth:`read` returns it unchanged — a pass-through
    guaranteeing the uniform-precision path is bit-identical (same
    object, same bits) to pre-accessor code.
    """

    def __init__(self, values, storage_dtype, arithmetic_dtype=None) -> None:
        values = np.asarray(values)
        self._storage_dtype = np.dtype(storage_dtype)
        self._arithmetic_dtype = (
            np.dtype(arithmetic_dtype)
            if arithmetic_dtype is not None
            else arithmetic_dtype_for(values.dtype)
        )
        if values.dtype == self._storage_dtype:
            self._stored = values
        else:
            self._stored = values.astype(self._storage_dtype)
        self._read_cache: np.ndarray | None = None

    @property
    def storage_dtype(self) -> np.dtype:
        return self._storage_dtype

    @property
    def arithmetic_dtype(self) -> np.dtype:
        return self._arithmetic_dtype

    @property
    def storage_bytes(self) -> int:
        """Bytes per stored value — what bandwidth-bound kernels pay."""
        return self._storage_dtype.itemsize

    @property
    def nbytes(self) -> int:
        """Total stored payload size."""
        return self._stored.nbytes

    @property
    def is_uniform(self) -> bool:
        """Whether storage and arithmetic precision coincide."""
        return self._storage_dtype == self._arithmetic_dtype

    @property
    def stored(self) -> np.ndarray:
        """The raw storage-precision array (what the device would hold)."""
        return self._stored

    def read(self) -> np.ndarray:
        """The values at arithmetic precision, converted on the fly.

        Uniform accessors return the stored array itself (no copy, no
        rounding); reduced-storage accessors convert once and cache.
        """
        if self._stored.dtype == self._arithmetic_dtype:
            return self._stored
        if self._read_cache is None:
            self._read_cache = self._stored.astype(self._arithmetic_dtype)
        return self._read_cache

    def __repr__(self) -> str:
        return (
            f"ReducedPrecisionAccessor(storage={self._storage_dtype.name}, "
            f"arithmetic={self._arithmetic_dtype.name}, "
            f"shape={self._stored.shape})"
        )
