"""The ``gko::array`` equivalent: an executor-tagged flat buffer."""

from __future__ import annotations

import numpy as np

from repro.ginkgo.exceptions import ExecutorMismatch, GinkgoError
from repro.ginkgo.executor import Executor


class Array:
    """A one-dimensional typed buffer bound to an executor.

    Like ``gko::array``, this is the building block of all matrix formats:
    it knows where its memory lives and how to migrate between executors.
    Host-resident arrays expose their data zero-copy via :meth:`view` and
    the buffer protocol (``numpy.asarray(arr)``); device-resident arrays
    must be copied to a host executor first, mirroring real GPU semantics.
    """

    def __init__(self, exec_: Executor, data) -> None:
        if not isinstance(exec_, Executor):
            raise GinkgoError(f"expected an Executor, got {type(exec_).__name__}")
        data = np.asarray(data)
        if data.ndim != 1:
            data = data.reshape(-1)
        self._exec = exec_
        self._data = exec_.alloc_like(data)
        np.copyto(self._data, data)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, exec_: Executor, size: int, dtype) -> "Array":
        """Allocate an uninitialised array of ``size`` elements."""
        obj = cls.__new__(cls)
        obj._exec = exec_
        obj._data = exec_.alloc((int(size),), dtype)
        return obj

    @classmethod
    def full(cls, exec_: Executor, size: int, value, dtype) -> "Array":
        """Allocate an array filled with ``value``."""
        arr = cls.empty(exec_, size, dtype)
        arr._data.fill(value)
        return arr

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def executor(self) -> Executor:
        return self._exec

    @property
    def size(self) -> int:
        return int(self._data.size)

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def nbytes(self) -> int:
        return int(self._data.nbytes)

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    def view(self) -> np.ndarray:
        """Zero-copy NumPy view; only legal on host executors."""
        if not self._exec.is_host:
            raise ExecutorMismatch(
                "Array.view", expected="a host executor", got=self._exec.name
            )
        return self._data

    def _device_data(self) -> np.ndarray:
        """Internal access for kernels running *on* this executor."""
        return self._data

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        view = self.view()
        if dtype is not None and dtype != view.dtype:
            return view.astype(dtype)
        return view

    def to_numpy(self) -> np.ndarray:
        """Copy out to host memory regardless of where the array lives."""
        if self._exec.is_host:
            return self._data.copy()
        host = self._exec.get_master()
        return host.copy_from(self._exec, self._data)

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------
    def copy_to(self, exec_: Executor) -> "Array":
        """Return a copy of this array resident on ``exec_``."""
        obj = Array.__new__(Array)
        obj._exec = exec_
        obj._data = exec_.copy_from(self._exec, self._data)
        return obj

    def clone(self) -> "Array":
        """Deep copy on the same executor."""
        return self.copy_to(self._exec)

    def fill(self, value) -> "Array":
        """Fill in place with ``value``."""
        self._data.fill(value)
        return self

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"Array(size={self.size}, dtype={self.dtype}, "
            f"executor={self._exec.name})"
        )
