"""Batched linear algebra (``gko::batch``).

Stacked formats and lockstep solvers for many small independent systems
sharing one sparsity pattern.  One batched kernel call advances all
``K`` systems, amortizing the Python dispatch overhead that dominates
small solves; per-system stopping keeps every residual history
bit-identical to ``K`` sequential scalar solves.
"""

from repro.ginkgo.batch.matrix import BatchCsr, BatchDense
from repro.ginkgo.batch.preconditioner import (
    BatchIdentity,
    BatchJacobi,
    BatchJacobiOperator,
)
from repro.ginkgo.batch.solver import (
    BatchBicgstab,
    BatchBicgstabSolver,
    BatchCg,
    BatchCgSolver,
    BatchGmres,
    BatchGmresSolver,
    BatchIterativeSolver,
    BatchSolverFactory,
)
from repro.ginkgo.batch.stop import BatchCriteria, BatchStatus
from repro.ginkgo.batch.triangular import BatchLowerTrs, BatchUpperTrs

__all__ = [
    "BatchBicgstab",
    "BatchBicgstabSolver",
    "BatchCg",
    "BatchCgSolver",
    "BatchCriteria",
    "BatchCsr",
    "BatchDense",
    "BatchGmres",
    "BatchGmresSolver",
    "BatchIdentity",
    "BatchIterativeSolver",
    "BatchJacobi",
    "BatchJacobiOperator",
    "BatchLowerTrs",
    "BatchSolverFactory",
    "BatchStatus",
    "BatchUpperTrs",
]
