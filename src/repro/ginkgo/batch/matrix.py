"""Batched matrix formats (``gko::batch::matrix``).

A batched matrix holds ``K`` independent systems of identical size in one
stacked buffer.  :class:`BatchCsr` additionally shares a single sparsity
pattern (``row_ptrs``/``col_idxs``) across all systems — only the values
differ — matching Ginkgo's ``batch::matrix::Csr`` storage.  One batched
operation advances every system with a single kernel, which is what
amortizes the per-call Python dispatch overhead the paper measures for
small systems.

The batched SpMV is evaluated through a block-diagonal SciPy view of the
stacked systems.  SciPy's CSR kernel processes rows independently, so every
system's slice of the result is bit-identical to applying that system's
matrix alone — the property the batched solvers rely on for exact
residual-history parity with sequential solves.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import BadDimension, GinkgoError
from repro.ginkgo.executor import Executor, OmpExecutor
from repro.ginkgo.matrix.base import check_index_dtype, check_value_dtype, scipy_safe
from repro.ginkgo.matrix.csr import Csr
from repro.ginkgo.matrix.dense import Dense
from repro.perfmodel import spmv_cost


def _batched_cost(cost, name: str):
    """Rename a kernel cost for batched-kernel attribution in traces."""
    from dataclasses import replace

    return replace(cost, name=name)


class BatchDense:
    """``K`` stacked dense blocks: one ``(K, rows, cols)`` buffer.

    Used as the batched (multi-)vector type: right-hand sides and
    solutions of a batched solve are ``(K, n, 1)`` BatchDense objects.
    """

    def __init__(self, exec_: Executor, data) -> None:
        data = np.asarray(data)
        if data.ndim == 2:
            data = data[:, :, None]
        if data.ndim != 3:
            raise BadDimension(
                f"BatchDense data must be (K, rows[, cols]), got {data.shape}"
            )
        self._exec = exec_
        self._size = Dim(data.shape[1], data.shape[2])
        self._data = exec_.alloc_like(np.ascontiguousarray(data))
        np.copyto(self._data, data)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense_list(cls, exec_: Executor, items) -> "BatchDense":
        """Stack a list of equally-sized ``Dense`` (or array) operands."""
        arrays = [
            np.asarray(item._data if isinstance(item, Dense) else item)
            for item in items
        ]
        if not arrays:
            raise GinkgoError("BatchDense needs at least one system")
        first = arrays[0].shape
        for a in arrays[1:]:
            if a.shape != first:
                raise BadDimension(
                    f"batch entries differ in shape: {first} vs {a.shape}"
                )
        return cls(exec_, np.stack(arrays))

    @classmethod
    def zeros(cls, exec_: Executor, num_systems: int, size, dtype) -> "BatchDense":
        size = Dim.of(size)
        obj = cls.__new__(cls)
        obj._exec = exec_
        obj._size = size
        obj._data = exec_.alloc((int(num_systems), size.rows, size.cols), dtype)
        return obj

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def executor(self) -> Executor:
        return self._exec

    @property
    def num_systems(self) -> int:
        return int(self._data.shape[0])

    @property
    def size(self) -> Dim:
        """Per-system dimensions."""
        return self._size

    @property
    def shape(self) -> tuple:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def value_bytes(self) -> int:
        return self._data.dtype.itemsize

    @property
    def data(self) -> np.ndarray:
        """The stacked ``(K, rows, cols)`` buffer (executor-resident)."""
        return self._data

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def item(self, k: int) -> Dense:
        """Writable ``Dense`` view of system ``k`` (aliases the buffer)."""
        return Dense._wrap(self._exec, self._data[k])

    def to_list(self) -> list:
        """Host copies of every system's block."""
        return [self._data[k].copy() for k in range(self.num_systems)]

    def fill(self, value) -> "BatchDense":
        self._data.fill(value)
        return self

    def compute_norm2(self) -> np.ndarray:
        """Per-system column norms, shape ``(K, cols)`` — one fused kernel."""
        from repro.perfmodel import dot_cost

        result = np.sqrt(
            np.einsum("kij,kij->kj", self._data, self._data).astype(np.float64)
        )
        self._exec.run(
            dot_cost(
                self._size.rows,
                self.value_bytes,
                self.num_systems * self._size.cols,
            )
        )
        return result

    def __repr__(self) -> str:
        return (
            f"BatchDense({self.num_systems}x{self._size.rows}x"
            f"{self._size.cols}, dtype={self.dtype}, executor={self._exec.name})"
        )


class BatchCsr:
    """``K`` CSR systems sharing one sparsity pattern.

    Storage matches Ginkgo's ``batch::matrix::Csr``: one ``row_ptrs`` /
    ``col_idxs`` pair plus a ``(K, nnz)`` values block.
    """

    _format_name = "batch_csr"

    def __init__(
        self,
        exec_: Executor,
        size,
        row_ptrs,
        col_idxs,
        values,
        strategy: str = "load_balance",
    ) -> None:
        row_ptrs = np.asarray(row_ptrs)
        col_idxs = np.asarray(col_idxs)
        values = np.asarray(values)
        if values.ndim != 2:
            raise BadDimension(
                f"batch values must be (num_systems, nnz), got {values.shape}"
            )
        # Accept the stacked batch size (num_systems, rows, cols) as well
        # as the per-system (rows, cols); the batch dimension must agree
        # with the values block.
        if isinstance(size, (tuple, list)) and len(size) == 3:
            num_systems, *per_system = (int(v) for v in size)
            if num_systems != values.shape[0]:
                raise BadDimension(
                    f"batch size names {num_systems} systems but values "
                    f"stack {values.shape[0]}"
                )
            size = per_system
        try:
            size = Dim.of(size)
        except BadDimension as exc:
            raise BadDimension(
                f"{exc}; BatchCsr takes the per-system size (rows, cols) "
                f"or the stacked (num_systems, rows, cols), with values "
                f"shaped (num_systems, nnz)"
            ) from None
        if row_ptrs.size != size.rows + 1:
            raise BadDimension(
                f"row_ptrs has {row_ptrs.size} entries for {size.rows} rows"
            )
        if col_idxs.size != values.shape[1]:
            raise BadDimension(
                f"col_idxs ({col_idxs.size}) and values ({values.shape[1]}) differ"
            )
        if row_ptrs.size and int(row_ptrs[-1]) != values.shape[1]:
            raise BadDimension(
                f"row_ptrs[-1]={int(row_ptrs[-1])} != nnz={values.shape[1]}"
            )
        self._exec = exec_
        self._size = size
        self._value_dtype = check_value_dtype(values.dtype)
        self._index_dtype = check_index_dtype(col_idxs.dtype)
        self._strategy = strategy
        self._row_ptrs = exec_.alloc_like(row_ptrs)
        np.copyto(self._row_ptrs, row_ptrs)
        self._col_idxs = exec_.alloc_like(col_idxs)
        np.copyto(self._col_idxs, col_idxs)
        self._values = exec_.alloc_like(values)
        np.copyto(self._values, values)
        #: (indices_full, indptr_full) block-diagonal pattern, built lazily.
        self._block_pattern = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_scipy_list(
        cls,
        exec_: Executor,
        mats,
        value_dtype=None,
        index_dtype=np.int32,
        strategy: str = "load_balance",
    ) -> "BatchCsr":
        """Stack SciPy matrices; all must share one sparsity pattern."""
        csrs = []
        for mat in mats:
            csr = sp.csr_matrix(mat)
            csr.sort_indices()
            csrs.append(csr)
        if not csrs:
            raise GinkgoError("BatchCsr needs at least one system")
        first = csrs[0]
        for csr in csrs[1:]:
            if csr.shape != first.shape:
                raise BadDimension(
                    f"batch systems differ in shape: {first.shape} vs {csr.shape}"
                )
            if not (
                np.array_equal(csr.indptr, first.indptr)
                and np.array_equal(csr.indices, first.indices)
            ):
                raise GinkgoError(
                    "batch systems must share one sparsity pattern "
                    "(identical row_ptrs and col_idxs)"
                )
        value_dtype = check_value_dtype(value_dtype or first.dtype)
        index_dtype = check_index_dtype(index_dtype)
        values = np.stack([csr.data for csr in csrs]).astype(value_dtype)
        return cls(
            exec_,
            Dim(*first.shape),
            first.indptr.astype(index_dtype),
            first.indices.astype(index_dtype),
            values,
            strategy=strategy,
        )

    @classmethod
    def from_csr(
        cls, template: Csr, values=None, num_systems: int | None = None
    ) -> "BatchCsr":
        """Replicate one ``Csr``'s pattern across a batch.

        Either pass explicit per-system ``values`` with shape
        ``(K, nnz)``, or ``num_systems`` to replicate the template's
        values ``K`` times.
        """
        if values is None:
            if num_systems is None:
                raise GinkgoError("from_csr needs values or num_systems")
            values = np.broadcast_to(
                template.values, (int(num_systems), template.nnz)
            ).copy()
        return cls(
            template.executor,
            template.size,
            template.row_ptrs,
            template.col_idxs,
            np.asarray(values),
            strategy=template.strategy,
        )

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def executor(self) -> Executor:
        return self._exec

    @property
    def num_systems(self) -> int:
        return int(self._values.shape[0])

    @property
    def size(self) -> Dim:
        """Per-system dimensions."""
        return self._size

    @property
    def shape(self) -> tuple:
        return (self._size.rows, self._size.cols)

    @property
    def nnz(self) -> int:
        """Stored entries per system."""
        return int(self._values.shape[1])

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self._value_dtype)

    @property
    def value_bytes(self) -> int:
        return np.dtype(self._value_dtype).itemsize

    @property
    def index_bytes(self) -> int:
        return np.dtype(self._index_dtype).itemsize

    @property
    def strategy(self) -> str:
        return self._strategy

    @property
    def row_ptrs(self) -> np.ndarray:
        return self._row_ptrs

    @property
    def col_idxs(self) -> np.ndarray:
        return self._col_idxs

    @property
    def values(self) -> np.ndarray:
        """Per-system values, shape ``(K, nnz)``."""
        return self._values

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def item(self, k: int) -> Csr:
        """System ``k`` as a standalone :class:`Csr` (copies values)."""
        return Csr(
            self._exec,
            self._size,
            self._row_ptrs,
            self._col_idxs,
            self._values[k],
            strategy=self._strategy,
        )

    def to_scipy_list(self) -> list:
        return [
            sp.csr_matrix(
                (scipy_safe(self._values[k]), self._col_idxs, self._row_ptrs),
                shape=self.shape,
            )
            for k in range(self.num_systems)
        ]

    def diagonal(self) -> np.ndarray:
        """Per-system main diagonals, shape ``(K, rows)`` — vectorized.

        Missing diagonal entries read as zero, matching SciPy's
        ``.diagonal()`` on each system.
        """
        n = min(self._size.rows, self._size.cols)
        row_of = np.repeat(
            np.arange(self._size.rows), np.diff(self._row_ptrs)
        )
        on_diag = (self._col_idxs == row_of) & (row_of < n)
        diag = np.zeros((self.num_systems, n), dtype=self._value_dtype)
        diag[:, row_of[on_diag]] = self._values[:, on_diag]
        return diag

    # ------------------------------------------------------------------
    # block-diagonal machinery (shared with the batched solvers)
    # ------------------------------------------------------------------
    def block_pattern(self) -> tuple:
        """Block-diagonal indices for all ``K`` systems, built once.

        Returns ``(indices_full, indptr_full)`` describing the
        ``(K*rows, K*cols)`` block-diagonal matrix of the whole batch.
        Because ``row_ptrs[0] == 0``, the *head slices*
        ``indices_full[:c*nnz]`` / ``indptr_full[:c*rows + 1]`` describe
        the block diagonal of the first ``c`` systems — the compacted
        active set of a batched solve reuses the same arrays at every
        size with no rebuilding.
        """
        if self._block_pattern is None:
            K = self.num_systems
            nnz = self.nnz
            indices_full = np.tile(
                self._col_idxs.astype(np.int64), K
            ) + np.repeat(np.arange(K, dtype=np.int64) * self._size.cols, nnz)
            indptr_full = np.empty(K * self._size.rows + 1, dtype=np.int64)
            indptr_full[:-1] = (
                self._row_ptrs[:-1].astype(np.int64)[None, :]
                + np.arange(K, dtype=np.int64)[:, None] * nnz
            ).ravel()
            indptr_full[-1] = K * nnz
            self._block_pattern = (indices_full, indptr_full)
        return self._block_pattern

    def block_operator(self, count: int, values: np.ndarray) -> sp.csr_matrix:
        """Block-diagonal SciPy matrix over the leading ``count`` systems.

        ``values`` must be a ``(>= count, nnz)`` C-contiguous block; the
        returned matrix references ``values[:count]`` as its data, so
        in-place compaction of the block followed by a rebuild needs no
        index recomputation.
        """
        indices_full, indptr_full = self.block_pattern()
        n, c = self._size.rows, self._size.cols
        return sp.csr_matrix(
            (
                scipy_safe(values[:count].reshape(-1)),
                indices_full[: count * self.nnz],
                indptr_full[: count * n + 1],
            ),
            shape=(count * n, count * c),
        )

    def _spmv_cost(self, count: int, num_rhs: int):
        cost = spmv_cost(
            "csr",
            count * self._size.rows,
            count * self._size.cols,
            count * self.nnz,
            self.value_bytes,
            self.index_bytes,
            num_rhs=num_rhs,
            strategy=self._strategy,
        )
        return _batched_cost(cost, "spmv_batch_csr")

    def apply(self, b: BatchDense, x: BatchDense) -> BatchDense:
        """Batched SpMV ``x[k] = A[k] @ b[k]`` — one modeled kernel.

        On a multi-threaded :class:`OmpExecutor` the batch is split into
        contiguous per-thread system chunks executed on the executor's
        thread pool.
        """
        K = self.num_systems
        if b.num_systems != K or x.num_systems != K:
            raise BadDimension(
                f"batch size mismatch: matrix has {K} systems, operands "
                f"{b.num_systems}/{x.num_systems}"
            )
        n, c = self._size.rows, self._size.cols
        cols = b.size.cols
        xs = b.data.reshape(K * c, cols)
        out = x.data.reshape(K * n, cols)
        cost = self._spmv_cost(K, cols)
        exec_ = self._exec
        if (
            isinstance(exec_, OmpExecutor)
            and exec_.num_threads > 1
            and K >= exec_.num_threads
        ):
            ranges = exec_.partition(np.ones(K))
            tasks = []
            parts = []
            for lo, hi in ranges:
                sub = self.block_operator(hi - lo, self._values[lo:hi])

                def task(lo=lo, hi=hi, sub=sub):
                    out[lo * n : hi * n] = sub @ xs[lo * c : hi * c]

                tasks.append(task)
                parts.append(
                    {"weight": float(hi - lo), "systems": hi - lo}
                )
            exec_.run_partitioned(cost, tasks, parts)
        else:
            out[:] = self.block_operator(K, self._values) @ xs
        return x

    def __repr__(self) -> str:
        return (
            f"BatchCsr({self.num_systems} systems of "
            f"{self._size.rows}x{self._size.cols}, nnz={self.nnz}, "
            f"dtype={self.dtype}, executor={self._exec.name})"
        )
