"""Batched preconditioners (``gko::batch::preconditioner``).

A batched preconditioner exposes *state* as a plain per-system array so
the solvers can gather and compact it alongside their other per-system
buffers when systems converge:

- ``gather_state(ids)`` returns the state rows of the requested systems
  (or ``None`` for stateless preconditioners);
- ``apply_state(state, r, z, count)`` applies the preconditioner to the
  leading ``count`` systems of the stacked residual ``r``, writing ``z``.

The numerical kernels are elementwise per system, so results are
bit-identical to the scalar preconditioners applied one system at a
time — the property the batched solvers need for exact history parity.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.ginkgo.batch.matrix import BatchCsr
from repro.ginkgo.exceptions import GinkgoError
from repro.perfmodel import blas1_cost, factorization_cost, spmv_cost


class BatchIdentity:
    """No-op preconditioner: ``z = r`` (one batched copy kernel)."""

    def __init__(self, exec_=None) -> None:
        self._exec = exec_

    def generate(self, batch_matrix) -> "BatchIdentity":
        return BatchIdentity(batch_matrix.executor)

    def gather_state(self, ids):
        return None

    def apply_state(self, state, r, z, count: int) -> None:
        np.copyto(z[:count], r[:count])
        exec_ = self._exec
        if exec_ is not None:
            exec_.run(
                blas1_cost("copy", r[:count].size, r.dtype.itemsize, 2)
            )


class BatchJacobi:
    """Factory for the batched scalar-Jacobi preconditioner.

    Mirrors ``gko::batch::preconditioner::Jacobi`` with block size 1:
    the inverse diagonals of all ``K`` systems are extracted by one
    vectorized kernel and applied as one batched elementwise product.
    """

    def __init__(self, max_block_size: int = 1) -> None:
        if max_block_size != 1:
            raise GinkgoError(
                "batched Jacobi supports scalar blocks only "
                f"(max_block_size=1), got {max_block_size}"
            )
        self.max_block_size = 1

    def generate(self, batch_matrix: BatchCsr) -> "BatchJacobiOperator":
        return BatchJacobiOperator(batch_matrix)

    def __repr__(self) -> str:
        return "BatchJacobi(max_block_size=1)"


class BatchJacobiOperator:
    """Generated batched Jacobi: per-system inverse diagonals."""

    def __init__(self, batch_matrix: BatchCsr) -> None:
        self._exec = batch_matrix.executor
        # Same arithmetic as the scalar Jacobi generation, vectorized
        # over systems: invert in float64, zero diagonals stay zero.
        diagonal = batch_matrix.diagonal().astype(np.float64)
        inverse = np.zeros_like(diagonal)
        mask = diagonal != 0.0
        inverse[mask] = 1.0 / diagonal[mask]
        self._inverse = inverse
        self._index_bytes = batch_matrix.index_bytes
        base = factorization_cost(
            "jacobi",
            batch_matrix.size.rows,
            batch_matrix.nnz,
            batch_matrix.value_bytes,
            batch_matrix.index_bytes,
        )
        K = batch_matrix.num_systems
        self._exec.run(
            replace(
                base,
                name="generate_batch_jacobi",
                flops=base.flops * K,
                bytes=base.bytes * K,
            )
        )

    @property
    def inverse_diagonal(self) -> np.ndarray:
        """Per-system inverse diagonals, shape ``(K, rows)``."""
        return self._inverse

    def gather_state(self, ids) -> np.ndarray:
        return self._inverse[ids]

    def apply_state(self, state, r, z, count: int) -> None:
        # z[k] = diag(inv[k]) @ r[k] — identical elementwise math to the
        # scalar Jacobi apply (inv[:, None] * rhs) per system.
        z[:count] = state[:count, :, None] * r[:count]
        rows = r.shape[1]
        base = spmv_cost(
            "csr",
            count * rows,
            count * rows,
            count * rows,
            r.dtype.itemsize,
            self._index_bytes,
            num_rhs=r.shape[2],
        )
        self._exec.run(replace(base, name="batch_jacobi_apply"))
