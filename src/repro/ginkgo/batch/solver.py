"""Batched Krylov solvers (``gko::batch::solver``).

One batched solver advances ``K`` independent systems in lockstep: every
NumPy kernel call (SpMV, dot, fused vector update) operates on the whole
stacked ``(K, n, cols)`` state at once, so the per-iteration Python
dispatch cost — the dominant overhead for small systems, per the paper —
is paid once per *batch* instead of once per system.

Per-system stopping uses *compaction*: systems that converge (or break
down) are scattered back to the caller's solution block and removed from
the leading ``[:m]`` active region of every state buffer, so the
remaining systems keep iterating with no masked dead work.  The batched
kernels are chosen so each system's arithmetic is bit-identical to the
scalar solvers (einsum contractions over per-system slices, identical
coefficient casting, identical operation order); residual histories of a
batched solve therefore match ``K`` sequential scalar solves exactly —
this is pinned by tests.

On a multi-threaded :class:`~repro.ginkgo.executor.OmpExecutor` the
batched SpMV splits the active systems into contiguous per-thread
sub-batches dispatched on the executor's thread pool (block-diagonal
rows are independent, so threading never changes results).
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.batch.matrix import BatchCsr, BatchDense
from repro.ginkgo.batch.preconditioner import BatchIdentity
from repro.ginkgo.batch.stop import BatchCriteria, BatchStatus
from repro.ginkgo.exceptions import BadDimension, GinkgoError, SolverBreakdown
from repro.ginkgo.fault import injector_of
from repro.ginkgo.lin_op import LinOpFactory
from repro.ginkgo.solver.base import _normalise_criteria
from repro.ginkgo.solver.cg import _safe_divide
from repro.ginkgo.solver.gmres import DEFAULT_KRYLOV_DIM
from repro.ginkgo.solver.workspace import Workspace
from repro.perfmodel import KernelCost, blas1_cost, dot_cost


class _ActiveSystems:
    """The compacted active set's block-diagonal system operator.

    Owns a pooled ``(K, nnz)`` copy of the batch's matrix values whose
    leading ``[:m]`` rows always hold the active systems, and the SciPy
    block-diagonal operator(s) over them.  On a multi-threaded
    ``OmpExecutor`` the active set is split into contiguous per-thread
    sub-batches; each SpMV then runs the chunks concurrently on the
    executor's pool while recording one aggregate batched kernel.
    """

    def __init__(self, ws: Workspace, matrix: BatchCsr) -> None:
        self._exec = matrix.executor
        self._mat = matrix
        self._vals = ws.tensor(
            "batch.vals", matrix.values.shape, matrix.values.dtype
        )
        self._count = 0
        self._ops = []

    def reset(self, ids: np.ndarray) -> None:
        """Gather the systems in ``ids`` into the active head."""
        m = ids.size
        self._vals[:m] = self._mat.values[ids]
        self._exec.run(
            blas1_cost(
                "batch_pack", m * self._mat.nnz, self._mat.value_bytes, 2
            )
        )
        self._rebuild(m)

    def compact(self, keep_idx: np.ndarray) -> None:
        """Keep only the active positions in ``keep_idx`` (in order)."""
        m = keep_idx.size
        self._vals[:m] = self._vals[keep_idx]
        self._rebuild(m)

    def _rebuild(self, count: int) -> None:
        self._count = count
        self._ops = []
        if count == 0:
            return
        exec_ = self._exec
        # Duck-typed so wrappers (FaultyExecutor around an OmpExecutor)
        # still take the thread-partitioned path.
        if (
            (getattr(exec_, "num_threads", None) or 1) > 1
            and hasattr(exec_, "partition")
            and count >= exec_.num_threads
        ):
            ranges = exec_.partition(np.ones(count))
        else:
            ranges = [(0, count)]
        for lo, hi in ranges:
            self._ops.append(
                (lo, hi, self._mat.block_operator(hi - lo, self._vals[lo:hi]))
            )

    def spmv(self, src: np.ndarray, dst: np.ndarray, count: int, num_rhs: int):
        """``dst[k] = A[k] @ src[k]`` over the active head — one kernel."""
        if count != self._count:
            raise GinkgoError(
                f"active operator holds {self._count} systems, asked for {count}"
            )
        n = self._mat.size.rows
        c = self._mat.size.cols
        xs = src[:count].reshape(count * c, num_rhs)
        out = dst[:count].reshape(count * n, num_rhs)
        cost = self._mat._spmv_cost(count, num_rhs)
        exec_ = self._exec
        if len(self._ops) > 1:
            tasks = []
            parts = []
            for lo, hi, sub in self._ops:

                def task(lo=lo, hi=hi, sub=sub):
                    out[lo * n : hi * n] = sub @ xs[lo * c : hi * c]

                tasks.append(task)
                parts.append({"weight": float(hi - lo), "systems": hi - lo})
            exec_.run_partitioned(cost, tasks, parts)
        else:
            _, _, sub = self._ops[0]
            out[:] = sub @ xs
            exec_.run(cost)
        # Per-system fault site: corruption lands in exactly one active
        # system's output block, which the monitor then quarantines via
        # the existing breakdown compaction — the rest of the batch is
        # unaffected.
        injector = injector_of(exec_)
        if injector is not None:
            fault = injector.decide("batch", detail=f"batch_spmv:{count}")
            if fault is not None:
                system = injector.choose(count)
                poisoned = injector.corrupt(dst[system])
                exec_._log(
                    "fault_injected",
                    site=fault.site,
                    kind=fault.kind,
                    index=fault.index,
                    call=fault.call,
                    detail=fault.detail,
                    system=system,
                )
                exec_._log(
                    "data_corrupted", index=fault.index, flat_index=poisoned
                )


class BatchSolverFactory(LinOpFactory):
    """Factory holding batched-solver parameters.

    Accepts exactly the scalar :class:`SolverFactory` options — the same
    criterion factories, a *batched* preconditioner (factory or generated
    operator), and ``strict_breakdown`` — so scalar solver configurations
    port to the batched API unchanged.
    """

    solver_class: type | None = None
    parameter_names: tuple = ()

    def __init__(
        self,
        exec_,
        criteria=None,
        preconditioner=None,
        strict_breakdown: bool = False,
        **params,
    ) -> None:
        super().__init__(exec_)
        unknown = set(params) - set(self.parameter_names)
        if unknown:
            raise GinkgoError(
                f"{type(self).__name__} got unknown parameters {sorted(unknown)}; "
                f"accepted: {sorted(self.parameter_names)}"
            )
        self.criteria = _normalise_criteria(criteria)
        self.preconditioner = preconditioner
        self.strict_breakdown = bool(strict_breakdown)
        self.params = params

    def generate(self, batch_matrix: BatchCsr):
        if self.solver_class is None:
            raise NotImplementedError(
                f"{type(self).__name__} does not define solver_class"
            )
        return self.solver_class(self, batch_matrix)


class BatchIterativeSolver:
    """Base of the batched Krylov solvers.

    ``apply(b, x)`` treats ``x`` as the per-system initial guesses and
    overwrites each system's block with its solution, firing the same
    logger events a scalar solve fires — per system, through
    :meth:`add_system_logger` — and returning a
    :class:`~repro.ginkgo.batch.stop.BatchStatus`.
    """

    def __init__(self, factory: BatchSolverFactory, matrix: BatchCsr) -> None:
        if not matrix.size.is_square:
            raise BadDimension(
                f"{type(self).__name__} requires square systems, "
                f"got {matrix.size}"
            )
        self._exec = matrix.executor
        self._factory = factory
        self._matrix = matrix
        clock = self._exec.clock
        clock.push_span(f"{type(self).__name__}::generate", "generate")
        try:
            self._preconditioner = self._generate_preconditioner(
                factory, matrix
            )
        finally:
            clock.pop_span()
        self._workspace = Workspace(self._exec)
        self._system_loggers: list[list] = [
            [] for _ in range(matrix.num_systems)
        ]
        self.status = BatchStatus(matrix.num_systems)
        self._criteria = None
        self._first_breakdown = None

    @staticmethod
    def _generate_preconditioner(factory, matrix):
        precond = factory.preconditioner
        if precond is None:
            return BatchIdentity(matrix.executor)
        if hasattr(precond, "apply_state"):
            return precond
        if hasattr(precond, "generate"):
            generated = precond.generate(matrix)
            if not hasattr(generated, "apply_state"):
                raise GinkgoError(
                    f"{type(precond).__name__} generated a non-batched "
                    "preconditioner; use the batch variants "
                    "(e.g. BatchJacobi)"
                )
            return generated
        raise GinkgoError(
            "preconditioner must be a batched operator or factory, got "
            f"{type(precond).__name__}"
        )

    # ------------------------------------------------------------------
    # properties / logging
    # ------------------------------------------------------------------
    @property
    def system_matrix(self) -> BatchCsr:
        return self._matrix

    @property
    def preconditioner(self):
        return self._preconditioner

    @property
    def num_systems(self) -> int:
        return self._matrix.num_systems

    @property
    def workspace(self) -> Workspace:
        return self._workspace

    def add_system_logger(self, k: int, logger) -> None:
        """Attach a logger receiving system ``k``'s solve events."""
        self._system_loggers[k].append(logger)

    def add_logger(self, logger) -> None:
        """Attach one logger to every system."""
        for loggers in self._system_loggers:
            loggers.append(logger)

    def _log_system(self, k: int, event: str, **kwargs) -> None:
        for logger in self._system_loggers[k]:
            handler = getattr(logger, f"on_{event}", None)
            if handler is not None:
                handler(self, **kwargs)

    # ------------------------------------------------------------------
    # lockstep monitor
    # ------------------------------------------------------------------
    def _monitor(self, iterations, norms, ids) -> np.ndarray:
        """One lockstep convergence check over the systems in ``ids``.

        Performs, per system, exactly what the scalar solve's monitor
        does — breakdown detection, history logging, criterion check,
        final-status bookkeeping — and returns the boolean keep-mask of
        systems that continue iterating.
        """
        status = self.status
        clock = self._exec.clock
        norms = np.asarray(norms, dtype=np.float64)
        m = ids.size
        iterations = np.broadcast_to(
            np.asarray(iterations, dtype=np.int64), (m,)
        )
        maxed = norms.max(axis=1)
        finite = np.isfinite(norms).all(axis=1)
        keep = np.ones(m, dtype=bool)
        for i in np.flatnonzero(~finite):
            s = int(ids[i])
            it = int(iterations[i])
            worst = float(maxed[i])
            status.num_iterations[s] = it
            status.converged[s] = False
            status.breakdown[s] = True
            status.final_residual_norm[s] = worst
            self._log_system(
                s, "breakdown", iteration=it, residual_norm=norms[i]
            )
            clock.annotate(
                "breakdown", system=s, iteration=it, residual_norm=worst
            )
            if self._first_breakdown is None:
                self._first_breakdown = (it, worst)
            keep[i] = False
        ok = np.flatnonzero(finite)
        for i in ok:
            s = int(ids[i])
            status.residual_norms[s].append(float(maxed[i]))
            self._log_system(
                s,
                "iteration_complete",
                iteration=int(iterations[i]),
                residual_norm=norms[i],
                solution=None,
            )
        # One host read-back of the stopping status per lockstep check —
        # this, not K read-backs, is the batched API's latency win.
        clock.synchronize()
        if ok.size:
            stop, conv = self._criteria.check(
                iterations[ok], norms[ok], ids[ok]
            )
            for pos, i in enumerate(ok):
                s = int(ids[i])
                self._log_system(
                    s,
                    "criterion_check_completed",
                    iteration=int(iterations[i]),
                    stopped=bool(stop[pos]),
                )
                if stop[pos]:
                    status.num_iterations[s] = int(iterations[i])
                    status.converged[s] = bool(conv[pos])
                    status.final_residual_norm[s] = float(maxed[i])
                    if conv[pos]:
                        self._log_system(
                            s,
                            "converged",
                            iteration=int(iterations[i]),
                            residual_norm=norms[i],
                        )
                    keep[i] = False
        clock.annotate(
            "iteration",
            iteration=int(iterations.max(initial=0)),
            active=int(m),
            stopped=int(m - int(keep.sum())),
        )
        return keep

    # ------------------------------------------------------------------
    # apply
    # ------------------------------------------------------------------
    def apply(self, b: BatchDense, x: BatchDense) -> BatchStatus:
        """Solve all systems: ``x[k] <- solve(A[k], b[k])`` from guess ``x[k]``."""
        mat = self._matrix
        K = mat.num_systems
        if b.num_systems != K or x.num_systems != K:
            raise BadDimension(
                f"batch size mismatch: matrix has {K} systems, operands "
                f"{b.num_systems}/{x.num_systems}"
            )
        if b.size.rows != mat.size.cols or x.size.rows != mat.size.rows:
            raise BadDimension(
                f"operand rows {b.size.rows}/{x.size.rows} do not match "
                f"system size {mat.size}"
            )
        if b.size.cols != x.size.cols:
            raise BadDimension(
                f"b has {b.size.cols} columns but x has {x.size.cols}"
            )
        exec_ = self._exec
        clock = exec_.clock
        ws = self._workspace
        clock.push_span(f"{type(self).__name__}::apply", "solver")
        try:
            self.status = BatchStatus(K)
            self._first_breakdown = None
            for s in range(K):
                self._log_system(s, "apply_started", b=b, x=x)
            start_time = clock.now
            B = b.data
            X = x.data
            n = mat.size.rows
            cols = b.size.cols
            vb = b.value_bytes
            rhs_norm = np.sqrt(
                np.einsum("kij,kij->kj", B, B).astype(np.float64)
            )
            exec_.run(dot_cost(n, vb, K * cols))
            # Initial residual r0 = b - A x0, one batched kernel each.
            R = ws.tensor_like("batch.r", B)
            AX = ws.tensor("batch.spmv_tmp", B.shape, B.dtype)
            ops = _ActiveSystems(ws, mat)
            ids = np.arange(K, dtype=np.int64)
            ops.reset(ids)
            ops.spmv(X, AX, K, cols)
            R += B.dtype.type(-1.0) * AX
            initial_resnorm = np.sqrt(
                np.einsum("kij,kij->kj", R, R).astype(np.float64)
            )
            exec_.run(dot_cost(n, vb, K * cols))
            self._criteria = BatchCriteria(
                self._factory.criteria,
                rhs_norm,
                initial_resnorm,
                clock,
                start_time,
            )
            # Iteration-0 check: already-converged systems never iterate
            # and keep their initial guess, exactly like a scalar solve.
            keep = self._monitor(
                np.zeros(K, dtype=np.int64), initial_resnorm, ids
            )
            ids = ids[np.flatnonzero(keep)]
            if ids.size:
                if ids.size < K:
                    R[: ids.size] = R[ids]
                    ops.compact(ids)
                self._iterate_batch(B, X, R, AX, ids, ops)
            for s in range(K):
                self._log_system(s, "apply_completed", b=b, x=x)
        finally:
            clock.pop_span()
        if self._factory.strict_breakdown and self._first_breakdown is not None:
            # Breakdowns are isolated: the whole batch completes (every
            # healthy system gets its solution) before strictness raises
            # for the first broken system.
            raise SolverBreakdown(*self._first_breakdown)
        return self.status

    def _iterate_batch(self, B, X, R, AX, ids, ops) -> None:
        raise NotImplementedError


class BatchCgSolver(BatchIterativeSolver):
    """Lockstep-batched CG, bit-compatible with :class:`CgSolver`."""

    def _iterate_batch(self, B, X, R, AX, ids, ops) -> None:
        exec_ = self._exec
        ws = self._workspace
        precond = self._preconditioner
        K, n, cols = B.shape
        dtype = B.dtype
        vb = dtype.itemsize
        m = ids.size

        Xc = ws.tensor("batch.x", B.shape, dtype)
        Xc[:m] = X[ids]
        exec_.run(blas1_cost("batch_pack", m * n * cols, vb, 2))
        pstate = precond.gather_state(ids)
        Z = ws.tensor("cg.z", B.shape, dtype)
        P = ws.tensor("cg.p", B.shape, dtype)
        Q = ws.tensor("cg.q", B.shape, dtype)
        precond.apply_state(pstate, R, Z, m)
        exec_.copy_into(exec_, Z[:m], P[:m])
        rz = np.einsum("kij,kij->kj", R[:m], Z[:m])
        exec_.run(dot_cost(n, vb, m * cols))

        iteration = 0
        while True:
            iteration += 1
            ops.spmv(P, Q, m, cols)
            pq = np.einsum("kij,kij->kj", P[:m], Q[:m])
            exec_.run(dot_cost(n, vb, m * cols))
            alpha = _safe_divide(rz, pq)
            a = alpha.astype(dtype, copy=False)[:, None, :]
            # Fused cg_step_2: x += alpha p ; r -= alpha q.
            Xc[:m] += a * P[:m]
            R[:m] -= a * Q[:m]
            exec_.run(blas1_cost("cg_step_2", m * n * cols, vb, 6))
            res_norm = np.sqrt(
                np.einsum("kij,kij->kj", R[:m], R[:m]).astype(np.float64)
            )
            exec_.run(dot_cost(n, vb, m * cols))
            keep = self._monitor(iteration, res_norm, ids)
            if not keep.all():
                keep_idx = np.flatnonzero(keep)
                drop_idx = np.flatnonzero(~keep)
                X[ids[drop_idx]] = Xc[drop_idx]
                exec_.run(
                    blas1_cost("batch_scatter", drop_idx.size * n * cols, vb, 2)
                )
                m = keep_idx.size
                if m == 0:
                    return
                for arr in (Xc, R, P):
                    arr[:m] = arr[keep_idx]
                rz = rz[keep_idx]
                if pstate is not None:
                    pstate = pstate[keep_idx]
                ids = ids[keep_idx]
                ops.compact(keep_idx)
            precond.apply_state(pstate, R, Z, m)
            rz_new = np.einsum("kij,kij->kj", R[:m], Z[:m])
            exec_.run(dot_cost(n, vb, m * cols))
            beta = _safe_divide(rz_new, rz)
            bc = beta.astype(dtype, copy=False)[:, None, :]
            # Fused cg_step_1: p = z + beta p.
            P[:m] *= bc
            P[:m] += Z[:m]
            exec_.run(blas1_cost("cg_step_1", m * n * cols, vb, 3))
            rz = rz_new


class BatchBicgstabSolver(BatchIterativeSolver):
    """Lockstep-batched BiCGSTAB, bit-compatible with :class:`BicgstabSolver`."""

    def _iterate_batch(self, B, X, R, AX, ids, ops) -> None:
        exec_ = self._exec
        ws = self._workspace
        precond = self._preconditioner
        K, n, cols = B.shape
        dtype = B.dtype
        vb = dtype.itemsize
        m = ids.size

        Xc = ws.tensor("batch.x", B.shape, dtype)
        Xc[:m] = X[ids]
        exec_.run(blas1_cost("batch_pack", m * n * cols, vb, 2))
        pstate = precond.gather_state(ids)
        Rtld = ws.tensor("bicgstab.r_tld", B.shape, dtype)
        exec_.copy_into(exec_, R[:m], Rtld[:m])
        P = ws.tensor("bicgstab.p", B.shape, dtype)
        exec_.copy_into(exec_, R[:m], P[:m])
        Phat = ws.tensor("bicgstab.p_hat", B.shape, dtype)
        Shat = ws.tensor("bicgstab.s_hat", B.shape, dtype)
        V = ws.tensor("bicgstab.v", B.shape, dtype)
        S = ws.tensor("bicgstab.s", B.shape, dtype)
        T = ws.tensor("bicgstab.t", B.shape, dtype)
        rho_old = None
        alpha = np.ones((m, cols))
        omega = np.ones((m, cols))

        iteration = 0
        while True:
            iteration += 1
            rho = np.einsum("kij,kij->kj", Rtld[:m], R[:m])
            exec_.run(dot_cost(n, vb, m * cols))
            if rho_old is not None:
                beta = _safe_divide(rho * alpha, rho_old * omega)
                # p = r + beta * (p - omega * v), as three fused updates.
                P[:m] += (-omega.astype(dtype, copy=False))[:, None, :] * V[:m]
                exec_.run(blas1_cost("add_scaled", m * n * cols, vb, 3))
                P[:m] *= beta.astype(dtype, copy=False)[:, None, :]
                exec_.run(blas1_cost("scale", m * n * cols, vb, 2))
                P[:m] += R[:m]
                exec_.run(blas1_cost("add_scaled", m * n * cols, vb, 3))
            precond.apply_state(pstate, P, Phat, m)
            ops.spmv(Phat, V, m, cols)
            rtv = np.einsum("kij,kij->kj", Rtld[:m], V[:m])
            exec_.run(dot_cost(n, vb, m * cols))
            alpha = _safe_divide(rho, rtv)
            # s = r - alpha v
            np.copyto(S[:m], R[:m])
            exec_.run(blas1_cost("copy", m * n * cols, vb, 2))
            S[:m] += (-alpha.astype(dtype, copy=False))[:, None, :] * V[:m]
            exec_.run(blas1_cost("add_scaled", m * n * cols, vb, 3))
            # Half-step norm (cost parity with the scalar solver).
            np.sqrt(np.einsum("kij,kij->kj", S[:m], S[:m]).astype(np.float64))
            exec_.run(dot_cost(n, vb, m * cols))
            precond.apply_state(pstate, S, Shat, m)
            ops.spmv(Shat, T, m, cols)
            tt = np.einsum("kij,kij->kj", T[:m], T[:m])
            exec_.run(dot_cost(n, vb, m * cols))
            ts = np.einsum("kij,kij->kj", T[:m], S[:m])
            exec_.run(dot_cost(n, vb, m * cols))
            omega = _safe_divide(ts, tt)
            Xc[:m] += alpha.astype(dtype, copy=False)[:, None, :] * Phat[:m]
            exec_.run(blas1_cost("add_scaled", m * n * cols, vb, 3))
            Xc[:m] += omega.astype(dtype, copy=False)[:, None, :] * Shat[:m]
            exec_.run(blas1_cost("add_scaled", m * n * cols, vb, 3))
            # r = s - omega t
            np.copyto(R[:m], S[:m])
            exec_.run(blas1_cost("copy", m * n * cols, vb, 2))
            R[:m] += (-omega.astype(dtype, copy=False))[:, None, :] * T[:m]
            exec_.run(blas1_cost("add_scaled", m * n * cols, vb, 3))
            rho_old = rho
            res_norm = np.sqrt(
                np.einsum("kij,kij->kj", R[:m], R[:m]).astype(np.float64)
            )
            exec_.run(dot_cost(n, vb, m * cols))
            keep = self._monitor(iteration, res_norm, ids)
            if not keep.all():
                keep_idx = np.flatnonzero(keep)
                drop_idx = np.flatnonzero(~keep)
                X[ids[drop_idx]] = Xc[drop_idx]
                exec_.run(
                    blas1_cost("batch_scatter", drop_idx.size * n * cols, vb, 2)
                )
                m = keep_idx.size
                if m == 0:
                    return
                for arr in (Xc, R, Rtld, P, V):
                    arr[:m] = arr[keep_idx]
                alpha = alpha[keep_idx]
                omega = omega[keep_idx]
                rho_old = rho_old[keep_idx]
                if pstate is not None:
                    pstate = pstate[keep_idx]
                ids = ids[keep_idx]
                ops.compact(keep_idx)


class BatchGmresSolver(BatchIterativeSolver):
    """Wave-batched restarted GMRES, bit-compatible with :class:`GmresSolver`.

    Because systems leave a restart cycle at different inner iterations,
    the batch runs in *waves*: every unfinished system starts a restart
    cycle together; systems that stop (or hit a lucky breakdown) are
    finalized per system with the exact scalar back-substitution and
    removed, and the survivors regroup into the next wave.
    """

    def _iterate_batch(self, B, X, R, AX, ids, ops) -> None:
        exec_ = self._exec
        ws = self._workspace
        precond = self._preconditioner
        K, n, cols = B.shape
        dtype = B.dtype
        vb = dtype.itemsize
        if cols != 1:
            raise GinkgoError(
                "batched GMRES supports a single right-hand-side column; "
                f"got {cols}"
            )
        m_dim = int(self._factory.params.get("krylov_dim", DEFAULT_KRYLOV_DIM))
        if m_dim < 1:
            raise GinkgoError(f"krylov_dim must be >= 1, got {m_dim}")

        total_iteration = np.zeros(K, dtype=np.int64)
        Xw = ws.tensor("gmres.x", B.shape, dtype)
        Wt = ws.tensor("gmres.w", B.shape, dtype)
        Rt = ws.tensor("gmres.r", B.shape, dtype)
        basis3 = ws.tensor("gmres.basis", (K, n, m_dim + 1), np.float64)
        unfinished = ids

        while unfinished.size:
            wids = unfinished
            w = wids.size
            ops.reset(wids)
            Xw[:w] = X[wids]
            exec_.run(blas1_cost("batch_pack", w * n, vb, 2))
            pstate = precond.gather_state(wids)
            # Preconditioned residual r = M^{-1}(b - A x).
            Wt[:w] = B[wids]
            exec_.run(blas1_cost("copy", w * n, vb, 2))
            ops.spmv(Xw, Rt, w, 1)
            Wt[:w] += dtype.type(-1.0) * Rt[:w]
            precond.apply_state(pstate, Wt, Rt, w)
            beta = np.sqrt(
                np.einsum("kij,kij->kj", Rt[:w], Rt[:w]).astype(np.float64)
            )[:, 0]
            exec_.run(dot_cost(n, vb, w))
            exact = beta == 0.0
            if exact.any():
                # Zero residual: the scalar solver logs one check and
                # returns immediately, whatever the criterion says.
                zi = np.flatnonzero(exact)
                self._monitor(
                    total_iteration[wids[zi]],
                    np.zeros((zi.size, 1)),
                    wids[zi],
                )
                keep_idx = np.flatnonzero(~exact)
                w = keep_idx.size
                wids = wids[keep_idx]
                Xw[:w] = Xw[keep_idx]
                Rt[:w] = Rt[keep_idx]
                beta = beta[keep_idx]
                if pstate is not None:
                    pstate = pstate[keep_idx]
                ops.compact(keep_idx)
                if w == 0:
                    unfinished = np.zeros(0, dtype=np.int64)
                    continue
            basis3[:w] = 0.0
            basis3[:w, :, 0] = Rt[:w, :, 0] / beta[:, None]
            exec_.run(blas1_cost("gmres_init", w * n, vb, 2))
            h3 = np.zeros((w, m_dim + 1, m_dim))
            cos3 = np.zeros((w, m_dim))
            sin3 = np.zeros((w, m_dim))
            g3 = np.zeros((w, m_dim + 1))
            g3[:, 0] = beta
            restart = []

            for j in range(m_dim):
                # w = M^{-1} A v_j
                Wt[:w, :, 0] = basis3[:w, :, j]
                ops.spmv(Wt, Rt, w, 1)
                precond.apply_state(pstate, Rt, Wt, w)
                # Fused multi-dot + rank update (lockstep Gram-Schmidt).
                coeffs = np.einsum(
                    "kij,ki->kj", basis3[:w, :, : j + 1], Wt[:w, :, 0]
                )
                exec_.run(blas1_cost("gmres_multidot", w * n * (j + 1), vb, 2))
                h3[:, : j + 1, j] = coeffs
                Wt[:w, :, 0] -= np.einsum(
                    "kij,kj->ki", basis3[:w, :, : j + 1], coeffs
                )
                exec_.run(blas1_cost("gmres_update", w * n * (j + 1), vb, 2))
                h_next = np.sqrt(
                    np.einsum("kij,kij->kj", Wt[:w], Wt[:w]).astype(np.float64)
                )[:, 0]
                exec_.run(dot_cost(n, vb, w))
                h3[:, j + 1, j] = h_next
                nz = h_next != 0.0
                if nz.any():
                    basis3[:w, :, j + 1][nz] = (
                        Wt[:w, :, 0][nz] / h_next[nz, None]
                    )
                    exec_.run(
                        blas1_cost("gmres_scale", int(nz.sum()) * n, vb, 2)
                    )
                # Accumulated Givens rotations on column j, vectorized
                # over the wave (the i-chain stays sequential).
                for i in range(j):
                    hi = h3[:, i, j].copy()
                    hi1 = h3[:, i + 1, j].copy()
                    h3[:, i, j] = cos3[:, i] * hi + sin3[:, i] * hi1
                    h3[:, i + 1, j] = -sin3[:, i] * hi + cos3[:, i] * hi1
                denom = np.hypot(h3[:, j, j], h3[:, j + 1, j])
                ok = denom != 0.0
                cosj = np.ones(w)
                sinj = np.zeros(w)
                np.divide(h3[:, j, j], denom, out=cosj, where=ok)
                np.divide(h3[:, j + 1, j], denom, out=sinj, where=ok)
                cos3[:, j] = cosj
                sin3[:, j] = sinj
                h3[:, j, j] = denom
                h3[:, j + 1, j] = 0.0
                g3[:, j + 1] = -sinj * g3[:, j]
                g3[:, j] = cosj * g3[:, j]
                exec_.run(
                    KernelCost(
                        "givens_update", 6.0 * m_dim * w, 24.0 * m_dim * w,
                        launches=3,
                    )
                )
                residual_norm = np.abs(g3[:, j + 1])
                total_iteration[wids] += 1
                exec_.run(
                    KernelCost("residual_check", 0.0, 64.0 * w, launches=4)
                )
                keep = self._monitor(
                    total_iteration[wids], residual_norm[:, None], wids
                )
                drop = (~keep) | (~nz)
                if drop.any():
                    inner = j + 1
                    for i in np.flatnonzero(drop):
                        self._finalize_system(
                            basis3[i], h3[i], g3[i], Xw[i], inner, vb
                        )
                        sid = int(wids[i])
                        X[sid] = Xw[i]
                        exec_.run(blas1_cost("batch_scatter", n, vb, 2))
                        if keep[i]:
                            # Lucky breakdown without a stop verdict:
                            # restart from the updated x, like the scalar
                            # solver's h_next == 0 exit.
                            restart.append(sid)
                    keep_idx = np.flatnonzero(~drop)
                    w = keep_idx.size
                    wids = wids[keep_idx]
                    Xw[:w] = Xw[keep_idx]
                    basis3[:w] = basis3[keep_idx]
                    h3 = h3[keep_idx]
                    cos3 = cos3[keep_idx]
                    sin3 = sin3[keep_idx]
                    g3 = g3[keep_idx]
                    if pstate is not None:
                        pstate = pstate[keep_idx]
                    ops.compact(keep_idx)
                    if w == 0:
                        break
            else:
                # Krylov space exhausted: finalize the survivors and send
                # them into the next restart wave.
                for i in range(w):
                    self._finalize_system(
                        basis3[i], h3[i], g3[i], Xw[i], m_dim, vb
                    )
                    sid = int(wids[i])
                    X[sid] = Xw[i]
                    exec_.run(blas1_cost("batch_scatter", n, vb, 2))
                    restart.append(sid)
            unfinished = np.asarray(sorted(restart), dtype=np.int64)

    def _finalize_system(self, basis2, h2, g1, x2, inner, vb) -> None:
        """Per-system triangular solve + solution update (exact scalar ops).

        ``basis2``/``h2``/``g1``/``x2`` are this system's contiguous
        slices of the wave tensors; their shapes and strides match the
        scalar solver's arrays, so the two small BLAS products here are
        bitwise identical to a sequential solve.
        """
        exec_ = self._exec
        y = np.zeros(inner)
        for i in range(inner - 1, -1, -1):
            y[i] = (
                g1[i] - h2[i, i + 1 : inner] @ y[i + 1 : inner]
            ) / h2[i, i]
        exec_.run(
            KernelCost(
                "hessenberg_trsv",
                flops=float(inner * inner),
                bytes=8.0 * inner * inner,
                launches=max(inner, 1),
            )
        )
        x2[:, 0] += basis2[:, :inner] @ y
        exec_.run(blas1_cost("gmres_x_update", basis2.shape[0] * inner, vb, 2))


class BatchCg(BatchSolverFactory):
    """Batched CG factory (``gko::batch::solver::Cg``)."""

    solver_class = BatchCgSolver
    parameter_names = ()


class BatchBicgstab(BatchSolverFactory):
    """Batched BiCGSTAB factory (``gko::batch::solver::Bicgstab``)."""

    solver_class = BatchBicgstabSolver
    parameter_names = ()


class BatchGmres(BatchSolverFactory):
    """Batched GMRES factory (``gko::batch::solver::Gmres``)."""

    solver_class = BatchGmresSolver
    parameter_names = ("krylov_dim",)
