"""Per-system stopping for batched solves (``gko::batch::stop``).

A batched solver advances all systems in lockstep but each system must
stop by *its own* criterion, exactly as if it were solved alone.
:class:`BatchCriteria` binds the scalar criterion factories once per
batch and evaluates them against a block of per-system residual norms.

For the common factories (``Iteration``, ``ResidualNorm`` and any
``Combined`` of the two) the check is fully vectorized — one NumPy
comparison for the whole active set instead of ``K`` Python calls.  The
comparisons are elementwise-identical to the scalar ``check`` methods,
so stopping decisions (and therefore residual histories) match a
sequential solve bit for bit.  Any other criterion falls back to real
per-system bound criteria.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.stop.criterion import (
    Combined,
    CriterionContext,
    Iteration,
    ResidualNorm,
)


class BatchStatus:
    """Per-system convergence record of one batched solve."""

    def __init__(self, num_systems: int) -> None:
        self.num_systems = int(num_systems)
        #: Last iteration each system reached.
        self.num_iterations = np.zeros(self.num_systems, dtype=np.int64)
        #: Whether each system met a convergence criterion.
        self.converged = np.zeros(self.num_systems, dtype=bool)
        #: Whether each system hit a non-finite residual.
        self.breakdown = np.zeros(self.num_systems, dtype=bool)
        #: Final residual norm per system (NaN while unset).
        self.final_residual_norm = np.full(self.num_systems, np.nan)
        #: Residual-norm history per system (max over columns).
        self.residual_norms = [[] for _ in range(self.num_systems)]

    @property
    def all_converged(self) -> bool:
        return bool(self.converged.all())

    @property
    def num_converged(self) -> int:
        return int(self.converged.sum())

    def system(self, k: int) -> dict:
        """One system's record as a plain dict."""
        return {
            "num_iterations": int(self.num_iterations[k]),
            "converged": bool(self.converged[k]),
            "breakdown": bool(self.breakdown[k]),
            "final_residual_norm": float(self.final_residual_norm[k]),
            "residual_norms": list(self.residual_norms[k]),
        }

    # A BatchStatus is a sequence of per-system records: len() is the
    # batch size, status[k] / iteration yield the system(k) dicts.
    def __len__(self) -> int:
        return self.num_systems

    def __getitem__(self, k):
        if isinstance(k, slice):
            return [self.system(i) for i in range(self.num_systems)[k]]
        k = int(k)
        if k < 0:
            k += self.num_systems
        if not 0 <= k < self.num_systems:
            raise IndexError(
                f"system index {k} out of range for {self.num_systems} "
                f"systems"
            )
        return self.system(k)

    def __iter__(self):
        return (self.system(k) for k in range(self.num_systems))

    def __repr__(self) -> str:
        return (
            f"BatchStatus({self.num_converged}/{self.num_systems} converged, "
            f"{int(self.breakdown.sum())} breakdowns)"
        )


def _flatten_factories(factory) -> list | None:
    """Decompose a criterion factory into Iteration/ResidualNorm leaves.

    Returns ``None`` when any leaf is of another type (no fast path).
    """
    if isinstance(factory, Combined):
        leaves = []
        for child in factory.factories:
            sub = _flatten_factories(child)
            if sub is None:
                return None
            leaves.extend(sub)
        return leaves
    if isinstance(factory, (Iteration, ResidualNorm)):
        return [factory]
    return None


class BatchCriteria:
    """Stopping criteria bound to every system of one batched solve.

    Args:
        factory: The solver factory's criterion (scalar API objects).
        rhs_norm: ``(K, cols)`` per-system right-hand-side norms.
        initial_resnorm: ``(K, cols)`` per-system initial residual norms.
        clock: The executor clock (for time-based criteria).
        start_time: Solve start on the simulated clock.
    """

    def __init__(self, factory, rhs_norm, initial_resnorm, clock, start_time):
        rhs_norm = np.asarray(rhs_norm, dtype=np.float64)
        initial_resnorm = np.asarray(initial_resnorm, dtype=np.float64)
        num_systems = rhs_norm.shape[0]
        self._fast = None
        leaves = _flatten_factories(factory)
        if leaves is not None:
            checks = []
            for leaf in leaves:
                if isinstance(leaf, Iteration):
                    checks.append(("iteration", int(leaf.max_iters)))
                else:
                    if leaf.baseline == "rhs_norm":
                        reference = rhs_norm
                    elif leaf.baseline == "initial_resnorm":
                        reference = initial_resnorm
                    else:
                        reference = np.ones_like(rhs_norm)
                    # Same guard as the scalar bound criterion: a zero
                    # reference falls back to an absolute threshold.
                    reference = np.where(reference > 0.0, reference, 1.0)
                    checks.append(
                        ("residual", leaf.reduction_factor * reference)
                    )
            self._fast = checks
            self._bound = None
        else:
            self._bound = []
            for k in range(num_systems):
                context = CriterionContext(
                    rhs_norm=rhs_norm[k], clock=clock, start_time=start_time
                )
                context.initial_resnorm = initial_resnorm[k]
                self._bound.append(factory.generate(context))

    @property
    def vectorized(self) -> bool:
        return self._fast is not None

    def check(self, iterations, norms, ids):
        """Evaluate stopping for the systems in ``ids``.

        Args:
            iterations: ``(m,)`` per-system iteration numbers.
            norms: ``(m, cols)`` per-system residual norms.
            ids: ``(m,)`` original system indices.

        Returns:
            ``(stop, converged)`` boolean masks of shape ``(m,)``.
        """
        iterations = np.asarray(iterations)
        norms = np.asarray(norms, dtype=np.float64)
        m = ids.size
        stop = np.zeros(m, dtype=bool)
        converged = np.zeros(m, dtype=bool)
        if self._fast is not None:
            for kind, param in self._fast:
                if kind == "iteration":
                    stop |= iterations >= param
                else:
                    met = np.all(norms <= param[ids], axis=1)
                    stop |= met
                    converged |= met
            return stop, converged
        for i in range(m):
            criterion = self._bound[int(ids[i])]
            stop[i] = criterion.check(int(iterations[i]), norms[i])
            converged[i] = criterion.converged
        return stop, converged
