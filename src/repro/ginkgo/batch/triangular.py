"""Batched triangular solvers (``gko::batch::solver::LowerTrs``/``UpperTrs``).

Direct forward/backward substitution over all ``K`` systems at once.
Because the systems share one sparsity pattern, the substitution order
and per-row gather indices are identical across the batch, so each row
of the recurrence runs as one ``(K, row_nnz)`` contraction instead of
``K`` scalar loops — the whole batch costs ``n`` Python steps, not
``K * n``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.ginkgo.batch.matrix import BatchCsr, BatchDense
from repro.ginkgo.exceptions import BadDimension, GinkgoError
from repro.ginkgo.lin_op import LinOpFactory
from repro.perfmodel import trsv_cost


class _BatchTrsSolver:
    """Shared implementation of the batched triangular solvers."""

    lower: bool = True

    def __init__(self, factory, batch_matrix: BatchCsr) -> None:
        if not batch_matrix.size.is_square:
            raise BadDimension(
                f"{type(self).__name__} requires square systems, "
                f"got {batch_matrix.size}"
            )
        self._exec = batch_matrix.executor
        self._matrix = batch_matrix
        self._unit_diagonal = bool(factory.params.get("unit_diagonal", False))
        n = batch_matrix.size.rows
        row_ptrs = np.asarray(batch_matrix.row_ptrs, dtype=np.int64)
        col_idxs = np.asarray(batch_matrix.col_idxs, dtype=np.int64)
        if self._unit_diagonal:
            self._diag = None
        else:
            diag = batch_matrix.diagonal().astype(np.float64)
            if np.any(diag == 0):
                raise GinkgoError(
                    f"{type(self).__name__}: zero on a diagonal; pass "
                    "unit_diagonal=True for unit-diagonal factors"
                )
            self._diag = diag
        # Substitution plan from the shared pattern: for each row (in
        # substitution order) the entry positions strictly inside the
        # solved triangle and the columns they gather from.
        plan = []
        order = range(n) if self.lower else range(n - 1, -1, -1)
        for row in order:
            lo, hi = row_ptrs[row], row_ptrs[row + 1]
            cols = col_idxs[lo:hi]
            inside = cols < row if self.lower else cols > row
            entries = np.arange(lo, hi)[inside]
            plan.append((row, entries, cols[inside]))
        self._plan = plan

    @property
    def system_matrix(self) -> BatchCsr:
        return self._matrix

    @property
    def num_systems(self) -> int:
        return self._matrix.num_systems

    def apply(self, b: BatchDense, x: BatchDense) -> BatchDense:
        """Solve ``T[k] x[k] = b[k]`` for every system."""
        mat = self._matrix
        K = mat.num_systems
        if b.num_systems != K or x.num_systems != K:
            raise BadDimension(
                f"batch size mismatch: matrix has {K} systems, operands "
                f"{b.num_systems}/{x.num_systems}"
            )
        if b.size.rows != mat.size.rows or x.size.rows != mat.size.rows:
            raise BadDimension(
                f"operand rows {b.size.rows}/{x.size.rows} do not match "
                f"system size {mat.size}"
            )
        if b.size.cols != x.size.cols:
            raise BadDimension(
                f"b has {b.size.cols} columns but x has {x.size.cols}"
            )
        exec_ = self._exec
        clock = exec_.clock
        clock.push_span(f"{type(self).__name__}::apply", "solver")
        try:
            vals = mat.values.astype(np.float64, copy=False)
            rhs = b.data.astype(np.float64, copy=False)
            out = np.zeros((K, mat.size.rows, b.size.cols))
            diag = self._diag
            for row, entries, cols in self._plan:
                if entries.size:
                    acc = np.einsum(
                        "ke,kej->kj", vals[:, entries], out[:, cols, :]
                    )
                    val = rhs[:, row, :] - acc
                else:
                    val = rhs[:, row, :].copy()
                if diag is not None:
                    val /= diag[:, row][:, None]
                out[:, row, :] = val
            np.copyto(x.data, out.astype(x.dtype, copy=False))
            base = trsv_cost(
                mat.size.rows, mat.nnz, mat.value_bytes, mat.index_bytes
            )
            exec_.run(
                replace(
                    base,
                    name="batch_trsv",
                    flops=base.flops * K,
                    bytes=base.bytes * K,
                )
            )
        finally:
            clock.pop_span()
        return x


class _BatchLowerTrsSolver(_BatchTrsSolver):
    lower = True


class _BatchUpperTrsSolver(_BatchTrsSolver):
    lower = False


class _BatchTrsFactory(LinOpFactory):
    """Factory for batched triangular solvers.

    Parameters:
        unit_diagonal: Treat the stored diagonals as ones (L factors).
    """

    solver_class: type = _BatchLowerTrsSolver

    def __init__(self, exec_, unit_diagonal: bool = False) -> None:
        super().__init__(exec_)
        self.params = {"unit_diagonal": unit_diagonal}

    def generate(self, batch_matrix: BatchCsr) -> _BatchTrsSolver:
        return self.solver_class(self, batch_matrix)


class BatchLowerTrs(_BatchTrsFactory):
    """Batched forward substitution for lower-triangular systems."""

    solver_class = _BatchLowerTrsSolver


class BatchUpperTrs(_BatchTrsFactory):
    """Batched backward substitution for upper-triangular systems."""

    solver_class = _BatchUpperTrsSolver
