"""Process-wide hit/miss accounting for the reuse layer.

Three caches make up the zero-allocation hot path, and all of them report
here so one place answers "what did reuse save":

* ``workspace`` — solver :class:`~repro.ginkgo.solver.workspace.Workspace`
  buffer reuse across ``apply()`` calls and restart cycles;
* ``format`` — memoized SciPy views, transposes, and format conversions
  on the sparse/dense matrix classes (generation-counter invalidated);
* ``dispatch`` — pre-resolved type-suffixed binding symbols in
  :mod:`repro.bindings.dispatch`.

Counts are kept in a flat module-global table (queryable with
:func:`snapshot`), mirrored into any registered
:class:`~repro.ginkgo.log.MetricsRegistry` sinks (``pg.profile(metrics=...)``
registers its registry for the duration of the region), and — when the
owning executor's clock is traced — emitted as ``cache_hit``/``cache_miss``
trace instants so profiler timelines show where reuse struck.

Counter mirroring is owned exclusively by this module: the profiler hook
renders the clock marks as instants but never counts them, so a registry
that is both a sink here and attached to a profiler cannot double-count.
"""

from __future__ import annotations

_COUNTS: dict[str, int] = {}
_SINKS: list = []


def record(kind: str, hit: bool, clock=None, **meta) -> None:
    """Count one cache lookup.

    Args:
        kind: Cache family (``"workspace"``/``"format"``/``"dispatch"``).
        hit: Whether the lookup was served from the cache.
        clock: Optional :class:`~repro.perfmodel.SimClock` to annotate;
            the mark is a free instant (no simulated time is charged), so
            reuse never perturbs modeled timings.
        **meta: Scalar details recorded on the trace instant (buffer name,
            byte size, symbol, ...).
    """
    key = f"cache_{kind}_{'hit' if hit else 'miss'}"
    _COUNTS[key] = _COUNTS.get(key, 0) + 1
    for sink in _SINKS:
        sink.counter(key).inc()
    if clock is not None:
        clock.annotate("cache_hit" if hit else "cache_miss", kind=kind, **meta)


def register_sink(registry) -> None:
    """Mirror future cache counts into ``registry`` (idempotent)."""
    if registry not in _SINKS:
        _SINKS.append(registry)


def unregister_sink(registry) -> None:
    """Stop mirroring into ``registry``; unknown registries are ignored."""
    try:
        _SINKS.remove(registry)
    except ValueError:
        pass


def snapshot() -> dict:
    """Copy of the global count table (``cache_<kind>_<hit|miss>`` keys)."""
    return dict(_COUNTS)


def counts(kind: str) -> tuple:
    """``(hits, misses)`` of one cache family."""
    return (
        _COUNTS.get(f"cache_{kind}_hit", 0),
        _COUNTS.get(f"cache_{kind}_miss", 0),
    )


def reset() -> None:
    """Zero the global table and drop all sinks (test isolation)."""
    _COUNTS.clear()
    _SINKS.clear()
