"""Process-wide hit/miss accounting for the reuse layer.

Three caches make up the zero-allocation hot path, and all of them report
here so one place answers "what did reuse save":

* ``workspace`` — solver :class:`~repro.ginkgo.solver.workspace.Workspace`
  buffer reuse across ``apply()`` calls and restart cycles;
* ``format`` — memoized SciPy views, transposes, and format conversions
  on the sparse/dense matrix classes (generation-counter invalidated);
* ``dispatch`` — pre-resolved type-suffixed binding symbols in
  :mod:`repro.bindings.dispatch`.

Counts are kept in a flat module-global table (queryable with
:func:`snapshot`), mirrored into any registered
:class:`~repro.ginkgo.log.MetricsRegistry` sinks (``pg.profile(metrics=...)``
registers its registry for the duration of the region), and — when the
owning executor's clock is traced — emitted as ``cache_hit``/``cache_miss``
trace instants so profiler timelines show where reuse struck.

Counter mirroring is owned exclusively by this module: the profiler hook
renders the clock marks as instants but never counts them, so a registry
that is both a sink here and attached to a profiler cannot double-count.

Sink registration is *reference counted* and keyed by registry identity:
nested ``pg.profile(metrics=...)`` regions sharing one registry register
it twice, and the inner region's exit must not stop mirroring for the
outer region (nor may a shared registry ever receive an event twice for
one lookup).  A lock guards the tables so concurrent profile regions on
worker threads cannot corrupt them mid-iteration.
"""

from __future__ import annotations

import threading

_COUNTS: dict[str, int] = {}
#: id(registry) -> [registry, refcount]; identity-keyed so one registry
#: is mirrored exactly once per event no matter how many regions hold it.
_SINKS: dict[int, list] = {}
_LOCK = threading.Lock()


def record(kind: str, hit: bool, clock=None, **meta) -> None:
    """Count one cache lookup.

    Args:
        kind: Cache family (``"workspace"``/``"format"``/``"dispatch"``).
        hit: Whether the lookup was served from the cache.
        clock: Optional :class:`~repro.perfmodel.SimClock` to annotate;
            the mark is a free instant (no simulated time is charged), so
            reuse never perturbs modeled timings.
        **meta: Scalar details recorded on the trace instant (buffer name,
            byte size, symbol, ...).
    """
    key = f"cache_{kind}_{'hit' if hit else 'miss'}"
    with _LOCK:
        _COUNTS[key] = _COUNTS.get(key, 0) + 1
        sinks = [entry[0] for entry in _SINKS.values()]
    for sink in sinks:
        sink.counter(key).inc()
    if clock is not None:
        clock.annotate("cache_hit" if hit else "cache_miss", kind=kind, **meta)


def register_sink(registry) -> None:
    """Mirror future cache counts into ``registry`` (reference counted)."""
    with _LOCK:
        entry = _SINKS.get(id(registry))
        if entry is None:
            _SINKS[id(registry)] = [registry, 1]
        else:
            entry[1] += 1


def unregister_sink(registry) -> None:
    """Drop one registration of ``registry``; mirroring stops when the
    last registration is released.  Unknown registries are ignored."""
    with _LOCK:
        entry = _SINKS.get(id(registry))
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            del _SINKS[id(registry)]


def sink_count() -> int:
    """Number of distinct registries currently mirrored (not refcounts)."""
    with _LOCK:
        return len(_SINKS)


def snapshot() -> dict:
    """Copy of the global count table (``cache_<kind>_<hit|miss>`` keys)."""
    with _LOCK:
        return dict(_COUNTS)


def counts(kind: str) -> tuple:
    """``(hits, misses)`` of one cache family."""
    with _LOCK:
        return (
            _COUNTS.get(f"cache_{kind}_hit", 0),
            _COUNTS.get(f"cache_{kind}_miss", 0),
        )


def reset() -> None:
    """Zero the global table and drop all sinks (test isolation)."""
    with _LOCK:
        _COUNTS.clear()
        _SINKS.clear()
