"""Generic config-solver entry point (paper section 5).

Ginkgo exposes all solvers/preconditioners through configuration
parameters (JSON/dict); pyGinkgo leverages this so new Ginkgo features need
no explicit bindings.  :func:`parse` turns a configuration dictionary into
a solver factory; :func:`validate` checks it against the schema first
(the paper notes Ginkgo itself ships no JSON schema — we provide one).
"""

from repro.ginkgo.config.registry import (
    PRECONDITIONER_REGISTRY,
    SOLVER_REGISTRY,
    STOP_REGISTRY,
)
from repro.ginkgo.config.parser import parse, parse_json
from repro.ginkgo.config.validate import ConfigError, validate

__all__ = [
    "ConfigError",
    "PRECONDITIONER_REGISTRY",
    "SOLVER_REGISTRY",
    "STOP_REGISTRY",
    "parse",
    "parse_json",
    "validate",
]
