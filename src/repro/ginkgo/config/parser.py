"""Config-dictionary parser: dict/JSON -> solver factory.

Mirrors Ginkgo's ``config_solve`` path that pyGinkgo drives from a Python
dictionary (Listing 2), "without depending on any temporary configuration
files on disk".
"""

from __future__ import annotations

import json

from repro.ginkgo.config.registry import (
    PRECONDITIONER_REGISTRY,
    SOLVER_REGISTRY,
    STOP_REGISTRY,
)
from repro.ginkgo.config.validate import (
    COMMON_SOLVER_KEYS,
    ConfigError,
    _canonical_precond_type,
    _canonical_solver_type,
    validate,
)
from repro.ginkgo.lin_op import LinOpFactory


def parse(exec_, config: dict) -> LinOpFactory:
    """Build a solver factory from a configuration dictionary.

    Args:
        exec_: Executor the solver will run on.
        config: A dictionary like Listing 2 of the paper::

            {
                "type": "solver::Gmres",
                "krylov_dim": 30,
                "preconditioner": {
                    "type": "preconditioner::Jacobi",
                    "max_block_size": 1,
                },
                "criteria": [
                    {"type": "stop::Iteration", "max_iters": 1000},
                    {"type": "stop::ResidualNorm",
                     "reduction_factor": 1e-6},
                ],
            }

    Returns:
        A generated-ready solver factory (call ``.generate(matrix)``).

    Raises:
        ConfigError: When the dictionary fails schema validation.
    """
    validate(config)
    solver_type = _canonical_solver_type(config["type"])
    solver_cls, solver_param_names = SOLVER_REGISTRY[solver_type]

    criteria = None
    if config.get("criteria"):
        criteria = _build_criteria(config["criteria"])

    preconditioner = None
    if config.get("preconditioner"):
        preconditioner = _build_preconditioner(exec_, config["preconditioner"])

    params = {
        key: value
        for key, value in config.items()
        if key not in COMMON_SOLVER_KEYS
    }
    if solver_type in ("solver::Direct", "solver::LowerTrs", "solver::UpperTrs"):
        # Direct/triangular factories take no criteria/preconditioner.
        return solver_cls(exec_, **params)
    return solver_cls(
        exec_,
        criteria=criteria,
        preconditioner=preconditioner,
        strict_breakdown=bool(config.get("strict_breakdown", False)),
        **params,
    )


def parse_json(exec_, text: str) -> LinOpFactory:
    """Parse a JSON string (or file contents) into a solver factory."""
    try:
        config = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError("<json>", f"invalid JSON: {exc}") from exc
    return parse(exec_, config)


def to_json(config: dict) -> str:
    """Serialise a configuration dict to the JSON Ginkgo would receive."""
    validate(config)
    return json.dumps(config, indent=2, sort_keys=True)


def _build_criteria(config):
    if isinstance(config, dict):
        config = [config]
    combined = None
    for item in config:
        cls, _ = STOP_REGISTRY[item["type"]]
        params = {k: v for k, v in item.items() if k != "type"}
        factory = cls(**params)
        combined = factory if combined is None else combined | factory
    return combined


def _build_preconditioner(exec_, config):
    ptype = _canonical_precond_type(config["type"])
    cls, _ = PRECONDITIONER_REGISTRY[ptype]
    params = {k: v for k, v in config.items() if k != "type"}
    return cls(exec_, **params)
