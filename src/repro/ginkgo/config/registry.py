"""Type registries for the config-solver.

Maps the ``type`` strings used in configuration dictionaries (Listing 2 of
the paper uses e.g. ``solver::Gmres``, ``preconditioner::Jacobi``,
``stop::Iteration``) onto the engine's factory classes, together with the
parameter names each accepts.
"""

from __future__ import annotations

from repro.ginkgo.preconditioner import Ic, Ilu, Isai, Jacobi
from repro.ginkgo.multigrid import Pgm
from repro.ginkgo.solver import (
    Bicg,
    Bicgstab,
    CbGmres,
    Cg,
    Cgs,
    Direct,
    Fcg,
    Gmres,
    Idr,
    Ir,
    LowerTrs,
    Minres,
    UpperTrs,
)
from repro.ginkgo.stop import (
    Deadline,
    Divergence,
    Iteration,
    ResidualNorm,
    Time,
)

#: Solver type name -> (factory class, accepted parameter names).
SOLVER_REGISTRY = {
    "solver::Cg": (Cg, ()),
    "solver::Fcg": (Fcg, ()),
    "solver::Cgs": (Cgs, ()),
    "solver::Bicg": (Bicg, ()),
    "solver::Bicgstab": (Bicgstab, ()),
    "solver::Gmres": (Gmres, ("krylov_dim",)),
    "solver::CbGmres": (CbGmres, ("krylov_dim", "storage_precision")),
    "solver::Idr": (Idr, ("subspace_dim", "deterministic", "kappa")),
    "solver::Minres": (Minres, ()),
    "solver::Ir": (Ir, ("relaxation_factor",)),
    "solver::Direct": (Direct, ()),
    "solver::LowerTrs": (LowerTrs, ("unit_diagonal",)),
    "solver::UpperTrs": (UpperTrs, ("unit_diagonal",)),
}

#: Preconditioner type name -> (factory class, accepted parameter names).
PRECONDITIONER_REGISTRY = {
    "preconditioner::Jacobi": (Jacobi, ("max_block_size", "storage_precision")),
    "preconditioner::Ilu": (Ilu, ("algorithm", "sweeps", "storage_precision")),
    "preconditioner::Ic": (Ic, ("storage_precision",)),
    "preconditioner::Isai": (Isai, ("sparsity_power", "storage_precision")),
    "preconditioner::Multigrid": (
        Pgm,
        (
            "max_levels",
            "coarse_size",
            "smoother_relaxation",
            "pre_smoother_steps",
            "post_smoother_steps",
        ),
    ),
}

#: Criterion type name -> (factory class, accepted parameter names).
STOP_REGISTRY = {
    "stop::Iteration": (Iteration, ("max_iters",)),
    "stop::ResidualNorm": (ResidualNorm, ("reduction_factor", "baseline")),
    "stop::Time": (Time, ("time_limit",)),
    "stop::Divergence": (Divergence, ("limit",)),
    "stop::Deadline": (Deadline, ("at",)),
}

#: Short aliases accepted in configs for user convenience.
SOLVER_ALIASES = {
    "cg": "solver::Cg",
    "fcg": "solver::Fcg",
    "cgs": "solver::Cgs",
    "bicg": "solver::Bicg",
    "bicgstab": "solver::Bicgstab",
    "gmres": "solver::Gmres",
    "cb_gmres": "solver::CbGmres",
    "idr": "solver::Idr",
    "minres": "solver::Minres",
    "ir": "solver::Ir",
    "direct": "solver::Direct",
}

PRECONDITIONER_ALIASES = {
    "jacobi": "preconditioner::Jacobi",
    "ilu": "preconditioner::Ilu",
    "ic": "preconditioner::Ic",
    "isai": "preconditioner::Isai",
    "multigrid": "preconditioner::Multigrid",
    "amg": "preconditioner::Multigrid",
}
