"""Schema validation for config-solver dictionaries.

The paper points out a drawback of Ginkgo's configuration files: "no JSON
schema for validation is available", so mistakes surface late and
cryptically.  This module closes that gap with an explicit validator that
reports the offending path.
"""

from __future__ import annotations

from repro.ginkgo.accessor import VALUE_SUFFIX_ALIASES
from repro.ginkgo.config.registry import (
    PRECONDITIONER_ALIASES,
    PRECONDITIONER_REGISTRY,
    SOLVER_ALIASES,
    SOLVER_REGISTRY,
    STOP_REGISTRY,
)

#: Keys accepted at the top level besides solver-specific parameters.
COMMON_SOLVER_KEYS = (
    "type", "preconditioner", "criteria", "value_type", "strict_breakdown"
)
#: Accepted value-type spellings — the dispatch layer's alias table, so a
#: spelling validated here can never be rejected at binding resolution.
VALUE_TYPES = tuple(sorted(VALUE_SUFFIX_ALIASES))


class ConfigError(ValueError):
    """A configuration dictionary failed validation.

    Carries the path into the config (e.g. ``criteria[1].max_iters``) for
    precise error reporting.
    """

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"config error at {path or '<root>'}: {message}")
        self.path = path


def _canonical_solver_type(value: str) -> str:
    return SOLVER_ALIASES.get(str(value).lower(), value)


def _canonical_precond_type(value: str) -> str:
    return PRECONDITIONER_ALIASES.get(str(value).lower(), value)


def validate(config: dict, path: str = "") -> None:
    """Validate a solver configuration dictionary.

    Raises:
        ConfigError: On any unknown type, unknown parameter, or parameter
            of the wrong kind, with the path to the offending entry.
    """
    if not isinstance(config, dict):
        raise ConfigError(path, f"expected a dict, got {type(config).__name__}")
    if "type" not in config:
        raise ConfigError(path, "missing required key 'type'")
    solver_type = _canonical_solver_type(config["type"])
    if solver_type not in SOLVER_REGISTRY:
        raise ConfigError(
            f"{path}.type" if path else "type",
            f"unknown solver type {config['type']!r}; "
            f"available: {sorted(SOLVER_REGISTRY)}",
        )
    _, solver_params = SOLVER_REGISTRY[solver_type]
    allowed = set(COMMON_SOLVER_KEYS) | set(solver_params)
    for key in config:
        if key not in allowed:
            raise ConfigError(
                f"{path}.{key}" if path else key,
                f"unknown parameter for {solver_type}; "
                f"accepted: {sorted(allowed)}",
            )
    if "value_type" in config and config["value_type"] not in VALUE_TYPES:
        raise ConfigError(
            f"{path}.value_type" if path else "value_type",
            f"unknown value type {config['value_type']!r}; "
            f"available: {VALUE_TYPES}",
        )
    if "preconditioner" in config and config["preconditioner"] is not None:
        _validate_preconditioner(
            config["preconditioner"],
            f"{path}.preconditioner" if path else "preconditioner",
        )
    if "criteria" in config and config["criteria"] is not None:
        _validate_criteria(
            config["criteria"], f"{path}.criteria" if path else "criteria"
        )


def _validate_preconditioner(config, path: str) -> None:
    if not isinstance(config, dict):
        raise ConfigError(path, f"expected a dict, got {type(config).__name__}")
    if "type" not in config:
        raise ConfigError(path, "missing required key 'type'")
    ptype = _canonical_precond_type(config["type"])
    if ptype not in PRECONDITIONER_REGISTRY:
        raise ConfigError(
            f"{path}.type",
            f"unknown preconditioner type {config['type']!r}; "
            f"available: {sorted(PRECONDITIONER_REGISTRY)}",
        )
    _, params = PRECONDITIONER_REGISTRY[ptype]
    allowed = {"type"} | set(params)
    for key in config:
        if key not in allowed:
            raise ConfigError(
                f"{path}.{key}",
                f"unknown parameter for {ptype}; accepted: {sorted(allowed)}",
            )
    storage = config.get("storage_precision")
    allowed_storage = VALUE_TYPES + (
        ("adaptive",) if ptype == "preconditioner::Jacobi" else ()
    )
    if storage is not None and storage not in allowed_storage:
        raise ConfigError(
            f"{path}.storage_precision",
            f"unknown value type {storage!r}; available: {allowed_storage}",
        )


def _validate_criteria(config, path: str) -> None:
    if isinstance(config, dict):
        config = [config]
    if not isinstance(config, (list, tuple)):
        raise ConfigError(
            path, f"expected a list of criteria, got {type(config).__name__}"
        )
    if not config:
        raise ConfigError(path, "criteria list must not be empty")
    for index, item in enumerate(config):
        item_path = f"{path}[{index}]"
        if not isinstance(item, dict):
            raise ConfigError(
                item_path, f"expected a dict, got {type(item).__name__}"
            )
        if "type" not in item:
            raise ConfigError(item_path, "missing required key 'type'")
        if item["type"] not in STOP_REGISTRY:
            raise ConfigError(
                f"{item_path}.type",
                f"unknown criterion type {item['type']!r}; "
                f"available: {sorted(STOP_REGISTRY)}",
            )
        _, params = STOP_REGISTRY[item["type"]]
        allowed = {"type"} | set(params)
        for key in item:
            if key not in allowed:
                raise ConfigError(
                    f"{item_path}.{key}",
                    f"unknown parameter for {item['type']}; "
                    f"accepted: {sorted(allowed)}",
                )
