"""The ``gko::dim<2>`` equivalent: a validated (rows, cols) pair."""

from __future__ import annotations

from repro.ginkgo.exceptions import BadDimension


class Dim:
    """Two-dimensional size of a linear operator.

    Behaves like a tuple ``(rows, cols)`` and supports the operations
    Ginkgo's ``dim<2>`` supports: equality, transposition, multiplication
    (operator composition), and truthiness (a dim is falsy when empty).
    """

    __slots__ = ("rows", "cols")

    def __init__(self, rows: int, cols: int | None = None) -> None:
        if cols is None:
            cols = rows
        if rows < 0 or cols < 0:
            raise BadDimension(f"dimensions must be non-negative: ({rows}, {cols})")
        self.rows = int(rows)
        self.cols = int(cols)

    def __getitem__(self, index: int) -> int:
        if index == 0:
            return self.rows
        if index == 1:
            return self.cols
        raise IndexError(f"Dim index out of range: {index}")

    def __len__(self) -> int:
        return 2

    def __iter__(self):
        yield self.rows
        yield self.cols

    def __eq__(self, other) -> bool:
        if isinstance(other, Dim):
            return self.rows == other.rows and self.cols == other.cols
        if isinstance(other, (tuple, list)) and len(other) == 2:
            return self.rows == other[0] and self.cols == other[1]
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.rows, self.cols))

    def __bool__(self) -> bool:
        return self.rows > 0 and self.cols > 0

    def __mul__(self, other: "Dim") -> "Dim":
        """Size of the composition ``self @ other``."""
        other = Dim.of(other)
        if self.cols != other.rows:
            raise BadDimension(
                f"cannot compose dims {self} and {other}: inner sizes differ"
            )
        return Dim(self.rows, other.cols)

    @property
    def transposed(self) -> "Dim":
        return Dim(self.cols, self.rows)

    @property
    def is_square(self) -> bool:
        return self.rows == self.cols

    @property
    def num_elements(self) -> int:
        return self.rows * self.cols

    @classmethod
    def of(cls, value) -> "Dim":
        """Coerce a ``Dim``, tuple, list, or int into a :class:`Dim`."""
        if isinstance(value, Dim):
            return value
        if isinstance(value, int):
            return cls(value, value)
        if isinstance(value, (tuple, list)) and len(value) == 2:
            return cls(int(value[0]), int(value[1]))
        raise BadDimension(f"cannot interpret {value!r} as a 2-D dimension")

    def __repr__(self) -> str:
        return f"Dim({self.rows}, {self.cols})"
