"""Simulated distributed-memory subsystem (``gko::experimental::distributed``).

Row-partitions a global operator over ``K`` simulated ranks that share
one address space: numerics stay real (rank-local SpMV and fused vector
updates run thread-parallel on ``OmpExecutor``), while every collective
and halo exchange is charged on the simulated clock through a
:class:`Communicator` using the alpha-beta network model in
:mod:`repro.perfmodel.comm`.

Reductions are evaluated in global element order, which makes distributed
residual histories bitwise identical to the equivalent single-rank solve
— see DESIGN.md for the argument and ``tests/ginkgo/test_distributed.py``
for the enforcement.
"""

from repro.ginkgo.distributed.comm import Communicator, InflightExchange
from repro.ginkgo.distributed.matrix import Matrix, RowGatherer
from repro.ginkgo.distributed.partition import Partition
from repro.ginkgo.distributed.solver import (
    DistributedCg,
    DistributedCgSolver,
    DistributedGmres,
    DistributedGmresSolver,
    DistributedIterativeSolver,
    DistributedPipelinedCg,
    DistributedPipelinedCgSolver,
    DistributedSStepGmres,
    DistributedSStepGmresSolver,
)
from repro.ginkgo.distributed.vector import (
    Vector,
    run_rankwise,
    sequential_ranks,
)

__all__ = [
    "Communicator",
    "DistributedCg",
    "DistributedCgSolver",
    "DistributedGmres",
    "DistributedGmresSolver",
    "DistributedIterativeSolver",
    "DistributedPipelinedCg",
    "DistributedPipelinedCgSolver",
    "DistributedSStepGmres",
    "DistributedSStepGmresSolver",
    "InflightExchange",
    "Matrix",
    "Partition",
    "RowGatherer",
    "Vector",
    "run_rankwise",
    "sequential_ranks",
]
