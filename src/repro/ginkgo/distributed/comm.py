"""Simulated communicator charging exchanges on the executor clock.

Plays the role MPI plays under ``gko::experimental::distributed``: every
collective or halo exchange the distributed objects perform goes through
a :class:`Communicator`, which

* advances the executor's simulated clock by the modeled network time
  (:mod:`repro.perfmodel.comm`) under the ``comm`` trace category,
* wraps each exchange in a profiler span so ``pg.profile()`` attributes
  communication separately from kernels, and
* counts exchanges and bytes for tests and benchmark reports.

Numerics never flow through here — the simulated ranks share one address
space, so reductions are evaluated once in global element order (which is
what pins distributed residual histories bit-identical to single-rank
solves; see DESIGN.md) and only the *cost* of the exchange is charged.
With a single rank every operation is free: no communication happens.

The communicator is also the distributed fault boundary.  When the
executor is a :class:`~repro.ginkgo.fault.FaultyExecutor`, every
collective consults its injector at the ``rank``, ``allreduce`` and
``halo`` sites (see :mod:`repro.ginkgo.fault`): rank failures raise
:class:`RankFailure`, dropped halos raise :class:`CommunicationError`,
corruption poisons the reduced payload in place, and stragglers / late
messages charge extra simulated time under the ``fault`` trace category.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.exceptions import (
    CommunicationError,
    GinkgoError,
    RankFailure,
)
from repro.ginkgo.fault import injector_of
from repro.perfmodel.comm import (
    DEFAULT_NETWORK,
    NetworkSpec,
    allreduce_time,
    halo_exchange_time,
)


class Communicator:
    """Charges simulated communication for ``num_ranks`` ranks.

    Args:
        exec_: Executor whose clock receives the comm charges.
        num_ranks: Number of simulated ranks.
        network: Interconnect model (defaults to the intra-node fabric).
    """

    def __init__(
        self, exec_, num_ranks: int, network: NetworkSpec = DEFAULT_NETWORK
    ) -> None:
        if num_ranks < 1:
            raise GinkgoError(f"num_ranks must be >= 1, got {num_ranks}")
        self._exec = exec_
        self.num_ranks = int(num_ranks)
        self.network = network
        #: Number of all_reduce collectives charged.
        self.num_all_reduces = 0
        #: Payload bytes moved by all_reduce collectives.
        self.bytes_all_reduced = 0
        #: Number of halo exchanges charged.
        self.num_halo_exchanges = 0
        #: Payload bytes moved by halo exchanges.
        self.bytes_halo_exchanged = 0
        #: Number of ranks dropped by :meth:`shrink` since construction.
        self.num_shrinks = 0

    @property
    def executor(self):
        return self._exec

    # ------------------------------------------------------------------
    # fault boundary
    # ------------------------------------------------------------------
    def _announce(self, fault, **extra) -> None:
        self._exec._log(
            "fault_injected",
            site=fault.site,
            kind=fault.kind,
            index=fault.index,
            call=fault.call,
            detail=fault.detail,
            **extra,
        )

    def _check_rank_failure(self, label: str) -> None:
        """Consult the ``rank`` fault site; raise RankFailure on a hit.

        Models ULFM semantics: a dead rank is *detected* at the next
        collective, which raises for every survivor.
        """
        injector = injector_of(self._exec)
        if injector is None:
            return
        fault = injector.decide("rank", detail=label)
        if fault is not None:
            victim = injector.choose(self.num_ranks)
            self._announce(fault, rank=victim)
            raise RankFailure(victim, op=label)

    def _extra_delay(self, seconds: float, label: str) -> None:
        """Charge injected extra time under the ``fault`` trace category."""
        self._exec.clock.advance(
            seconds, category="fault", label=label, ranks=self.num_ranks
        )

    def all_reduce(
        self, nbytes: int, label: str = "all_reduce", payload=None
    ) -> float:
        """Charge one all-reduce of an ``nbytes`` payload; returns its time.

        Free (and uncounted) with a single rank, like a real MPI
        all-reduce over a self-communicator.  When ``payload`` (the
        reduced ndarray) is passed and the executor injects faults, an
        ``allreduce`` corruption fault poisons it in place — exactly how
        a flipped bit on the wire lands in every rank's result.
        """
        if self.num_ranks == 1:
            return 0.0
        self._check_rank_failure(label)
        injector = injector_of(self._exec)
        fault = (
            injector.decide("allreduce", detail=label)
            if injector is not None
            else None
        )
        seconds = allreduce_time(nbytes, self.num_ranks, self.network)
        clock = self._exec.clock
        clock.push_span(label, "comm_op", ranks=self.num_ranks)
        try:
            clock.advance(
                seconds,
                category="comm",
                label=label,
                bytes=int(nbytes),
                ranks=self.num_ranks,
            )
        finally:
            clock.pop_span()
        self.num_all_reduces += 1
        self.bytes_all_reduced += int(nbytes)
        if fault is not None:
            if fault.kind == "straggler":
                self._announce(fault)
                self._extra_delay(injector.stall_seconds, "straggler_delay")
            else:  # corruption
                self._announce(fault)
                if payload is not None:
                    poisoned = injector.corrupt(np.asarray(payload))
                    self._exec._log(
                        "data_corrupted",
                        index=fault.index,
                        flat_index=poisoned,
                    )
        return seconds

    def halo_exchange(
        self,
        nbytes: int,
        num_messages: int,
        label: str = "halo_exchange",
    ) -> float:
        """Charge one halo exchange of ``num_messages`` messages.

        Free (and uncounted) with a single rank or no messages.  Under
        fault injection the ``halo`` site can drop the exchange (raises
        :class:`CommunicationError` — the replay recovery retransmits),
        duplicate it (the exchange is charged twice), or deliver it late
        (extra simulated delay under the ``fault`` category).
        """
        if self.num_ranks == 1 or num_messages == 0:
            return 0.0
        self._check_rank_failure(label)
        injector = injector_of(self._exec)
        fault = (
            injector.decide("halo", detail=label)
            if injector is not None
            else None
        )
        if fault is not None and fault.kind == "drop":
            self._announce(fault)
            raise CommunicationError(
                f"halo exchange {label!r} dropped "
                f"({num_messages} messages, {int(nbytes)} bytes)"
            )
        seconds = halo_exchange_time(nbytes, num_messages, self.network)
        clock = self._exec.clock
        clock.push_span(label, "comm_op", ranks=self.num_ranks)
        try:
            clock.advance(
                seconds,
                category="comm",
                label=label,
                bytes=int(nbytes),
                messages=int(num_messages),
                ranks=self.num_ranks,
            )
        finally:
            clock.pop_span()
        self.num_halo_exchanges += 1
        self.bytes_halo_exchanged += int(nbytes)
        if fault is not None:
            self._announce(fault)
            if fault.kind == "duplicate":
                # The retransmitted copy pays the full exchange again.
                self._extra_delay(seconds, "halo_duplicate")
                self.num_halo_exchanges += 1
                self.bytes_halo_exchanged += int(nbytes)
            else:  # late
                self._extra_delay(injector.stall_seconds, "halo_late")
        return seconds

    def shrink(self, failed_rank: int) -> int:
        """Drop one failed rank; returns the surviving rank count.

        Mirrors ULFM's ``MPIX_Comm_shrink``: collectives charged after
        this run over one fewer rank.  The caller is responsible for
        repartitioning the operands (see ``Partition.shrink``).
        """
        if not 0 <= failed_rank < self.num_ranks:
            raise GinkgoError(
                f"rank {failed_rank} out of range for {self.num_ranks} ranks"
            )
        if self.num_ranks == 1:
            raise GinkgoError("cannot shrink a single-rank communicator")
        self.num_ranks -= 1
        self.num_shrinks += 1
        return self.num_ranks

    def reset_counters(self) -> None:
        """Zero the exchange/byte counters (charged time is not undone)."""
        self.num_all_reduces = 0
        self.bytes_all_reduced = 0
        self.num_halo_exchanges = 0
        self.bytes_halo_exchanged = 0

    def __repr__(self) -> str:
        return (
            f"Communicator(ranks={self.num_ranks}, "
            f"network={self.network.name}, "
            f"all_reduces={self.num_all_reduces}, "
            f"halo_exchanges={self.num_halo_exchanges})"
        )
