"""Simulated communicator charging exchanges on the executor clock.

Plays the role MPI plays under ``gko::experimental::distributed``: every
collective or halo exchange the distributed objects perform goes through
a :class:`Communicator`, which

* advances the executor's simulated clock by the modeled network time
  (:mod:`repro.perfmodel.comm`) under the ``comm`` trace category,
* wraps each exchange in a profiler span so ``pg.profile()`` attributes
  communication separately from kernels, and
* counts exchanges and bytes for tests and benchmark reports.

Numerics never flow through here — the simulated ranks share one address
space, so reductions are evaluated once in global element order (which is
what pins distributed residual histories bit-identical to single-rank
solves; see DESIGN.md) and only the *cost* of the exchange is charged.
With a single rank every operation is free: no communication happens.
"""

from __future__ import annotations

from repro.ginkgo.exceptions import GinkgoError
from repro.perfmodel.comm import (
    DEFAULT_NETWORK,
    NetworkSpec,
    allreduce_time,
    halo_exchange_time,
)


class Communicator:
    """Charges simulated communication for ``num_ranks`` ranks.

    Args:
        exec_: Executor whose clock receives the comm charges.
        num_ranks: Number of simulated ranks.
        network: Interconnect model (defaults to the intra-node fabric).
    """

    def __init__(
        self, exec_, num_ranks: int, network: NetworkSpec = DEFAULT_NETWORK
    ) -> None:
        if num_ranks < 1:
            raise GinkgoError(f"num_ranks must be >= 1, got {num_ranks}")
        self._exec = exec_
        self.num_ranks = int(num_ranks)
        self.network = network
        #: Number of all_reduce collectives charged.
        self.num_all_reduces = 0
        #: Payload bytes moved by all_reduce collectives.
        self.bytes_all_reduced = 0
        #: Number of halo exchanges charged.
        self.num_halo_exchanges = 0
        #: Payload bytes moved by halo exchanges.
        self.bytes_halo_exchanged = 0

    @property
    def executor(self):
        return self._exec

    def all_reduce(self, nbytes: int, label: str = "all_reduce") -> float:
        """Charge one all-reduce of an ``nbytes`` payload; returns its time.

        Free (and uncounted) with a single rank, like a real MPI
        all-reduce over a self-communicator.
        """
        if self.num_ranks == 1:
            return 0.0
        seconds = allreduce_time(nbytes, self.num_ranks, self.network)
        clock = self._exec.clock
        clock.push_span(label, "comm_op", ranks=self.num_ranks)
        try:
            clock.advance(
                seconds,
                category="comm",
                label=label,
                bytes=int(nbytes),
                ranks=self.num_ranks,
            )
        finally:
            clock.pop_span()
        self.num_all_reduces += 1
        self.bytes_all_reduced += int(nbytes)
        return seconds

    def halo_exchange(
        self,
        nbytes: int,
        num_messages: int,
        label: str = "halo_exchange",
    ) -> float:
        """Charge one halo exchange of ``num_messages`` messages.

        Free (and uncounted) with a single rank or no messages.
        """
        if self.num_ranks == 1 or num_messages == 0:
            return 0.0
        seconds = halo_exchange_time(nbytes, num_messages, self.network)
        clock = self._exec.clock
        clock.push_span(label, "comm_op", ranks=self.num_ranks)
        try:
            clock.advance(
                seconds,
                category="comm",
                label=label,
                bytes=int(nbytes),
                messages=int(num_messages),
                ranks=self.num_ranks,
            )
        finally:
            clock.pop_span()
        self.num_halo_exchanges += 1
        self.bytes_halo_exchanged += int(nbytes)
        return seconds

    def reset_counters(self) -> None:
        """Zero the exchange/byte counters (charged time is not undone)."""
        self.num_all_reduces = 0
        self.bytes_all_reduced = 0
        self.num_halo_exchanges = 0
        self.bytes_halo_exchanged = 0

    def __repr__(self) -> str:
        return (
            f"Communicator(ranks={self.num_ranks}, "
            f"network={self.network.name}, "
            f"all_reduces={self.num_all_reduces}, "
            f"halo_exchanges={self.num_halo_exchanges})"
        )
