"""Simulated communicator charging exchanges on the executor clock.

Plays the role MPI plays under ``gko::experimental::distributed``: every
collective or halo exchange the distributed objects perform goes through
a :class:`Communicator`, which

* advances the executor's simulated clock by the modeled network time
  (:mod:`repro.perfmodel.comm`) under the ``comm`` trace category,
* wraps each exchange in a profiler span so ``pg.profile()`` attributes
  communication separately from kernels, and
* counts exchanges and bytes for tests and benchmark reports.

Numerics never flow through here — the simulated ranks share one address
space, so reductions are evaluated once in global element order (which is
what pins distributed residual histories bit-identical to single-rank
solves; see DESIGN.md) and only the *cost* of the exchange is charged.
With a single rank every operation is free: no communication happens.

The communicator is also the distributed fault boundary.  When the
executor is a :class:`~repro.ginkgo.fault.FaultyExecutor`, every
collective consults its injector at the ``rank``, ``allreduce`` and
``halo`` sites (see :mod:`repro.ginkgo.fault`): rank failures raise
:class:`RankFailure`, dropped halos raise :class:`CommunicationError`,
corruption poisons the reduced payload in place, and stragglers / late
messages charge extra simulated time under the ``fault`` trace category.

Non-blocking exchanges (:meth:`Communicator.iallreduce`,
:meth:`Communicator.ihalo_exchange`) return :class:`InflightExchange`
handles wrapping a :class:`~repro.perfmodel.comm.CommRequest`: compute
recorded while the handle is outstanding hides the transfer, and
``wait()`` charges only the uncovered remainder.  Fault injection moves
to wait time — exactly where MPI surfaces errors on non-blocking
requests — so the same ``rank``/``allreduce``/``halo`` sites and kinds
apply unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.exceptions import (
    CommunicationError,
    GinkgoError,
    RankFailure,
)
from repro.ginkgo.fault import injector_of
from repro.perfmodel.comm import (
    DEFAULT_NETWORK,
    CommRequest,
    NetworkSpec,
    allreduce_time,
    halo_exchange_time,
)


class InflightExchange:
    """Handle of one posted non-blocking exchange (allreduce or halo).

    Thin fault-aware wrapper over :class:`CommRequest`: :meth:`wait`
    consults the injector (rank failures, corruption, stragglers, halo
    drop/duplicate/late) *at completion time*, charges the exposed
    remainder of the transfer under the ``comm`` category inside a
    ``comm_op`` span, and folds the hidden/exposed split into the
    communicator's accounting.  Trivial exchanges (single rank, no
    messages) are free, uncounted, and already complete.
    """

    def __init__(
        self,
        comm: "Communicator",
        kind: str,
        nbytes: int,
        label: str,
        seconds: float = 0.0,
        num_messages: int = 0,
        payload=None,
        trivial: bool = False,
    ) -> None:
        self._comm = comm
        self._kind = kind
        self._nbytes = int(nbytes)
        self._label = label
        self._messages = int(num_messages)
        self._payload = payload
        self._trivial = trivial
        self._done = trivial
        meta = {"bytes": int(nbytes), "ranks": comm.num_ranks}
        if kind == "halo":
            meta["messages"] = int(num_messages)
        self._request = CommRequest(
            comm.executor.clock, 0.0 if trivial else seconds, label, **meta
        )
        if not trivial:
            comm._inflight.append(self)

    @property
    def done(self) -> bool:
        """Whether the exchange has completed (waited on, or trivial)."""
        return self._done

    @property
    def seconds(self) -> float:
        """Modeled blocking duration of the exchange."""
        return self._request.seconds

    @property
    def hidden(self) -> float:
        """Transfer seconds covered by overlapped compute (post-wait)."""
        return self._request.hidden

    @property
    def exposed(self) -> float:
        """Transfer seconds charged to the timeline (post-wait)."""
        return self._request.exposed

    def progress(self) -> float:
        """Completed fraction of the transfer at the current clock time."""
        return self._request.progress()

    def wait(self) -> float:
        """Complete the exchange; returns the exposed (charged) seconds.

        Wait-time fault semantics mirror the blocking collectives: rank
        failures raise :class:`RankFailure`; a dropped halo raises
        :class:`CommunicationError` without completing (nothing charged —
        the replay retransmits); corruption poisons the payload after the
        charge; stragglers / late deliveries add ``fault``-category time.
        Idempotent once completed.
        """
        if self._done:
            return self._request.exposed
        self._done = True
        comm = self._comm
        if self in comm._inflight:
            comm._inflight.remove(self)
        comm._check_rank_failure(self._label)
        injector = injector_of(comm.executor)
        fault = (
            injector.decide(self._kind, detail=self._label)
            if injector is not None
            else None
        )
        if self._kind == "halo" and fault is not None and fault.kind == "drop":
            comm._announce(fault)
            raise CommunicationError(
                f"halo exchange {self._label!r} dropped "
                f"({self._messages} messages, {self._nbytes} bytes)"
            )
        clock = comm.executor.clock
        clock.push_span(self._label, "comm_op", ranks=comm.num_ranks)
        try:
            exposed = self._request.wait()
        finally:
            clock.pop_span()
        comm.comm_seconds += self._request.seconds
        comm.comm_hidden_seconds += self._request.hidden
        if self._kind == "allreduce":
            comm.num_all_reduces += 1
            comm.bytes_all_reduced += self._nbytes
        else:
            comm.num_halo_exchanges += 1
            comm.bytes_halo_exchanged += self._nbytes
        if fault is not None:
            comm._announce(fault)
            if fault.kind == "straggler":
                comm._extra_delay(injector.stall_seconds, "straggler_delay")
            elif fault.kind == "corruption":
                if self._payload is not None:
                    poisoned = injector.corrupt(np.asarray(self._payload))
                    comm.executor._log(
                        "data_corrupted",
                        index=fault.index,
                        flat_index=poisoned,
                    )
            elif fault.kind == "duplicate":
                # The retransmitted copy pays the full exchange again.
                comm._extra_delay(self._request.seconds, "halo_duplicate")
                comm.num_halo_exchanges += 1
                comm.bytes_halo_exchanged += self._nbytes
            else:  # late
                comm._extra_delay(injector.stall_seconds, "halo_late")
        return exposed

    def __repr__(self) -> str:
        state = "done" if self._done else f"{self.progress():.0%} in flight"
        return (
            f"InflightExchange({self._kind}, {self._label!r}, "
            f"bytes={self._nbytes}, {state})"
        )


class Communicator:
    """Charges simulated communication for ``num_ranks`` ranks.

    Args:
        exec_: Executor whose clock receives the comm charges.
        num_ranks: Number of simulated ranks.
        network: Interconnect model (defaults to the intra-node fabric).
    """

    def __init__(
        self, exec_, num_ranks: int, network: NetworkSpec = DEFAULT_NETWORK
    ) -> None:
        if num_ranks < 1:
            raise GinkgoError(f"num_ranks must be >= 1, got {num_ranks}")
        self._exec = exec_
        self.num_ranks = int(num_ranks)
        self.network = network
        #: Number of all_reduce collectives charged.
        self.num_all_reduces = 0
        #: Payload bytes moved by all_reduce collectives.
        self.bytes_all_reduced = 0
        #: Number of halo exchanges charged.
        self.num_halo_exchanges = 0
        #: Payload bytes moved by halo exchanges.
        self.bytes_halo_exchanged = 0
        #: Number of ranks dropped by :meth:`shrink` since construction.
        self.num_shrinks = 0
        #: Total modeled communication seconds (hidden + exposed).
        self.comm_seconds = 0.0
        #: Communication seconds covered by overlapped compute.
        self.comm_hidden_seconds = 0.0
        #: Non-blocking exchanges posted (counted at post time).
        self.num_posted = 0
        #: Posted-but-unwaited exchange handles, in post order.
        self._inflight: list = []

    @property
    def executor(self):
        return self._exec

    # ------------------------------------------------------------------
    # fault boundary
    # ------------------------------------------------------------------
    def _announce(self, fault, **extra) -> None:
        self._exec._log(
            "fault_injected",
            site=fault.site,
            kind=fault.kind,
            index=fault.index,
            call=fault.call,
            detail=fault.detail,
            **extra,
        )

    def _check_rank_failure(self, label: str) -> None:
        """Consult the ``rank`` fault site; raise RankFailure on a hit.

        Models ULFM semantics: a dead rank is *detected* at the next
        collective, which raises for every survivor.
        """
        injector = injector_of(self._exec)
        if injector is None:
            return
        fault = injector.decide("rank", detail=label)
        if fault is not None:
            victim = injector.choose(self.num_ranks)
            self._announce(fault, rank=victim)
            raise RankFailure(victim, op=label)

    def _extra_delay(self, seconds: float, label: str) -> None:
        """Charge injected extra time under the ``fault`` trace category."""
        self._exec.clock.advance(
            seconds, category="fault", label=label, ranks=self.num_ranks
        )

    def all_reduce(
        self, nbytes: int, label: str = "all_reduce", payload=None
    ) -> float:
        """Charge one all-reduce of an ``nbytes`` payload; returns its time.

        Free (and uncounted) with a single rank, like a real MPI
        all-reduce over a self-communicator.  When ``payload`` (the
        reduced ndarray) is passed and the executor injects faults, an
        ``allreduce`` corruption fault poisons it in place — exactly how
        a flipped bit on the wire lands in every rank's result.
        """
        if self.num_ranks == 1:
            return 0.0
        self._check_rank_failure(label)
        injector = injector_of(self._exec)
        fault = (
            injector.decide("allreduce", detail=label)
            if injector is not None
            else None
        )
        seconds = allreduce_time(nbytes, self.num_ranks, self.network)
        clock = self._exec.clock
        clock.push_span(label, "comm_op", ranks=self.num_ranks)
        try:
            clock.advance(
                seconds,
                category="comm",
                label=label,
                bytes=int(nbytes),
                ranks=self.num_ranks,
            )
        finally:
            clock.pop_span()
        self.num_all_reduces += 1
        self.bytes_all_reduced += int(nbytes)
        self.comm_seconds += seconds
        if fault is not None:
            if fault.kind == "straggler":
                self._announce(fault)
                self._extra_delay(injector.stall_seconds, "straggler_delay")
            else:  # corruption
                self._announce(fault)
                if payload is not None:
                    poisoned = injector.corrupt(np.asarray(payload))
                    self._exec._log(
                        "data_corrupted",
                        index=fault.index,
                        flat_index=poisoned,
                    )
        return seconds

    def halo_exchange(
        self,
        nbytes: int,
        num_messages: int,
        label: str = "halo_exchange",
    ) -> float:
        """Charge one halo exchange of ``num_messages`` messages.

        Free (and uncounted) with a single rank or no messages.  Under
        fault injection the ``halo`` site can drop the exchange (raises
        :class:`CommunicationError` — the replay recovery retransmits),
        duplicate it (the exchange is charged twice), or deliver it late
        (extra simulated delay under the ``fault`` category).
        """
        if self.num_ranks == 1 or num_messages == 0:
            return 0.0
        self._check_rank_failure(label)
        injector = injector_of(self._exec)
        fault = (
            injector.decide("halo", detail=label)
            if injector is not None
            else None
        )
        if fault is not None and fault.kind == "drop":
            self._announce(fault)
            raise CommunicationError(
                f"halo exchange {label!r} dropped "
                f"({num_messages} messages, {int(nbytes)} bytes)"
            )
        seconds = halo_exchange_time(nbytes, num_messages, self.network)
        clock = self._exec.clock
        clock.push_span(label, "comm_op", ranks=self.num_ranks)
        try:
            clock.advance(
                seconds,
                category="comm",
                label=label,
                bytes=int(nbytes),
                messages=int(num_messages),
                ranks=self.num_ranks,
            )
        finally:
            clock.pop_span()
        self.num_halo_exchanges += 1
        self.bytes_halo_exchanged += int(nbytes)
        self.comm_seconds += seconds
        if fault is not None:
            self._announce(fault)
            if fault.kind == "duplicate":
                # The retransmitted copy pays the full exchange again.
                self._extra_delay(seconds, "halo_duplicate")
                self.num_halo_exchanges += 1
                self.bytes_halo_exchanged += int(nbytes)
            else:  # late
                self._extra_delay(injector.stall_seconds, "halo_late")
        return seconds

    # ------------------------------------------------------------------
    # non-blocking exchanges
    # ------------------------------------------------------------------
    @property
    def num_inflight(self) -> int:
        """Posted exchanges not yet waited on."""
        return len(self._inflight)

    def iallreduce(
        self, nbytes: int, label: str = "iallreduce", payload=None
    ) -> InflightExchange:
        """Post a non-blocking all-reduce; returns its wait handle.

        Nothing is charged at post time: compute recorded before
        ``wait()`` hides the transfer, and the wait charges only the
        uncovered remainder (see :class:`InflightExchange`).  Free,
        uncounted, and immediately complete with a single rank.
        """
        if nbytes < 0:
            raise GinkgoError(
                f"payload size must be non-negative, got {nbytes}"
            )
        if self.num_ranks == 1:
            return InflightExchange(
                self, "allreduce", nbytes, label, trivial=True
            )
        self.num_posted += 1
        return InflightExchange(
            self,
            "allreduce",
            nbytes,
            label,
            seconds=allreduce_time(nbytes, self.num_ranks, self.network),
            payload=payload,
        )

    def ihalo_exchange(
        self,
        nbytes: int,
        num_messages: int,
        label: str = "ihalo_exchange",
    ) -> InflightExchange:
        """Post a non-blocking halo exchange; returns its wait handle.

        Free, uncounted, and immediately complete with a single rank or
        zero messages, like the blocking variant.
        """
        if nbytes < 0:
            raise GinkgoError(
                f"payload size must be non-negative, got {nbytes}"
            )
        if self.num_ranks == 1 or num_messages == 0:
            return InflightExchange(
                self, "halo", nbytes, label, trivial=True
            )
        self.num_posted += 1
        return InflightExchange(
            self,
            "halo",
            nbytes,
            label,
            seconds=halo_exchange_time(nbytes, num_messages, self.network),
            num_messages=num_messages,
        )

    def shrink(self, failed_rank: int) -> int:
        """Drop one failed rank; returns the surviving rank count.

        Mirrors ULFM's ``MPIX_Comm_shrink``: collectives charged after
        this run over one fewer rank.  The caller is responsible for
        repartitioning the operands (see ``Partition.shrink``).
        """
        if not 0 <= failed_rank < self.num_ranks:
            raise GinkgoError(
                f"rank {failed_rank} out of range for {self.num_ranks} ranks"
            )
        if self.num_ranks == 1:
            raise GinkgoError("cannot shrink a single-rank communicator")
        self.num_ranks -= 1
        self.num_shrinks += 1
        return self.num_ranks

    def reset_counters(self) -> None:
        """Zero the exchange/byte counters (charged time is not undone).

        Also resets the non-blocking accounting — hidden/total comm
        seconds, the posted count, and any stale in-flight handles — so
        baseline comparisons (e.g. against ``sequential_ranks()``) start
        from a clean slate.
        """
        self.num_all_reduces = 0
        self.bytes_all_reduced = 0
        self.num_halo_exchanges = 0
        self.bytes_halo_exchanged = 0
        self.comm_seconds = 0.0
        self.comm_hidden_seconds = 0.0
        self.num_posted = 0
        self._inflight.clear()

    def __repr__(self) -> str:
        return (
            f"Communicator(ranks={self.num_ranks}, "
            f"network={self.network.name}, "
            f"all_reduces={self.num_all_reduces}, "
            f"halo_exchanges={self.num_halo_exchanges})"
        )
