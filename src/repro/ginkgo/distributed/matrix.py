"""Row-distributed sparse matrices (``gko::experimental::distributed::Matrix``).

A :class:`Matrix` splits a global CSR operator over the ranks of a
:class:`~repro.ginkgo.distributed.partition.Partition`.  Following
Ginkgo's storage scheme, every rank ``k`` owning rows ``[lo, hi)`` keeps

* a **local block** — the columns inside ``[lo, hi)``, shifted to local
  indices (the part of the SpMV fed by the rank's own vector entries),
* a **non-local block** — the remaining columns compressed to a dense
  ghost numbering, fed by halo values gathered from the owning ranks by
  a :class:`RowGatherer` before each apply.

The *numerical* SpMV does not sum the two blocks separately: it applies
the rank's full-width CSR row slice against the global source arena.
SciPy row slicing preserves each row's entries in storage order and CSR
matvec reduces each row independently, so the per-rank results are
bitwise identical to the single-rank (or scalar ``Csr``) SpMV built from
the same matrix — the foundation of the distributed solvers' bit-exact
residual histories.  The structural blocks still drive what the real
implementation would pay: the halo gather is actually performed
(thread-parallel, into pooled buffers) and the communicator charges the
message costs derived from the non-local sparsity pattern.

Overlap mode (``overlap=True``) instead executes Ginkgo's two-phase
distributed SpMV for real: the halo exchange is *posted* non-blocking,
the rank-local diagonal block multiplies while the exchange is in
flight (hiding up to the whole transfer — the covered share lands in the
``comm_hidden`` trace annotation), and the non-local block is applied to
the gathered ghost values only after the wait.  Summing the two block
products relaxes the bitwise contract to a rounding-level tolerance
(local + non-local partial sums associate differently than one
full-width row reduction); the blocking default keeps byte identity.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.dim import Dim
from repro.ginkgo.distributed.comm import Communicator
from repro.ginkgo.distributed.partition import Partition
from repro.ginkgo.distributed.vector import Vector, run_rankwise
from repro.ginkgo.exceptions import BadDimension, GinkgoError
from repro.ginkgo.lin_op import LinOp
from repro.ginkgo.matrix.base import (
    check_index_dtype,
    check_value_dtype,
    scipy_safe,
)
from repro.perfmodel import KernelCost, spmv_cost
from repro.perfmodel.comm import DEFAULT_NETWORK, halo_exchange_time


class RowGatherer:
    """Gathers each rank's ghost (non-owned) vector entries into buffers.

    The simulated counterpart of Ginkgo's sparse communicator: before an
    SpMV, every rank needs the source-vector entries behind its non-local
    columns.  ``recv_indices(k)`` lists rank ``k``'s required global rows
    (sorted); the gather copies them out of the source arena into pooled
    per-rank halo buffers, thread-parallel on ``OmpExecutor``, and the
    message count per rank is the number of distinct owning ranks.
    """

    def __init__(self, exec_, partition: Partition, ghost_cols) -> None:
        self._exec = exec_
        self._partition = partition
        self._recv = [
            np.asarray(cols, dtype=np.int64) for cols in ghost_cols
        ]
        if len(self._recv) != partition.num_ranks:
            raise GinkgoError(
                f"expected {partition.num_ranks} ghost column lists, got "
                f"{len(self._recv)}"
            )
        self._messages = []
        for rank, cols in enumerate(self._recv):
            if cols.size == 0:
                self._messages.append(0)
                continue
            owners = partition.owner_of(cols)
            if np.any(owners == rank):
                raise GinkgoError(
                    f"rank {rank} lists its own rows as ghosts"
                )
            self._messages.append(int(np.unique(owners).size))
        self._buffers: list[np.ndarray | None] = [None] * len(self._recv)

    @property
    def total_recv_size(self) -> int:
        """Total ghost entries gathered per apply, summed over ranks."""
        return int(sum(cols.size for cols in self._recv))

    @property
    def num_messages(self) -> int:
        """Point-to-point messages per exchange, summed over ranks."""
        return int(sum(self._messages))

    def recv_indices(self, rank: int) -> np.ndarray:
        """Sorted global row indices rank ``rank`` receives."""
        return self._recv[rank]

    def gather(self, source: Vector) -> list:
        """Fill the per-rank halo buffers from ``source``'s arena.

        Returns the buffer list (entry ``k`` is ``None`` when rank ``k``
        has no ghosts).  Buffers are pooled across applies.
        """
        if self.total_recv_size == 0:
            return self._buffers
        arena = source._data
        cols = arena.shape[1]
        tasks = []
        parts = []
        for rank, recv in enumerate(self._recv):
            if recv.size == 0:
                continue
            buf = self._buffers[rank]
            if buf is None or buf.shape != (recv.size, cols) or (
                buf.dtype != arena.dtype
            ):
                buf = self._exec.alloc((recv.size, cols), arena.dtype)
                self._buffers[rank] = buf

            def task(recv=recv, buf=buf):
                np.take(arena, recv, axis=0, out=buf)

            tasks.append(task)
            parts.append({"weight": float(recv.size), "rank": rank})
        vb = arena.dtype.itemsize
        total = self.total_recv_size
        cost = KernelCost(
            "halo_gather",
            flops=0.0,
            bytes=float(total * (2 * vb * cols + 8)),
            launches=len(tasks),
            dtype_name=arena.dtype.name,
        )
        run_rankwise(self._exec, cost, tasks, parts)
        return self._buffers

    def __repr__(self) -> str:
        return (
            f"RowGatherer(ranks={self._partition.num_ranks}, "
            f"recv={self.total_recv_size}, messages={self.num_messages})"
        )


class Matrix(LinOp):
    """A square sparse operator row-distributed over simulated ranks.

    Args:
        exec_: Executor running the rank-local kernels.
        partition: Row :class:`Partition`; must cover the matrix size.
        data: Global operator — any SciPy sparse matrix or dense array.
        value_dtype: Value type (``float16``/``float32``/``float64``).
        index_dtype: Index type (``int32``/``int64``) used in cost
            modeling and the structural blocks.
        comm: Communicator charged for halo exchanges; shared with
            vectors built alongside this matrix by the factories.
        overlap: When True, ``apply`` posts the halo exchange
            non-blocking and runs the local-block SpMV while it is in
            flight (see the module docstring; relaxes bit identity).
        network: Interconnect model for the communicator created when
            ``comm`` is omitted (ignored when ``comm`` is passed).
    """

    _format_name = "distributed_csr"

    def __init__(
        self,
        exec_,
        partition: Partition,
        data,
        value_dtype=np.float64,
        index_dtype=np.int32,
        comm: Communicator | None = None,
        overlap: bool = False,
        network=None,
    ) -> None:
        if not isinstance(partition, Partition):
            raise GinkgoError(
                f"expected a Partition, got {type(partition).__name__}"
            )
        self._value_dtype = check_value_dtype(value_dtype)
        self._index_dtype = check_index_dtype(index_dtype)
        mat = sp.csr_matrix(data).astype(self._value_dtype)
        rows, cols = mat.shape
        if rows != cols:
            raise BadDimension(
                f"distributed matrices must be square, got {rows}x{cols}"
            )
        if partition.global_size != rows:
            raise BadDimension(
                f"partition covers {partition.global_size} rows but the "
                f"matrix has {rows}"
            )
        super().__init__(exec_, Dim(rows, cols))
        self._partition = partition
        if comm is None:
            comm = Communicator(
                exec_,
                partition.num_ranks,
                network=network or DEFAULT_NETWORK,
            )
        self._comm = comm
        self._overlap = bool(overlap)
        self._nnz = int(mat.nnz)

        # Full-width row slices: the bitwise-exact compute path.  SciPy
        # kernels reject float16, so halves compute in float32 and round
        # back, exactly like the scalar formats.
        compute = scipy_safe(np.zeros(0, dtype=self._value_dtype)).dtype
        self._row_blocks = []
        self._rank_nnz = []
        #: Per-rank structural blocks, built lazily on first access.
        self._local_blocks: list | None = None
        self._non_local_blocks: list | None = None
        self._local_nnz: list = []
        self._non_local_nnz: list = []
        self._ghost_cols: list = []
        for lo, hi in partition.ranges:
            block = mat[lo:hi, :].astype(compute)
            self._row_blocks.append(block)
            self._rank_nnz.append(int(block.nnz))
            coo = block.tocoo()
            outside = (coo.col < lo) | (coo.col >= hi)
            self._ghost_cols.append(
                np.unique(coo.col[outside]).astype(np.int64)
            )
        self._gatherer = RowGatherer(exec_, partition, self._ghost_cols)
        #: Row blocks re-stacked into one CSR, built lazily for the
        #: collapsed (single-worker) SpMV.  Row slicing keeps each row's
        #: entries in storage order, so this matvec is bitwise identical
        #: to the per-rank block matvecs.
        self._stacked: sp.csr_matrix | None = None
        #: Cached infinity norm (the operator is immutable).
        self._inf_norm: float | None = None

    def _stacked_matrix(self) -> sp.csr_matrix:
        if self._stacked is None:
            self._stacked = sp.vstack(self._row_blocks, format="csr")
        return self._stacked

    # ------------------------------------------------------------------
    # properties and structure
    # ------------------------------------------------------------------
    @property
    def partition(self) -> Partition:
        return self._partition

    @property
    def comm(self) -> Communicator:
        return self._comm

    @property
    def num_ranks(self) -> int:
        return self._partition.num_ranks

    @property
    def dtype(self) -> np.dtype:
        return self._value_dtype

    @property
    def index_dtype(self) -> np.dtype:
        return self._index_dtype

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def value_bytes(self) -> int:
        return np.dtype(self._value_dtype).itemsize

    @property
    def index_bytes(self) -> int:
        return np.dtype(self._index_dtype).itemsize

    @property
    def row_gatherer(self) -> RowGatherer:
        return self._gatherer

    @property
    def overlap(self) -> bool:
        """Whether ``apply`` overlaps the local SpMV with the halo."""
        return self._overlap

    @overlap.setter
    def overlap(self, enabled: bool) -> None:
        self._overlap = bool(enabled)

    def rank_nnz(self, rank: int) -> int:
        """Nonzeros stored by ``rank``."""
        return self._rank_nnz[rank]

    def _build_structural_blocks(self) -> None:
        locals_, non_locals = [], []
        for rank, (lo, hi) in enumerate(self._partition.ranges):
            block = self._row_blocks[rank].tocoo()
            ghosts = self._ghost_cols[rank]
            inside = (block.col >= lo) & (block.col < hi)
            local = sp.csr_matrix(
                (
                    block.data[inside],
                    (block.row[inside], block.col[inside] - lo),
                ),
                shape=(hi - lo, hi - lo),
            )
            outside = ~inside
            ghost_ids = np.searchsorted(ghosts, block.col[outside])
            non_local = sp.csr_matrix(
                (block.data[outside], (block.row[outside], ghost_ids)),
                shape=(hi - lo, ghosts.size),
            )
            locals_.append(local)
            non_locals.append(non_local)
        self._local_blocks = locals_
        self._non_local_blocks = non_locals
        self._local_nnz = [int(b.nnz) for b in locals_]
        self._non_local_nnz = [int(b.nnz) for b in non_locals]

    def local_block(self, rank: int) -> sp.csr_matrix:
        """Rank ``rank``'s diagonal block in local column indices."""
        if self._local_blocks is None:
            self._build_structural_blocks()
        return self._local_blocks[rank]

    def non_local_block(self, rank: int) -> sp.csr_matrix:
        """Rank ``rank``'s off-diagonal block in ghost column indices.

        Column ``j`` corresponds to global row
        ``ghost_columns(rank)[j]`` of the source vector.
        """
        if self._non_local_blocks is None:
            self._build_structural_blocks()
        return self._non_local_blocks[rank]

    def ghost_columns(self, rank: int) -> np.ndarray:
        """Sorted global column indices rank ``rank`` must receive."""
        return self._ghost_cols[rank]

    def infinity_norm(self) -> float:
        """Max absolute row sum — the Gershgorin bound on ``|lambda|``.

        The s-step solvers scale their Krylov basis by this bound to keep
        the monomial basis conditioned *without* per-vector norm
        reductions.  Each rank reduces its own rows (one streaming pass
        over the values) and a single scalar max-allreduce combines them;
        the operator is immutable, so the result is cached and later
        calls are free.
        """
        if self._inf_norm is None:
            best = 0.0
            for block in self._row_blocks:
                if block.nnz:
                    row_sums = np.abs(block).sum(axis=1)
                    best = max(best, float(row_sums.max()))
            self._exec.run(
                KernelCost(
                    "inf_norm",
                    flops=float(self._nnz),
                    bytes=float(self._nnz * self.value_bytes),
                    launches=1,
                )
            )
            self._comm.all_reduce(
                np.dtype(np.float64).itemsize, label="all_reduce_inf_norm"
            )
            self._inf_norm = best
        return self._inf_norm

    def to_scipy(self) -> sp.csr_matrix:
        """Reassemble the global operator (for tests and IO)."""
        return sp.vstack(self._row_blocks, format="csr").astype(
            self._value_dtype
        )

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def repartition(
        self, new_partition: Partition, lost_rows: tuple | None = None
    ) -> "Matrix":
        """Redistribute the operator rows under ``new_partition`` in place.

        The shrink-and-repartition step of rank-failure recovery: row
        blocks, ghost-column lists and the row gatherer are rebuilt for
        the survivors.  Matrix values never change (the operator is
        immutable), so the result stays bitwise identical to the
        original — only ownership and the communication structure move.

        Args:
            new_partition: Partition over the surviving ranks; must
                cover the same global size.
            lost_rows: Optional ``(lo, hi)`` row range that lived on the
                failed rank.  When given, the re-replication of those
                rows to their heir is charged as simulated time under
                the ``fault`` trace category.
        """
        if not isinstance(new_partition, Partition):
            raise GinkgoError(
                f"expected a Partition, got {type(new_partition).__name__}"
            )
        if new_partition.global_size != self._partition.global_size:
            raise BadDimension(
                f"new partition covers {new_partition.global_size} rows "
                f"but the matrix has {self._partition.global_size}"
            )
        # Row slicing preserves storage order, so re-stacking and
        # re-slicing keeps every row's entries bitwise intact.
        mat = sp.vstack(self._row_blocks, format="csr")
        self._partition = new_partition
        self._row_blocks = []
        self._rank_nnz = []
        self._ghost_cols = []
        self._local_blocks = None
        self._non_local_blocks = None
        self._local_nnz = []
        self._non_local_nnz = []
        self._stacked = None
        for lo, hi in new_partition.ranges:
            block = mat[lo:hi, :]
            self._row_blocks.append(block)
            self._rank_nnz.append(int(block.nnz))
            coo = block.tocoo()
            outside = (coo.col < lo) | (coo.col >= hi)
            self._ghost_cols.append(
                np.unique(coo.col[outside]).astype(np.int64)
            )
        self._gatherer = RowGatherer(
            self._exec, new_partition, self._ghost_cols
        )
        if lost_rows is not None:
            lo, hi = lost_rows
            nnz_lost = int(mat[lo:hi, :].nnz)
            nbytes = nnz_lost * (self.value_bytes + self.index_bytes) + (
                hi - lo
            ) * self.index_bytes
            seconds = halo_exchange_time(
                nbytes, max(1, new_partition.num_ranks), self._comm.network
            )
            self._exec.clock.advance(
                seconds,
                category="fault",
                label="repartition_regather",
                bytes=int(nbytes),
                ranks=new_partition.num_ranks,
            )
        return self

    # ------------------------------------------------------------------
    # SpMV
    # ------------------------------------------------------------------
    def _check_operands(self, b, x, op_name: str) -> None:
        for name, vec in (("b", b), ("x", x)):
            if not isinstance(vec, Vector):
                raise GinkgoError(
                    f"{op_name}: operand {name} must be a distributed "
                    f"Vector, got {type(vec).__name__}"
                )
            if vec.partition != self._partition:
                raise GinkgoError(
                    f"{op_name}: operand {name} uses a different "
                    f"partition than the matrix"
                )

    def _exchange_halo(self, b: Vector) -> None:
        """Gather ghost entries and charge the simulated exchange."""
        gatherer = self._gatherer
        if gatherer.total_recv_size == 0:
            return
        gatherer.gather(b)
        nbytes = (
            gatherer.total_recv_size * b.value_bytes * b.size.cols
        )
        self._comm.halo_exchange(nbytes, gatherer.num_messages)

    def _spmv_cost(self, num_rhs: int) -> KernelCost:
        cost = spmv_cost(
            "csr",
            self._size.rows,
            self._size.cols,
            self._nnz,
            self.value_bytes,
            self.index_bytes,
            num_rhs=num_rhs,
            strategy="load_balance",
        )
        return dataclasses.replace(cost, name="spmv_distributed_csr")

    def _rank_parts(self) -> list:
        return [
            {"weight": float(nnz) or 1.0, "rank": rank}
            for rank, nnz in enumerate(self._rank_nnz)
        ]

    def _overlap_cost(self, name: str, nnz: int, num_cols: int, num_rhs):
        cost = spmv_cost(
            "csr",
            self._size.rows,
            max(num_cols, 1),
            nnz,
            self.value_bytes,
            self.index_bytes,
            num_rhs=num_rhs,
            strategy="load_balance",
        )
        return dataclasses.replace(cost, name=name)

    def _overlap_parts(self, nnz_per_rank) -> list:
        return [
            {"weight": float(nnz) or 1.0, "rank": rank}
            for rank, nnz in enumerate(nnz_per_rank)
        ]

    def _apply_overlapped(self, b: Vector, x: Vector, alpha=None, beta=None):
        """Two-phase SpMV: local block under an in-flight halo exchange.

        Phase 1 packs the ghost values (the gather), posts the exchange,
        and multiplies each rank's diagonal block against its own slice
        of ``b`` — compute that hides the transfer.  Phase 2 waits (the
        uncovered remainder is charged; the covered share is annotated
        as ``comm_hidden``) and applies the non-local block to the
        gathered ghosts.  The two-block sum associates differently than
        the full-width row reduction, so this path trades bit identity
        for overlap — see DESIGN.md's relaxed-contract section.
        """
        if self._local_blocks is None:
            self._build_structural_blocks()
        gatherer = self._gatherer
        buffers = gatherer.gather(b)
        nbytes = gatherer.total_recv_size * b.value_bytes * b.size.cols
        request = self._comm.ihalo_exchange(nbytes, gatherer.num_messages)
        src, dst = b._data, x._data
        half = self._value_dtype == np.float16
        b_c = src.astype(np.float32) if half else src
        dtype = dst.dtype
        advanced = alpha is not None
        if advanced:
            a, bt = dtype.type(float(alpha)), dtype.type(float(beta))

        def make_local_task(rank):
            lo, hi = self._partition.range_of(rank)
            block = self._local_blocks[rank]

            def task():
                result = block @ b_c[lo:hi]
                if advanced:
                    dst[lo:hi] *= bt
                    dst[lo:hi] += a * result.astype(dtype, copy=False)
                else:
                    np.copyto(dst[lo:hi], result.astype(dtype, copy=False))

            return task

        num_rhs = b.size.cols
        run_rankwise(
            self._exec,
            self._overlap_cost(
                "spmv_distributed_local",
                sum(self._local_nnz),
                self._size.cols,
                num_rhs,
            ),
            [make_local_task(r) for r in range(self.num_ranks)],
            self._overlap_parts(self._local_nnz),
        )
        request.wait()

        def make_ghost_task(rank):
            lo, hi = self._partition.range_of(rank)
            block = self._non_local_blocks[rank]
            buf = buffers[rank]

            def task():
                if block.nnz == 0 or buf is None:
                    return
                ghosts = buf.astype(np.float32) if half else buf
                result = block @ ghosts
                if advanced:
                    dst[lo:hi] += a * result.astype(dtype, copy=False)
                else:
                    dst[lo:hi] += result.astype(dtype, copy=False)

            return task

        run_rankwise(
            self._exec,
            self._overlap_cost(
                "spmv_distributed_non_local",
                sum(self._non_local_nnz),
                gatherer.total_recv_size,
                num_rhs,
            ),
            [make_ghost_task(r) for r in range(self.num_ranks)],
            self._overlap_parts(self._non_local_nnz),
        )

    def _apply_impl(self, b: Vector, x: Vector) -> None:
        self._check_operands(b, x, "apply")
        if self._overlap and self._gatherer.total_recv_size > 0:
            self._apply_overlapped(b, x)
            return
        self._exchange_halo(b)
        src, dst = b._data, x._data
        half = self._value_dtype == np.float16
        b_c = src.astype(np.float32) if half else src

        def make_task(rank):
            lo, hi = self._partition.range_of(rank)
            block = self._row_blocks[rank]

            def task():
                result = block @ b_c
                if half:
                    result = result.astype(np.float16)
                np.copyto(dst[lo:hi], result)

            return task

        def fused():
            result = self._stacked_matrix() @ b_c
            if half:
                result = result.astype(np.float16)
            np.copyto(dst, result)

        tasks = [make_task(r) for r in range(self.num_ranks)]
        run_rankwise(
            self._exec,
            self._spmv_cost(b.size.cols),
            tasks,
            self._rank_parts(),
            fused=fused,
        )

    def _apply_advanced_impl(self, alpha, b: Vector, beta, x: Vector) -> None:
        self._check_operands(b, x, "apply_advanced")
        if self._overlap and self._gatherer.total_recv_size > 0:
            self._apply_overlapped(b, x, alpha=alpha, beta=beta)
            return
        self._exchange_halo(b)
        src, dst = b._data, x._data
        half = self._value_dtype == np.float16
        b_c = src.astype(np.float32) if half else src
        a = float(alpha)
        bt = float(beta)
        dtype = dst.dtype

        def make_task(rank):
            lo, hi = self._partition.range_of(rank)
            block = self._row_blocks[rank]

            def task():
                result = block @ b_c
                dst[lo:hi] *= dtype.type(bt)
                dst[lo:hi] += dtype.type(a) * result.astype(
                    dtype, copy=False
                )

            return task

        def fused():
            result = self._stacked_matrix() @ b_c
            dst[:] *= dtype.type(bt)
            dst[:] += dtype.type(a) * result.astype(dtype, copy=False)

        tasks = [make_task(r) for r in range(self.num_ranks)]
        run_rankwise(
            self._exec,
            self._spmv_cost(b.size.cols),
            tasks,
            self._rank_parts(),
            fused=fused,
        )

    def __repr__(self) -> str:
        return (
            f"Matrix({self._size.rows}x{self._size.cols}, "
            f"nnz={self._nnz}, ranks={self.num_ranks}, "
            f"dtype={np.dtype(self._value_dtype).name}, "
            f"executor={self._exec.name})"
        )
