"""Row partitions over simulated ranks (``gko::experimental::distributed::Partition``).

A :class:`Partition` assigns every global row index to exactly one of
``K`` simulated ranks as a contiguous ``[begin, end)`` range — the
row-block decomposition Ginkgo's distributed matrices use.  Partitions
are pure host-side structure: they carry no executor, no data, and no
simulated cost; distributed matrices and vectors are built *on* one.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.exceptions import BadDimension, GinkgoError


class Partition:
    """Contiguous row ranges over ``K`` simulated ranks.

    Construct with :meth:`build_uniform` (equal ranges),
    :meth:`build_from_weights` (load-balanced ranges), or directly from
    an explicit list of ``(begin, end)`` ranges covering
    ``[0, global_size)`` in order without gaps.
    """

    def __init__(self, global_size: int, ranges) -> None:
        global_size = int(global_size)
        if global_size < 0:
            raise BadDimension(
                f"partition global size must be >= 0, got {global_size}"
            )
        ranges = [(int(lo), int(hi)) for lo, hi in ranges]
        if not ranges:
            raise GinkgoError("a partition needs at least one rank")
        cursor = 0
        for rank, (lo, hi) in enumerate(ranges):
            if lo != cursor or hi < lo:
                raise GinkgoError(
                    f"rank {rank} range [{lo}, {hi}) does not tile "
                    f"[0, {global_size}) contiguously (expected begin "
                    f"{cursor})"
                )
            cursor = hi
        if cursor != global_size:
            raise GinkgoError(
                f"partition ranges cover [0, {cursor}) but global size "
                f"is {global_size}"
            )
        self._global_size = global_size
        self._ranges = tuple(ranges)
        #: Range begins plus the final end, for O(log K) row->rank lookup.
        self._offsets = np.array(
            [lo for lo, _ in ranges] + [global_size], dtype=np.int64
        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def build_uniform(cls, global_size: int, num_ranks: int) -> "Partition":
        """Split ``global_size`` rows into ``num_ranks`` near-equal ranges."""
        global_size = int(global_size)
        num_ranks = int(num_ranks)
        if num_ranks < 1:
            raise GinkgoError(f"num_ranks must be >= 1, got {num_ranks}")
        base, extra = divmod(global_size, num_ranks)
        ranges = []
        cursor = 0
        for rank in range(num_ranks):
            count = base + (1 if rank < extra else 0)
            ranges.append((cursor, cursor + count))
            cursor += count
        return cls(global_size, ranges)

    @classmethod
    def build_from_weights(cls, weights, num_ranks: int) -> "Partition":
        """Contiguous ranges balancing cumulative per-row ``weights``.

        Uses the same equal-cumulative-weight cut points the OmpExecutor
        uses for thread partitions (e.g. pass nonzeros per row so every
        rank owns a similar share of the SpMV work).
        """
        weights = np.asarray(weights, dtype=np.float64)
        num_ranks = int(num_ranks)
        if num_ranks < 1:
            raise GinkgoError(f"num_ranks must be >= 1, got {num_ranks}")
        count = len(weights)
        if num_ranks >= count or count == 0:
            return cls.build_uniform(count, num_ranks)
        cumulative = np.cumsum(weights)
        targets = cumulative[-1] * np.arange(1, num_ranks) / num_ranks
        cuts = np.searchsorted(cumulative, targets, side="left") + 1
        cuts = np.maximum(cuts, np.arange(1, num_ranks))
        cuts = np.minimum(cuts, count - num_ranks + np.arange(1, num_ranks))
        cuts = np.maximum.accumulate(cuts)
        bounds = [0, *cuts.tolist(), count]
        return cls(
            count, [(bounds[i], bounds[i + 1]) for i in range(num_ranks)]
        )

    # ------------------------------------------------------------------
    # properties and queries
    # ------------------------------------------------------------------
    @property
    def global_size(self) -> int:
        """Total number of partitioned rows."""
        return self._global_size

    @property
    def num_ranks(self) -> int:
        return len(self._ranges)

    @property
    def ranges(self) -> tuple:
        """All ``(begin, end)`` ranges, indexed by rank."""
        return self._ranges

    def range_of(self, rank: int) -> tuple:
        """The ``(begin, end)`` row range owned by ``rank``."""
        if not 0 <= rank < self.num_ranks:
            raise IndexError(
                f"rank {rank} out of range for {self.num_ranks} ranks"
            )
        return self._ranges[rank]

    def local_size(self, rank: int) -> int:
        """Number of rows owned by ``rank``."""
        lo, hi = self.range_of(rank)
        return hi - lo

    @property
    def sizes(self) -> tuple:
        """Rows per rank, indexed by rank."""
        return tuple(hi - lo for lo, hi in self._ranges)

    def owner_of(self, row) -> np.ndarray | int:
        """Rank(s) owning the given global row index (or index array)."""
        rows = np.asarray(row)
        if np.any(rows < 0) or np.any(rows >= self._global_size):
            raise IndexError(
                f"row index out of range [0, {self._global_size})"
            )
        # side="right" resolves ties at shared begin offsets (empty
        # ranks) to the last rank, whose range actually contains the row.
        owners = np.searchsorted(self._offsets, rows, side="right") - 1
        owners = np.minimum(owners, self.num_ranks - 1)
        if np.ndim(row) == 0:
            return int(owners)
        return owners.astype(np.int64)

    def shrink(self, failed_rank: int) -> "Partition":
        """The partition over the survivors of ``failed_rank``'s failure.

        The failed rank's rows are merged into its predecessor (or, for
        rank 0, its successor) so the result still tiles
        ``[0, global_size)`` contiguously with one fewer rank.  This is
        the shrink-and-repartition step of rank-failure recovery; the
        global size never changes, only ownership.
        """
        if not 0 <= failed_rank < self.num_ranks:
            raise IndexError(
                f"rank {failed_rank} out of range for {self.num_ranks} ranks"
            )
        if self.num_ranks == 1:
            raise GinkgoError("cannot shrink a single-rank partition")
        ranges = list(self._ranges)
        lo, hi = ranges.pop(failed_rank)
        heir = failed_rank - 1 if failed_rank > 0 else 0
        heir_lo, heir_hi = ranges[heir]
        ranges[heir] = (min(heir_lo, lo), max(heir_hi, hi))
        return Partition(self._global_size, ranges)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Partition)
            and self._global_size == other._global_size
            and self._ranges == other._ranges
        )

    def __hash__(self) -> int:
        return hash((self._global_size, self._ranges))

    def __len__(self) -> int:
        return self.num_ranks

    def __iter__(self):
        return iter(self._ranges)

    def __repr__(self) -> str:
        return (
            f"Partition(global_size={self._global_size}, "
            f"num_ranks={self.num_ranks}, sizes={list(self.sizes)})"
        )
