"""Distributed Krylov solvers (CG and GMRES) over simulated ranks.

Each solver mirrors its scalar counterpart *operation for operation*:

* rank-local work (SpMV, fused vector updates, copies) runs through the
  distributed :class:`~repro.ginkgo.distributed.matrix.Matrix` and
  rank-partitioned elementwise kernels — thread-parallel on
  ``OmpExecutor``, elementwise identical to the scalar kernels;
* every global reduction (dots, norms, the GMRES multi-dot) evaluates in
  global element order — the same einsum contraction the scalar path
  uses — while the communicator charges the all-reduce;
* the iteration *sequence* (order of applies, dots, fused steps, monitor
  checks) is copied from ``CgSolver._iterate`` and
  ``GmresSolver._solve_column`` line for line.

Consequence: a distributed solve produces a residual history bitwise
identical to the scalar solver on the undistributed system, for any rank
count — the property the distributed benchmark gates on.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.distributed.matrix import Matrix
from repro.ginkgo.distributed.vector import Vector
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.solver.base import IterativeSolver, SolverFactory
from repro.ginkgo.solver.cg import _safe_divide
from repro.ginkgo.solver.gmres import DEFAULT_KRYLOV_DIM
from repro.ginkgo.solver.kernels import (
    _bc,
    gmres_multidot,
    gmres_update,
    record_fused,
)
from repro.perfmodel import KernelCost

#: Payload bytes of one scalar reduction result (always float64).
_REDUCE_BYTES = np.dtype(np.float64).itemsize


def dist_cg_step_1(p: Vector, z: Vector, beta) -> None:
    """Fused ``p = z + beta * p``, rank-parallel; matches ``cg_step_1``."""
    b = _bc(beta, p.dtype)
    pd, zd = p._data, z._data

    def op(lo, hi):
        pd[lo:hi] *= b
        pd[lo:hi] += zd[lo:hi]

    p._rankwise_elementwise("cg_step_1", op, 3)


def dist_cg_step_2(x: Vector, r: Vector, p: Vector, q: Vector, alpha) -> None:
    """Fused ``x += alpha p ; r -= alpha q``; matches ``cg_step_2``."""
    a = _bc(alpha, x.dtype)
    xd, rd, pd, qd = x._data, r._data, p._data, q._data

    def op(lo, hi):
        xd[lo:hi] += a * pd[lo:hi]
        rd[lo:hi] -= a * qd[lo:hi]

    x._rankwise_elementwise("cg_step_2", op, 6)
    r.mark_modified()


class DistributedIterativeSolver(IterativeSolver):
    """Base of the distributed solvers: pooled Vectors, shared comm."""

    def __init__(self, factory: SolverFactory, matrix) -> None:
        if not isinstance(matrix, Matrix):
            raise GinkgoError(
                f"{type(self).__name__} requires a distributed Matrix, "
                f"got {type(matrix).__name__}"
            )
        if factory.preconditioner is not None:
            raise GinkgoError(
                "distributed solvers currently support only "
                "preconditioner=None (the implicit Identity); distributed "
                "preconditioners are not implemented"
            )
        super().__init__(factory, matrix)
        self._vpool: dict[str, Vector] = {}

    @property
    def partition(self):
        return self._matrix.partition

    @property
    def comm(self):
        return self._matrix.comm

    def _vector(self, name: str, like: Vector, copy: bool = False) -> Vector:
        """Pooled distributed Vector shaped like ``like``.

        All pooled vectors charge their reductions on the matrix's
        communicator so a solve's comm counters aggregate in one place.
        """
        vec = self._vpool.get(name)
        if (
            vec is None
            or vec.size != like.size
            or vec.dtype != like.dtype
            or vec.partition != like.partition
        ):
            vec = Vector.zeros(
                self._exec,
                like.partition,
                cols=like.size.cols,
                dtype=like.dtype,
                comm=self._matrix.comm,
            )
            self._vpool[name] = vec
        if copy:
            vec.copy_values_from(like)
        return vec

    def _check_distributed_operands(self, b, x) -> None:
        for name, vec in (("b", b), ("x", x)):
            if not isinstance(vec, Vector):
                raise GinkgoError(
                    f"{type(self).__name__} operates on distributed "
                    f"Vectors; operand {name} is {type(vec).__name__}"
                )
            if vec.partition != self._matrix.partition:
                raise GinkgoError(
                    f"operand {name} uses a different partition than the "
                    f"system matrix"
                )

    def _apply_impl(self, b: Vector, x: Vector) -> None:
        self._check_distributed_operands(b, x)
        super()._apply_impl(b, x)

    def _initial_residual_buffer(self, b: Vector) -> Vector:
        return self._vector("base.r0", b, copy=True)

    def _apply_advanced_impl(self, alpha, b, beta, x) -> None:
        tmp = self._vector("base.advanced_tmp", x, copy=True)
        self._apply_impl(b, tmp)
        x.scale(beta)
        x.add_scaled(alpha, tmp)


class DistributedCgSolver(DistributedIterativeSolver):
    """Distributed CG; iteration sequence copied from ``CgSolver``."""

    def _iterate(self, A, M, b, x, r, monitor) -> None:
        z = self._vector("cg.z", r)
        M.apply(r, z)
        p = self._vector("cg.p", z, copy=True)
        q = self._vector("cg.q", r)
        rz = r.compute_dot(z)

        iteration = 0
        while True:
            iteration += 1
            A.apply(p, q)
            pq = p.compute_dot(q)
            alpha = _safe_divide(rz, pq)
            dist_cg_step_2(x, r, p, q, alpha)
            res_norm = r.compute_norm2()
            if monitor(iteration, res_norm):
                return
            M.apply(r, z)
            rz_new = r.compute_dot(z)
            beta = _safe_divide(rz_new, rz)
            dist_cg_step_1(p, z, beta)
            rz = rz_new


class DistributedGmresSolver(DistributedIterativeSolver):
    """Distributed restarted GMRES (single right-hand side).

    The Krylov basis and Hessenberg matrix are replicated host-side (as
    in the scalar solver's workspace arrays); basis updates run through
    the same fused kernels, and the three per-iteration reductions (the
    restart norm, the multi-dot, and the candidate norm) each charge one
    all-reduce.
    """

    def _iterate(self, A, M, b, x, r0, monitor) -> None:
        krylov_dim = int(
            self._factory.params.get("krylov_dim", DEFAULT_KRYLOV_DIM)
        )
        if krylov_dim < 1:
            raise GinkgoError(f"krylov_dim must be >= 1, got {krylov_dim}")
        if b.size.cols != 1:
            raise GinkgoError(
                "distributed GMRES supports a single right-hand side, "
                f"got {b.size.cols} columns"
            )
        exec_ = self._exec
        comm = self._matrix.comm
        ws = self._workspace
        n = b.size.rows
        m = krylov_dim
        total_iteration = 0
        w = self._vector("gmres.w", b)
        r = self._vector("gmres.r", b)

        while True:
            # Preconditioned residual r = M^{-1}(b - A x).
            w.copy_values_from(b)
            A.apply_advanced(-1.0, x, 1.0, w)
            M.apply(w, r)
            beta = float(r.compute_norm2()[0])
            if beta == 0.0:
                monitor(total_iteration, 0.0)
                return
            basis = ws.array("gmres.basis", (n, m + 1))
            basis[:, 0] = r._data[:, 0] / beta
            record_fused(exec_, "gmres_init", n, b.value_bytes, 2)
            hessenberg = ws.array("gmres.hessenberg", (m + 1, m))
            givens_cos = ws.array("gmres.givens_cos", m)
            givens_sin = ws.array("gmres.givens_sin", m)
            g = ws.array("gmres.g", m + 1)
            g[0] = beta

            inner = 0
            stopped = False
            for j in range(m):
                # w = M^{-1} A v_j
                w._data[:, 0] = basis[:, j]
                A.apply(w, r)
                M.apply(r, w)
                # Fused multi-dot: locally a single einsum contraction in
                # global element order, globally one all-reduce of the
                # j+1 coefficients.
                coeffs = gmres_multidot(basis, w, j + 1)
                comm.all_reduce(
                    (j + 1) * _REDUCE_BYTES, label="all_reduce_multidot"
                )
                hessenberg[: j + 1, j] = coeffs
                gmres_update(basis, w, coeffs, j + 1)
                h_next = float(w.compute_norm2()[0])
                hessenberg[j + 1, j] = h_next
                if h_next != 0.0:
                    basis[:, j + 1] = w._data[:, 0] / h_next
                    record_fused(exec_, "gmres_scale", n, b.value_bytes, 2)
                for i in range(j):
                    hi, hi1 = hessenberg[i, j], hessenberg[i + 1, j]
                    hessenberg[i, j] = (
                        givens_cos[i] * hi + givens_sin[i] * hi1
                    )
                    hessenberg[i + 1, j] = (
                        -givens_sin[i] * hi + givens_cos[i] * hi1
                    )
                denom = np.hypot(hessenberg[j, j], hessenberg[j + 1, j])
                if denom == 0.0:
                    givens_cos[j], givens_sin[j] = 1.0, 0.0
                else:
                    givens_cos[j] = hessenberg[j, j] / denom
                    givens_sin[j] = hessenberg[j + 1, j] / denom
                hessenberg[j, j] = denom
                hessenberg[j + 1, j] = 0.0
                g[j + 1] = -givens_sin[j] * g[j]
                g[j] = givens_cos[j] * g[j]
                # The Givens updates run redundantly on every rank (they
                # are O(m) host work), so no communication is charged.
                exec_.run(
                    KernelCost(
                        "givens_update", 6.0 * m, 24.0 * m, launches=3
                    )
                )

                residual_norm = abs(g[j + 1])
                inner = j + 1
                total_iteration += 1
                exec_.run(
                    KernelCost("residual_check", 0.0, 64.0, launches=4)
                )
                stopped = monitor(total_iteration, residual_norm)
                if stopped or h_next == 0.0:
                    break

            y = ws.array("gmres.y", inner)
            for i in range(inner - 1, -1, -1):
                y[i] = (
                    g[i] - hessenberg[i, i + 1 : inner] @ y[i + 1 : inner]
                ) / hessenberg[i, i]
            exec_.run(
                KernelCost(
                    "hessenberg_trsv",
                    flops=float(inner * inner),
                    bytes=8.0 * inner * inner,
                    launches=max(inner, 1),
                )
            )
            x._data[:, 0] += basis[:, :inner] @ y
            x.mark_modified()
            record_fused(
                exec_, "gmres_x_update", n * inner, b.value_bytes, 2
            )
            if stopped:
                return
            # Otherwise: restart.


class DistributedCg(SolverFactory):
    """Distributed CG factory: ``DistributedCg(exec, criteria=...)``."""

    solver_class = DistributedCgSolver
    parameter_names = ()


class DistributedGmres(SolverFactory):
    """Distributed GMRES factory.

    Parameters:
        krylov_dim: Restart length (default 30, as in the scalar solver).
    """

    solver_class = DistributedGmresSolver
    parameter_names = ("krylov_dim",)
