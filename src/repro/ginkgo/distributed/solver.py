"""Distributed Krylov solvers (CG and GMRES) over simulated ranks.

Each blocking solver mirrors its scalar counterpart *operation for
operation*:

* rank-local work (SpMV, fused vector updates, copies) runs through the
  distributed :class:`~repro.ginkgo.distributed.matrix.Matrix` and
  rank-partitioned elementwise kernels — thread-parallel on
  ``OmpExecutor``, elementwise identical to the scalar kernels;
* every global reduction (dots, norms, the GMRES multi-dot) evaluates in
  global element order — the same einsum contraction the scalar path
  uses — while the communicator charges the all-reduce;
* the iteration *sequence* (order of applies, dots, fused steps, monitor
  checks) is copied from ``CgSolver._iterate`` and
  ``GmresSolver._solve_column`` line for line.

Consequence: a distributed solve produces a residual history bitwise
identical to the scalar solver on the undistributed system, for any rank
count — the property the distributed benchmark gates on.

Communication-hiding variants
-----------------------------
Two solvers restructure the Krylov recurrences to attack the global
reductions that dominate high-latency solves (ROADMAP item 4):

* :class:`DistributedPipelinedCgSolver` — Ghysels–Vanroose pipelined CG.
  The three reductions of a blocking CG iteration collapse into one
  fused all-reduce of ``(r,u)``, ``(w,u)`` and ``(r,r)``, posted
  *non-blocking* and overlapped with the next preconditioner apply and
  SpMV; the extra vector recurrences (``z, q, s, p``) keep the
  iteration mathematically equivalent to CG in exact arithmetic.
* :class:`DistributedSStepGmresSolver` — s-step (communication-avoiding)
  GMRES.  Each restart cycle builds ``s`` monomial Krylov basis vectors
  scaled by the matrix's Gershgorin bound (reduction-free), then a
  *single* Gram-matrix all-reduce of ``(s+1)^2`` doubles serves all
  ``s`` iterations: prefix solves of the normal equations yield the
  per-iteration residual estimates and the optimal update.

Both relax the bitwise contract: reassociating reductions changes
rounding, so their residual histories track the blocking reference only
to a pinned tolerance (see DESIGN.md).  The blocking solvers above are
untouched and keep byte identity.

Fault tolerance
---------------
When the executor injects faults (:class:`~repro.ginkgo.fault.FaultyExecutor`),
the solvers arm a checkpoint/replay recovery driver (:class:`_Recovery`):

* CG checkpoints ``(x, r, p, rz)`` every ``checkpoint_every`` iterations;
  GMRES checkpoints ``x`` at each restart-cycle start (the cycle replays
  deterministically from ``x``, so the cycle start *is* an exact
  checkpoint).  Pipelined CG checkpoints its full eight-vector
  recurrence state plus ``(prev_gamma, alpha)``; s-step GMRES, like
  GMRES, checkpoints ``x`` at cycle starts.  On the non-blocking path
  faults surface at ``wait()`` time, so a replay reposts and re-waits
  the exchange deterministically.
* A dropped halo / corrupted all-reduce restores the checkpoint and
  replays; a :class:`RankFailure` first shrinks the partition over the
  survivors (``Partition.shrink`` + ``Communicator.shrink`` +
  ``Matrix.repartition``), poisons the lost rows, restores them from the
  checkpoint, then replays.
* Replayed iterations reproduce the original arithmetic exactly, and a
  replay-aware monitor wrapper suppresses duplicate logging, so the
  residual history stays bit-identical to a fault-free run — even across
  a shrink, because fused-mode reductions evaluate in global element
  order regardless of the rank count.  Only the ``sequential_ranks``
  baseline (rank-order partial sums) relaxes reduction order after a
  repartition.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.distributed.matrix import Matrix
from repro.ginkgo.distributed.vector import Vector
from repro.ginkgo.exceptions import (
    CommunicationError,
    GinkgoError,
    RankFailure,
)
from repro.ginkgo.fault import injector_of
from repro.ginkgo.solver.base import IterativeSolver, SolverFactory
from repro.ginkgo.solver.cg import _safe_divide
from repro.ginkgo.solver.gmres import DEFAULT_KRYLOV_DIM
from repro.ginkgo.solver.kernels import (
    _bc,
    gmres_multidot,
    gmres_update,
    record_fused,
)
from repro.perfmodel import KernelCost

#: Payload bytes of one scalar reduction result (always float64).
_REDUCE_BYTES = np.dtype(np.float64).itemsize


class _StateCorrupted(GinkgoError):
    """Internal: a reduction result was poisoned by injected corruption."""


#: Failures the checkpoint/replay driver can absorb.  RankFailure is a
#: CommunicationError subclass; device-side CudaErrors are *not* here —
#: they stay the retry/fallback layer's job.
RECOVERABLE = (CommunicationError, _StateCorrupted)


class _Recovery:
    """Checkpoint/replay driver for one distributed solve.

    Armed only when the solver's executor carries a
    :class:`~repro.ginkgo.fault.FaultInjector` and ``checkpoint_every``
    is positive; fault-free solves pay nothing.  Checkpoints are host
    copies of the tracked arenas (the ranks share one address space, so
    one copy models every rank checkpointing its block); save/restore
    time is charged as streaming kernels with injection paused — the
    checkpoint path itself is assumed reliable.
    """

    @staticmethod
    def arm(solver: "DistributedIterativeSolver", b: Vector, x: Vector):
        injector = injector_of(solver._exec)
        if injector is None:
            return None
        every = int(solver._factory.params.get("checkpoint_every", 1) or 0)
        if every < 1:
            return None
        budget = int(solver._factory.params.get("max_recoveries", 8))
        return _Recovery(solver, injector, b, x, every, budget)

    def __init__(self, solver, injector, b, x, every, budget) -> None:
        self._solver = solver
        self._exec = solver._exec
        self._injector = injector
        self._b = b
        self._x = x
        self._every = every
        self.budget = budget
        self._tracked: dict[str, Vector] = {"x": x}
        self._snap_vectors: dict[str, np.ndarray] = {}
        self._snap_scalars: dict = {}
        self._last_saved: int | None = None
        # The right-hand side is never checkpointed per iteration: it is
        # immutable, so one snapshot restores a failed rank's rows.
        self._b_snapshot = b._data.copy()
        self._seen_faults = len(injector.injected)
        self._decisions: dict[int, bool] = {}
        self.events: list[dict] = []
        solver.num_checkpoints = 0
        solver.num_recoveries = 0
        solver.recovery_events = self.events

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def track(self, **vectors: Vector) -> None:
        """Register solver vectors whose arenas checkpoints must cover."""
        self._tracked.update(vectors)

    def due(self, iteration: int) -> bool:
        return (
            iteration != self._last_saved
            and (iteration - 1) % self._every == 0
        )

    def due_cycle(self, iteration: int) -> bool:
        """Cycle-granularity variant (GMRES): every new cycle start."""
        return iteration != self._last_saved

    def checkpoint(self, iteration: int, **scalars) -> None:
        """Snapshot the tracked arenas + iteration-local scalars."""
        self._snap_vectors = {
            name: vec._data.copy() for name, vec in self._tracked.items()
        }
        self._snap_scalars = {
            "iteration": iteration,
            **{
                key: value.copy() if isinstance(value, np.ndarray) else value
                for key, value in scalars.items()
            },
        }
        self._last_saved = iteration
        nbytes = sum(s.nbytes for s in self._snap_vectors.values())
        with self._injector.paused():
            self._exec.run(
                KernelCost(
                    "checkpoint_save", 0.0, 2.0 * nbytes, launches=1
                )
            )
        self._solver.num_checkpoints += 1

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    def verify(self, value) -> None:
        """Raise when a fresh all-reduce corruption poisoned ``value``.

        Only NaN-mode corruption is detectable this way; a finite bit
        flip passes through silently, exactly like real silent data
        corruption (see the fault-tolerance contract in DESIGN.md).
        """
        new = self._injector.injected[self._seen_faults:]
        if not new:
            return
        self._seen_faults = len(self._injector.injected)
        poisoned = any(
            f.site == "allreduce" and f.kind == "corruption" for f in new
        )
        if poisoned and not np.all(
            np.isfinite(np.asarray(value, dtype=np.float64))
        ):
            raise _StateCorrupted("all-reduce payload corrupted")

    def wrap_monitor(self, monitor):
        """Memoize monitor decisions so replays never double-log."""

        def replay_aware(iteration, residual_norm):
            if iteration in self._decisions:
                return self._decisions[iteration]
            stop = monitor(iteration, residual_norm)
            self._decisions[iteration] = stop
            return stop

        return replay_aware

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self, exc: Exception) -> dict:
        """Absorb ``exc``: shrink if a rank died, restore, return scalars.

        Raises ``exc`` again once the recovery budget is exhausted (the
        retry/fallback layer then owns the failure).
        """
        if self.budget < 1 or not self._snap_vectors:
            raise exc
        self.budget -= 1
        solver = self._solver
        solver.num_recoveries += 1
        event = (
            "rank_recovered"
            if isinstance(exc, RankFailure)
            else "replay_recovered"
        )
        with self._injector.paused():
            if isinstance(exc, RankFailure):
                self._shrink(exc.rank)
            self._restore()
        detail = {
            "event": event,
            "error": type(exc).__name__,
            "iteration": self._snap_scalars.get("iteration"),
            "ranks": solver.comm.num_ranks,
        }
        self.events.append(detail)
        self._exec._log(
            event,
            error=detail["error"],
            iteration=detail["iteration"],
            ranks=detail["ranks"],
            recoveries=solver.num_recoveries,
        )
        return dict(self._snap_scalars)

    def _shrink(self, failed_rank: int) -> None:
        solver = self._solver
        partition = solver.partition
        lost = partition.range_of(failed_rank)
        survivors = partition.shrink(failed_rank)
        solver.comm.shrink(failed_rank)
        solver._matrix.repartition(survivors, lost_rows=lost)
        lo, hi = lost
        seen: set[int] = set()
        for vec in (self._b, self._x, *self._tracked.values(),
                    *solver._vpool.values()):
            if id(vec) in seen:
                continue
            seen.add(id(vec))
            vec.repartition(survivors)
            # The failed rank's block is gone: poison it so any read
            # before restore/overwrite surfaces as a breakdown instead
            # of silently using stale values.
            if hi > lo and np.issubdtype(vec._data.dtype, np.floating):
                vec._data[lo:hi] = np.nan
        np.copyto(self._b._data[lo:hi], self._b_snapshot[lo:hi])

    def _restore(self) -> None:
        nbytes = 0
        for name, snap in self._snap_vectors.items():
            vec = self._tracked[name]
            np.copyto(vec._data, snap)
            vec.mark_modified()
            nbytes += snap.nbytes
        self._exec.run(
            KernelCost("checkpoint_restore", 0.0, 2.0 * nbytes, launches=1)
        )
        self._seen_faults = len(self._injector.injected)


def dist_cg_step_1(p: Vector, z: Vector, beta) -> None:
    """Fused ``p = z + beta * p``, rank-parallel; matches ``cg_step_1``."""
    b = _bc(beta, p.dtype)
    pd, zd = p._data, z._data

    def op(lo, hi):
        pd[lo:hi] *= b
        pd[lo:hi] += zd[lo:hi]

    p._rankwise_elementwise("cg_step_1", op, 3)


def dist_cg_step_2(x: Vector, r: Vector, p: Vector, q: Vector, alpha) -> None:
    """Fused ``x += alpha p ; r -= alpha q``; matches ``cg_step_2``."""
    a = _bc(alpha, x.dtype)
    xd, rd, pd, qd = x._data, r._data, p._data, q._data

    def op(lo, hi):
        xd[lo:hi] += a * pd[lo:hi]
        rd[lo:hi] -= a * qd[lo:hi]

    x._rankwise_elementwise("cg_step_2", op, 6)
    r.mark_modified()


def _pcg_local_dots(r: Vector, u: Vector, w: Vector) -> np.ndarray:
    """Fused local reductions of the pipelined-CG triple, one kernel.

    Computes ``gamma = (r, u)``, ``delta = (w, u)`` and ``rr = (r, r)``
    per column in global element order, reading the three arenas once —
    the fused multi-dot the Ghysels–Vanroose formulation exists to
    amortise.  Returns the stacked ``(3, cols)`` float64 payload for the
    single all-reduce.
    """
    exec_ = r._exec
    rows, cols = r._data.shape
    result = np.stack(
        [
            np.einsum("ij,ij->j", r._data, u._data),
            np.einsum("ij,ij->j", w._data, u._data),
            np.einsum("ij,ij->j", r._data, r._data),
        ]
    ).astype(np.float64, copy=False)
    exec_.run(
        KernelCost(
            "pipelined_cg_dots",
            flops=6.0 * rows * cols,
            bytes=3.0 * rows * cols * r.value_bytes,
            launches=1,
        )
    )
    return result


def dist_pcg_step(z, q, s, p, x, r, u, w, m, n, alpha, beta) -> None:
    """Fused Ghysels–Vanroose recurrence update, rank-parallel.

    One streaming kernel updating all eight recurrence vectors from the
    overlapped products ``m = M^{-1} w`` and ``n = A m``::

        z = n + beta z ;  q = m + beta q ;  s = w + beta s ;  p = u + beta p
        x += alpha p   ;  r -= alpha s   ;  u -= alpha q   ;  w -= alpha z

    The auxiliary updates read ``w``/``u`` *before* their own updates
    run, matching the paper's ordering.
    """
    a = _bc(alpha, x.dtype)
    bt = _bc(beta, x.dtype)
    zd, qd, sd, pd = z._data, q._data, s._data, p._data
    xd, rd, ud, wd = x._data, r._data, u._data, w._data
    md, nd = m._data, n._data

    def op(lo, hi):
        zd[lo:hi] *= bt
        zd[lo:hi] += nd[lo:hi]
        qd[lo:hi] *= bt
        qd[lo:hi] += md[lo:hi]
        sd[lo:hi] *= bt
        sd[lo:hi] += wd[lo:hi]
        pd[lo:hi] *= bt
        pd[lo:hi] += ud[lo:hi]
        xd[lo:hi] += a * pd[lo:hi]
        rd[lo:hi] -= a * sd[lo:hi]
        ud[lo:hi] -= a * qd[lo:hi]
        wd[lo:hi] -= a * zd[lo:hi]

    x._rankwise_elementwise("pipelined_cg_step", op, 18)
    for vec in (z, q, s, p, r, u, w):
        vec.mark_modified()


class DistributedIterativeSolver(IterativeSolver):
    """Base of the distributed solvers: pooled Vectors, shared comm."""

    def __init__(self, factory: SolverFactory, matrix) -> None:
        if not isinstance(matrix, Matrix):
            raise GinkgoError(
                f"{type(self).__name__} requires a distributed Matrix, "
                f"got {type(matrix).__name__}"
            )
        if factory.preconditioner is not None:
            raise GinkgoError(
                "distributed solvers currently support only "
                "preconditioner=None (the implicit Identity); distributed "
                "preconditioners are not implemented"
            )
        super().__init__(factory, matrix)
        self._vpool: dict[str, Vector] = {}

    @property
    def partition(self):
        return self._matrix.partition

    @property
    def comm(self):
        return self._matrix.comm

    def _vector(self, name: str, like: Vector, copy: bool = False) -> Vector:
        """Pooled distributed Vector shaped like ``like``.

        All pooled vectors charge their reductions on the matrix's
        communicator so a solve's comm counters aggregate in one place.
        """
        vec = self._vpool.get(name)
        if (
            vec is None
            or vec.size != like.size
            or vec.dtype != like.dtype
            or vec.partition != like.partition
        ):
            vec = Vector.zeros(
                self._exec,
                like.partition,
                cols=like.size.cols,
                dtype=like.dtype,
                comm=self._matrix.comm,
            )
            self._vpool[name] = vec
        if copy:
            vec.copy_values_from(like)
        return vec

    def _check_distributed_operands(self, b, x) -> None:
        for name, vec in (("b", b), ("x", x)):
            if not isinstance(vec, Vector):
                raise GinkgoError(
                    f"{type(self).__name__} operates on distributed "
                    f"Vectors; operand {name} is {type(vec).__name__}"
                )
            if vec.partition != self._matrix.partition:
                raise GinkgoError(
                    f"operand {name} uses a different partition than the "
                    f"system matrix"
                )

    def _apply_impl(self, b: Vector, x: Vector) -> None:
        self._check_distributed_operands(b, x)
        super()._apply_impl(b, x)

    def _initial_residual_buffer(self, b: Vector) -> Vector:
        return self._vector("base.r0", b, copy=True)

    def _apply_advanced_impl(self, alpha, b, beta, x) -> None:
        tmp = self._vector("base.advanced_tmp", x, copy=True)
        self._apply_impl(b, tmp)
        x.scale(beta)
        x.add_scaled(alpha, tmp)


class DistributedCgSolver(DistributedIterativeSolver):
    """Distributed CG; iteration sequence copied from ``CgSolver``.

    Under fault injection the loop checkpoints ``(x, r, p, rz)`` every
    ``checkpoint_every`` iterations and absorbs recoverable failures by
    restoring the checkpoint and replaying — see :class:`_Recovery`.
    """

    def _iterate(self, A, M, b, x, r, monitor) -> None:
        recovery = _Recovery.arm(self, b, x)
        z = self._vector("cg.z", r)
        M.apply(r, z)
        p = self._vector("cg.p", z, copy=True)
        q = self._vector("cg.q", r)
        rz = r.compute_dot(z)
        if recovery is not None:
            recovery.track(r=r, p=p)
            monitor = recovery.wrap_monitor(monitor)

        iteration = 0
        while True:
            iteration += 1
            if recovery is not None and recovery.due(iteration):
                recovery.checkpoint(iteration, rz=rz)
            try:
                A.apply(p, q)
                pq = p.compute_dot(q)
                if recovery is not None:
                    recovery.verify(pq)
                alpha = _safe_divide(rz, pq)
                dist_cg_step_2(x, r, p, q, alpha)
                res_norm = r.compute_norm2()
                if recovery is not None:
                    recovery.verify(res_norm)
                if monitor(iteration, res_norm):
                    return
                M.apply(r, z)
                rz_new = r.compute_dot(z)
                if recovery is not None:
                    recovery.verify(rz_new)
                beta = _safe_divide(rz_new, rz)
                dist_cg_step_1(p, z, beta)
                rz = rz_new
            except RECOVERABLE as exc:
                if recovery is None:
                    raise
                scalars = recovery.recover(exc)
                # Resume at the checkpointed iteration: the loop header
                # re-increments, so the replayed iteration recomputes
                # from bit-exact state.
                iteration = scalars["iteration"] - 1
                rz = scalars["rz"]


class DistributedPipelinedCgSolver(DistributedIterativeSolver):
    """Pipelined CG (Ghysels & Vanroose): one overlapped reduction/iter.

    Blocking CG pays three all-reduces per iteration (``p.q``, the
    residual norm, ``r.z``), each a synchronisation point.  The
    pipelined formulation fuses them into a single all-reduce of the
    triple ``gamma = (r, u)``, ``delta = (w, u)``, ``rr = (r, r)``,
    posts it non-blocking, and computes the next preconditioner apply
    and SpMV while it is in flight — at high latency the reduction
    disappears behind the matrix work entirely.

    Cost of the latency win: extra recurrences (``z, q, s, p`` next to
    ``x, r, u, w``) reassociate the CG arithmetic, so residual histories
    match blocking CG only to rounding-level tolerance (pinned in the
    tests/benchmark, documented in DESIGN.md), and the recurrence for
    ``r`` drifts from the true residual ``b - A x`` a few digits earlier
    than blocking CG under loss of orthogonality.  The monitored
    residual of iteration ``i`` is computed by the reduction of pass
    ``i + 1`` (pipeline depth 1), so a converged solve performs one
    extra overlapped SpMV.

    Under fault injection the loop checkpoints the eight-vector
    recurrence state plus ``(prev_gamma, alpha)`` every
    ``checkpoint_every`` iterations; wait-time failures restore and
    replay exactly like blocking CG.
    """

    def _iterate(self, A, M, b, x, r, monitor) -> None:
        recovery = _Recovery.arm(self, b, x)
        comm = self._matrix.comm
        u = self._vector("pcg.u", r)
        M.apply(r, u)
        w = self._vector("pcg.w", r)
        A.apply(u, w)
        m = self._vector("pcg.m", r)
        n = self._vector("pcg.n", r)
        # The auxiliary recurrences start at zero (beta_0 = 0 makes the
        # first update a plain copy, but a stale NaN from a previous
        # broken-down solve would survive `0 * NaN`).
        z = self._vector("pcg.z", r).fill(0.0)
        q = self._vector("pcg.q", r).fill(0.0)
        s = self._vector("pcg.s", r).fill(0.0)
        p = self._vector("pcg.p", r).fill(0.0)
        if recovery is not None:
            recovery.track(r=r, u=u, w=w, z=z, q=q, s=s, p=p)
            monitor = recovery.wrap_monitor(monitor)

        iteration = 0
        prev_gamma = None
        alpha = None
        while True:
            iteration += 1
            if recovery is not None and recovery.due(iteration):
                recovery.checkpoint(
                    iteration, prev_gamma=prev_gamma, alpha=alpha
                )
            try:
                # Fused local dots, then ONE non-blocking all-reduce …
                reduced = _pcg_local_dots(r, u, w)
                request = comm.iallreduce(
                    reduced.size * _REDUCE_BYTES,
                    label="iallreduce_pcg",
                    payload=reduced,
                )
                # … hidden behind the next preconditioner apply + SpMV
                # (the point of the pipelined formulation).
                M.apply(w, m)
                A.apply(m, n)
                request.wait()
                if recovery is not None:
                    recovery.verify(reduced)
                gamma, delta, rr = reduced
                res_norm = np.sqrt(rr)
                # Pipeline depth 1: this pass's reduction delivers the
                # residual of the *previous* pass's update.
                if iteration > 1 and monitor(iteration - 1, res_norm):
                    return
                if prev_gamma is None:
                    beta = np.zeros_like(gamma)
                    alpha = _safe_divide(gamma, delta)
                else:
                    beta = _safe_divide(gamma, prev_gamma)
                    alpha = _safe_divide(
                        gamma, delta - _safe_divide(beta * gamma, alpha)
                    )
                dist_pcg_step(z, q, s, p, x, r, u, w, m, n, alpha, beta)
                prev_gamma = gamma
            except RECOVERABLE as exc:
                if recovery is None:
                    raise
                scalars = recovery.recover(exc)
                iteration = scalars["iteration"] - 1
                prev_gamma = scalars["prev_gamma"]
                alpha = scalars["alpha"]


class DistributedGmresSolver(DistributedIterativeSolver):
    """Distributed restarted GMRES (single right-hand side).

    The Krylov basis and Hessenberg matrix are replicated host-side (as
    in the scalar solver's workspace arrays); basis updates run through
    the same fused kernels, and the three per-iteration reductions (the
    restart norm, the multi-dot, and the candidate norm) each charge one
    all-reduce.
    """

    def _iterate(self, A, M, b, x, r0, monitor) -> None:
        krylov_dim = int(
            self._factory.params.get("krylov_dim", DEFAULT_KRYLOV_DIM)
        )
        if krylov_dim < 1:
            raise GinkgoError(f"krylov_dim must be >= 1, got {krylov_dim}")
        if b.size.cols != 1:
            raise GinkgoError(
                "distributed GMRES supports a single right-hand side, "
                f"got {b.size.cols} columns"
            )
        exec_ = self._exec
        comm = self._matrix.comm
        ws = self._workspace
        n = b.size.rows
        m = krylov_dim
        total_iteration = 0
        w = self._vector("gmres.w", b)
        r = self._vector("gmres.r", b)
        recovery = _Recovery.arm(self, b, x)
        if recovery is not None:
            # The whole cycle replays deterministically from x, so the
            # cycle start is an exact checkpoint: only x is snapshotted.
            monitor = recovery.wrap_monitor(monitor)

        while True:
            if recovery is not None and recovery.due_cycle(total_iteration):
                recovery.checkpoint(total_iteration)
            try:
                stopped = self._cycle(
                    A, M, b, x, monitor, w, r, ws, n, m,
                    total_iteration, recovery,
                )
            except RECOVERABLE as exc:
                if recovery is None:
                    raise
                scalars = recovery.recover(exc)
                total_iteration = scalars["iteration"]
                continue
            if stopped is None:
                return
            total_iteration, stopped = stopped
            if stopped:
                return
            # Otherwise: restart.

    def _cycle(
        self, A, M, b, x, monitor, w, r, ws, n, m, total_iteration, recovery
    ):
        """One restart cycle; returns None on a zero residual, else
        ``(total_iteration, stopped)``."""
        exec_ = self._exec
        comm = self._matrix.comm
        if True:
            # Preconditioned residual r = M^{-1}(b - A x).
            w.copy_values_from(b)
            A.apply_advanced(-1.0, x, 1.0, w)
            M.apply(w, r)
            beta = float(r.compute_norm2()[0])
            if recovery is not None:
                recovery.verify(beta)
            if beta == 0.0:
                monitor(total_iteration, 0.0)
                return None
            basis = ws.array("gmres.basis", (n, m + 1))
            basis[:, 0] = r._data[:, 0] / beta
            record_fused(exec_, "gmres_init", n, b.value_bytes, 2)
            hessenberg = ws.array("gmres.hessenberg", (m + 1, m))
            givens_cos = ws.array("gmres.givens_cos", m)
            givens_sin = ws.array("gmres.givens_sin", m)
            g = ws.array("gmres.g", m + 1)
            g[0] = beta

            inner = 0
            stopped = False
            for j in range(m):
                # w = M^{-1} A v_j
                w._data[:, 0] = basis[:, j]
                A.apply(w, r)
                M.apply(r, w)
                # Fused multi-dot: locally a single einsum contraction in
                # global element order, globally one all-reduce of the
                # j+1 coefficients.
                coeffs = gmres_multidot(basis, w, j + 1)
                comm.all_reduce(
                    (j + 1) * _REDUCE_BYTES,
                    label="all_reduce_multidot",
                    payload=coeffs,
                )
                if recovery is not None:
                    recovery.verify(coeffs)
                hessenberg[: j + 1, j] = coeffs
                gmres_update(basis, w, coeffs, j + 1)
                h_next = float(w.compute_norm2()[0])
                if recovery is not None:
                    recovery.verify(h_next)
                hessenberg[j + 1, j] = h_next
                if h_next != 0.0:
                    basis[:, j + 1] = w._data[:, 0] / h_next
                    record_fused(exec_, "gmres_scale", n, b.value_bytes, 2)
                for i in range(j):
                    hi, hi1 = hessenberg[i, j], hessenberg[i + 1, j]
                    hessenberg[i, j] = (
                        givens_cos[i] * hi + givens_sin[i] * hi1
                    )
                    hessenberg[i + 1, j] = (
                        -givens_sin[i] * hi + givens_cos[i] * hi1
                    )
                denom = np.hypot(hessenberg[j, j], hessenberg[j + 1, j])
                if denom == 0.0:
                    givens_cos[j], givens_sin[j] = 1.0, 0.0
                else:
                    givens_cos[j] = hessenberg[j, j] / denom
                    givens_sin[j] = hessenberg[j + 1, j] / denom
                hessenberg[j, j] = denom
                hessenberg[j + 1, j] = 0.0
                g[j + 1] = -givens_sin[j] * g[j]
                g[j] = givens_cos[j] * g[j]
                # The Givens updates run redundantly on every rank (they
                # are O(m) host work), so no communication is charged.
                exec_.run(
                    KernelCost(
                        "givens_update", 6.0 * m, 24.0 * m, launches=3
                    )
                )

                residual_norm = abs(g[j + 1])
                inner = j + 1
                total_iteration += 1
                exec_.run(
                    KernelCost("residual_check", 0.0, 64.0, launches=4)
                )
                stopped = monitor(total_iteration, residual_norm)
                if stopped or h_next == 0.0:
                    break

            y = ws.array("gmres.y", inner)
            for i in range(inner - 1, -1, -1):
                y[i] = (
                    g[i] - hessenberg[i, i + 1 : inner] @ y[i + 1 : inner]
                ) / hessenberg[i, i]
            exec_.run(
                KernelCost(
                    "hessenberg_trsv",
                    flops=float(inner * inner),
                    bytes=8.0 * inner * inner,
                    launches=max(inner, 1),
                )
            )
            x._data[:, 0] += basis[:, :inner] @ y
            x.mark_modified()
            record_fused(
                exec_, "gmres_x_update", n * inner, b.value_bytes, 2
            )
            return total_iteration, stopped


#: Default s-step cycle length: the monomial basis loses roughly one
#: decimal digit of conditioning per power, so small cycles are the
#: practical regime (Hoemmen 2010 reaches further only with Newton bases).
DEFAULT_S_STEP = 4


class DistributedSStepGmresSolver(DistributedIterativeSolver):
    """s-step (communication-avoiding) GMRES: one reduction per cycle.

    Each restart cycle of length ``s``:

    1. computes the preconditioned residual ``r = M^{-1}(b - A x)``;
    2. builds the monomial Krylov basis ``p_0 = r``,
       ``p_{i+1} = M^{-1}(A p_i) / rho`` with ``rho`` the matrix's
       Gershgorin bound (:meth:`Matrix.infinity_norm` — no per-vector
       norm reductions);
    3. all-reduces the Gram matrix ``G = P^T P`` — ``(s+1)^2`` doubles,
       the cycle's *only* global reduction;
    4. for ``k = 1..s`` solves the normal equations on the leading
       ``k x k`` corner of ``G`` (redundant O(s^3) host work on every
       rank): since ``A M^{-1} p_i = rho p_{i+1}`` exactly, the update
       ``x += P[:, :k] (y / rho)`` has preconditioned residual
       ``P (e_0 - S y)`` whose norm is ``sqrt(G[0,0] - y^T G[1:,0])`` —
       the per-iteration residual estimate fed to the monitor;
    5. applies the best update and restarts (re-deriving the true
       residual, which bounds the estimate drift per cycle).

    The estimates reassociate the orthogonalisation arithmetic, so
    residual histories track blocking GMRES only to a pinned tolerance;
    conditioning of the monomial basis limits ``s`` to small values
    (default 4).  Checkpoint/recovery is cycle-granular, exactly like
    blocking GMRES: cycles replay deterministically from ``x``.
    """

    def _iterate(self, A, M, b, x, r0, monitor) -> None:
        s = int(self._factory.params.get("s_step", DEFAULT_S_STEP))
        if s < 1:
            raise GinkgoError(f"s_step must be >= 1, got {s}")
        if b.size.cols != 1:
            raise GinkgoError(
                "distributed s-step GMRES supports a single right-hand "
                f"side, got {b.size.cols} columns"
            )
        ws = self._workspace
        n = b.size.rows
        w = self._vector("sstep.w", b)
        r = self._vector("sstep.r", b)
        pk = self._vector("sstep.pk", b)
        rho = self._matrix.infinity_norm() or 1.0
        total_iteration = 0
        recovery = _Recovery.arm(self, b, x)
        if recovery is not None:
            monitor = recovery.wrap_monitor(monitor)

        while True:
            if recovery is not None and recovery.due_cycle(total_iteration):
                recovery.checkpoint(total_iteration)
            try:
                stopped = self._cycle(
                    A, M, b, x, monitor, w, r, pk, ws, n, s, rho,
                    total_iteration, recovery,
                )
            except RECOVERABLE as exc:
                if recovery is None:
                    raise
                scalars = recovery.recover(exc)
                total_iteration = scalars["iteration"]
                continue
            if stopped is None:
                return
            total_iteration, stopped = stopped
            if stopped:
                return
            # Otherwise: restart with the next s-step cycle.

    def _cycle(
        self, A, M, b, x, monitor, w, r, pk, ws, n, s, rho,
        total_iteration, recovery,
    ):
        """One s-step cycle; returns None on a zero residual, else
        ``(total_iteration, stopped)``."""
        exec_ = self._exec
        comm = self._matrix.comm
        # Preconditioned residual r = M^{-1}(b - A x).
        w.copy_values_from(b)
        A.apply_advanced(-1.0, x, 1.0, w)
        M.apply(w, r)
        basis = ws.array("sstep.basis", (n, s + 1))
        basis[:, 0] = r._data[:, 0]
        record_fused(exec_, "sstep_init", n, b.value_bytes, 2)
        inv_rho = 1.0 / rho
        for i in range(s):
            # p_{i+1} = M^{-1}(A p_i) / rho — matrix work only, no
            # reductions; the halo exchanges ride the overlap path when
            # the matrix has it enabled.
            pk._data[:, 0] = basis[:, i]
            pk.mark_modified()
            A.apply(pk, w)
            M.apply(w, pk)
            basis[:, i + 1] = pk._data[:, 0] * inv_rho
            record_fused(exec_, "sstep_basis_scale", n, b.value_bytes, 2)
        # The cycle's single global reduction: every inner iteration's
        # orthogonalisation state in one (s+1)^2 payload.
        gram = basis.T @ basis
        exec_.run(
            KernelCost(
                "sstep_gram",
                flops=2.0 * n * (s + 1) ** 2,
                bytes=float(n * (s + 1) * b.value_bytes + gram.nbytes),
                launches=1,
            )
        )
        comm.all_reduce(
            gram.size * _REDUCE_BYTES,
            label="all_reduce_gram",
            payload=gram,
        )
        if recovery is not None:
            recovery.verify(gram)
        if gram[0, 0] == 0.0:
            monitor(total_iteration, 0.0)
            return None

        y = None
        inner = 0
        stopped = False
        for k in range(1, s + 1):
            corner = gram[1 : k + 1, 1 : k + 1]
            rhs = gram[1 : k + 1, 0]
            try:
                yk = np.linalg.solve(corner, rhs)
            except np.linalg.LinAlgError:
                # Degenerate basis (Krylov space exhausted): fall back
                # to the minimum-norm least-squares coefficients.
                yk = np.linalg.lstsq(corner, rhs, rcond=None)[0]
            residual_norm = np.sqrt(
                max(float(gram[0, 0] - rhs @ yk), 0.0)
            )
            # The prefix solves are O(s^3) redundant host work on every
            # rank, like the blocking solver's Givens updates.
            exec_.run(
                KernelCost(
                    "sstep_normal_solve",
                    flops=float(k**3) / 3.0 + 2.0 * k * k,
                    bytes=8.0 * (k + 1) * (k + 1),
                    launches=2,
                )
            )
            y = yk
            inner = k
            total_iteration += 1
            exec_.run(KernelCost("residual_check", 0.0, 64.0, launches=4))
            stopped = monitor(total_iteration, residual_norm)
            if stopped:
                break

        x._data[:, 0] += basis[:, :inner] @ (y * inv_rho)
        x.mark_modified()
        record_fused(exec_, "sstep_x_update", n * inner, b.value_bytes, 2)
        return total_iteration, stopped


class DistributedCg(SolverFactory):
    """Distributed CG factory: ``DistributedCg(exec, criteria=...)``.

    Parameters:
        checkpoint_every: Krylov-state checkpoint period under fault
            injection (default 1; 0 disables recovery).
        max_recoveries: Recoverable failures absorbed per solve before
            the error propagates (default 8).
    """

    solver_class = DistributedCgSolver
    parameter_names = ("checkpoint_every", "max_recoveries")


class DistributedGmres(SolverFactory):
    """Distributed GMRES factory.

    Parameters:
        krylov_dim: Restart length (default 30, as in the scalar solver).
        checkpoint_every: Checkpoint period under fault injection
            (GMRES checkpoints at restart-cycle starts; 0 disables).
        max_recoveries: Recoverable failures absorbed per solve before
            the error propagates (default 8).
    """

    solver_class = DistributedGmresSolver
    parameter_names = ("krylov_dim", "checkpoint_every", "max_recoveries")


class DistributedPipelinedCg(SolverFactory):
    """Pipelined CG factory: one overlapped all-reduce per iteration.

    Parameters:
        checkpoint_every: Krylov-state checkpoint period under fault
            injection (default 1; 0 disables recovery).
        max_recoveries: Recoverable failures absorbed per solve before
            the error propagates (default 8).
    """

    solver_class = DistributedPipelinedCgSolver
    parameter_names = ("checkpoint_every", "max_recoveries")


class DistributedSStepGmres(SolverFactory):
    """s-step GMRES factory: one all-reduce per ``s_step`` iterations.

    Parameters:
        s_step: Cycle length / basis size (default 4; the monomial basis
            limits practical values to single digits).
        checkpoint_every: Checkpoint period under fault injection
            (cycle-granular, like blocking GMRES; 0 disables).
        max_recoveries: Recoverable failures absorbed per solve before
            the error propagates (default 8).
    """

    solver_class = DistributedSStepGmresSolver
    parameter_names = ("s_step", "checkpoint_every", "max_recoveries")
