"""Row-partitioned (multi-)vectors (``gko::experimental::distributed::Vector``).

A distributed vector owns one executor-resident arena of shape
``(global_rows, cols)`` whose disjoint row blocks are the per-rank local
storage (the simulated ranks share an address space, like MPI windows on
one node); :meth:`local` hands out a writable zero-copy ``Dense`` view of
one rank's block.  Rank-local elementwise work runs thread-parallel on
``OmpExecutor`` through the same partitioned-region machinery the CSR
SpMV uses.

Reductions (dots, norms) are the crux of the bit-identity guarantee: the
partial results of a real distributed dot would be combined in rank order
by ``MPI_Allreduce``, producing different rounding than a single-rank
dot.  Here the reduction is instead evaluated once over the full arena in
global element order — *exactly* the ``np.einsum`` contraction
``Dense.compute_dot`` performs — while the communicator charges the
all-reduce the real implementation would pay.  Residual histories of
distributed solves therefore match single-rank solves byte for byte.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import replace

import numpy as np

from repro.ginkgo.dim import Dim
from repro.ginkgo.distributed.comm import Communicator
from repro.ginkgo.distributed.partition import Partition
from repro.ginkgo.exceptions import (
    BadDimension,
    DimensionMismatch,
    ExecutorMismatch,
    GinkgoError,
)
from repro.ginkgo.lin_op import LinOp
from repro.ginkgo.matrix.dense import Dense
from repro.perfmodel import blas1_cost, dot_cost

#: When True, every rank dispatches its kernels independently (the
#: ``sequential_ranks`` baseline) instead of through fused regions.
_SEQUENTIAL_RANKS = False


@contextmanager
def sequential_ranks():
    """Execute each rank's kernels as independent dispatches.

    This is the benchmark baseline: ranks behave like separate processes
    time-sharing the machine, so every operation pays one kernel dispatch
    (and one clock record) per rank, and reductions combine per-rank
    partial results in rank order — the rounding a real ``MPI_Allreduce``
    produces.  The default (fused) mode instead runs one whole-arena
    kernel per operation and evaluates reductions in global element
    order, which is what pins residual histories to the single-rank
    solve bit for bit.
    """
    global _SEQUENTIAL_RANKS
    previous = _SEQUENTIAL_RANKS
    _SEQUENTIAL_RANKS = True
    try:
        yield
    finally:
        _SEQUENTIAL_RANKS = previous


def _split_cost(cost, parts):
    """Split an aggregate kernel cost into per-rank shares by weight."""
    weights = [float(p.get("weight", 1.0)) or 1.0 for p in parts]
    total = sum(weights) or 1.0
    return [
        replace(
            cost,
            flops=cost.flops * w / total,
            bytes=cost.bytes * w / total,
            launches=1,
        )
        for w in weights
    ]


def run_rankwise(exec_, cost, tasks, parts=None, fused=None):
    """Run one-task-per-rank work as a single modeled kernel.

    Dispatches onto the executor's thread pool when it has more than one
    worker (``OmpExecutor.run_partitioned``).  On a single worker the
    rank loop collapses: when the caller supplies ``fused`` — one
    whole-arena callable equivalent to running every task — that single
    kernel replaces the per-rank loop (bitwise-identical by the
    global-arena construction, and free of per-rank dispatch overhead).
    Executor choice never changes simulated timings.

    Under :func:`sequential_ranks` every task instead pays its own
    dispatch, with ``cost`` split across ranks by partition weight.
    """
    if parts is None:
        parts = [{} for _ in tasks]
    if _SEQUENTIAL_RANKS and len(tasks) > 1:
        results = []
        for task, sub_cost in zip(tasks, _split_cost(cost, parts)):
            results.append(task())
            exec_.run(sub_cost)
        return results
    runner = getattr(exec_, "run_partitioned", None)
    if (
        runner is not None
        and (getattr(exec_, "num_threads", None) or 1) > 1
        and len(tasks) > 1
    ):
        return runner(cost, tasks, parts)
    if fused is not None:
        result = fused()
        exec_.run(cost)
        return result
    results = [task() for task in tasks]
    exec_.run(cost)
    return results


class Vector(LinOp):
    """A dense (multi-)vector row-partitioned over simulated ranks.

    Args:
        exec_: Executor holding the arena.
        partition: Row :class:`Partition`; ``partition.global_size`` rows.
        data: Optional initial contents (1-D or ``(rows, cols)``); zeros
            when omitted.
        cols: Number of columns when ``data`` is omitted.
        dtype: Value type when ``data`` is omitted.
        comm: Communicator charged for reductions; a fresh one is created
            when omitted (distributed objects built together should share
            one — the factories arrange that).
    """

    def __init__(
        self,
        exec_,
        partition: Partition,
        data=None,
        cols: int = 1,
        dtype=np.float64,
        comm: Communicator | None = None,
    ) -> None:
        if not isinstance(partition, Partition):
            raise GinkgoError(
                f"expected a Partition, got {type(partition).__name__}"
            )
        rows = partition.global_size
        if data is None:
            super().__init__(exec_, Dim(rows, int(cols)))
            self._data = exec_.alloc((rows, int(cols)), dtype)
        else:
            data = np.asarray(data)
            if data.ndim == 1:
                data = data.reshape(-1, 1)
            if data.ndim != 2:
                raise BadDimension(
                    f"Vector data must be 1-D or 2-D, got {data.ndim}-D"
                )
            if data.shape[0] != rows:
                raise BadDimension(
                    f"Vector data has {data.shape[0]} rows but the "
                    f"partition covers {rows}"
                )
            super().__init__(exec_, Dim(data.shape[0], data.shape[1]))
            self._data = exec_.alloc_like(np.ascontiguousarray(data))
            np.copyto(self._data, data)
        self._partition = partition
        self._comm = comm or Communicator(exec_, partition.num_ranks)
        self._locals: dict[int, Dense] = {}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(
        cls,
        exec_,
        partition: Partition,
        cols: int = 1,
        dtype=np.float64,
        comm: Communicator | None = None,
    ) -> "Vector":
        return cls(exec_, partition, cols=cols, dtype=dtype, comm=comm)

    @classmethod
    def zeros_like(cls, other: "Vector") -> "Vector":
        return cls.zeros(
            other._exec,
            other._partition,
            cols=other._size.cols,
            dtype=other.dtype,
            comm=other._comm,
        )

    # ------------------------------------------------------------------
    # properties and access
    # ------------------------------------------------------------------
    @property
    def partition(self) -> Partition:
        return self._partition

    @property
    def num_ranks(self) -> int:
        return self._partition.num_ranks

    @property
    def comm(self) -> Communicator:
        return self._comm

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def value_bytes(self) -> int:
        return self._data.dtype.itemsize

    def local(self, rank: int) -> Dense:
        """Writable zero-copy ``Dense`` view of ``rank``'s row block."""
        wrapper = self._locals.get(rank)
        if wrapper is None:
            lo, hi = self._partition.range_of(rank)
            wrapper = Dense._wrap(self._exec, self._data[lo:hi])
            self._locals[rank] = wrapper
        return wrapper

    def view(self) -> np.ndarray:
        """Zero-copy NumPy view of the global arena (host executors)."""
        if not self._exec.is_host:
            raise ExecutorMismatch(
                "Vector.view", expected="a host executor", got=self._exec.name
            )
        return self._data

    def to_numpy(self) -> np.ndarray:
        """Host copy of the full global vector."""
        if self._exec.is_host:
            return self._data.copy()
        return self._exec.get_master().copy_from(self._exec, self._data)

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        view = self.view()
        if dtype is not None and dtype != view.dtype:
            return view.astype(dtype)
        return view

    # ------------------------------------------------------------------
    # elementwise operations (rank-local, thread-parallel)
    # ------------------------------------------------------------------
    def _rank_parts(self) -> list:
        return [
            {"weight": float(hi - lo) or 1.0, "rank": rank, "rows": hi - lo}
            for rank, (lo, hi) in enumerate(self._partition.ranges)
        ]

    def _rankwise_elementwise(self, name: str, op, num_vectors: int) -> None:
        """Run ``op(lo, hi)`` per rank as one fused streaming kernel."""

        def make_task(lo, hi):
            return lambda: op(lo, hi)

        tasks = [make_task(lo, hi) for lo, hi in self._partition.ranges]
        cost = blas1_cost(
            name, self._size.num_elements, self.value_bytes, num_vectors
        )
        # Elementwise ops are position-independent, so the whole-arena
        # call is bitwise identical to the per-rank loop.
        run_rankwise(
            self._exec,
            cost,
            tasks,
            self._rank_parts(),
            fused=lambda: op(0, self._size.rows),
        )
        self.mark_modified()

    def fill(self, value) -> "Vector":
        """Set every entry to ``value``."""
        data = self._data
        self._rankwise_elementwise(
            "fill", lambda lo, hi: data[lo:hi].fill(value), 1
        )
        return self

    def copy_values_from(self, other: "Vector") -> "Vector":
        """Overwrite this vector's values with ``other``'s (same shape)."""
        self._check_compatible(other, "copy_values_from")
        src, dst = other._data, self._data
        self._rankwise_elementwise(
            "copy", lambda lo, hi: np.copyto(dst[lo:hi], src[lo:hi]), 2
        )
        return self

    def scale(self, alpha) -> "Vector":
        """``self *= alpha`` in place (rank-local elementwise)."""
        data = self._data
        a = self.dtype.type(alpha)

        def op(lo, hi):
            data[lo:hi] *= a

        self._rankwise_elementwise("scale", op, 2)
        return self

    def add_scaled(self, alpha, other: "Vector") -> "Vector":
        """``self += alpha * other`` (rank-local axpy)."""
        self._check_compatible(other, "add_scaled")
        dst, src = self._data, other._data
        a = self.dtype.type(alpha)

        def op(lo, hi):
            dst[lo:hi] += a * src[lo:hi]

        self._rankwise_elementwise("add_scaled", op, 3)
        return self

    # ------------------------------------------------------------------
    # reductions (global-order evaluation + simulated all_reduce)
    # ------------------------------------------------------------------
    def compute_dot(self, other: "Vector") -> np.ndarray:
        """Column-wise dot products, globally reduced.

        The contraction runs over the full arena in global element order
        (bit-identical to ``Dense.compute_dot`` on the undistributed
        vector); the communicator charges the all-reduce of the ``cols``
        partial results.
        """
        self._check_compatible(other, "compute_dot")
        result = self._reduce("ij,ij->j", other)
        self._comm.all_reduce(
            self._size.cols * np.dtype(np.float64).itemsize,
            label="all_reduce_dot",
            payload=result,
        )
        return result

    def compute_norm2(self) -> np.ndarray:
        """Column-wise Euclidean norms, globally reduced."""
        result = np.sqrt(self._reduce("ij,ij->j", self).astype(np.float64))
        self._comm.all_reduce(
            self._size.cols * np.dtype(np.float64).itemsize,
            label="all_reduce_norm",
            payload=result,
        )
        return result

    def _reduce(self, contraction: str, other: "Vector") -> np.ndarray:
        """Contract the arenas, charging the reduction's kernel cost.

        Fused mode contracts once over the full arena in global element
        order (the bit-identity mechanism); under ``sequential_ranks``
        each rank contracts its own block with its own dispatch and the
        partials are combined in rank order, like a real allreduce.
        """
        cost = dot_cost(self._size.rows, self.value_bytes, self._size.cols)
        if _SEQUENTIAL_RANKS and self.num_ranks > 1:
            parts = self._rank_parts()
            partials = []
            for (lo, hi), sub_cost in zip(
                self._partition.ranges, _split_cost(cost, parts)
            ):
                partials.append(
                    np.einsum(
                        contraction, self._data[lo:hi], other._data[lo:hi]
                    )
                )
                self._exec.run(sub_cost)
            return np.add.reduce(np.stack(partials), axis=0)
        result = np.einsum(contraction, self._data, other._data)
        self._exec.run(cost)
        return result

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def repartition(self, new_partition: Partition) -> "Vector":
        """Re-own this vector's rows under ``new_partition`` in place.

        The global arena is the shared address space of the simulated
        ranks, so no values move: surviving ranks simply take ownership
        of the failed rank's row block.  Only the partition handle and
        the cached per-rank local views change.  Values previously owned
        by a failed rank are whatever the arena last held — recovery is
        expected to restore them from a checkpoint before use.
        """
        if not isinstance(new_partition, Partition):
            raise GinkgoError(
                f"expected a Partition, got {type(new_partition).__name__}"
            )
        if new_partition.global_size != self._partition.global_size:
            raise DimensionMismatch(
                "Vector.repartition",
                expected=self._partition.global_size,
                got=new_partition.global_size,
            )
        self._partition = new_partition
        self._locals = {}
        return self

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "Vector", op_name: str) -> None:
        if not isinstance(other, Vector):
            raise GinkgoError(
                f"{op_name} expects a distributed Vector, got "
                f"{type(other).__name__}"
            )
        if other.size != self._size:
            raise DimensionMismatch(
                op_name, expected=self._size, got=other.size
            )
        if other._partition != self._partition:
            raise GinkgoError(
                f"{op_name}: operands use different partitions "
                f"({self._partition!r} vs {other._partition!r})"
            )
        if other.executor is not self._exec:
            raise ExecutorMismatch(
                op_name, expected=self._exec.name, got=other.executor.name
            )

    def __repr__(self) -> str:
        return (
            f"Vector({self._size.rows}x{self._size.cols}, "
            f"ranks={self.num_ranks}, dtype={self.dtype}, "
            f"executor={self._exec.name})"
        )
