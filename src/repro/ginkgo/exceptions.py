"""Exception hierarchy mirroring Ginkgo's error types."""

from __future__ import annotations


class GinkgoError(Exception):
    """Base class for all engine errors."""


class DimensionMismatch(GinkgoError):
    """Operands passed to an apply have incompatible dimensions."""

    def __init__(self, op_name: str, expected, got) -> None:
        super().__init__(
            f"{op_name}: dimension mismatch, expected {expected}, got {got}"
        )
        self.expected = expected
        self.got = got


class BadDimension(GinkgoError):
    """An object was constructed with an invalid dimension."""


class ExecutorMismatch(GinkgoError):
    """Operands live on different executors without an explicit copy."""

    def __init__(self, op_name: str, expected, got) -> None:
        super().__init__(
            f"{op_name}: operands live on executor {got!r} but the operator "
            f"lives on {expected!r}; copy the data explicitly first"
        )


class AllocationError(GinkgoError):
    """Device memory exhausted (models cudaErrorMemoryAllocation)."""

    def __init__(self, executor_name: str, requested: int, available: int) -> None:
        super().__init__(
            f"{executor_name}: failed to allocate {requested} bytes "
            f"({available} bytes available)"
        )
        self.requested = requested
        self.available = available


class CudaError(GinkgoError):
    """A device-side failure on a CUDA/HIP executor."""


class CommunicationError(GinkgoError):
    """A simulated communication failure (dropped message, dead link).

    Raised by the distributed :class:`~repro.ginkgo.distributed.comm.Communicator`
    when fault injection drops an exchange.  Treated as transient by both
    the distributed solvers' replay recovery and the resilient-solve retry
    layer (a real MPI stack would retransmit or surface ``MPI_ERR_*``).
    """


class RankFailure(CommunicationError):
    """A simulated rank died during a collective or halo exchange.

    Carries the failed rank so recovery can shrink the partition over the
    survivors.  Models the notification a fault-tolerant MPI (ULFM's
    ``MPI_ERR_PROC_FAILED``) delivers at the next communication.
    """

    def __init__(self, rank: int, op: str = "") -> None:
        where = f" during {op}" if op else ""
        super().__init__(f"rank {rank} failed{where}")
        self.rank = int(rank)
        self.op = op


class NotSupported(GinkgoError):
    """The requested operation is not implemented for this type."""


class SolverBreakdown(GinkgoError):
    """The iteration produced a non-finite residual (NaN/Inf breakdown).

    Mirrors the breakdown conditions real Krylov solvers hit on corrupted
    data or unlucky pivots.  Like :class:`NotConverged`, solvers only raise
    this in strict mode (``strict_breakdown=True``); by default the solve
    stops early and the logger records the breakdown.
    """

    def __init__(self, iterations: int, residual_norm: float) -> None:
        super().__init__(
            f"solver broke down after {iterations} iterations "
            f"(residual norm {residual_norm!r})"
        )
        self.iterations = iterations
        self.residual_norm = residual_norm


class ResilienceExhausted(GinkgoError):
    """Every retry and every fallback executor failed.

    Carries the per-attempt failure history so callers can see what was
    tried before giving up.
    """

    def __init__(self, attempts: int, history) -> None:
        summary = "; ".join(
            f"{name}: {type(err).__name__}" for name, err in history
        )
        super().__init__(
            f"resilient solve failed after {attempts} attempts ({summary})"
        )
        self.attempts = attempts
        self.history = tuple(history)


class NotConverged(GinkgoError):
    """A solver exhausted its stopping criteria without converging.

    Ginkgo itself does not throw on non-convergence (the logger reports it);
    this exception is only raised by APIs that request strict behaviour.
    """

    def __init__(self, iterations: int, residual_norm: float) -> None:
        super().__init__(
            f"solver did not converge after {iterations} iterations "
            f"(residual norm {residual_norm:.3e})"
        )
        self.iterations = iterations
        self.residual_norm = residual_norm
