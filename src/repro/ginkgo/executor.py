"""Executors: where data lives and kernels run.

This mirrors Ginkgo's executor hierarchy (section 4.1 of the paper):

* :class:`ReferenceExecutor` — sequential host execution for verification;
* :class:`OmpExecutor` — multi-threaded host execution;
* :class:`CudaExecutor` — an NVIDIA GPU (simulated as an A100);
* :class:`HipExecutor` — an AMD GPU (simulated as an MI100).

As in Ginkgo, constructors are protected: concrete executors are built via
the static ``create`` factories, which return the (shared) instance — the
paper highlights this create-returns-smart-pointer design as the reason it
chose pybind11's smart-pointer holder types.

Device executors own a distinct *memory space*.  NumPy buffers tagged with a
device executor must be copied explicitly (``Array.copy_to`` /
``Dense.copy_to``) before host code may view them, emulating the
discrete-memory semantics of real GPUs.  All data movement and kernel
execution advances the executor's simulated :class:`~repro.perfmodel.SimClock`.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.exceptions import AllocationError, GinkgoError
from repro.perfmodel import (
    AMD_MI100,
    GENERIC_HOST,
    INTEL_XEON_8368,
    NVIDIA_A100,
    KernelCost,
    SimClock,
)
from repro.perfmodel.specs import DeviceSpec

#: Effective host<->device interconnect bandwidth (PCIe gen4 x16), bytes/s.
PCIE_BANDWIDTH = 25e9
#: One-way host<->device transfer latency, seconds.
PCIE_LATENCY = 8.0e-6


def _nbytes_of(shape, dtype) -> int:
    """Size of an allocation request without performing it."""
    count = 1
    for extent in np.atleast_1d(shape):
        count *= int(extent)
    return count * np.dtype(dtype).itemsize


class Executor:
    """Base class of all executors.

    Use the subclasses' ``create`` factories; direct construction raises,
    matching Ginkgo's protected constructors.
    """

    _allow_construction = False

    def __init__(
        self,
        spec: DeviceSpec,
        device_id: int = 0,
        library: str = "ginkgo",
        num_threads: int | None = None,
        seed: int = 0,
        noisy: bool = True,
    ) -> None:
        if not Executor._allow_construction:
            raise TypeError(
                f"{type(self).__name__} cannot be constructed directly; "
                "use the static create() factory"
            )
        self.spec = spec
        self.device_id = device_id
        self.num_threads = num_threads
        self.clock = SimClock(
            spec, library=library, num_threads=num_threads, seed=seed, noisy=noisy
        )
        self._bytes_allocated = 0
        self._allocation_count = 0
        self._peak_bytes = 0
        self._live_buffers: dict[int, int] = {}
        self._loggers: list = []

    # ------------------------------------------------------------------
    # factory
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, *args, **kwargs) -> "Executor":
        """Create an executor instance (Ginkgo-style static factory)."""
        Executor._allow_construction = True
        try:
            return cls(*args, **kwargs)
        finally:
            Executor._allow_construction = False

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return type(self).__name__.replace("Executor", "").lower()

    @property
    def is_host(self) -> bool:
        """True when host code may view this executor's buffers directly."""
        return self.spec.kind == "cpu"

    def get_master(self) -> "Executor":
        """The host executor associated with this device (Ginkgo API)."""
        return self if self.is_host else self._master

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------
    def add_logger(self, logger) -> None:
        """Attach a logger receiving this executor's events.

        Executors emit ``fault_injected`` events (via
        :class:`~repro.ginkgo.fault.FaultyExecutor`); the handler protocol
        is the same ``on_<event>`` convention LinOps use.
        """
        self._loggers.append(logger)

    def remove_logger(self, logger) -> None:
        self._loggers.remove(logger)

    def _log(self, event: str, **kwargs) -> None:
        for logger in self._loggers:
            handler = getattr(logger, f"on_{event}", None)
            if handler is not None:
                handler(self, **kwargs)
        # Executor events carry only scalar payloads, so they double as
        # instant markers on the clock's trace (no-op when untraced).
        self.clock.annotate(event, **kwargs)

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------
    def alloc(self, shape, dtype) -> np.ndarray:
        """Allocate a zero-initialised buffer in this memory space."""
        self._check_capacity(_nbytes_of(shape, dtype))
        arr = np.zeros(shape, dtype=dtype)
        self._track_alloc(arr.nbytes)
        self._live_buffers[id(arr)] = arr.nbytes
        self.clock.annotate("alloc", nbytes=arr.nbytes)
        return arr

    def alloc_like(self, data: np.ndarray) -> np.ndarray:
        """Allocate an uninitialised buffer with ``data``'s shape/dtype."""
        self._check_capacity(data.nbytes)
        arr = np.empty_like(data)
        self._track_alloc(arr.nbytes)
        self._live_buffers[id(arr)] = arr.nbytes
        self.clock.annotate("alloc", nbytes=arr.nbytes)
        return arr

    def _check_capacity(self, nbytes: int) -> None:
        """Fail a too-large request before touching host memory.

        Failed allocations leave ``allocation_count``/``peak`` untouched, so
        leak and fault tests can trust the counters.
        """
        if self._bytes_allocated + nbytes > self.spec.memory_capacity:
            raise AllocationError(
                self.name,
                requested=nbytes,
                available=int(self.spec.memory_capacity - self._bytes_allocated),
            )

    def _track_alloc(self, nbytes: int) -> None:
        self._check_capacity(nbytes)
        self._bytes_allocated += nbytes
        self._allocation_count += 1
        self._peak_bytes = max(self._peak_bytes, self._bytes_allocated)

    def free(self, data: np.ndarray) -> None:
        """Return a buffer to the memory space (bookkeeping only).

        Raises:
            GinkgoError: When ``data`` was not allocated by this executor
                or was already freed — a double-free would otherwise
                silently corrupt the ``bytes_allocated`` accounting.
        """
        nbytes = self._live_buffers.pop(id(data), None)
        if nbytes is None:
            raise GinkgoError(
                f"{self.name}: free of a buffer this executor does not own "
                "(double-free, or not allocated here)"
            )
        self._bytes_allocated -= nbytes

    @property
    def bytes_allocated(self) -> int:
        return self._bytes_allocated

    @property
    def allocation_count(self) -> int:
        return self._allocation_count

    @property
    def peak_bytes_allocated(self) -> int:
        return self._peak_bytes

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def copy_from(self, src_exec: "Executor", data: np.ndarray) -> np.ndarray:
        """Copy ``data`` (resident on ``src_exec``) into this memory space.

        Models the transfer time: PCIe for host<->device and device<->device
        hops, DRAM streaming for host<->host.
        """
        out = self.alloc_like(np.ascontiguousarray(data))
        np.copyto(out, data)
        self._charge_copy(src_exec, data.nbytes)
        return out

    def copy_into(
        self, src_exec: "Executor", data: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Copy ``data`` (resident on ``src_exec``) into existing buffer ``out``.

        Charges exactly what :meth:`copy_from` charges for the transfer
        itself, minus the allocation: workspace pools use this so a reused
        buffer costs the same simulated time as a fresh ``clone()``.
        """
        if out.shape != data.shape or out.dtype != data.dtype:
            raise GinkgoError(
                f"{self.name}: copy_into target mismatch "
                f"({out.shape}/{out.dtype} vs {data.shape}/{data.dtype})"
            )
        np.copyto(out, data)
        self._charge_copy(src_exec, data.nbytes)
        return out

    def _charge_copy(self, src_exec: "Executor", nbytes: int) -> None:
        """Advance the clock(s) for one ``nbytes`` transfer from ``src_exec``."""
        if src_exec is self:
            self.clock.record(
                KernelCost("device_memcpy", 0.0, 2.0 * nbytes, launches=1)
            )
        elif self.is_host and src_exec.is_host:
            self.clock.advance(
                nbytes / self.spec.memory_bandwidth,
                category="transfer",
                label="host_memcpy",
                bytes=nbytes,
            )
        else:
            transfer = PCIE_LATENCY + nbytes / PCIE_BANDWIDTH
            self.clock.advance(
                transfer, category="transfer", label="pcie_transfer",
                bytes=nbytes,
            )
            src_exec.clock.advance(
                transfer, category="transfer", label="pcie_transfer",
                bytes=nbytes,
            )

    def synchronize(self) -> None:
        """Wait for all outstanding device work (models stream sync)."""
        self.clock.synchronize()

    # ------------------------------------------------------------------
    # kernel execution
    # ------------------------------------------------------------------
    def run(self, cost: KernelCost) -> float:
        """Execute one modeled kernel; returns its simulated duration."""
        return self.clock.record(cost)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} id={self.device_id}>"


class ReferenceExecutor(Executor):
    """Sequential host executor used for verification (Ginkgo `reference`)."""

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("library", "ginkgo")
        super().__init__(GENERIC_HOST, device_id=0, num_threads=1, **{
            k: v for k, v in kwargs.items() if k != "num_threads"
        })


class OmpExecutor(Executor):
    """Multi-threaded host executor (Ginkgo `omp`).

    Beyond the modeled bandwidth scaling, this executor runs host kernels
    *physically* in parallel: partitioned work (row-split SpMV, batched
    sub-batches) is dispatched onto a lazily created
    ``concurrent.futures.ThreadPoolExecutor``.  NumPy and SciPy release
    the GIL inside their C kernels, so the partitions genuinely overlap.
    The simulated clock is unaffected — :meth:`run_partitioned` records
    the same aggregate cost serial execution would — but profiler traces
    show one span per worker thread.
    """

    def __init__(self, num_threads: int | None = None, **kwargs) -> None:
        spec = kwargs.pop("spec", INTEL_XEON_8368)
        if num_threads is not None and num_threads < 1:
            raise GinkgoError(
                f"OmpExecutor needs >= 1 thread, got {num_threads}"
            )
        threads = num_threads or spec.cores
        super().__init__(spec, device_id=0, num_threads=threads, **kwargs)
        self._pool = None
        #: Number of parallel regions actually dispatched to the pool.
        self.pool_regions = 0
        #: Total partitions executed across those regions.
        self.pool_partitions = 0

    @property
    def thread_pool(self):
        """The lazily created worker pool (``None`` until first use)."""
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.num_threads,
                thread_name_prefix=f"omp-{self.device_id}",
            )
        return self._pool

    def partition(self, weights) -> list[tuple[int, int]]:
        """Contiguous load-balanced ``[lo, hi)`` ranges, one per thread.

        Args:
            weights: Per-item work estimate (e.g. nonzeros per row).  The
                cut points equalise cumulative weight across threads, the
                same schedule OpenMP's static load-balanced CSR kernels
                use.

        Returns:
            ``min(num_threads, len(weights))`` non-empty ranges covering
            ``[0, len(weights))``.
        """
        weights = np.asarray(weights, dtype=np.float64)
        count = len(weights)
        parts = min(self.num_threads, count)
        if parts <= 1:
            return [(0, count)]
        cumulative = np.cumsum(weights)
        targets = cumulative[-1] * np.arange(1, parts) / parts
        cuts = np.searchsorted(cumulative, targets, side="left") + 1
        # Clamp so every range keeps at least one item, then restore
        # monotonicity (skewed weights can push cuts together).
        cuts = np.maximum(cuts, np.arange(1, parts))
        cuts = np.minimum(cuts, count - parts + np.arange(1, parts))
        cuts = np.maximum.accumulate(cuts)
        bounds = [0, *cuts.tolist(), count]
        return [(bounds[i], bounds[i + 1]) for i in range(parts)]

    def run_partitioned(self, cost: KernelCost, tasks, parts=None) -> list:
        """Run ``tasks`` concurrently on the pool as one modeled kernel.

        Args:
            cost: Aggregate :class:`KernelCost` of the whole operation —
                recorded once, exactly as serial execution would.
            tasks: Zero-argument callables writing disjoint outputs.
            parts: Optional per-task trace metadata dicts (``weight`` key
                sets each partition's share of the traced duration).

        Returns:
            The tasks' return values, in order.
        """
        if parts is None:
            parts = [{} for _ in tasks]
        if len(tasks) <= 1 or self.num_threads <= 1:
            results = [task() for task in tasks]
            self.clock.record(cost)
            return results
        futures = [self.thread_pool.submit(task) for task in tasks]
        results = [future.result() for future in futures]
        self.pool_regions += 1
        self.pool_partitions += len(tasks)
        self.clock.record_partitioned(cost, parts)
        return results


class _DeviceExecutor(Executor):
    """Shared behaviour of discrete-memory device executors."""

    def __init__(self, device_id: int = 0, master: Executor | None = None, **kwargs):
        spec = kwargs.pop("spec", self._default_spec())
        super().__init__(spec, device_id=device_id, **kwargs)
        self._master = master or OmpExecutor.create(
            seed=kwargs.get("seed", 0), noisy=kwargs.get("noisy", True)
        )

    @classmethod
    def _default_spec(cls) -> DeviceSpec:
        raise NotImplementedError


class CudaExecutor(_DeviceExecutor):
    """An NVIDIA GPU executor, simulated as an A100 (Ginkgo `cuda`)."""

    @classmethod
    def _default_spec(cls) -> DeviceSpec:
        return NVIDIA_A100


class HipExecutor(_DeviceExecutor):
    """An AMD GPU executor, simulated as an MI100 (Ginkgo `hip`)."""

    @classmethod
    def _default_spec(cls) -> DeviceSpec:
        return AMD_MI100
