"""Incomplete and complete factorizations (``gko::factorization``)."""

from repro.ginkgo.factorization.ilu0 import Ilu0Factorization, ilu0
from repro.ginkgo.factorization.ic0 import Ic0Factorization, ic0
from repro.ginkgo.factorization.lu import LuFactorization, lu
from repro.ginkgo.factorization.parilu import ParIluFactorization, parilu

__all__ = [
    "Ic0Factorization",
    "Ilu0Factorization",
    "LuFactorization",
    "ParIluFactorization",
    "ic0",
    "ilu0",
    "lu",
    "parilu",
]
