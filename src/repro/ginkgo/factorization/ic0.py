"""IC(0): incomplete Cholesky factorisation with zero fill-in.

Computes ``A ~= L L^T`` for a symmetric positive-definite matrix, where L
carries the lower-triangular part of A's sparsity pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.accessor import resolve_storage_dtype
from repro.ginkgo.exceptions import BadDimension, GinkgoError
from repro.ginkgo.matrix.csr import Csr
from repro.perfmodel import factorization_cost


@dataclass
class Ic0Factorization:
    """Result of an IC(0) factorisation: the lower-triangular factor L."""

    l_factor: Csr

    @property
    def lt_factor(self) -> Csr:
        """The transposed factor ``L^T`` (computed on demand)."""
        return self.l_factor.transpose()


def _ic0_arrays(a: sp.csr_matrix) -> sp.csr_matrix:
    """Row-wise IC(0) on the lower triangle of a sorted CSR matrix."""
    n = a.shape[0]
    lower = sp.tril(a).tocsr()
    lower.sort_indices()
    indptr, indices, data = lower.indptr, lower.indices, lower.data.astype(
        np.float64
    )
    l_rows: list[dict] = [dict() for _ in range(n)]

    for i in range(n):
        start, stop = indptr[i], indptr[i + 1]
        cols = indices[start:stop]
        vals = data[start:stop]
        if cols.size == 0 or cols[-1] != i:
            raise GinkgoError(
                f"IC(0) requires a full diagonal; row {i} has no diagonal "
                "entry"
            )
        li = l_rows[i]
        for c, v in zip(cols, vals):
            j = int(c)
            lj = l_rows[j]
            # s = a_ij - sum_{k<j} L[i,k] * L[j,k] over the shared pattern.
            s = float(v)
            if len(li) <= len(lj):
                for k, lik in li.items():
                    if k < j:
                        ljk = lj.get(k)
                        if ljk is not None:
                            s -= lik * ljk
            else:
                for k, ljk in lj.items():
                    if k < j:
                        lik = li.get(k)
                        if lik is not None:
                            s -= lik * ljk
            if j < i:
                ljj = lj.get(j, 0.0)
                if ljj == 0.0:
                    raise GinkgoError(f"IC(0) breakdown: zero pivot in row {j}")
                li[j] = s / ljj
            else:
                if s <= 0.0:
                    raise GinkgoError(
                        f"IC(0) breakdown: non-positive pivot {s:.3e} in "
                        f"row {i}; the matrix may not be positive definite"
                    )
                li[i] = np.sqrt(s)

    counts = np.fromiter((len(r) for r in l_rows), dtype=np.int64, count=n)
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    idx = np.empty(ptr[-1], dtype=np.int64)
    val = np.empty(ptr[-1], dtype=np.float64)
    for i, r in enumerate(l_rows):
        base = ptr[i]
        for off, c in enumerate(sorted(r)):
            idx[base + off] = c
            val[base + off] = r[c]
    return sp.csr_matrix((val, idx, ptr), shape=(n, n))


def ic0(matrix: Csr, storage_precision=None) -> Ic0Factorization:
    """Factorise a symmetric positive-definite CSR matrix as ``A ~= L L^T``.

    The elimination runs in full (float64) precision; the factor is
    stored at ``storage_precision`` (the system matrix's precision when
    ``None``).

    Args:
        matrix: Square CSR matrix (only its lower triangle is read).
        storage_precision: Precision the L factor is stored at.

    Returns:
        An :class:`Ic0Factorization` holding the executor-resident L.
    """
    if not matrix.size.is_square:
        raise BadDimension(f"IC(0) requires a square matrix, got {matrix.size}")
    storage = resolve_storage_dtype(storage_precision, matrix.dtype)
    a = matrix._scipy_view().tocsr().astype(np.float64)
    a.sort_indices()
    l_mat = _ic0_arrays(a)
    exec_ = matrix.executor
    exec_.run(
        factorization_cost(
            "ic0",
            matrix.size.rows,
            matrix.nnz,
            matrix.value_bytes,
            matrix.index_bytes,
        )
    )
    return Ic0Factorization(
        l_factor=Csr.from_scipy(
            exec_, l_mat, value_dtype=storage,
            index_dtype=matrix.index_dtype,
        )
    )
