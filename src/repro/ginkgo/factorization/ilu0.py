"""ILU(0): incomplete LU factorisation with zero fill-in.

Computes ``A ~= L U`` where L (unit lower triangular) and U (upper
triangular) together carry exactly the sparsity pattern of A.  Uses the
classic row-wise IKJ elimination restricted to the pattern — the same
numerics as Ginkgo's ParILU fixed-point iteration at convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.accessor import resolve_storage_dtype
from repro.ginkgo.exceptions import BadDimension, GinkgoError
from repro.ginkgo.matrix.csr import Csr
from repro.perfmodel import factorization_cost


@dataclass
class Ilu0Factorization:
    """Result of an ILU(0) factorisation: unit-lower L and upper U."""

    l_factor: Csr
    u_factor: Csr


def _ilu0_arrays(a: sp.csr_matrix):
    """Row-wise IKJ ILU(0) on a sorted CSR matrix; returns (L, U) csr."""
    n = a.shape[0]
    indptr, indices, data = a.indptr, a.indices, a.data.astype(np.float64)
    # U rows stored as dicts for O(1) pattern lookups during elimination.
    u_rows: list[dict] = [dict() for _ in range(n)]
    l_rows: list[dict] = [dict() for _ in range(n)]

    for i in range(n):
        start, stop = indptr[i], indptr[i + 1]
        row = {int(indices[p]): float(data[p]) for p in range(start, stop)}
        if i not in row:
            raise GinkgoError(
                f"ILU(0) requires a full diagonal; row {i} has no diagonal "
                "entry"
            )
        # Eliminate with previous rows k < i present in this row's pattern.
        for k in sorted(c for c in row if c < i):
            ukk = u_rows[k].get(k, 0.0)
            if ukk == 0.0:
                raise GinkgoError(
                    f"ILU(0) breakdown: zero pivot in row {k}"
                )
            lik = row[k] / ukk
            row[k] = lik
            for j, ukj in u_rows[k].items():
                if j > k and j in row:
                    row[j] -= lik * ukj
        for j, val in row.items():
            if j < i:
                l_rows[i][j] = val
            else:
                u_rows[i][j] = val
        l_rows[i][i] = 1.0

    def _build(rows: list[dict]) -> sp.csr_matrix:
        counts = np.fromiter((len(r) for r in rows), dtype=np.int64, count=n)
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        idx = np.empty(ptr[-1], dtype=np.int64)
        val = np.empty(ptr[-1], dtype=np.float64)
        for i, r in enumerate(rows):
            cols = sorted(r)
            base = ptr[i]
            for off, c in enumerate(cols):
                idx[base + off] = c
                val[base + off] = r[c]
        return sp.csr_matrix((val, idx, ptr), shape=(n, n))

    return _build(l_rows), _build(u_rows)


def ilu0(matrix: Csr, storage_precision=None) -> Ilu0Factorization:
    """Factorise a square CSR matrix as ``A ~= L U`` with zero fill-in.

    The elimination itself runs in full (float64) precision — it is a
    one-off generation cost over Python-float row dicts — and the factors
    are *stored* at ``storage_precision`` (the system matrix's precision
    when ``None``), where every subsequent triangular solve reads them.

    Args:
        matrix: Square CSR matrix with a structurally full diagonal.
        storage_precision: Precision the L/U factors are stored at.

    Returns:
        An :class:`Ilu0Factorization` with executor-resident L and U.
    """
    if not matrix.size.is_square:
        raise BadDimension(f"ILU(0) requires a square matrix, got {matrix.size}")
    storage = resolve_storage_dtype(storage_precision, matrix.dtype)
    a = matrix._scipy_view().tocsr().astype(np.float64)
    a.sort_indices()
    l_mat, u_mat = _ilu0_arrays(a)
    exec_ = matrix.executor
    exec_.run(
        factorization_cost(
            "ilu0",
            matrix.size.rows,
            matrix.nnz,
            matrix.value_bytes,
            matrix.index_bytes,
        )
    )
    return Ilu0Factorization(
        l_factor=Csr.from_scipy(
            exec_, l_mat, value_dtype=storage,
            index_dtype=matrix.index_dtype,
        ),
        u_factor=Csr.from_scipy(
            exec_, u_mat, value_dtype=storage,
            index_dtype=matrix.index_dtype,
        ),
    )
