"""Complete sparse LU factorisation with pivoting.

Wraps SuperLU (via SciPy) into the engine's factorisation interface; the
:class:`~repro.ginkgo.solver.direct.Direct` solver builds on the same
decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.ginkgo.exceptions import BadDimension
from repro.ginkgo.matrix.csr import Csr
from repro.ginkgo.matrix.permutation import Permutation
from repro.perfmodel import KernelCost


@dataclass
class LuFactorization:
    """Result of a complete LU factorisation: ``P_r A P_c = L U``.

    ``row_permutation``/``col_permutation`` carry SuperLU's ``perm_r``/
    ``perm_c`` verbatim; as permutation *matrices* this means
    ``L @ U == A[argsort(perm_r), :][:, argsort(perm_c)]``.
    """

    l_factor: Csr
    u_factor: Csr
    row_permutation: Permutation
    col_permutation: Permutation

    @property
    def fill_in_ratio(self) -> float:
        """(nnz(L) + nnz(U)) / nnz(A) is not recoverable here; L+U based."""
        return float(self.l_factor.nnz + self.u_factor.nnz)


def lu(matrix: Csr) -> LuFactorization:
    """Fully factorise a square CSR matrix with partial pivoting.

    Returns:
        A :class:`LuFactorization` with L, U, and the row/column
        permutations as engine operators.
    """
    if not matrix.size.is_square:
        raise BadDimension(f"LU requires a square matrix, got {matrix.size}")
    exec_ = matrix.executor
    decomposition = splu(
        matrix._scipy_view().tocsc().astype(np.float64),
        permc_spec="COLAMD",
    )
    fill = decomposition.L.nnz + decomposition.U.nnz
    exec_.run(
        KernelCost(
            name="lu_factorize",
            flops=8.0 * fill,
            bytes=6.0 * fill * (matrix.value_bytes + matrix.index_bytes),
            launches=16,
            dtype_name="float64",
        )
    )
    return LuFactorization(
        l_factor=Csr.from_scipy(
            exec_, decomposition.L.tocsr(), index_dtype=matrix.index_dtype
        ),
        u_factor=Csr.from_scipy(
            exec_, decomposition.U.tocsr(), index_dtype=matrix.index_dtype
        ),
        row_permutation=Permutation(exec_, decomposition.perm_r),
        col_permutation=Permutation(exec_, decomposition.perm_c),
    )
