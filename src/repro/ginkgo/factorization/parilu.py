"""ParILU: fixed-point iterative ILU(0) (``gko::factorization::ParIlu``).

Ginkgo's parallel incomplete factorisation replaces the inherently
sequential IKJ elimination with a Jacobi-style fixed-point iteration over
the factorisation equations

    l_ij = (a_ij - sum_{k<j} l_ik u_kj) / u_jj      (i > j)
    u_ij =  a_ij - sum_{k<i} l_ik u_kj              (i <= j)

restricted to A's sparsity pattern.  Every entry updates independently per
sweep — massively parallel on GPUs — and the iteration converges to the
exact ILU(0) factors (Chow & Patel, 2015).  A handful of sweeps usually
yields a preconditioner as effective as exact ILU(0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.accessor import resolve_storage_dtype
from repro.ginkgo.exceptions import BadDimension, GinkgoError
from repro.ginkgo.factorization.ilu0 import Ilu0Factorization
from repro.ginkgo.matrix.csr import Csr
from repro.perfmodel import factorization_cost


@dataclass
class ParIluFactorization(Ilu0Factorization):
    """ILU factors produced by the fixed-point iteration."""

    sweeps: int = 0


def parilu(
    matrix: Csr, sweeps: int = 5, storage_precision=None
) -> ParIluFactorization:
    """Approximate ``A ~= L U`` on A's pattern via fixed-point sweeps.

    The sweeps run in full (float64) precision; the factors are stored at
    ``storage_precision`` (the system matrix's precision when ``None``).

    Args:
        matrix: Square CSR matrix with a structurally full diagonal.
        sweeps: Fixed-point iterations; each sweep updates every stored
            entry once from the previous sweep's values (Jacobi style).
        storage_precision: Precision the L/U factors are stored at.

    Returns:
        :class:`ParIluFactorization` with unit-lower L and upper U.
    """
    if not matrix.size.is_square:
        raise BadDimension(
            f"ParILU requires a square matrix, got {matrix.size}"
        )
    if sweeps < 1:
        raise GinkgoError(f"sweeps must be >= 1, got {sweeps}")
    storage = resolve_storage_dtype(storage_precision, matrix.dtype)
    a = matrix._scipy_view().tocsr().astype(np.float64)
    a.sort_indices()
    n = a.shape[0]
    indptr, indices, values = a.indptr, a.indices, a.data

    # Row-dict views of the current iterate; initial guess: L strictly
    # lower part of A (unit diag), U upper part including diagonal.
    l_rows: list[dict] = [dict() for _ in range(n)]
    u_rows: list[dict] = [dict() for _ in range(n)]
    for i in range(n):
        has_diag = False
        for p in range(indptr[i], indptr[i + 1]):
            j = int(indices[p])
            v = float(values[p])
            if j < i:
                l_rows[i][j] = v
            else:
                u_rows[i][j] = v
                has_diag = has_diag or j == i
        if not has_diag:
            raise GinkgoError(
                f"ParILU requires a full diagonal; row {i} has no diagonal "
                "entry"
            )
        l_rows[i][i] = 1.0

    for _ in range(sweeps):
        new_l: list[dict] = [dict() for _ in range(n)]
        new_u: list[dict] = [dict() for _ in range(n)]
        for i in range(n):
            li = l_rows[i]
            for p in range(indptr[i], indptr[i + 1]):
                j = int(indices[p])
                a_ij = float(values[p])
                bound = min(i, j)
                s = a_ij
                # sum over k < min(i, j) on the shared pattern.
                for k, lik in li.items():
                    if k < bound:
                        ukj = u_rows[k].get(j)
                        if ukj is not None:
                            s -= lik * ukj
                if i > j:
                    ujj = u_rows[j].get(j, 0.0)
                    new_l[i][j] = s / ujj if ujj != 0.0 else 0.0
                else:
                    new_u[i][j] = s
            new_l[i][i] = 1.0
        l_rows, u_rows = new_l, new_u

    exec_ = matrix.executor
    exec_.run(
        factorization_cost(
            "ilu0",
            matrix.size.rows,
            matrix.nnz,
            matrix.value_bytes,
            matrix.index_bytes,
        ).scaled(sweeps / 4.0)
    )

    def _build(rows: list[dict]) -> sp.csr_matrix:
        counts = np.fromiter((len(r) for r in rows), dtype=np.int64, count=n)
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        idx = np.empty(ptr[-1], dtype=np.int64)
        val = np.empty(ptr[-1], dtype=np.float64)
        for i, r in enumerate(rows):
            base = ptr[i]
            for off, c in enumerate(sorted(r)):
                idx[base + off] = c
                val[base + off] = r[c]
        return sp.csr_matrix((val, idx, ptr), shape=(n, n))

    return ParIluFactorization(
        l_factor=Csr.from_scipy(
            exec_, _build(l_rows), value_dtype=storage,
            index_dtype=matrix.index_dtype,
        ),
        u_factor=Csr.from_scipy(
            exec_, _build(u_rows), value_dtype=storage,
            index_dtype=matrix.index_dtype,
        ),
        sweeps=sweeps,
    )
