"""Deterministic fault injection at executor boundaries.

Real heterogeneous deployments lose kernels to transient device errors,
fail allocations under memory pressure, corrupt data in flight, and stall
on contended links.  This module reproduces those failure modes inside the
simulated executor layer so the resilience machinery in
:mod:`repro.core.resilient` can be exercised — and benchmarked —
deterministically:

* :class:`FaultInjector` — a seedable policy deciding *when* a fault fires
  (per-site rates, an explicit call-indexed schedule, or both);
* :class:`FaultyExecutor` — an :class:`~repro.ginkgo.executor.Executor`
  wrapper with the same interface as any concrete executor that consults
  the injector at the three kernel/memory boundaries:

  ========  =====================  ====================================
  site      boundary               injected fault kinds
  ========  =====================  ====================================
  ``run``   kernel execution       ``transient`` (raises
                                   :class:`CudaError`), ``stall``
                                   (extra simulated clock time)
  ``alloc`` memory allocation      ``oom`` (raises
                                   :class:`AllocationError`)
  ``copy``  data movement          ``transient`` (raises
                                   :class:`CudaError`),
                                   ``corruption`` (silent NaN poke or
                                   bit-flip in the copied buffer)
  ========  =====================  ====================================

Four further sites cover the distributed and batched layers.  They are
consulted by the distributed
:class:`~repro.ginkgo.distributed.comm.Communicator` and the batched SpMV
rather than by the executor itself (the injector is discovered through
:func:`injector_of` on the operator's executor):

  =============  ==================  =====================================
  site           boundary            injected fault kinds
  =============  ==================  =====================================
  ``halo``       halo exchange       ``drop`` (raises
                                     :class:`CommunicationError`),
                                     ``duplicate`` (the exchange is
                                     charged twice), ``late`` (extra
                                     simulated delay, ``fault`` category)
  ``allreduce``  global reduction    ``corruption`` (poisons the reduced
                                     payload), ``straggler`` (extra
                                     simulated delay)
  ``rank``       any collective      ``failure`` (raises
                                     :class:`RankFailure` for a
                                     deterministically chosen rank)
  ``batch``      batched SpMV        ``corruption`` (poisons one active
                                     system's output block)
  =============  ==================  =====================================

Every injected fault is appended to :attr:`FaultInjector.injected` and
emitted as a structured ``fault_injected`` event on the executor's logger
chain, so tests and benchmarks can assert on exact fault sequences.  Two
runs with the same seed (and the same call pattern) produce identical
fault sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ginkgo.exceptions import AllocationError, CudaError, GinkgoError
from repro.ginkgo.executor import Executor, _nbytes_of

#: Boundaries faults can be injected at (executor, communicator, batch).
FAULT_SITES = ("run", "alloc", "copy", "halo", "allreduce", "rank", "batch")

#: Fault kinds valid at each site.
SITE_KINDS = {
    "run": ("transient", "stall"),
    "alloc": ("oom",),
    "copy": ("transient", "corruption"),
    "halo": ("drop", "duplicate", "late"),
    "allreduce": ("corruption", "straggler"),
    "rank": ("failure",),
    "batch": ("corruption",),
}

#: Default kind when a schedule entry names only a call index.
DEFAULT_KIND = {
    "run": "transient",
    "alloc": "oom",
    "copy": "transient",
    "halo": "drop",
    "allreduce": "corruption",
    "rank": "failure",
    "batch": "corruption",
}


@dataclass(frozen=True)
class InjectedFault:
    """One injected fault, in injection order.

    Attributes:
        index: Ordinal of this fault across all sites (0-based).
        site: Boundary the fault fired at (``run``/``alloc``/``copy``).
        kind: Fault kind (see :data:`SITE_KINDS`).
        call: 0-based index of the boundary call that triggered it.
        detail: Site-specific context (kernel name, allocation shape, ...).
    """

    index: int
    site: str
    kind: str
    call: int
    detail: str = ""


class FaultInjector:
    """Seedable policy deciding when and how faults fire.

    Args:
        seed: Seed of the decision stream; equal seeds (with equal call
            patterns) give identical fault sequences.
        kernel_rate: Probability of a transient :class:`CudaError` per
            kernel ``run``.
        stall_rate: Probability of a stall (extra simulated time) per
            kernel ``run``.
        alloc_rate: Probability of an :class:`AllocationError` per
            ``alloc``/``alloc_like``.
        copy_rate: Probability of a transient :class:`CudaError` per
            ``copy_from``.
        corruption_rate: Probability of silent data corruption per
            ``copy_from``.
        halo_drop_rate: Probability of a dropped halo exchange.
        halo_duplicate_rate: Probability of a duplicated halo exchange.
        halo_late_rate: Probability of a late halo exchange.
        allreduce_corruption_rate: Probability of a corrupted all-reduce
            payload.
        straggler_rate: Probability of a straggling rank delaying an
            all-reduce.
        rank_failure_rate: Probability of a rank failure per collective.
        batch_corruption_rate: Probability of corrupting one system's
            block per batched SpMV.
        stall_seconds: Simulated duration of one injected stall (also
            the straggler / late-halo delay).
        corruption_mode: ``"nan"`` pokes a NaN into one entry;
            ``"bitflip"`` flips one bit of one float64 entry.
        max_faults: Stop injecting after this many faults (None: no cap).
        schedule: Deterministic schedule, mapping a site name to an
            iterable of call indices (``{"run": (0, 3)}``) or of
            ``(call_index, kind)`` pairs (``{"run": [(2, "stall")]}``).
            Scheduled faults fire regardless of the rates.
    """

    def __init__(
        self,
        seed: int = 0,
        kernel_rate: float = 0.0,
        stall_rate: float = 0.0,
        alloc_rate: float = 0.0,
        copy_rate: float = 0.0,
        corruption_rate: float = 0.0,
        halo_drop_rate: float = 0.0,
        halo_duplicate_rate: float = 0.0,
        halo_late_rate: float = 0.0,
        allreduce_corruption_rate: float = 0.0,
        straggler_rate: float = 0.0,
        rank_failure_rate: float = 0.0,
        batch_corruption_rate: float = 0.0,
        stall_seconds: float = 1e-3,
        corruption_mode: str = "nan",
        max_faults: int | None = None,
        schedule: dict | None = None,
    ) -> None:
        rates = {
            ("run", "transient"): kernel_rate,
            ("run", "stall"): stall_rate,
            ("alloc", "oom"): alloc_rate,
            ("copy", "transient"): copy_rate,
            ("copy", "corruption"): corruption_rate,
            ("halo", "drop"): halo_drop_rate,
            ("halo", "duplicate"): halo_duplicate_rate,
            ("halo", "late"): halo_late_rate,
            ("allreduce", "corruption"): allreduce_corruption_rate,
            ("allreduce", "straggler"): straggler_rate,
            ("rank", "failure"): rank_failure_rate,
            ("batch", "corruption"): batch_corruption_rate,
        }
        for (site, kind), rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise GinkgoError(
                    f"{site}/{kind} fault rate must be in [0, 1], got {rate}"
                )
        for site in SITE_KINDS:
            total = sum(rates[(site, kind)] for kind in SITE_KINDS[site])
            if total > 1.0:
                raise GinkgoError(
                    f"combined fault rates at site {site!r} exceed 1 ({total})"
                )
        if corruption_mode not in ("nan", "bitflip"):
            raise GinkgoError(
                f"corruption_mode must be 'nan' or 'bitflip', "
                f"got {corruption_mode!r}"
            )
        self.seed = seed
        self.rates = rates
        self.stall_seconds = float(stall_seconds)
        self.corruption_mode = corruption_mode
        self.max_faults = max_faults
        self._schedule = self._normalise_schedule(schedule or {})
        self._rng = np.random.default_rng(seed)
        self._calls = {site: 0 for site in FAULT_SITES}
        self.injected: list[InjectedFault] = []
        self.enabled = True

    @staticmethod
    def _normalise_schedule(schedule: dict) -> dict:
        normalised: dict = {}
        for site, entries in schedule.items():
            if site not in FAULT_SITES:
                raise GinkgoError(
                    f"unknown fault site {site!r}; available: {FAULT_SITES}"
                )
            for entry in entries:
                if isinstance(entry, tuple):
                    call, kind = entry
                else:
                    call, kind = entry, DEFAULT_KIND[site]
                if kind not in SITE_KINDS[site]:
                    raise GinkgoError(
                        f"fault kind {kind!r} invalid at site {site!r}; "
                        f"available: {SITE_KINDS[site]}"
                    )
                normalised[(site, int(call))] = kind
        return normalised

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def decide(self, site: str, detail: str = "") -> InjectedFault | None:
        """Decide whether the current call at ``site`` faults.

        Advances the per-site call counter; returns the recorded
        :class:`InjectedFault` when a fault fires, else None.
        """
        if site not in FAULT_SITES:
            raise GinkgoError(
                f"unknown fault site {site!r}; available: {FAULT_SITES}"
            )
        if not self.enabled:
            # Paused injectors neither count calls nor consume random
            # draws, so the fault sequence only depends on armed activity.
            return None
        call = self._calls[site]
        self._calls[site] = call + 1
        kind = self._schedule.get((site, call))
        if kind is None:
            kind = self._draw(site)
        if kind is None:
            return None
        if self.max_faults is not None and len(self.injected) >= self.max_faults:
            return None
        fault = InjectedFault(
            index=len(self.injected),
            site=site,
            kind=kind,
            call=call,
            detail=detail,
        )
        self.injected.append(fault)
        return fault

    def _draw(self, site: str) -> str | None:
        """One uniform draw per boundary call, split across the site's kinds."""
        kinds = SITE_KINDS[site]
        if not any(self.rates[(site, kind)] for kind in kinds):
            return None
        u = self._rng.random()
        acc = 0.0
        for kind in kinds:
            acc += self.rates[(site, kind)]
            if u < acc:
                return kind
        return None

    # ------------------------------------------------------------------
    # corruption
    # ------------------------------------------------------------------
    def corrupt(self, buffer: np.ndarray) -> int:
        """Silently corrupt one entry of ``buffer`` in place.

        Returns the flat index of the poisoned entry.
        """
        if buffer.size == 0:
            return -1
        flat_index = int(self._rng.integers(buffer.size))
        flat = buffer.reshape(-1)
        if self.corruption_mode == "nan" or not np.issubdtype(
            buffer.dtype, np.floating
        ):
            flat[flat_index] = (
                np.nan if np.issubdtype(buffer.dtype, np.floating) else 0
            )
        else:
            bits = flat[flat_index : flat_index + 1].view(np.uint64)
            bits ^= np.uint64(1) << np.uint64(int(self._rng.integers(63)))
        return flat_index

    def choose(self, count: int) -> int:
        """Deterministically pick a victim index in ``[0, count)``.

        Used to select the failed rank or the corrupted batch system;
        draws from the same seeded stream as the rate decisions, so equal
        seeds pick equal victims.
        """
        if count < 1:
            raise GinkgoError(f"cannot choose from {count} candidates")
        return int(self._rng.integers(count))

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def paused(self):
        """Context manager suspending injection (e.g. while staging data).

        Usage::

            with injector.paused():
                mtx = Csr.from_scipy(faulty_exec, A)   # no faults here
        """
        from contextlib import contextmanager

        @contextmanager
        def _pause():
            previous = self.enabled
            self.enabled = False
            try:
                yield self
            finally:
                self.enabled = previous

        return _pause()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def fault_count(self) -> int:
        return len(self.injected)

    def calls(self, site: str) -> int:
        """How many boundary calls have been observed at ``site``."""
        return self._calls[site]

    def __repr__(self) -> str:
        active = {
            f"{site}:{kind}": rate
            for (site, kind), rate in self.rates.items()
            if rate
        }
        return (
            f"FaultInjector(seed={self.seed}, rates={active}, "
            f"scheduled={len(self._schedule)}, injected={self.fault_count})"
        )


def injector_of(exec_) -> FaultInjector | None:
    """The :class:`FaultInjector` behind ``exec_``, or None.

    Lets communicator- and batch-level code consult the injector of a
    wrapping :class:`FaultyExecutor` without knowing about the wrapper.
    """
    injector = getattr(exec_, "injector", None)
    return injector if isinstance(injector, FaultInjector) else None


class FaultyExecutor(Executor):
    """An executor wrapper that injects faults at kernel/memory boundaries.

    Wraps any concrete executor (``FaultyExecutor.create(inner, injector)``)
    and presents the same :class:`Executor` interface: allocation, copies,
    kernel runs, clocks, and memory accounting all delegate to the wrapped
    executor, with the injector consulted at each boundary first.  Injected
    faults are logged as ``fault_injected`` events to any attached loggers.
    """

    def __init__(self, inner: Executor, injector: FaultInjector) -> None:
        if not Executor._allow_construction:
            raise TypeError(
                "FaultyExecutor cannot be constructed directly; "
                "use FaultyExecutor.create(inner, injector)"
            )
        if isinstance(inner, FaultyExecutor):
            raise GinkgoError("refusing to wrap an already-faulty executor")
        if not isinstance(inner, Executor):
            raise GinkgoError(
                f"FaultyExecutor wraps an Executor, got {type(inner).__name__}"
            )
        self._inner = inner
        self._injector = injector
        self._loggers = []

    # ------------------------------------------------------------------
    # identity / delegation
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        # Transparent: callers (and error messages) see the device's name.
        return self._inner.name

    @property
    def inner(self) -> Executor:
        """The wrapped concrete executor."""
        return self._inner

    @property
    def injector(self) -> FaultInjector:
        return self._injector

    def get_master(self) -> Executor:
        return self if self.is_host else self._inner.get_master()

    def __getattr__(self, attr: str):
        # Anything not intercepted (spec, clock, counters, ...) is served
        # by the wrapped executor.  __getattr__ only fires after normal
        # lookup fails, so overridden methods stay in charge.
        try:
            inner = self.__dict__["_inner"]
        except KeyError:
            raise AttributeError(attr) from None
        return getattr(inner, attr)

    def __repr__(self) -> str:
        return f"<FaultyExecutor wrapping {self._inner!r}>"

    # ------------------------------------------------------------------
    # faulted boundaries
    # ------------------------------------------------------------------
    def _announce(self, fault: InjectedFault) -> None:
        self._log(
            "fault_injected",
            site=fault.site,
            kind=fault.kind,
            index=fault.index,
            call=fault.call,
            detail=fault.detail,
        )

    def alloc(self, shape, dtype) -> np.ndarray:
        nbytes = _nbytes_of(shape, dtype)
        fault = self._injector.decide("alloc", detail=f"alloc:{nbytes}B")
        if fault is not None:
            self._announce(fault)
            raise AllocationError(self.name, requested=nbytes, available=0)
        return self._inner.alloc(shape, dtype)

    def alloc_like(self, data: np.ndarray) -> np.ndarray:
        fault = self._injector.decide("alloc", detail=f"alloc:{data.nbytes}B")
        if fault is not None:
            self._announce(fault)
            raise AllocationError(
                self.name, requested=data.nbytes, available=0
            )
        return self._inner.alloc_like(data)

    def copy_from(self, src_exec: Executor, data: np.ndarray) -> np.ndarray:
        fault = self._injector.decide("copy", detail=f"copy:{data.nbytes}B")
        if fault is not None and fault.kind == "transient":
            self._announce(fault)
            raise CudaError(
                f"simulated transient fault copying {data.nbytes} bytes "
                f"to {self.name}"
            )
        if isinstance(src_exec, FaultyExecutor):
            src_exec = src_exec.inner
        elif src_exec is self:
            src_exec = self._inner
        out = self._inner.copy_from(src_exec, data)
        if fault is not None:  # kind == "corruption"
            poisoned = self._injector.corrupt(out)
            self._announce(fault)
            self._log(
                "data_corrupted", index=fault.index, flat_index=poisoned
            )
        return out

    def copy_into(
        self, src_exec: Executor, data: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        fault = self._injector.decide("copy", detail=f"copy:{data.nbytes}B")
        if fault is not None and fault.kind == "transient":
            self._announce(fault)
            raise CudaError(
                f"simulated transient fault copying {data.nbytes} bytes "
                f"to {self.name}"
            )
        if isinstance(src_exec, FaultyExecutor):
            src_exec = src_exec.inner
        elif src_exec is self:
            src_exec = self._inner
        self._inner.copy_into(src_exec, data, out)
        if fault is not None:  # kind == "corruption"
            poisoned = self._injector.corrupt(out)
            self._announce(fault)
            self._log(
                "data_corrupted", index=fault.index, flat_index=poisoned
            )
        return out

    def run(self, cost) -> float:
        fault = self._injector.decide("run", detail=cost.name)
        if fault is not None:
            self._announce(fault)
            if fault.kind == "stall":
                # The kernel completes, late: model link/SM contention.
                self.clock.advance(self._injector.stall_seconds)
            else:
                raise CudaError(
                    f"simulated transient fault in kernel {cost.name!r} "
                    f"on {self.name}"
                )
        return self._inner.run(cost)

    def run_partitioned(self, cost, tasks, parts=None):
        """Faulted partitioned dispatch (batch/distributed rank kernels).

        Without this override ``getattr(exec_, "run_partitioned")`` would
        resolve through ``__getattr__`` to the inner executor's bound
        method, silently bypassing the ``run`` fault site for every
        partitioned batch or distributed kernel.
        """
        fault = self._injector.decide("run", detail=cost.name)
        if fault is not None:
            self._announce(fault)
            if fault.kind == "stall":
                self.clock.advance(self._injector.stall_seconds)
            else:
                raise CudaError(
                    f"simulated transient fault in kernel {cost.name!r} "
                    f"on {self.name}"
                )
        runner = getattr(self._inner, "run_partitioned", None)
        if runner is None:
            # Inner executor has no thread pool: collapse to the serial
            # path (same numerics, one aggregate kernel charge).
            results = [task() for task in tasks]
            self._inner.run(cost)
            return results
        return runner(cost, tasks, parts)

    # Non-faulted boundaries delegate explicitly (they are defined on the
    # base class, so __getattr__ would not reroute them).
    def free(self, data: np.ndarray) -> None:
        self._inner.free(data)

    def synchronize(self) -> None:
        self._inner.synchronize()

    def _check_capacity(self, nbytes: int) -> None:
        self._inner._check_capacity(nbytes)

    def _track_alloc(self, nbytes: int) -> None:
        self._inner._track_alloc(nbytes)
