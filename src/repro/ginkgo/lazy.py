"""Lazy operator expressions with trace-level kernel fusion (``pg.deferred``).

Eagerly, every expression-level operation (``A @ x``, ``alpha * x``,
``x + y``) crosses the binding layer once and runs one kernel, cloning
operands for out-of-place semantics — exactly the per-call overhead the
paper measures.  Inside a :func:`deferred` region the same expressions
record a small DAG of :class:`LazyExpr` nodes instead; a flush pass then
executes each requested result as one *fused region*:

* one :func:`repro.bindings.dispatch.resolve` lookup and one binding
  crossing per region (instead of one per operation);
* maximal chains of elementwise nodes collapse into a single fused
  streaming kernel (:func:`repro.perfmodel.fused_axpby_cost`), and an
  SpMV whose only consumer is such a chain is folded into it
  (:func:`repro.perfmodel.fused_spmv_axpby_cost`) — intermediates never
  round-trip through DRAM;
* intermediate buffers come from a PR-3 :class:`Workspace` pool instead
  of fresh allocations, so steady-state flushes are allocation-free;
* generic operators in the tree (preconditioners, solvers) run through
  their own ``apply`` — their kernels are unchanged, but they amortise
  the region's single dispatch charge, which is how preconditioner
  chains fuse.

The numerics are computed with the same NumPy operations in the same
order as the eager path, so flushed results are **bit-identical** to
eager execution; only the modeled launches, bytes, clones, and binding
crossings shrink.

Invalidation contract: every node snapshots the ``data_version`` of each
operand it reads.  Evaluation always reads live data, and a node's
memoized value is reused only while every operand's version still
matches — mutating an operand between record and flush therefore forces
a recompute, never a stale replay.  Writes that bypass
``mark_modified()`` (raw-array pokes) are invisible to this check, which
is why the exported views are read-only by default.

Flush points: leaving the ``with pg.deferred()`` block, calling
``trace.flush()``, or requesting any expression's value
(:meth:`LazyExpr.evaluate` / ``to_numpy``/``tensor``).  ``.into(dst)``
registers a destination write without forcing a flush.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.bindings import dispatch
from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import (
    DimensionMismatch,
    ExecutorMismatch,
    GinkgoError,
)
from repro.ginkgo.matrix.base import SparseBase
from repro.ginkgo.matrix.dense import Dense, _coef
from repro.ginkgo.solver.workspace import Workspace
from repro.perfmodel import fused_axpby_cost, fused_spmv_axpby_cost, spmv_cost

#: Stack of active recording traces (innermost last).
_STACK: list = []


def is_recording() -> bool:
    """Whether a ``pg.deferred()`` region is currently recording."""
    return bool(_STACK)


def _current():
    return _STACK[-1] if _STACK else None


def _merge_deps(*dep_tuples):
    """Union version-snapshot tuples, deduplicated per operand object."""
    merged = {}
    for deps in dep_tuples:
        for obj, version in deps:
            merged[id(obj)] = (obj, version)
    return tuple(merged.values())


def _operand_dense(operand):
    """Coerce a Dense or tensor-like operand to its engine Dense."""
    if isinstance(operand, Dense):
        return operand
    dense = getattr(operand, "dense", None)
    if isinstance(dense, Dense):
        return dense
    raise TypeError(
        f"expected a Dense, tensor, or lazy expression, got "
        f"{type(operand).__name__}"
    )


def _to_expr(operand) -> "LazyExpr":
    if isinstance(operand, LazyExpr):
        return operand
    return LazyExpr.leaf(_operand_dense(operand))


class LazyExpr:
    """One node of a recorded expression DAG.

    Nodes are built by the operator protocol (``A @ x``, ``alpha * x``,
    ``x + y``, ``x - y``) while a :func:`deferred` trace is recording, or
    whenever an existing ``LazyExpr`` appears as an operand.  A node
    holds structure only — operand *data* is read live at flush time.
    """

    __slots__ = (
        "kind", "executor", "size", "dtype", "op", "alpha", "children",
        "deps", "_result", "_result_versions",
    )

    def __init__(self, kind, executor, size, dtype, *, op=None, alpha=None,
                 children=(), deps=()):
        self.kind = kind
        self.executor = executor
        self.size = size
        self.dtype = np.dtype(dtype)
        self.op = op
        self.alpha = alpha
        self.children = tuple(children)
        #: ``(operand, data_version at record time)`` for every LinOp
        #: this subtree reads — the invalidation contract.
        self.deps = deps
        self._result = None
        self._result_versions = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def leaf(dense: Dense) -> "LazyExpr":
        return LazyExpr(
            "leaf", dense.executor, dense.size, dense.dtype,
            deps=((dense, dense.data_version),),
        )

    @staticmethod
    def apply(op, operand) -> "LazyExpr":
        child = _to_expr(operand)
        if op.size.cols != child.size.rows:
            raise DimensionMismatch(
                type(op).__name__,
                expected=f"operand with {op.size.cols} rows",
                got=f"operand with {child.size.rows} rows",
            )
        if child.executor is not op.executor:
            raise ExecutorMismatch(
                type(op).__name__,
                expected=op.executor.name,
                got=child.executor.name,
            )
        dtype = np.promote_types(getattr(op, "dtype", child.dtype), child.dtype)
        return LazyExpr(
            "apply", op.executor, Dim(op.size.rows, child.size.cols), dtype,
            op=op, children=(child,),
            deps=_merge_deps(((op, op.data_version),), child.deps),
        )

    @staticmethod
    def scale(alpha, operand) -> "LazyExpr":
        child = _to_expr(operand)
        deps = child.deps
        if isinstance(alpha, Dense):
            deps = _merge_deps(((alpha, alpha.data_version),), deps)
        return LazyExpr(
            "scale", child.executor, child.size, child.dtype,
            alpha=alpha, children=(child,), deps=deps,
        )

    @staticmethod
    def add(left, right) -> "LazyExpr":
        left = _to_expr(left)
        right = _to_expr(right)
        if left.size != right.size:
            raise DimensionMismatch(
                "lazy add", expected=left.size, got=right.size
            )
        if left.executor is not right.executor:
            raise ExecutorMismatch(
                "lazy add",
                expected=left.executor.name,
                got=right.executor.name,
            )
        return LazyExpr(
            "add", left.executor, left.size,
            np.promote_types(left.dtype, right.dtype),
            children=(left, right), deps=_merge_deps(left.deps, right.deps),
        )

    # ------------------------------------------------------------------
    # expression-building operators
    # ------------------------------------------------------------------
    def __add__(self, other):
        return LazyExpr.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        return LazyExpr.add(self, LazyExpr.scale(-1.0, _to_expr(other)))

    def __rsub__(self, other):
        return LazyExpr.add(_to_expr(other), LazyExpr.scale(-1.0, self))

    def __mul__(self, alpha):
        return LazyExpr.scale(alpha, self)

    __rmul__ = __mul__

    def __neg__(self):
        return LazyExpr.scale(-1.0, self)

    @property
    def shape(self) -> tuple:
        return (self.size.rows, self.size.cols)

    @property
    def num_nodes(self) -> int:
        """Distinct nodes in this expression's DAG (leaves included)."""
        seen = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.extend(node.children)
        return len(seen)

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def into(self, dst):
        """Request this expression's value be written into ``dst``.

        Recording: registers a flush root (deferred until the trace
        flushes).  Otherwise the region executes immediately.  Returns
        ``dst``.
        """
        dst_dense = _operand_dense(dst)
        if dst_dense.size != self.size:
            raise DimensionMismatch(
                "LazyExpr.into", expected=self.size, got=dst_dense.size
            )
        if dst_dense.executor is not self.executor:
            raise ExecutorMismatch(
                "LazyExpr.into",
                expected=self.executor.name,
                got=dst_dense.executor.name,
            )
        trace = _current()
        if trace is not None:
            trace.record_root(self, dst_dense)
        else:
            _immediate().materialize(self, dst_dense)
        return dst

    def evaluate(self) -> Dense:
        """Force evaluation (a flush point) and return the result Dense."""
        if self._result is not None and all(
            obj.data_version == version
            for obj, version in self._result_versions
        ):
            return self._result
        trace = _current()
        if trace is None:
            trace = _immediate()
        result = trace.materialize(self)
        self._result = result
        self._result_versions = tuple(
            (obj, obj.data_version) for obj, _ in self.deps
        ) + ((result, result.data_version),)
        return result

    def tensor(self):
        """Evaluate and wrap the result in a :class:`~repro.core.Tensor`."""
        from repro.core.tensor import Tensor

        return Tensor(self.evaluate())

    def to_numpy(self) -> np.ndarray:
        """Evaluate and copy the result out to host NumPy."""
        return self.evaluate().to_numpy()

    def __repr__(self) -> str:
        return (
            f"LazyExpr({self.kind!r}, {self.size.rows}x{self.size.cols}, "
            f"dtype={self.dtype}, nodes={self.num_nodes})"
        )


class _Chain:
    """An open fused-kernel segment being grown bottom-up during a flush."""

    __slots__ = ("base", "inputs", "flops", "nodes")

    def __init__(self, base=None):
        #: Deferred SpMV cost when the chain grows out of a matrix apply.
        self.base = base
        #: ids of external input arrays the elementwise tail reads.
        self.inputs = set()
        #: Elementwise operations per vector element.
        self.flops = 0
        #: Recorded nodes folded into this segment.
        self.nodes = 0


class _RegionRun:
    """Executable plan for one fused region (one flush root).

    Instances are handed through the ``fused_region_<type>`` binding so
    the region pays exactly one binding crossing; calling the plan pushes
    the ``fused_region`` span, evaluates the subtree with segment-fused
    kernel charges, and writes the destination.
    """

    def __init__(self, trace, root, dst, memo, slots):
        self.trace = trace
        self.root = root
        self.dst = dst
        self.memo = memo
        self.slots = slots
        self.exec_ = root.executor
        self.counts: dict = {}
        self.chains: dict = {}
        self.kernels = 0
        self.recomputed = 0

    # -- bookkeeping ----------------------------------------------------
    def _memo_valid(self, node):
        cached = self.memo.get(id(node))
        if cached is None:
            return False
        _, versions = cached
        return all(obj.data_version == v for obj, v in versions)

    def _prepass(self) -> int:
        """Count consumer edges per node; return the pending-op count."""
        seen = {id(self.root)}
        stack = [self.root]
        pending = 0
        while stack:
            node = stack.pop()
            if node.kind != "leaf" and not self._memo_valid(node):
                pending += 1
            for child in node.children:
                self.counts[id(child)] = self.counts.get(id(child), 0) + 1
                if id(child) not in seen:
                    seen.add(id(child))
                    stack.append(child)
        return pending

    def _slot(self, node, zero: bool = False) -> np.ndarray:
        name = f"lazy.v{next(self.slots)}"
        return self.trace._pool(self.exec_).tensor(
            name, (node.size.rows, node.size.cols), node.dtype, zero=zero
        )

    # -- segment charging -----------------------------------------------
    def _close_chain(self, node) -> None:
        chain = self.chains.pop(id(node), None)
        if chain is None:
            return
        length = node.size.num_elements
        value_bytes = node.dtype.itemsize
        if chain.base is not None:
            if chain.flops == 0 and not chain.inputs:
                cost = chain.base  # bare SpMV, nothing folded
            else:
                cost = fused_spmv_axpby_cost(
                    chain.base, length, value_bytes,
                    len(chain.inputs), chain.flops,
                )
        else:
            cost = fused_axpby_cost(
                length, value_bytes, max(1, len(chain.inputs)), chain.flops
            )
        self.exec_.run(cost)
        self.kernels += 1

    def _take_chain(self, child):
        """Inherit ``child``'s open chain if this is its only consumer."""
        if self.counts.get(id(child), 0) == 1:
            return self.chains.pop(id(child), None)
        self._close_chain(child)
        return None

    def _register(self, node, chain) -> None:
        self.chains[id(node)] = chain
        # A value consumed more than once (or a flush root) materialises
        # here: charge the segment now.  Single-consumer chains stay open
        # for the parent to extend.
        if self.counts.get(id(node), 0) != 1:
            self._close_chain(node)

    # -- evaluation -----------------------------------------------------
    def _eval(self, node, out=None) -> np.ndarray:
        if node.kind == "leaf":
            return node.deps[0][0]._data
        cached = self.memo.get(id(node))
        if cached is not None:
            arr, versions = cached
            if all(obj.data_version == v for obj, v in versions):
                return arr
        if any(obj.data_version != v for obj, v in node.deps):
            self.recomputed += 1
        if node.kind == "apply":
            arr = self._eval_apply(node, out)
        elif node.kind == "scale":
            arr = self._eval_scale(node, out)
        elif node.kind == "add":
            arr = self._eval_add(node, out)
        else:  # pragma: no cover - constructors only build known kinds
            raise GinkgoError(f"unknown lazy node kind {node.kind!r}")
        self.memo[id(node)] = (
            arr, tuple((obj, obj.data_version) for obj, _ in node.deps)
        )
        return arr

    def _eval_apply(self, node, out):
        child = node.children[0]
        b = self._eval(child)
        # A chain feeding an SpMV must materialise first.
        self._close_chain(child)
        op = node.op
        if isinstance(op, (SparseBase, Dense)):
            if isinstance(op, SparseBase):
                result = op._spmv_arrays(b)
            else:
                result = op._data @ b
            target = out if out is not None else self._slot(node)
            np.copyto(target, np.asarray(result).reshape(target.shape))
            cost = _matrix_spmv_cost(op, b.shape[1])
            if self.counts.get(id(node), 0) == 1:
                # Defer the charge: an exclusive elementwise consumer may
                # fold this SpMV into its fused kernel.
                self.chains[id(node)] = _Chain(base=cost)
            else:
                self.exec_.run(cost)
                self.kernels += 1
            return target
        # Generic operator (preconditioner, solver, composition): its
        # apply runs unchanged — same kernels, same spans — but under
        # this region's single dispatch/binding charge.  The output slot
        # is zeroed so solver-style operators see a deterministic
        # initial guess, like a fresh allocation.
        b_dense = Dense._wrap(self.exec_, b)
        out_dense = Dense._wrap(self.exec_, self._slot(node, zero=True))
        op.apply(b_dense, out_dense)
        self.kernels += 1
        if out is not None:
            np.copyto(out, out_dense._data)
            return out
        return out_dense._data

    def _eval_scale(self, node, out):
        child = node.children[0]
        src = self._eval(child)
        chain = self._take_chain(child)
        if chain is None:
            chain = _Chain()
            chain.inputs.add(id(src))
        target = out if out is not None else self._slot(node)
        coef = _coef(node.alpha, node.dtype)
        # Mirror Dense.scale's special cases so the bits match eager
        # execution exactly (0.0 zero-fills; 1.0 leaves values untouched).
        if np.ndim(coef) == 0 and coef == 0.0:
            target.fill(0.0)
        elif np.ndim(coef) == 0 and coef == 1.0:
            if target is not src:
                np.copyto(target, src)
        else:
            np.multiply(src, coef, out=target)
        chain.flops += 1
        chain.nodes += 1
        self._register(node, chain)
        return target

    def _eval_add(self, node, out):
        left, right = node.children
        left_arr = self._eval(left)
        right_arr = self._eval(right)
        left_chain = self._take_chain(left)
        right_chain = self._take_chain(right)
        # Extend one producer chain (prefer the one carrying an SpMV);
        # the other operand materialises as an external input.
        if left_chain is not None and (
            right_chain is None or right_chain.base is None
        ):
            chain = left_chain
            other = right
            other_arr, other_chain = right_arr, right_chain
        elif right_chain is not None:
            chain = right_chain
            other = left
            other_arr, other_chain = left_arr, left_chain
        else:
            chain = _Chain()
            chain.inputs.add(id(left_arr))
            other = None
            other_arr, other_chain = right_arr, None
        if other_chain is not None:
            self.chains[id(other)] = other_chain
            self._close_chain(other)
        chain.inputs.add(id(other_arr))
        target = out if out is not None else self._slot(node)
        np.add(left_arr, right_arr, out=target)
        chain.flops += 1
        chain.nodes += 1
        self._register(node, chain)
        return target

    # -- the plan entry point (called through the binding) --------------
    def __call__(self):
        root, dst = self.root, self.dst
        clock = self.exec_.clock
        if root.kind == "leaf":
            # Degenerate region: a plain value passthrough.
            source = root.deps[0][0]
            if dst is None:
                return source
            return dst.copy_values_from(source)
        pending = self._prepass()
        clock.push_span(
            "fused_region", "fused_region", ops_replaced=pending
        )
        try:
            root_out = None
            if dst is not None and root.kind in ("scale", "add"):
                # Elementwise roots stream straight into the destination
                # (positionally aligned, so aliasing an operand is safe).
                root_out = dst._data
            arr = self._eval(root, out=root_out)
            self._close_chain(root)
            if dst is not None:
                if arr is not dst._data:
                    np.copyto(
                        dst._data, np.asarray(arr).reshape(dst._data.shape)
                    )
                dst.mark_modified()
                result = dst
            else:
                result = Dense.empty(self.exec_, root.size, root.dtype)
                np.copyto(result._data, np.asarray(arr).reshape(
                    result._data.shape
                ))
        finally:
            clock.pop_span(
                ops_replaced=pending,
                fused_kernels=self.kernels,
                recomputed=self.recomputed,
            )
        trace = self.trace
        trace.regions += 1
        trace.ops_replaced += pending
        trace.recomputed += self.recomputed
        return result


def _matrix_spmv_cost(op, num_rhs: int):
    if isinstance(op, SparseBase):
        return spmv_cost(
            op._format_name,
            op.size.rows,
            op.size.cols,
            op.nnz,
            op.value_bytes,
            op.index_bytes,
            num_rhs=num_rhs,
            **op._spmv_cost_kwargs(),
        )
    return spmv_cost(
        "dense", op.size.rows, op.size.cols, op.size.num_elements,
        op.value_bytes, 8, num_rhs=num_rhs,
    )


class DeferredTrace:
    """The recording made inside one ``pg.deferred()`` region.

    Attributes (after flushing):
        flushes: Number of flush passes executed.
        regions: Fused regions executed (one per flush root).
        ops_replaced: Recorded operations collapsed into those regions.
        recomputed: Nodes whose operands changed between record and
            evaluation (the invalidation contract firing).
    """

    def __init__(self) -> None:
        self._roots: list = []
        self._pools: dict = {}
        self.flushes = 0
        self.regions = 0
        self.ops_replaced = 0
        self.recomputed = 0

    @property
    def pending(self) -> int:
        """Roots recorded but not yet flushed."""
        return len(self._roots)

    def record_root(self, expr: LazyExpr, dst: Dense | None) -> None:
        self._roots.append((expr, dst))

    def _pool(self, exec_) -> Workspace:
        ws = self._pools.get(exec_)
        if ws is None:
            ws = Workspace(exec_)
            self._pools[exec_] = ws
        return ws

    def flush(self):
        """Execute every pending root, in record order, as fused regions."""
        return self._flush_and(None)

    def materialize(self, expr: LazyExpr, dst: Dense | None = None) -> Dense:
        """Flush pending roots, then evaluate ``expr`` in the same pass
        (sharing the flush's node memo, so common subtrees run once)."""
        return self._flush_and(expr, dst)

    def _flush_and(self, extra: LazyExpr | None, extra_dst: Dense | None = None):
        if not self._roots and extra is None:
            return None
        roots, self._roots = self._roots, []
        if roots or extra is not None:
            self.flushes += 1
        memo: dict = {}
        slots = iter(range(1 << 30))
        for expr, dst in roots:
            self._run_region(expr, dst, memo, slots)
        if extra is not None:
            return self._run_region(extra, extra_dst, memo, slots)
        return None

    def _run_region(self, expr, dst, memo, slots):
        run = _RegionRun(self, expr, dst, memo, slots)
        if expr.kind == "leaf":
            # No kernels to fuse — don't charge a crossing for a no-op.
            return run()
        fn = dispatch.resolve("fused_region", expr.dtype, exec_=expr.executor)
        return fn(expr.executor, run)

    def discard(self) -> None:
        """Drop pending roots without executing them."""
        self._roots.clear()

    def clear_pools(self) -> None:
        """Release the pooled intermediate buffers back to the executors."""
        for ws in self._pools.values():
            ws.clear()
        self._pools.clear()


#: Shared trace used for materialisation outside any deferred() region —
#: keeps the intermediate-buffer pools warm across immediate evaluations.
_IMMEDIATE = DeferredTrace()


def _immediate() -> DeferredTrace:
    return _IMMEDIATE


@contextmanager
def deferred():
    """Record expression operations lazily; flush fused regions on exit.

    ::

        with pg.deferred() as trace:
            (alpha * (A @ x) + beta * y).into(y)
        # exit flushed: one fused region, one binding crossing

    Yields the :class:`DeferredTrace`; ``trace.flush()`` is an explicit
    mid-region flush point.  If the body raises, pending (unflushed)
    roots are discarded rather than executed against possibly
    inconsistent operands.
    """
    trace = DeferredTrace()
    _STACK.append(trace)
    try:
        yield trace
    except BaseException:
        _STACK.pop()
        trace.discard()
        raise
    _STACK.pop()
    trace.flush()


# ----------------------------------------------------------------------
# operator-protocol entry points (used by LinOp / Dense / Tensor dunders)
# ----------------------------------------------------------------------
def matmul(op, operand):
    """``op @ operand``: record a lazy apply node, or run one eagerly.

    Eager execution goes through the ``apply_<type>`` binding — one
    crossing, a fresh output, and the operator's own kernels — matching
    what a pybind11 ``__matmul__`` would do per call.
    """
    if isinstance(operand, LazyExpr) or _STACK:
        return LazyExpr.apply(op, _to_expr(operand))
    dense = _operand_dense(operand)
    wrap = dense is not operand and not isinstance(operand, Dense)
    dtype = np.promote_types(getattr(op, "dtype", dense.dtype), dense.dtype)
    fn = dispatch.resolve("apply", dtype, exec_=op.executor)
    out = fn(op.executor, op, dense)
    if wrap:
        from repro.core.tensor import Tensor

        return Tensor(out)
    return out


def scale_expr(alpha, operand):
    """``alpha * operand`` through the expression layer."""
    if isinstance(operand, LazyExpr) or _STACK:
        return LazyExpr.scale(alpha, _to_expr(operand))
    dense = _operand_dense(operand)
    wrap = dense is not operand and not isinstance(operand, Dense)
    fn = dispatch.resolve("scal", dense.dtype, exec_=dense.executor)
    out = fn(dense.executor, alpha, dense)
    if wrap:
        from repro.core.tensor import Tensor

        return Tensor(out)
    return out


def add_expr(left, right, sign: float = 1.0):
    """``left + sign * right`` through the expression layer."""
    if isinstance(left, LazyExpr) or isinstance(right, LazyExpr) or _STACK:
        left_expr = _to_expr(left)
        right_expr = _to_expr(right)
        if sign != 1.0:
            right_expr = LazyExpr.scale(sign, right_expr)
        return LazyExpr.add(left_expr, right_expr)
    left_dense = _operand_dense(left)
    right_dense = _operand_dense(right)
    wrap = (left_dense is not left and not isinstance(left, Dense)) or (
        right_dense is not right and not isinstance(right, Dense)
    )
    fn = dispatch.resolve("axpy", left_dense.dtype, exec_=left_dense.executor)
    out = fn(left_dense.executor, sign, right_dense, left_dense)
    if wrap:
        from repro.core.tensor import Tensor

        return Tensor(out)
    return out


@contextmanager
def fused_step(exec_, name: str, ops_replaced: int):
    """Mark a solver's hand-fused update as a ``fused_region`` span.

    The scalar solvers' inner loops already run Ginkgo-style fused step
    kernels; this span makes that visible to the attribution layer with
    the eager op count each step replaced.  Zero-cost: no charges, just
    trace structure.
    """
    clock = exec_.clock
    clock.push_span(name, "fused_region", ops_replaced=int(ops_replaced))
    try:
        yield
    finally:
        clock.pop_span()


def reset() -> None:
    """Drop all recording state and pooled buffers (test isolation)."""
    _STACK.clear()
    _IMMEDIATE.discard()
    _IMMEDIATE.clear_pools()
    _IMMEDIATE.flushes = 0
    _IMMEDIATE.regions = 0
    _IMMEDIATE.ops_replaced = 0
    _IMMEDIATE.recomputed = 0
