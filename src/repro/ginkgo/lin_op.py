"""The LinOp abstraction (paper section 4.2).

Every object that models a linear operation — matrices, solvers,
preconditioners — derives from :class:`LinOp` and is used through the same
``apply`` interface: a matrix applies an SpMV, a solver applies a linear
system solve, a preconditioner applies its approximate inverse.  This
composability is what lets pyGinkgo build solver pipelines from arbitrary
operator combinations.
"""

from __future__ import annotations

from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import DimensionMismatch, ExecutorMismatch
from repro.ginkgo.executor import Executor


class LinOp:
    """Base class for all linear operators.

    Args:
        exec_: The executor this operator lives on.
        size: Operator dimensions as a :class:`Dim` (or coercible value).
    """

    #: Trace category of this operator's apply spans (profiler display
    #: and attribution grouping): solvers use ``"solver"``,
    #: preconditioners ``"precond"``, plain operators ``"op"``.
    _profile_category = "op"

    def __init__(self, exec_: Executor, size) -> None:
        self._exec = exec_
        self._size = Dim.of(size)
        self._loggers: list = []
        #: Generation counter for the operator's stored values; memoized
        #: derived objects (transposes, conversions, SciPy views) key on
        #: it so in-place mutation can never serve stale results.
        self._data_version = 0
        #: op key -> (data_version, derived object).
        self._derived_cache: dict = {}

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def executor(self) -> Executor:
        return self._exec

    @property
    def size(self) -> Dim:
        return self._size

    @property
    def shape(self) -> tuple:
        """NumPy-style alias of :attr:`size`."""
        return (self._size.rows, self._size.cols)

    # ------------------------------------------------------------------
    # mutation tracking and derived-object memoization
    # ------------------------------------------------------------------
    @property
    def data_version(self) -> int:
        """Generation counter; bumps whenever stored values mutate."""
        return self._data_version

    def mark_modified(self) -> None:
        """Record an in-place value mutation, invalidating derived caches.

        Public mutators (and ``apply`` on the output operand) call this
        automatically; code writing through raw data arrays must call it
        by hand.
        """
        self._data_version += 1
        if self._derived_cache:
            self._derived_cache.clear()

    def _cached_derived(self, key: str, builder):
        """Memoize ``builder()`` under ``key`` for the current generation.

        Hits return the *same* derived object as the original call; any
        simulated conversion charge must be recorded by the caller before
        the lookup so cached conversions still cost what the performance
        model dictates.
        """
        from repro.ginkgo import cachestats

        entry = self._derived_cache.get(key)
        hit = entry is not None and entry[0] == self._data_version
        if hit:
            value = entry[1]
        else:
            value = builder()
            self._derived_cache[key] = (self._data_version, value)
        cachestats.record(
            "format", hit, clock=self._exec.clock, op=key,
            format=getattr(self, "_format_name", type(self).__name__.lower()),
        )
        return value

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------
    def add_logger(self, logger) -> None:
        """Attach a logger receiving this operator's events."""
        self._loggers.append(logger)

    def remove_logger(self, logger) -> None:
        self._loggers.remove(logger)

    @property
    def loggers(self) -> tuple:
        return tuple(self._loggers)

    def _log(self, event: str, **kwargs) -> None:
        for logger in self._loggers:
            handler = getattr(logger, f"on_{event}", None)
            if handler is not None:
                handler(self, **kwargs)

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(self, b, x):
        """Compute ``x = op(b)``; returns ``x``.

        ``b`` must have ``op.size.cols`` rows and ``x`` must have
        ``op.size.rows`` rows with the same number of columns as ``b``.
        """
        self._validate_application(b, x)
        clock = self._exec.clock
        clock.push_span(
            f"{type(self).__name__}::apply", self._profile_category
        )
        try:
            self._log("apply_started", b=b, x=x)
            self._apply_impl(b, x)
            self._log("apply_completed", b=b, x=x)
        finally:
            clock.pop_span()
        x.mark_modified()
        return x

    def apply_advanced(self, alpha, b, beta, x):
        """Compute ``x = alpha * op(b) + beta * x``; returns ``x``."""
        self._validate_application(b, x)
        clock = self._exec.clock
        clock.push_span(
            f"{type(self).__name__}::apply_advanced", self._profile_category
        )
        try:
            self._log("apply_started", b=b, x=x)
            self._apply_advanced_impl(alpha, b, beta, x)
            self._log("apply_completed", b=b, x=x)
        finally:
            clock.pop_span()
        x.mark_modified()
        return x

    def _validate_application(self, b, x) -> None:
        if b.size.rows != self._size.cols:
            raise DimensionMismatch(
                type(self).__name__,
                expected=f"b with {self._size.cols} rows",
                got=f"b with {b.size.rows} rows",
            )
        if x.size.rows != self._size.rows:
            raise DimensionMismatch(
                type(self).__name__,
                expected=f"x with {self._size.rows} rows",
                got=f"x with {x.size.rows} rows",
            )
        if b.size.cols != x.size.cols:
            raise DimensionMismatch(
                type(self).__name__,
                expected=f"x with {b.size.cols} columns",
                got=f"x with {x.size.cols} columns",
            )
        for operand in (b, x):
            if operand.executor is not self._exec:
                raise ExecutorMismatch(
                    type(self).__name__,
                    expected=self._exec.name,
                    got=operand.executor.name,
                )

    def _apply_impl(self, b, x) -> None:
        raise NotImplementedError

    def _apply_advanced_impl(self, alpha, b, beta, x) -> None:
        raise NotImplementedError

    def __matmul__(self, operand):
        """``op @ x``: apply through the expression layer.

        Eagerly this crosses the ``apply`` binding and returns a fresh
        result; inside ``pg.deferred()`` (or when ``operand`` is already
        lazy) it records a :class:`repro.ginkgo.lazy.LazyExpr` node whose
        validity is tied to this operator's ``data_version``.
        """
        from repro.ginkgo import lazy

        try:
            return lazy.matmul(self, operand)
        except TypeError:
            return NotImplemented

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._size.rows}x{self._size.cols}>"


class LinOpFactory:
    """Base class of factories that generate a LinOp from a source operator.

    Mirrors Ginkgo's two-stage pattern::

        factory = Cg.build(criteria=..., preconditioner=...)   # parameters
        solver = factory.generate(matrix)                       # bind matrix
        solver.apply(b, x)                                      # run
    """

    def __init__(self, exec_: Executor) -> None:
        self._exec = exec_

    @property
    def executor(self) -> Executor:
        return self._exec

    def generate(self, op: LinOp) -> LinOp:
        """Produce the concrete operator bound to ``op``."""
        raise NotImplementedError


class Identity(LinOp):
    """The identity operator (``x = b``)."""

    def __init__(self, exec_: Executor, size) -> None:
        size = Dim.of(size)
        if not size.is_square:
            raise DimensionMismatch(
                "Identity", expected="a square dimension", got=size
            )
        super().__init__(exec_, size)

    def _apply_impl(self, b, x) -> None:
        x.copy_values_from(b)

    def _apply_advanced_impl(self, alpha, b, beta, x) -> None:
        x.scale(beta)
        x.add_scaled(alpha, b)


class Composition(LinOp):
    """Product of operators: ``apply(b) = op_1(op_2(... op_n(b)))``."""

    def __init__(self, *operators: LinOp) -> None:
        if not operators:
            raise ValueError("Composition needs at least one operator")
        total = operators[0].size
        for op in operators[1:]:
            total = total * op.size
        super().__init__(operators[0].executor, total)
        self._operators = tuple(operators)

    @property
    def operators(self) -> tuple:
        return self._operators

    def _apply_impl(self, b, x) -> None:
        from repro.ginkgo.matrix.dense import Dense

        current = b
        # Apply right-to-left; intermediate buffers sized per operator.
        for op in reversed(self._operators[1:]):
            out = Dense.empty(
                self._exec, Dim(op.size.rows, b.size.cols), current.dtype
            )
            op.apply(current, out)
            current = out
        self._operators[0].apply(current, x)

    def _apply_advanced_impl(self, alpha, b, beta, x) -> None:
        from repro.ginkgo.matrix.dense import Dense

        tmp = Dense.empty(self._exec, x.size, x.dtype)
        self._apply_impl(b, tmp)
        x.scale(beta)
        x.add_scaled(alpha, tmp)


class Combination(LinOp):
    """Linear combination: ``apply(b) = sum_i coef_i * op_i(b)``."""

    def __init__(self, coefficients, operators) -> None:
        operators = tuple(operators)
        coefficients = tuple(coefficients)
        if len(coefficients) != len(operators):
            raise ValueError(
                f"got {len(coefficients)} coefficients for "
                f"{len(operators)} operators"
            )
        if not operators:
            raise ValueError("Combination needs at least one operator")
        size = operators[0].size
        for op in operators[1:]:
            if op.size != size:
                raise DimensionMismatch(
                    "Combination", expected=size, got=op.size
                )
        super().__init__(operators[0].executor, size)
        self._coefficients = coefficients
        self._operators = operators

    @property
    def operators(self) -> tuple:
        return self._operators

    @property
    def coefficients(self) -> tuple:
        return self._coefficients

    def _apply_impl(self, b, x) -> None:
        x.fill(0.0)
        for coef, op in zip(self._coefficients, self._operators):
            op.apply_advanced(coef, b, 1.0, x)

    def _apply_advanced_impl(self, alpha, b, beta, x) -> None:
        x.scale(beta)
        for coef, op in zip(self._coefficients, self._operators):
            op.apply_advanced(alpha * coef, b, 1.0, x)


class Perturbation(LinOp):
    """Rank-k perturbation of the identity: ``I + scalar * basis @ proj``.

    Mirrors ``gko::Perturbation``; useful for low-rank operator updates.
    """

    def __init__(self, scalar, basis: LinOp, projector: LinOp) -> None:
        if basis.size.cols != projector.size.rows:
            raise DimensionMismatch(
                "Perturbation",
                expected=f"projector with {basis.size.cols} rows",
                got=f"projector with {projector.size.rows} rows",
            )
        if basis.size.rows != projector.size.cols:
            raise DimensionMismatch(
                "Perturbation",
                expected="basis rows == projector cols (square result)",
                got=f"{basis.size.rows} != {projector.size.cols}",
            )
        super().__init__(basis.executor, Dim(basis.size.rows))
        self._scalar = scalar
        self._basis = basis
        self._projector = projector

    def _apply_impl(self, b, x) -> None:
        from repro.ginkgo.matrix.dense import Dense

        inner = Dense.empty(
            self._exec, Dim(self._projector.size.rows, b.size.cols), b.dtype
        )
        self._projector.apply(b, inner)
        x.copy_values_from(b)
        self._basis.apply_advanced(self._scalar, inner, 1.0, x)

    def _apply_advanced_impl(self, alpha, b, beta, x) -> None:
        from repro.ginkgo.matrix.dense import Dense

        tmp = Dense.empty(self._exec, x.size, x.dtype)
        self._apply_impl(b, tmp)
        x.scale(beta)
        x.add_scaled(alpha, tmp)
