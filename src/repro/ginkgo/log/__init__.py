"""Loggers (``gko::log``).

Loggers attach to any LinOp and receive events (`apply_started`,
`iteration_complete`, ...).  The paper's Listing 1 returns a convergence
logger from ``solver.apply``, exposing iteration counts and the residual
history.
"""

from repro.ginkgo.log.logger import (
    CheckpointLogger,
    ConvergenceLogger,
    Logger,
    PerformanceLogger,
    RecordLogger,
    StreamLogger,
)

__all__ = [
    "CheckpointLogger",
    "ConvergenceLogger",
    "Logger",
    "PerformanceLogger",
    "RecordLogger",
    "StreamLogger",
]
