"""Loggers (``gko::log``).

Loggers attach to any LinOp and receive events (`apply_started`,
`iteration_complete`, ...).  The paper's Listing 1 returns a convergence
logger from ``solver.apply``, exposing iteration counts and the residual
history.  :class:`ProfilerHook` extends the same event machinery into a
full span profiler over the simulated clock; :class:`MetricsRegistry`
aggregates counters/histograms across solves.
"""

from repro.ginkgo.log.logger import (
    CheckpointLogger,
    ConvergenceLogger,
    Logger,
    PerformanceLogger,
    RecordLogger,
    StreamLogger,
)
from repro.ginkgo.log.metrics import (
    Counter,
    Histogram,
    MetricsLogger,
    MetricsRegistry,
)
from repro.ginkgo.log.profiler import ProfilerHook

__all__ = [
    "CheckpointLogger",
    "ConvergenceLogger",
    "Counter",
    "Histogram",
    "Logger",
    "MetricsLogger",
    "MetricsRegistry",
    "PerformanceLogger",
    "ProfilerHook",
    "RecordLogger",
    "StreamLogger",
]
