"""Logger implementations."""

from __future__ import annotations

import sys

import numpy as np


class Logger:
    """Base logger: defines the event vocabulary, ignores everything.

    Handlers follow the naming convention ``on_<event>``; operators invoke
    them via ``LinOp._log(event, **kwargs)``.  Available events:

    * ``apply_started(op, b=..., x=...)``
    * ``apply_completed(op, b=..., x=...)``
    * ``iteration_complete(op, iteration=..., residual_norm=...,
      solution=...)``
    * ``converged(op, iteration=..., residual_norm=...)``
    * ``breakdown(op, iteration=..., residual_norm=...)`` — the solver hit
      a non-finite residual and stopped early
    * ``criterion_check_completed(op, iteration=..., stopped=...)``

    Executors emit events through the same protocol (the first argument is
    then the executor):

    * ``fault_injected(exec, site=..., kind=..., index=..., call=...,
      detail=...)`` — a :class:`~repro.ginkgo.fault.FaultyExecutor`
      injected a fault
    * ``data_corrupted(exec, index=..., flat_index=...)`` — a corruption
      fault poisoned a buffer entry
    """

    def on_apply_started(self, op, **kwargs) -> None:
        pass

    def on_apply_completed(self, op, **kwargs) -> None:
        pass

    def on_iteration_complete(self, op, **kwargs) -> None:
        pass

    def on_converged(self, op, **kwargs) -> None:
        pass

    def on_breakdown(self, op, **kwargs) -> None:
        pass

    def on_criterion_check_completed(self, op, **kwargs) -> None:
        pass

    def on_fault_injected(self, op, **kwargs) -> None:
        pass

    def on_data_corrupted(self, op, **kwargs) -> None:
        pass


class ConvergenceLogger(Logger):
    """Tracks iterations and residual history of one (or more) solves.

    This is the object returned by pyGinkgo's ``solver.apply`` (Listing 1):
    it provides diagnostic information about convergence and iteration
    progress.
    """

    def __init__(self) -> None:
        self.num_iterations = 0
        self.residual_norms: list[float] = []
        self.converged = False
        self.breakdown = False
        self.final_residual_norm = float("nan")

    def on_apply_started(self, op, **kwargs) -> None:
        # A fresh apply restarts the history.
        self.num_iterations = 0
        self.residual_norms = []
        self.converged = False
        self.breakdown = False
        self.final_residual_norm = float("nan")

    def on_iteration_complete(self, op, iteration=0, residual_norm=None, **kwargs):
        self.num_iterations = iteration
        if residual_norm is not None:
            self.residual_norms.append(float(np.max(residual_norm)))
            self.final_residual_norm = float(np.max(residual_norm))

    def on_converged(self, op, iteration=0, residual_norm=None, **kwargs) -> None:
        self.converged = True
        self.num_iterations = iteration
        if residual_norm is not None:
            self.final_residual_norm = float(np.max(residual_norm))

    def on_breakdown(self, op, iteration=0, residual_norm=None, **kwargs) -> None:
        self.breakdown = True
        self.converged = False
        self.num_iterations = iteration
        if residual_norm is not None:
            self.final_residual_norm = float(np.max(residual_norm))

    @property
    def reduction(self) -> float:
        """Final residual norm divided by the first recorded norm."""
        if not self.residual_norms or self.residual_norms[0] == 0.0:
            return float("nan")
        return self.final_residual_norm / self.residual_norms[0]

    def __repr__(self) -> str:
        return (
            f"ConvergenceLogger(iterations={self.num_iterations}, "
            f"converged={self.converged}, "
            f"final_residual_norm={self.final_residual_norm:.3e})"
        )


class RecordLogger(Logger):
    """Records every event with its payload, for tests and debugging."""

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def _record(self, event: str, op, kwargs) -> None:
        # Operand payloads (the in-progress solution) are dropped so the
        # recorded sequences stay printable and comparable across runs.
        payload = {k: v for k, v in kwargs.items() if k != "solution"}
        self.events.append((event, type(op).__name__, payload))

    def on_apply_started(self, op, **kwargs) -> None:
        self._record("apply_started", op, {})

    def on_apply_completed(self, op, **kwargs) -> None:
        self._record("apply_completed", op, {})

    def on_iteration_complete(self, op, **kwargs) -> None:
        self._record("iteration_complete", op, kwargs)

    def on_converged(self, op, **kwargs) -> None:
        self._record("converged", op, kwargs)

    def on_breakdown(self, op, **kwargs) -> None:
        self._record("breakdown", op, kwargs)

    def on_criterion_check_completed(self, op, **kwargs) -> None:
        self._record("criterion_check_completed", op, kwargs)

    def on_fault_injected(self, op, **kwargs) -> None:
        self._record("fault_injected", op, kwargs)

    def on_data_corrupted(self, op, **kwargs) -> None:
        self._record("data_corrupted", op, kwargs)

    def count(self, event: str) -> int:
        """Number of recorded events with the given name."""
        return sum(1 for name, _, _ in self.events if name == event)


class PerformanceLogger(Logger):
    """Aggregates simulated time per operator type across applies.

    Attach to any set of LinOps; each completed apply accumulates the
    simulated elapsed time (and call count) under the operator's class
    name, giving a per-component profile of a solver pipeline.
    """

    def __init__(self) -> None:
        self.totals: dict = {}
        self.counts: dict = {}
        self._starts: dict = {}

    def on_apply_started(self, op, **kwargs) -> None:
        self._starts[id(op)] = op.executor.clock.now

    def on_apply_completed(self, op, **kwargs) -> None:
        start = self._starts.pop(id(op), None)
        if start is None:
            return
        name = type(op).__name__
        elapsed = op.executor.clock.now - start
        self.totals[name] = self.totals.get(name, 0.0) + elapsed
        self.counts[name] = self.counts.get(name, 0) + 1

    @property
    def total_time(self) -> float:
        """Total simulated seconds across all profiled operators."""
        return sum(self.totals.values())

    def summary(self) -> str:
        """Aligned text profile, slowest component first."""
        lines = [f"{'operator':<24} {'calls':>7} {'time':>12} {'share':>7}"]
        total = self.total_time or 1.0
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            lines.append(
                f"{name:<24} {self.counts[name]:>7} "
                f"{self.totals[name] * 1e3:>9.3f} ms "
                f"{self.totals[name] / total * 100:>5.1f}%"
            )
        return "\n".join(lines)


class CheckpointLogger(Logger):
    """Periodically snapshots the in-progress solution vector.

    Attach to an iterative solver; every ``every`` iterations the current
    solution is copied out to host memory (modelling the device-to-host
    checkpoint transfer).  After a mid-solve fault, the resilient solve
    path restarts from :attr:`solution` instead of from scratch.

    Attributes:
        iteration: Iteration of the most recent checkpoint (None: none yet).
        solution: Host copy of the solution at that iteration.
        num_checkpoints: How many checkpoints were captured.
    """

    def __init__(self, every: int = 50, sink: list | None = None) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = every
        self.iteration: int | None = None
        self.solution: np.ndarray | None = None
        self.num_checkpoints = 0
        self._sink = sink

    def on_iteration_complete(
        self, op, iteration=0, residual_norm=None, solution=None, **kwargs
    ) -> None:
        if solution is None or iteration == 0 or iteration % self.every:
            return
        # to_numpy() routes through the executor's copy machinery, so the
        # checkpoint's transfer cost lands on the simulated clock.
        self.solution = solution.to_numpy()
        self.iteration = iteration
        self.num_checkpoints += 1
        if self._sink is not None:
            self._sink.append(("checkpoint_saved", {"iteration": iteration}))


class StreamLogger(Logger):
    """Writes one line per event to a stream (default: stdout)."""

    def __init__(self, stream=None, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.stream = stream or sys.stdout
        self.every = every

    def on_iteration_complete(self, op, iteration=0, residual_norm=None, **kwargs):
        if iteration % self.every:
            return
        norm = (
            f", residual={float(np.max(residual_norm)):.6e}"
            if residual_norm is not None
            else ""
        )
        print(
            f"[{type(op).__name__}] iteration {iteration}{norm}",
            file=self.stream,
        )

    def on_converged(self, op, iteration=0, residual_norm=None, **kwargs) -> None:
        norm = (
            f" (residual {float(np.max(residual_norm)):.6e})"
            if residual_norm is not None
            else ""
        )
        print(
            f"[{type(op).__name__}] converged after {iteration} iterations{norm}",
            file=self.stream,
        )
