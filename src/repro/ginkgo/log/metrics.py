"""Counters and histograms for solver/runtime observability.

A :class:`MetricsRegistry` is a flat namespace of named :class:`Counter`
and :class:`Histogram` instruments.  It can be fed three ways, all
composable:

* attach a :class:`MetricsLogger` to operators (standard logger events);
* pass it to :class:`~repro.ginkgo.log.ProfilerHook` (kernel launches,
  binding crossings, iterations, faults from the clock trace);
* pass it to :func:`repro.core.resilient.resilient_solve` (attempts,
  retries, fallbacks, checkpoint restores).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.ginkgo.log.logger import Logger


class Counter:
    """A monotonically increasing named count.

    Increments are atomic under concurrent threads: one registry may be
    shared by many workers of the service layer's solve pool, and a
    plain ``+=`` would lose updates under contention.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Histogram:
    """A named distribution of observed values (kept exactly; small N).

    Observations are appended under a lock so concurrent worker threads
    sharing a registry can never corrupt the value list.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value) -> None:
        with self._lock:
            self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return float(sum(self.values))

    @property
    def min(self) -> float:
        return min(self.values) if self.values else float("nan")

    @property
    def max(self) -> float:
        return max(self.values) if self.values else float("nan")

    @property
    def mean(self) -> float:
        return self.total / self.count if self.values else float("nan")

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100]) of the observed values."""
        if not self.values:
            return float("nan")
        return float(np.percentile(np.asarray(self.values), q))

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self.count}, "
            f"mean={self.mean:.4g})"
        )


class MetricsRegistry:
    """Get-or-create registry of counters and histograms.

    Instruments are created lazily on first access, so producers never
    need pre-registration::

        metrics = MetricsRegistry()
        metrics.counter("solves").inc()
        metrics.histogram("iterations_per_solve").observe(42)
    """

    def __init__(self) -> None:
        self.counters: dict = {}
        self.histograms: dict = {}
        # Guards get-or-create: two racing threads must receive the same
        # instrument instance, not two (one of which would drop updates).
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self.counters:
                self.counters[name] = Counter(name)
            return self.counters[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self.histograms:
                self.histograms[name] = Histogram(name)
            return self.histograms[name]

    def to_dict(self) -> dict:
        """Plain-dict snapshot (counter values, histogram summaries)."""
        out: dict = {"counters": {}, "histograms": {}}
        for name in sorted(self.counters):
            out["counters"][name] = self.counters[name].value
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            out["histograms"][name] = {
                "count": hist.count,
                "total": hist.total,
                "min": hist.min,
                "max": hist.max,
                "mean": hist.mean,
            }
        return out

    def summary(self) -> str:
        """Aligned text dump of all instruments, sorted by name."""
        lines = []
        for name in sorted(self.counters):
            lines.append(f"{name:<32} {self.counters[name].value:>12}")
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            lines.append(
                f"{name:<32} {hist.count:>12} obs  "
                f"mean={hist.mean:.4g} min={hist.min:.4g} max={hist.max:.4g}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"histograms={len(self.histograms)})"
        )


class MetricsLogger(Logger):
    """Logger feeding a :class:`MetricsRegistry` from operator events.

    Attach to solvers (or executors, for fault events); one registry may
    be shared by many loggers and profiler hooks.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def on_apply_started(self, op, **kwargs) -> None:
        self.registry.counter("applies").inc()

    def on_iteration_complete(self, op, iteration=0, **kwargs) -> None:
        self.registry.counter("iterations").inc()

    def on_converged(self, op, iteration=0, **kwargs) -> None:
        self.registry.counter("solves_converged").inc()
        self.registry.histogram("iterations_per_solve").observe(iteration)

    def on_breakdown(self, op, **kwargs) -> None:
        self.registry.counter("breakdowns").inc()

    def on_fault_injected(self, op, **kwargs) -> None:
        self.registry.counter("faults_injected").inc()

    def on_data_corrupted(self, op, **kwargs) -> None:
        self.registry.counter("data_corrupted").inc()
