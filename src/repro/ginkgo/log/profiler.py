"""Hierarchical span profiler over the simulated clock.

:class:`ProfilerHook` observes :class:`~repro.perfmodel.SimClock`
instances as a *tracer* (see :meth:`SimClock.add_tracer`) and assembles a
:class:`~repro.perfmodel.Trace`:

* every clock advance becomes a leaf span — a kernel execution, binding
  crossing, synchronisation stall, transfer, or host overhead — carrying
  the event's flop/byte/launch metadata;
* every structural ``push_span``/``pop_span`` pair (operator applies,
  preconditioner generation) becomes a nested span;
* the solver's per-iteration ``iteration`` clock marks retroactively
  group everything since the previous boundary into an ``iteration`` span
  under the owning solver;
* remaining clock marks (fault injections, allocations, breakdowns,
  resilience events) become instant events.

Because *all* simulated time flows through the three clock entry points
(``record``/``advance``/``synchronize``), the resulting
:class:`~repro.perfmodel.AttributionTable` accounts for essentially the
entire wall-clock span of a traced solve.

The hook is also a :class:`~repro.ginkgo.log.Logger`: attached to an
executor or LinOp whose clock is *not* traced it still captures fault
instants; the handlers no-op when the clock is already traced so events
are never recorded twice.
"""

from __future__ import annotations

from repro.ginkgo.log.logger import Logger
from repro.perfmodel.trace import Span, Trace


def _scalars(meta: dict) -> dict:
    """Keep only JSON-representable scalar metadata values."""
    out = {}
    for key, value in meta.items():
        if value is None or isinstance(value, (bool, str)):
            out[key] = value
        elif isinstance(value, (int, float)):
            out[key] = value
        elif hasattr(value, "item") and getattr(value, "ndim", 1) == 0:
            out[key] = value.item()
    return out


def _resolve_clock(target):
    """The :class:`SimClock` behind an executor, LinOp, or solver handle."""
    if hasattr(target, "add_tracer"):
        return target
    if hasattr(target, "clock"):
        return target.clock
    if hasattr(target, "executor"):
        return target.executor.clock
    if hasattr(target, "solver"):
        return target.solver.executor.clock
    raise TypeError(
        f"cannot resolve a clock from {type(target).__name__}; expected a "
        "SimClock, Executor, LinOp, or solver handle"
    )


class ProfilerHook(Logger):
    """Records a :class:`~repro.perfmodel.Trace` of everything it observes.

    Args:
        name: Name of the assembled trace.
        metrics: Optional :class:`~repro.ginkgo.log.MetricsRegistry` fed
            with kernel-launch / binding-crossing / iteration counters as
            events stream in.  Resilience events (faults, retries, ...)
            are counted by ``resilient_solve(metrics=...)`` and
            :class:`MetricsLogger` instead, so sharing one registry with
            the solve path cannot double-count them.

    Typical use goes through :func:`repro.core.profile`, but the hook can
    be wired manually::

        prof = ProfilerHook()
        prof.attach(executor)
        solver.apply(b, x)
        prof.detach(executor)
        print(prof.attribution().summary())
    """

    def __init__(self, name: str = "pyginkgo", metrics=None) -> None:
        self.trace = Trace(name)
        self.metrics = metrics
        #: Clock -> track-name mapping, assigned in first-event order.
        self._clock_tracks: dict = {}
        self._track_counts: dict = {}
        #: Open-solver-span id -> start of the current iteration window.
        self._iter_window: dict = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, target) -> None:
        """Start observing ``target`` (clock, executor, LinOp, or handle)."""
        clock = _resolve_clock(target)
        if not clock.is_traced_by(self):
            clock.add_tracer(self)

    def detach(self, target) -> None:
        """Stop observing ``target``; unknown targets are ignored."""
        clock = _resolve_clock(target)
        try:
            clock.remove_tracer(self)
        except ValueError:
            pass

    def close(self) -> None:
        """Close every span still open, at each clock's current time."""
        for clock, track in self._clock_tracks.items():
            stack = self.trace._stacks.get(track)
            while stack:
                span = self.trace.close(clock.now, track=track)
                self._iter_window.pop(id(span), None)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def attribution(self):
        """The trace aggregated into a kernel/binding/stall table.

        Finalises any still-open spans first so their time is counted.
        """
        self.close()
        return self.trace.attribution()

    def to_chrome_trace(self) -> str:
        self.close()
        return self.trace.to_chrome_trace()

    def save_chrome_trace(self, path) -> None:
        self.close()
        self.trace.save_chrome_trace(path)

    # ------------------------------------------------------------------
    # tracer protocol (called by SimClock)
    # ------------------------------------------------------------------
    def _track(self, clock) -> str:
        track = self._clock_tracks.get(clock)
        if track is None:
            base = clock.spec.name
            seen = self._track_counts.get(base, 0)
            self._track_counts[base] = seen + 1
            track = base if seen == 0 else f"{base} #{seen + 1}"
            self._clock_tracks[clock] = track
        return track

    def on_span_push(self, clock, name, category, meta) -> None:
        self.trace.open(
            name, category, clock.now, track=self._track(clock),
            meta=_scalars(meta),
        )

    def on_span_pop(self, clock, meta) -> None:
        span = self.trace.close(
            clock.now, track=self._track(clock), meta=_scalars(meta)
        )
        if span is not None:
            self._iter_window.pop(id(span), None)

    def on_clock_event(self, clock, category, name, start, duration, meta):
        self.trace.leaf(
            name, category, start, duration, track=self._track(clock),
            meta=_scalars(meta),
        )
        if self.metrics is not None:
            if category == "kernel":
                self.metrics.counter("kernel_launches").inc(
                    int(meta.get("launches", 1))
                )
            elif category == "binding":
                self.metrics.counter("binding_calls").inc()

    def on_clock_mark(self, clock, name, meta) -> None:
        if name == "iteration":
            self._close_iteration(clock, meta)
            if self.metrics is not None:
                self.metrics.counter("iterations").inc()
            return
        # Resilience marks (faults, retries, fallbacks, ...) become trace
        # instants only; their counters are owned by resilient_solve's
        # report and by MetricsLogger, so a registry shared between the
        # profiler and the solve path never double-counts them.
        self.trace.instant(
            name, clock.now, track=self._track(clock), meta=_scalars(meta)
        )

    # ------------------------------------------------------------------
    # iteration adoption
    # ------------------------------------------------------------------
    def _close_iteration(self, clock, meta) -> None:
        """Group the events since the last boundary into an iteration span.

        The solver emits the ``iteration`` mark *after* each iteration's
        work, so the span is built retroactively: direct children of the
        innermost open solver span that started inside the current window
        are re-parented under a fresh ``iteration`` span.
        """
        track = self._track(clock)
        stack = self.trace._stacks.get(track) or []
        owner = next(
            (s for s in reversed(stack) if s.category == "solver"), None
        )
        if owner is None:
            # Iteration mark outside any solver apply span (partially
            # traced run): degrade to an instant marker.
            self.trace.instant(
                "iteration", clock.now, track=track, meta=_scalars(meta)
            )
            return
        window = self._iter_window.get(id(owner), owner.start)
        kept, adopted = [], []
        for child in owner.children:
            # Earlier iteration spans may end exactly at the window start;
            # never re-adopt them.
            if child.start >= window and child.category != "iteration":
                adopted.append(child)
            else:
                kept.append(child)
        span = Span(
            name=f"iteration {meta.get('iteration', len(kept))}",
            category="iteration",
            start=window,
            end=clock.now,
            track=track,
            meta=_scalars(meta),
        )
        span.children = adopted
        owner.children = kept + [span]
        self._iter_window[id(owner)] = clock.now

    # ------------------------------------------------------------------
    # Logger protocol (standalone attachment to untraced operators)
    # ------------------------------------------------------------------
    def _instant_if_untraced(self, op, name, kwargs) -> None:
        try:
            clock = _resolve_clock(op)
        except TypeError:
            return
        if clock.is_traced_by(self):
            return  # the clock mark already recorded it
        self.trace.instant(
            name, clock.now, track=self._track(clock), meta=_scalars(kwargs)
        )

    def on_fault_injected(self, op, **kwargs) -> None:
        self._instant_if_untraced(op, "fault_injected", kwargs)

    def on_data_corrupted(self, op, **kwargs) -> None:
        self._instant_if_untraced(op, "data_corrupted", kwargs)

    def __repr__(self) -> str:
        return (
            f"ProfilerHook({self.trace.name!r}, "
            f"tracks={len(self._clock_tracks)}, spans={self.trace.num_spans})"
        )
