"""Matrix formats of the Ginkgo engine.

Provides dense and sparse storage schemes with SpMV kernels and
conversions, mirroring Ginkgo's ``gko::matrix`` namespace:

* :class:`Dense` — row-major dense matrices and (multi-)vectors;
* :class:`Csr` — compressed sparse row with selectable kernel strategy;
* :class:`Coo` — coordinate format;
* :class:`Ell` — ELLPACK with padded rows;
* :class:`Sellp` — sliced ELLPACK (SELL-P);
* :class:`Hybrid` — ELL + COO split;
* :class:`SparsityCsr` — pattern-only CSR (values implicitly 1);
* :class:`Diagonal` — diagonal matrices;
* :class:`Permutation` — row permutations.
"""

from repro.ginkgo.matrix.dense import Dense
from repro.ginkgo.matrix.csr import Csr
from repro.ginkgo.matrix.coo import Coo
from repro.ginkgo.matrix.ell import Ell
from repro.ginkgo.matrix.sellp import Sellp
from repro.ginkgo.matrix.hybrid import Hybrid
from repro.ginkgo.matrix.sparsity_csr import SparsityCsr
from repro.ginkgo.matrix.diagonal import Diagonal
from repro.ginkgo.matrix.permutation import Permutation

__all__ = [
    "Coo",
    "Csr",
    "Dense",
    "Diagonal",
    "Ell",
    "Hybrid",
    "Permutation",
    "Sellp",
    "SparsityCsr",
]
