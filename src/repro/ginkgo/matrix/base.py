"""Shared machinery of the sparse matrix formats.

Each concrete format stores its own arrays (executor-tagged) but delegates
the numerical SpMV to a cached SciPy view, while the *timing* comes from the
format-specific roofline cost.  SciPy cannot multiply ``float16`` matrices,
so half-precision kernels compute in ``float32`` and round back — the same
behaviour as Ginkgo's half-precision kernels, which accumulate in a wider
type.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ginkgo import cachestats
from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.executor import Executor
from repro.ginkgo.lin_op import LinOp
from repro.perfmodel import spmv_cost

#: Value types supported by the engine (paper Table 1).
SUPPORTED_VALUE_DTYPES = (np.float16, np.float32, np.float64)
#: Index types supported by the engine (paper Table 1).
SUPPORTED_INDEX_DTYPES = (np.int32, np.int64)


def check_value_dtype(dtype) -> np.dtype:
    """Validate and normalise a value dtype against Table 1."""
    dtype = np.dtype(dtype)
    if dtype.type not in SUPPORTED_VALUE_DTYPES:
        raise GinkgoError(
            f"unsupported value type {dtype}; supported: "
            f"{[np.dtype(t).name for t in SUPPORTED_VALUE_DTYPES]}"
        )
    return dtype


def scipy_safe(values: np.ndarray) -> np.ndarray:
    """Cast values to a dtype SciPy sparse accepts (float16 -> float32)."""
    if values.dtype == np.float16:
        return values.astype(np.float32)
    return values


def check_index_dtype(dtype) -> np.dtype:
    """Validate and normalise an index dtype against Table 1."""
    dtype = np.dtype(dtype)
    if dtype.type not in SUPPORTED_INDEX_DTYPES:
        raise GinkgoError(
            f"unsupported index type {dtype}; supported: "
            f"{[np.dtype(t).name for t in SUPPORTED_INDEX_DTYPES]}"
        )
    return dtype


class SparseBase(LinOp):
    """Base class of the sparse storage formats.

    Subclasses set ``_format_name`` and implement ``_to_scipy`` returning a
    SciPy sparse matrix sharing (not copying) the stored arrays where
    possible.
    """

    _format_name = "sparse"

    def __init__(self, exec_: Executor, size, value_dtype, index_dtype) -> None:
        super().__init__(exec_, size)
        self._value_dtype = check_value_dtype(value_dtype)
        self._index_dtype = check_index_dtype(index_dtype)
        self._scipy_cache: sp.spmatrix | None = None

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        return self._value_dtype

    @property
    def index_dtype(self) -> np.dtype:
        return self._index_dtype

    @property
    def value_bytes(self) -> int:
        return self._value_dtype.itemsize

    @property
    def index_bytes(self) -> int:
        return self._index_dtype.itemsize

    @property
    def nnz(self) -> int:
        raise NotImplementedError

    @property
    def density(self) -> float:
        """Fraction of stored entries, nnz / (rows * cols)."""
        elements = self._size.num_elements
        return self.nnz / elements if elements else 0.0

    @staticmethod
    def _readonly(arr: np.ndarray) -> np.ndarray:
        """Zero-copy read-only view of a stored array.

        The public array properties return these so that in-place writes
        cannot bypass :meth:`mark_modified` and poison the
        generation-counter caches (SciPy views, cached transposes,
        recorded lazy nodes).
        """
        view = arr.view()
        view.flags.writeable = False
        return view

    def writable_values(self) -> np.ndarray:
        """Raw writable values array — the caller owns invalidation.

        Every in-place write through the returned array must be followed
        by :meth:`mark_modified`, otherwise version-checked caches serve
        stale results.
        """
        values = getattr(self, "_values", None)
        if values is None:
            raise GinkgoError(
                f"{type(self).__name__} does not expose a single raw "
                f"values array"
            )
        return values

    # ------------------------------------------------------------------
    # SpMV
    # ------------------------------------------------------------------
    def _to_scipy(self) -> sp.spmatrix:
        raise NotImplementedError

    def mark_modified(self) -> None:
        """Record an in-place value mutation.

        Drops the cached SciPy view on top of the derived-object caches
        :class:`~repro.ginkgo.lin_op.LinOp` invalidates.  Public mutators
        call this automatically; code writing through raw ``values``
        arrays must call it by hand.
        """
        super().mark_modified()
        self._scipy_cache = None

    def _invalidate_cache(self) -> None:
        self.mark_modified()

    def _scipy_view(self) -> sp.spmatrix:
        hit = self._scipy_cache is not None
        if not hit:
            self._scipy_cache = self._to_scipy()
        cachestats.record(
            "format", hit, clock=self._exec.clock,
            op="scipy_view", format=self._format_name,
        )
        return self._scipy_cache

    def _spmv_arrays(self, b: np.ndarray) -> np.ndarray:
        """Numerical y = A b; upcasts float16 like Ginkgo's half kernels."""
        mat = self._scipy_view()
        if self._value_dtype == np.float16:
            out = (mat.astype(np.float32) @ b.astype(np.float32))
            return out.astype(np.float16)
        return mat @ b

    def _spmv_cost_kwargs(self) -> dict:
        return {}

    def _record_spmv(self, num_rhs: int) -> None:
        self._exec.run(
            spmv_cost(
                self._format_name,
                self._size.rows,
                self._size.cols,
                self.nnz,
                self.value_bytes,
                self.index_bytes,
                num_rhs=num_rhs,
                **self._spmv_cost_kwargs(),
            )
        )

    def _apply_impl(self, b, x) -> None:
        result = self._spmv_arrays(b._data)
        np.copyto(x._data, result.reshape(x._data.shape))
        self._record_spmv(b.size.cols)

    def _apply_advanced_impl(self, alpha, b, beta, x) -> None:
        from repro.ginkgo.matrix.dense import _scalar_value

        a = _scalar_value(alpha)
        bt = _scalar_value(beta)
        result = self._spmv_arrays(b._data)
        x._data *= x.dtype.type(bt)
        x._data += x.dtype.type(a) * result.reshape(x._data.shape).astype(
            x.dtype, copy=False
        )
        self._record_spmv(b.size.cols)

    # ------------------------------------------------------------------
    # shared conversions
    # ------------------------------------------------------------------
    def to_scipy(self) -> sp.spmatrix:
        """Copy out as a SciPy sparse matrix (host-side)."""
        return self._scipy_view().copy()

    def to_dense(self):
        """Convert to :class:`~repro.ginkgo.matrix.dense.Dense`."""
        from repro.ginkgo.matrix.dense import Dense

        return Dense(self._exec, np.asarray(self._scipy_view().todense()))

    def extract_diagonal(self):
        """Extract the main diagonal as a :class:`Diagonal` operator."""
        from repro.ginkgo.matrix.diagonal import Diagonal

        return Diagonal(self._exec, self._scipy_view().diagonal())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self._size.rows}x{self._size.cols}, "
            f"nnz={self.nnz}, dtype={self.dtype}, executor={self._exec.name})"
        )
