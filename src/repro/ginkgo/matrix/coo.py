"""Coordinate format (``gko::matrix::Coo``).

COO stores explicit (row, col, value) triplets.  Its GPU SpMV uses atomic
accumulation, which the cost model charges as extra output traffic.  COO is
the second format the paper benchmarks throughout (Figs. 5a-5c) and the only
format TensorFlow supports.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import BadDimension
from repro.ginkgo.executor import Executor
from repro.ginkgo.matrix.base import SparseBase, check_index_dtype, check_value_dtype
from repro.perfmodel import conversion_cost


class Coo(SparseBase):
    """COO matrix with executor-resident ``row_idxs``/``col_idxs``/``values``."""

    _format_name = "coo"

    def __init__(self, exec_: Executor, size, row_idxs, col_idxs, values) -> None:
        size = Dim.of(size)
        row_idxs = np.asarray(row_idxs)
        col_idxs = np.asarray(col_idxs)
        values = np.asarray(values)
        if not (row_idxs.size == col_idxs.size == values.size):
            raise BadDimension(
                f"triplet arrays differ in length: {row_idxs.size}, "
                f"{col_idxs.size}, {values.size}"
            )
        if row_idxs.size and (
            row_idxs.max(initial=0) >= size.rows
            or col_idxs.max(initial=0) >= size.cols
        ):
            raise BadDimension("COO indices exceed the matrix dimensions")
        super().__init__(
            exec_,
            size,
            value_dtype=values.dtype,
            index_dtype=check_index_dtype(row_idxs.dtype),
        )
        self._row_idxs = exec_.alloc_like(row_idxs)
        np.copyto(self._row_idxs, row_idxs)
        self._col_idxs = exec_.alloc_like(col_idxs)
        np.copyto(self._col_idxs, col_idxs)
        self._values = exec_.alloc_like(values)
        np.copyto(self._values, values)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_scipy(
        cls,
        exec_: Executor,
        mat: sp.spmatrix,
        value_dtype=None,
        index_dtype=np.int32,
    ) -> "Coo":
        """Build from any SciPy sparse matrix (converted to COO)."""
        coo = sp.coo_matrix(mat)
        value_dtype = check_value_dtype(value_dtype or coo.dtype)
        index_dtype = check_index_dtype(index_dtype)
        return cls(
            exec_,
            Dim(*coo.shape),
            coo.row.astype(index_dtype),
            coo.col.astype(index_dtype),
            coo.data.astype(value_dtype),
        )

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self._values.size)

    @property
    def row_idxs(self) -> np.ndarray:
        """Read-only view; mutate via :meth:`writable_values` + mark_modified."""
        return self._readonly(self._row_idxs)

    @property
    def col_idxs(self) -> np.ndarray:
        """Read-only view; mutate via :meth:`writable_values` + mark_modified."""
        return self._readonly(self._col_idxs)

    @property
    def values(self) -> np.ndarray:
        """Read-only view; mutate via :meth:`writable_values` + mark_modified."""
        return self._readonly(self._values)

    def _to_scipy(self) -> sp.coo_matrix:
        from repro.ginkgo.matrix.base import scipy_safe

        return sp.coo_matrix(
            (scipy_safe(self._values), (self._row_idxs, self._col_idxs)),
            shape=self.shape,
        )

    def _spmv_arrays(self, b: np.ndarray) -> np.ndarray:
        # SciPy COO matvec converts internally; a cached CSR view is
        # numerically equivalent and faster for repeated applies.  The
        # view is keyed on the data generation, so in-place value
        # mutations (scale, writes + mark_modified) can never leave a
        # stale CSR serving future SpMVs.
        mat = self._cached_derived(
            "csr_view", lambda: self._scipy_view().tocsr()
        )
        if self._value_dtype == np.float16:
            out = mat.astype(np.float32) @ b.astype(np.float32)
            return out.astype(np.float16)
        return mat @ b

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def transpose(self) -> "Coo":
        """Return ``A^T`` as a new COO matrix (swap row/col indices).

        Memoized per data generation; the conversion charge is recorded
        on every call.
        """
        self._exec.run(
            conversion_cost(
                "coo", "coo_t", self._size.rows, self.nnz,
                self.value_bytes, self.index_bytes,
            )
        )
        return self._cached_derived(
            "transpose",
            lambda: Coo(
                self._exec,
                self._size.transposed,
                self._col_idxs,
                self._row_idxs,
                self._values,
            ),
        )

    def scale(self, alpha) -> "Coo":
        """Scale all stored values in place."""
        from repro.ginkgo.matrix.dense import _scalar_value

        self._values *= self._value_dtype.type(_scalar_value(alpha))
        self._invalidate_cache()
        return self

    def copy_to(self, exec_: Executor) -> "Coo":
        """Return a copy resident on ``exec_``."""
        obj = Coo.__new__(Coo)
        SparseBase.__init__(
            obj, exec_, self._size, self._value_dtype, self._index_dtype
        )
        obj._row_idxs = exec_.copy_from(self._exec, self._row_idxs)
        obj._col_idxs = exec_.copy_from(self._exec, self._col_idxs)
        obj._values = exec_.copy_from(self._exec, self._values)
        return obj

    def clone(self) -> "Coo":
        return self.copy_to(self._exec)

    def convert_to_csr(self, strategy: str = "load_balance"):
        """Convert to :class:`~repro.ginkgo.matrix.csr.Csr`."""
        from repro.ginkgo.matrix.csr import Csr

        self._exec.run(
            conversion_cost(
                "coo", "csr", self._size.rows, self.nnz,
                self.value_bytes, self.index_bytes,
            )
        )
        return self._cached_derived(
            f"convert_to_csr[{strategy}]",
            lambda: Csr.from_scipy(
                self._exec,
                self._scipy_view(),
                value_dtype=self._value_dtype,
                index_dtype=self._index_dtype,
                strategy=strategy,
            ),
        )
