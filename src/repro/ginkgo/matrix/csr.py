"""Compressed sparse row format (``gko::matrix::Csr``).

CSR is the workhorse format of the paper's benchmarks.  As in Ginkgo, the
SpMV kernel strategy is selectable: ``classical`` assigns one thread block
per row group, ``load_balance`` adds a partitioning pass that distributes
nonzeros evenly (Ginkgo's default on GPUs for irregular matrices),
``merge_path`` follows the merge-based decomposition, and ``sparselib``
defers to the vendor library.  The strategies are numerically identical;
they differ in modeled launch count and data movement.
"""

from __future__ import annotations

import hashlib

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import BadDimension, GinkgoError
from repro.ginkgo.executor import Executor, OmpExecutor
from repro.ginkgo.lin_op import LinOp
from repro.ginkgo.matrix.base import SparseBase, check_index_dtype, check_value_dtype
from repro.perfmodel import conversion_cost, spmv_cost

CSR_STRATEGIES = ("classical", "load_balance", "sparselib", "merge_path")

#: Row count below which a single SpMV is not worth thread-partitioning.
OMP_SPMV_MIN_ROWS = 4096


class Csr(SparseBase):
    """CSR matrix with executor-resident ``row_ptrs``/``col_idxs``/``values``."""

    _format_name = "csr"

    def __init__(
        self,
        exec_: Executor,
        size,
        row_ptrs,
        col_idxs,
        values,
        strategy: str = "load_balance",
    ) -> None:
        size = Dim.of(size)
        row_ptrs = np.asarray(row_ptrs)
        col_idxs = np.asarray(col_idxs)
        values = np.asarray(values)
        if row_ptrs.size != size.rows + 1:
            raise BadDimension(
                f"row_ptrs has {row_ptrs.size} entries for {size.rows} rows"
            )
        if col_idxs.size != values.size:
            raise BadDimension(
                f"col_idxs ({col_idxs.size}) and values ({values.size}) differ"
            )
        if row_ptrs.size and int(row_ptrs[-1]) != values.size:
            raise BadDimension(
                f"row_ptrs[-1]={int(row_ptrs[-1])} != nnz={values.size}"
            )
        if strategy not in CSR_STRATEGIES:
            raise GinkgoError(
                f"unknown CSR strategy {strategy!r}; available: {CSR_STRATEGIES}"
            )
        super().__init__(
            exec_,
            size,
            value_dtype=values.dtype,
            index_dtype=check_index_dtype(col_idxs.dtype),
        )
        self._row_ptrs = exec_.alloc_like(row_ptrs)
        np.copyto(self._row_ptrs, row_ptrs)
        self._col_idxs = exec_.alloc_like(col_idxs)
        np.copyto(self._col_idxs, col_idxs)
        self._values = exec_.alloc_like(values)
        np.copyto(self._values, values)
        self._strategy = strategy

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_scipy(
        cls,
        exec_: Executor,
        mat: sp.spmatrix,
        value_dtype=None,
        index_dtype=np.int32,
        strategy: str = "load_balance",
    ) -> "Csr":
        """Build from any SciPy sparse matrix (converted to CSR)."""
        csr = sp.csr_matrix(mat)
        csr.sort_indices()
        value_dtype = check_value_dtype(value_dtype or csr.dtype)
        index_dtype = check_index_dtype(index_dtype)
        return cls(
            exec_,
            Dim(*csr.shape),
            csr.indptr.astype(index_dtype),
            csr.indices.astype(index_dtype),
            csr.data.astype(value_dtype),
            strategy=strategy,
        )

    @classmethod
    def from_dense(
        cls, exec_: Executor, dense, index_dtype=np.int32,
        strategy: str = "load_balance",
    ) -> "Csr":
        """Build from a :class:`Dense` matrix, dropping explicit zeros."""
        data = np.asarray(dense._data if hasattr(dense, "_data") else dense)
        return cls.from_scipy(
            exec_, sp.csr_matrix(data), index_dtype=index_dtype,
            strategy=strategy,
        )

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self._values.size)

    @property
    def strategy(self) -> str:
        return self._strategy

    @strategy.setter
    def strategy(self, value: str) -> None:
        if value not in CSR_STRATEGIES:
            raise GinkgoError(
                f"unknown CSR strategy {value!r}; available: {CSR_STRATEGIES}"
            )
        self._strategy = value

    @property
    def row_ptrs(self) -> np.ndarray:
        """Read-only view; mutate via :meth:`writable_values` + mark_modified."""
        return self._readonly(self._row_ptrs)

    @property
    def col_idxs(self) -> np.ndarray:
        """Read-only view; mutate via :meth:`writable_values` + mark_modified."""
        return self._readonly(self._col_idxs)

    @property
    def values(self) -> np.ndarray:
        """Read-only view; mutate via :meth:`writable_values` + mark_modified."""
        return self._readonly(self._values)

    def _spmv_cost_kwargs(self) -> dict:
        return {"strategy": self._strategy}

    def _to_scipy(self) -> sp.csr_matrix:
        from repro.ginkgo.matrix.base import scipy_safe

        return sp.csr_matrix(
            (scipy_safe(self._values), self._col_idxs, self._row_ptrs),
            shape=self.shape,
        )

    # ------------------------------------------------------------------
    # thread-parallel SpMV (OmpExecutor)
    # ------------------------------------------------------------------
    def _omp_partition_plan(self):
        """Row-partitioned sub-matrices for the executor's thread pool.

        Returns ``None`` when partitioning does not apply (non-OMP
        executor, single thread, or a matrix too small to amortise the
        fork).  The plan is cached per data generation.
        """
        exec_ = self._exec
        if (
            not isinstance(exec_, OmpExecutor)
            or exec_.num_threads <= 1
            or self._size.rows < OMP_SPMV_MIN_ROWS
            or self._size.rows < exec_.num_threads
        ):
            return None
        return self._cached_derived(
            f"omp_spmv_plan[{exec_.num_threads}]",
            self._build_omp_partition_plan,
        )

    def _build_omp_partition_plan(self):
        """Nonzero-balanced contiguous row chunks as SciPy CSR views."""
        from repro.ginkgo.matrix.base import scipy_safe

        values = scipy_safe(self._values)
        ranges = self._exec.partition(np.diff(self._row_ptrs) + 1)
        plan = []
        for lo, hi in ranges:
            p0 = int(self._row_ptrs[lo])
            p1 = int(self._row_ptrs[hi])
            sub = sp.csr_matrix(
                (
                    values[p0:p1],
                    self._col_idxs[p0:p1],
                    self._row_ptrs[lo : hi + 1] - p0,
                ),
                shape=(hi - lo, self._size.cols),
            )
            plan.append((lo, hi, sub))
        return plan

    def _spmv_threaded(self, b: np.ndarray, plan) -> np.ndarray:
        """Run one SpMV as per-thread row chunks; one modeled kernel.

        Each chunk multiplies the same way SciPy's full CSR kernel
        handles its rows, so the result is bit-identical to the serial
        path; the aggregate cost is recorded once via
        :meth:`OmpExecutor.run_partitioned`.
        """
        rows = self._size.rows
        if self._value_dtype == np.float16:
            b_c = b.astype(np.float32)
            out = np.empty((rows, b.shape[1]), dtype=np.float32)
        else:
            b_c = b
            out = np.empty(
                (rows, b.shape[1]),
                dtype=np.promote_types(self._value_dtype, b.dtype),
            )

        def make_task(lo, hi, sub):
            def task():
                out[lo:hi] = sub @ b_c

            return task

        tasks = [make_task(lo, hi, sub) for lo, hi, sub in plan]
        parts = [
            {
                "weight": float(sub.nnz) or 1.0,
                "rows": hi - lo,
                "nnz": int(sub.nnz),
            }
            for lo, hi, sub in plan
        ]
        cost = spmv_cost(
            self._format_name,
            rows,
            self._size.cols,
            self.nnz,
            self.value_bytes,
            self.index_bytes,
            num_rhs=b.shape[1],
            **self._spmv_cost_kwargs(),
        )
        self._exec.run_partitioned(cost, tasks, parts)
        if self._value_dtype == np.float16:
            return out.astype(np.float16)
        return out

    def _apply_impl(self, b, x) -> None:
        plan = self._omp_partition_plan()
        if plan is None:
            return super()._apply_impl(b, x)
        result = self._spmv_threaded(b._data, plan)
        np.copyto(x._data, result.reshape(x._data.shape))

    def _apply_advanced_impl(self, alpha, b, beta, x) -> None:
        plan = self._omp_partition_plan()
        if plan is None:
            return super()._apply_advanced_impl(alpha, b, beta, x)
        from repro.ginkgo.matrix.dense import _scalar_value

        a = _scalar_value(alpha)
        bt = _scalar_value(beta)
        result = self._spmv_threaded(b._data, plan)
        x._data *= x.dtype.type(bt)
        x._data += x.dtype.type(a) * result.reshape(x._data.shape).astype(
            x.dtype, copy=False
        )

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def transpose(self) -> "Csr":
        """Return ``A^T`` as a new CSR matrix.

        Memoized per data generation (repeat calls return the same
        object); the conversion charge is recorded on every call.
        """
        self._exec.run(
            conversion_cost(
                "csr", "csr_t", self._size.rows, self.nnz,
                self.value_bytes, self.index_bytes,
            )
        )
        return self._cached_derived("transpose", self._build_transpose)

    def _build_transpose(self) -> "Csr":
        t = self._scipy_view().transpose().tocsr()
        return Csr.from_scipy(
            self._exec, t, index_dtype=self._index_dtype,
            strategy=self._strategy,
        )

    def scale(self, alpha) -> "Csr":
        """Scale all stored values in place."""
        from repro.ginkgo.matrix.dense import _scalar_value

        self._values *= self._value_dtype.type(_scalar_value(alpha))
        self._invalidate_cache()
        return self

    def sort_by_column_index(self) -> "Csr":
        """Sort each row's entries by column index, in place."""
        mat = self._to_scipy()
        mat.sort_indices()
        np.copyto(self._col_idxs, mat.indices.astype(self._index_dtype))
        np.copyto(self._values, mat.data.astype(self._value_dtype))
        self._invalidate_cache()
        return self

    def is_sorted_by_column_index(self) -> bool:
        """Whether every row's column indices are ascending."""
        ptrs, idxs = self._row_ptrs, self._col_idxs
        for r in range(self._size.rows):
            row = idxs[ptrs[r] : ptrs[r + 1]]
            if row.size > 1 and np.any(np.diff(row) < 0):
                return False
        return True

    def copy_to(self, exec_: Executor) -> "Csr":
        """Return a copy resident on ``exec_``."""
        obj = Csr.__new__(Csr)
        SparseBase.__init__(
            obj, exec_, self._size, self._value_dtype, self._index_dtype
        )
        obj._row_ptrs = exec_.copy_from(self._exec, self._row_ptrs)
        obj._col_idxs = exec_.copy_from(self._exec, self._col_idxs)
        obj._values = exec_.copy_from(self._exec, self._values)
        obj._strategy = self._strategy
        return obj

    def clone(self) -> "Csr":
        return self.copy_to(self._exec)

    def astype(self, value_dtype) -> "Csr":
        """Copy with a different value type."""
        value_dtype = check_value_dtype(value_dtype)
        return Csr(
            self._exec,
            self._size,
            self._row_ptrs,
            self._col_idxs,
            self._values.astype(value_dtype),
            strategy=self._strategy,
        )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def convert_to_coo(self):
        """Convert to :class:`~repro.ginkgo.matrix.coo.Coo`."""
        from repro.ginkgo.matrix.coo import Coo

        self._record_conversion("coo")

        def build():
            coo = self._scipy_view().tocoo()
            return Coo(
                self._exec,
                self._size,
                coo.row.astype(self._index_dtype),
                coo.col.astype(self._index_dtype),
                coo.data.astype(self._value_dtype),
            )

        return self._cached_derived("convert_to_coo", build)

    def convert_to_ell(self):
        """Convert to :class:`~repro.ginkgo.matrix.ell.Ell`."""
        from repro.ginkgo.matrix.ell import Ell

        self._record_conversion("ell")
        return self._cached_derived(
            "convert_to_ell",
            lambda: Ell.from_scipy(
                self._exec, self._scipy_view(), index_dtype=self._index_dtype
            ),
        )

    def convert_to_sellp(self, slice_size: int = 32):
        """Convert to :class:`~repro.ginkgo.matrix.sellp.Sellp`."""
        from repro.ginkgo.matrix.sellp import Sellp

        self._record_conversion("sellp")
        return self._cached_derived(
            f"convert_to_sellp[{slice_size}]",
            lambda: Sellp.from_scipy(
                self._exec,
                self._scipy_view(),
                slice_size=slice_size,
                index_dtype=self._index_dtype,
            ),
        )

    def convert_to_hybrid(self, percent: float = 0.8):
        """Convert to :class:`~repro.ginkgo.matrix.hybrid.Hybrid`."""
        from repro.ginkgo.matrix.hybrid import Hybrid

        self._record_conversion("hybrid")
        return self._cached_derived(
            f"convert_to_hybrid[{percent}]",
            lambda: Hybrid.from_scipy(
                self._exec,
                self._scipy_view(),
                percent=percent,
                index_dtype=self._index_dtype,
            ),
        )

    def convert_to_sparsity_csr(self):
        """Convert to :class:`~repro.ginkgo.matrix.sparsity_csr.SparsityCsr`."""
        from repro.ginkgo.matrix.sparsity_csr import SparsityCsr

        self._record_conversion("sparsity_csr")
        return self._cached_derived(
            "convert_to_sparsity_csr",
            lambda: SparsityCsr(
                self._exec, self._size, self._row_ptrs, self._col_idxs,
                value_dtype=self._value_dtype,
            ),
        )

    def _record_conversion(self, dst: str) -> None:
        self._exec.run(
            conversion_cost(
                "csr", dst, self._size.rows, self.nnz,
                self.value_bytes, self.index_bytes,
            )
        )

    # ------------------------------------------------------------------
    # structural identity
    # ------------------------------------------------------------------
    def pattern_fingerprint(self) -> str:
        """Hash of the sparsity *pattern*: ``(shape, row_ptrs, col_idxs)``.

        Two CSR matrices with equal fingerprints can be stacked into one
        :class:`~repro.ginkgo.batch.matrix.BatchCsr` — the service-layer
        coalescer keys its batch lanes on this.  Values do not contribute,
        so rescaling keeps the fingerprint while any structural edit
        changes it.

        Memoized per data generation through the same ``data_version``
        counter as the format conversions: in-place mutation (via
        ``writable_values()`` + ``mark_modified()``) invalidates the
        cached digest, and the recomputation is counted under the
        ``format`` cache kind.
        """
        return self._cached_derived(
            "pattern_fingerprint", self._build_pattern_fingerprint
        )

    def _build_pattern_fingerprint(self) -> str:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(
            np.asarray([self._size.rows, self._size.cols], dtype=np.int64)
            .tobytes()
        )
        digest.update(np.ascontiguousarray(self._row_ptrs).tobytes())
        digest.update(np.ascontiguousarray(self._col_idxs).tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # analysis helpers used by the benchmark harness
    # ------------------------------------------------------------------
    def row_nnz(self) -> np.ndarray:
        """Number of stored entries per row."""
        return np.diff(self._row_ptrs)

    def imbalance(self) -> float:
        """Max-row-nnz / mean-row-nnz; 1.0 for perfectly regular matrices."""
        counts = self.row_nnz()
        mean = counts.mean() if counts.size else 0.0
        return float(counts.max() / mean) if mean > 0 else 1.0
