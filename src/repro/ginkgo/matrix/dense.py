"""Row-major dense matrices and vectors (``gko::matrix::Dense``).

Dense doubles as the engine's (multi-)vector type: right-hand sides,
solutions, and Krylov basis vectors are all ``n x k`` Dense operators.
Every numerical member records its roofline cost on the owning executor's
simulated clock, so solver timings emerge from the same model as SpMV.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import (
    DimensionMismatch,
    ExecutorMismatch,
    GinkgoError,
)
from repro.ginkgo.executor import Executor
from repro.ginkgo.lin_op import LinOp
from repro.perfmodel import blas1_cost, dot_cost, spmv_cost


def _scalar_value(alpha) -> float:
    """Extract a Python scalar from a float or a 1x1 Dense."""
    if isinstance(alpha, Dense):
        if alpha.size.num_elements != 1:
            raise DimensionMismatch(
                "scalar", expected=Dim(1, 1), got=alpha.size
            )
        return float(alpha._data[0, 0])
    return float(alpha)


def _coef(alpha, dtype):
    """Coerce a scalar, per-column vector, or 1xk Dense into a coefficient.

    Returns either a scalar of ``dtype`` or a ``(1, k)`` array broadcastable
    over an ``n x k`` Dense — this is how the engine supports multi-RHS
    Krylov iterations with one coefficient per column (Ginkgo passes a
    ``1 x k`` Dense for alpha/beta).
    """
    if isinstance(alpha, Dense):
        return alpha._data.reshape(1, -1).astype(dtype, copy=False)
    arr = np.asarray(alpha)
    if arr.ndim == 0:
        return dtype.type(arr)
    return arr.reshape(1, -1).astype(dtype, copy=False)


class Dense(LinOp):
    """A dense row-major matrix bound to an executor.

    Construct with :meth:`create` (from existing data), :meth:`empty`,
    :meth:`full`, or :meth:`zeros`.
    """

    def __init__(self, exec_: Executor, data) -> None:
        data = np.asarray(data)
        if data.ndim == 1:
            data = data.reshape(-1, 1)
        if data.ndim != 2:
            raise GinkgoError(f"Dense data must be 1-D or 2-D, got {data.ndim}-D")
        super().__init__(exec_, Dim(data.shape[0], data.shape[1]))
        self._data = exec_.alloc_like(np.ascontiguousarray(data))
        np.copyto(self._data, data)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, exec_: Executor, data) -> "Dense":
        """Create from any array-like (copies into the executor's space)."""
        return cls(exec_, data)

    @classmethod
    def empty(cls, exec_: Executor, size, dtype) -> "Dense":
        """Allocate an uninitialised matrix."""
        size = Dim.of(size)
        obj = cls.__new__(cls)
        LinOp.__init__(obj, exec_, size)
        obj._data = exec_.alloc((size.rows, size.cols), dtype)
        return obj

    @classmethod
    def _wrap(cls, exec_: Executor, data: np.ndarray) -> "Dense":
        """Wrap an existing buffer without copying (internal use only).

        The buffer must already live in ``exec_``'s memory space; used by
        solvers to view columns of a multi-RHS block in place.
        """
        if data.ndim != 2:
            raise GinkgoError("_wrap expects a 2-D buffer")
        obj = cls.__new__(cls)
        LinOp.__init__(obj, exec_, Dim(data.shape[0], data.shape[1]))
        obj._data = data
        return obj

    @classmethod
    def zeros(cls, exec_: Executor, size, dtype) -> "Dense":
        """Allocate a zero matrix."""
        return cls.empty(exec_, size, dtype)

    @classmethod
    def full(cls, exec_: Executor, size, value, dtype) -> "Dense":
        """Allocate a matrix filled with ``value``."""
        out = cls.empty(exec_, size, dtype)
        out._data.fill(value)
        return out

    # ------------------------------------------------------------------
    # properties and access
    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def value_bytes(self) -> int:
        return self._data.dtype.itemsize

    @property
    def stride(self) -> int:
        return self._data.shape[1]

    def at(self, row: int, col: int = 0):
        """Read one entry (host-side; models a device read on GPUs)."""
        if not self._exec.is_host:
            self._exec.synchronize()
        return self._data[row, col]

    def view(self) -> np.ndarray:
        """Zero-copy **read-only** NumPy view; only legal on host executors.

        Read-only because writes through an exported view would bypass
        :meth:`mark_modified`, silently poisoning the generation-counter
        memo (cached transposes, recorded lazy nodes).  Use
        :meth:`writable_view` when in-place mutation is intended.
        """
        if not self._exec.is_host:
            raise ExecutorMismatch(
                "Dense.view", expected="a host executor", got=self._exec.name
            )
        view = self._data.view()
        view.flags.writeable = False
        return view

    def writable_view(self) -> np.ndarray:
        """Zero-copy *writable* view — the caller owns invalidation.

        Every write through the returned array must be followed by a
        :meth:`mark_modified` call (or wrapped in code that does so);
        otherwise version-checked caches serve stale results.
        """
        if not self._exec.is_host:
            raise ExecutorMismatch(
                "Dense.writable_view",
                expected="a host executor",
                got=self._exec.name,
            )
        return self._data

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        view = self.view()
        if dtype is not None and dtype != view.dtype:
            return view.astype(dtype)
        return view

    def to_numpy(self) -> np.ndarray:
        """Copy out to host memory regardless of residence."""
        if self._exec.is_host:
            return self._data.copy()
        return self._exec.get_master().copy_from(self._exec, self._data)

    # ------------------------------------------------------------------
    # expression operators (lazy-recordable)
    # ------------------------------------------------------------------
    def __mul__(self, alpha):
        if not isinstance(alpha, (int, float, np.integer, np.floating)):
            return NotImplemented
        from repro.ginkgo import lazy

        return lazy.scale_expr(alpha, self)

    __rmul__ = __mul__

    def __neg__(self):
        from repro.ginkgo import lazy

        return lazy.scale_expr(-1.0, self)

    def __add__(self, other):
        from repro.ginkgo import lazy

        try:
            return lazy.add_expr(self, other)
        except TypeError:
            return NotImplemented

    def __sub__(self, other):
        from repro.ginkgo import lazy

        try:
            return lazy.add_expr(self, other, sign=-1.0)
        except TypeError:
            return NotImplemented

    # ------------------------------------------------------------------
    # migration and copies
    # ------------------------------------------------------------------
    def copy_to(self, exec_: Executor) -> "Dense":
        """Return a copy resident on ``exec_``."""
        obj = Dense.__new__(Dense)
        LinOp.__init__(obj, exec_, self._size)
        obj._data = exec_.copy_from(self._exec, self._data)
        return obj

    def clone(self) -> "Dense":
        """Deep copy on the same executor."""
        return self.copy_to(self._exec)

    def copy_values_from(self, other: "Dense") -> "Dense":
        """Overwrite this matrix's values with ``other``'s (same shape)."""
        self._check_same_shape(other, "copy_values_from")
        np.copyto(self._data, other._data)
        self._exec.run(
            blas1_cost("copy", self._size.num_elements, self.value_bytes, 2)
        )
        self.mark_modified()
        return self

    # ------------------------------------------------------------------
    # BLAS-1 style operations
    # ------------------------------------------------------------------
    def fill(self, value) -> "Dense":
        """Set every entry to ``value``."""
        self._data.fill(value)
        self._exec.run(
            blas1_cost("fill", self._size.num_elements, self.value_bytes, 1)
        )
        self.mark_modified()
        return self

    def scale(self, alpha) -> "Dense":
        """``self *= alpha`` in place (scalar or per-column coefficients)."""
        a = _coef(alpha, self.dtype)
        if np.ndim(a) == 0 and a == 0.0:
            self._data.fill(0.0)
        elif np.ndim(a) != 0 or a != 1.0:
            self._data *= a
        self._exec.run(
            blas1_cost("scale", self._size.num_elements, self.value_bytes, 2)
        )
        self.mark_modified()
        return self

    def inv_scale(self, alpha) -> "Dense":
        """``self /= alpha`` in place (scalar or per-column coefficients)."""
        a = _coef(alpha, self.dtype)
        if np.any(np.asarray(a) == 0.0):
            raise ZeroDivisionError("inv_scale by zero")
        self._data /= a
        self._exec.run(
            blas1_cost("inv_scale", self._size.num_elements, self.value_bytes, 2)
        )
        self.mark_modified()
        return self

    def add_scaled(self, alpha, other: "Dense") -> "Dense":
        """``self += alpha * other`` (axpy; scalar or per-column alpha)."""
        self._check_same_shape(other, "add_scaled")
        a = _coef(alpha, self.dtype)
        if np.ndim(a) == 0 and a == 1.0:
            self._data += other._data
        elif np.ndim(a) != 0 or a != 0.0:
            self._data += a * other._data
        self._exec.run(
            blas1_cost("add_scaled", self._size.num_elements, self.value_bytes, 3)
        )
        self.mark_modified()
        return self

    def sub_scaled(self, alpha, other: "Dense") -> "Dense":
        """``self -= alpha * other`` in place."""
        a = _coef(alpha, self.dtype)
        return self.add_scaled(-a if np.ndim(a) else -float(a), other)

    def compute_dot(self, other: "Dense") -> np.ndarray:
        """Column-wise dot products ``self^T other`` (length-k vector)."""
        self._check_same_shape(other, "compute_dot")
        result = np.einsum("ij,ij->j", self._data, other._data)
        self._exec.run(
            dot_cost(self._size.rows, self.value_bytes, self._size.cols)
        )
        return result

    def compute_conj_dot(self, other: "Dense") -> np.ndarray:
        """Column-wise conjugated dot products."""
        self._check_same_shape(other, "compute_conj_dot")
        result = np.einsum("ij,ij->j", np.conj(self._data), other._data)
        self._exec.run(
            dot_cost(self._size.rows, self.value_bytes, self._size.cols)
        )
        return result

    def compute_norm2(self) -> np.ndarray:
        """Column-wise Euclidean norms (length-k vector)."""
        result = np.sqrt(
            np.einsum("ij,ij->j", self._data, self._data).astype(np.float64)
        )
        self._exec.run(
            dot_cost(self._size.rows, self.value_bytes, self._size.cols)
        )
        return result

    def compute_norm1(self) -> np.ndarray:
        """Column-wise 1-norms."""
        result = np.abs(self._data).sum(axis=0)
        self._exec.run(
            dot_cost(self._size.rows, self.value_bytes, self._size.cols)
        )
        return result

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def transpose(self) -> "Dense":
        """Return the transposed matrix.

        Memoized per data generation (repeat calls return the same
        object); the transpose kernel is charged on every call.
        """
        self._exec.run(
            blas1_cost("transpose", self._size.num_elements, self.value_bytes, 2)
        )
        return self._cached_derived("transpose", self._build_transpose)

    def _build_transpose(self) -> "Dense":
        out = Dense.__new__(Dense)
        LinOp.__init__(out, self._exec, self._size.transposed)
        out._data = self._exec.alloc_like(
            np.ascontiguousarray(self._data.T)
        )
        np.copyto(out._data, self._data.T)
        return out

    def column(self, index: int) -> "Dense":
        """Copy of one column as an ``n x 1`` Dense."""
        if not 0 <= index < self._size.cols:
            raise IndexError(f"column {index} out of range")
        return Dense(self._exec, self._data[:, index : index + 1])

    def column_view(self, index: int) -> "Dense":
        """Writable zero-copy view of one column as an ``n x 1`` Dense.

        The view aliases this matrix's storage — writes through it land
        here directly.  Wrapper objects are cached per column, so multi-RHS
        loops acquire each column once instead of wrapping per access.
        """
        if not 0 <= index < self._size.cols:
            raise IndexError(f"column {index} out of range")
        views = self.__dict__.setdefault("_column_wrappers", {})
        wrapper = views.get(index)
        if wrapper is None:
            wrapper = Dense._wrap(self._exec, self._data[:, index : index + 1])
            views[index] = wrapper
        return wrapper

    def row_slice(self, start: int, stop: int) -> "Dense":
        """Copy of rows ``[start, stop)``."""
        if not (0 <= start <= stop <= self._size.rows):
            raise IndexError(f"row slice [{start}, {stop}) out of range")
        return Dense(self._exec, self._data[start:stop, :])

    def astype(self, dtype) -> "Dense":
        """Copy with a different value type."""
        return Dense(self._exec, self._data.astype(dtype))

    # ------------------------------------------------------------------
    # LinOp interface: dense mat-vec
    # ------------------------------------------------------------------
    def _apply_impl(self, b: "Dense", x: "Dense") -> None:
        np.matmul(self._data, b._data, out=x._data)
        self._exec.run(
            spmv_cost(
                "dense",
                self._size.rows,
                self._size.cols,
                self._size.num_elements,
                self.value_bytes,
                8,
                num_rhs=b.size.cols,
            )
        )

    def _apply_advanced_impl(self, alpha, b: "Dense", beta, x: "Dense") -> None:
        a = _scalar_value(alpha)
        bt = _scalar_value(beta)
        x._data *= x.dtype.type(bt)
        x._data += x.dtype.type(a) * (self._data @ b._data)
        self._exec.run(
            spmv_cost(
                "dense",
                self._size.rows,
                self._size.cols,
                self._size.num_elements,
                self.value_bytes,
                8,
                num_rhs=b.size.cols,
            )
        )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def convert_to_csr(self, index_dtype=np.int32):
        """Convert to :class:`~repro.ginkgo.matrix.csr.Csr` (memoized)."""
        from repro.ginkgo.matrix.csr import Csr
        import scipy.sparse as sp

        return self._cached_derived(
            f"convert_to_csr[{np.dtype(index_dtype).name}]",
            lambda: Csr.from_scipy(
                self._exec, sp.csr_matrix(self._data), index_dtype=index_dtype
            ),
        )

    def _check_same_shape(self, other: "Dense", op_name: str) -> None:
        if other.size != self._size:
            raise DimensionMismatch(op_name, expected=self._size, got=other.size)
        if other.executor is not self._exec:
            raise ExecutorMismatch(
                op_name, expected=self._exec.name, got=other.executor.name
            )

    def __repr__(self) -> str:
        return (
            f"Dense({self._size.rows}x{self._size.cols}, dtype={self.dtype}, "
            f"executor={self._exec.name})"
        )
