"""Diagonal matrices (``gko::matrix::Diagonal``)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.dim import Dim
from repro.ginkgo.executor import Executor
from repro.ginkgo.matrix.base import SparseBase, check_value_dtype
from repro.perfmodel import blas1_cost


class Diagonal(SparseBase):
    """A square diagonal operator storing only the diagonal entries."""

    _format_name = "diagonal"

    def __init__(self, exec_: Executor, diag) -> None:
        diag = np.asarray(diag).reshape(-1)
        super().__init__(
            exec_,
            Dim(diag.size, diag.size),
            value_dtype=check_value_dtype(diag.dtype),
            index_dtype=np.int32,
        )
        self._diag = exec_.alloc_like(diag)
        np.copyto(self._diag, diag)

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self._diag))

    @property
    def values(self) -> np.ndarray:
        return self._diag

    def _to_scipy(self) -> sp.dia_matrix:
        return sp.diags(self._diag).tocsr()

    def _spmv_arrays(self, b: np.ndarray) -> np.ndarray:
        return self._diag[:, None] * b

    def inverse(self) -> "Diagonal":
        """Return the diagonal inverse (used by Jacobi preconditioning).

        Zero entries invert to zero, matching Ginkgo's Jacobi behaviour of
        skipping empty diagonal blocks rather than dividing by zero.
        """
        inv = np.zeros_like(self._diag)
        mask = self._diag != 0
        inv[mask] = 1.0 / self._diag[mask]
        self._exec.run(blas1_cost("diag_inverse", self._diag.size, self.value_bytes, 2))
        return Diagonal(self._exec, inv)

    def transpose(self) -> "Diagonal":
        """A diagonal matrix is its own transpose."""
        return Diagonal(self._exec, self._diag)
