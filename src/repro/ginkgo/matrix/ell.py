"""ELLPACK format (``gko::matrix::Ell``).

Stores a dense ``rows x max_row_nnz`` block of values and column indices,
padded with zeros.  Regular row lengths make this format SIMD-friendly; the
padding makes it wasteful for imbalanced matrices.  The SpMV here is a real
vectorised ELL kernel (column-at-a-time gather), not a SciPy fallback.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import BadDimension
from repro.ginkgo.executor import Executor
from repro.ginkgo.matrix.base import SparseBase, check_index_dtype, check_value_dtype
from repro.perfmodel import conversion_cost


class Ell(SparseBase):
    """ELL matrix with padded ``values``/``col_idxs`` blocks."""

    _format_name = "ell"

    def __init__(self, exec_: Executor, size, col_idxs, values) -> None:
        size = Dim.of(size)
        col_idxs = np.asarray(col_idxs)
        values = np.asarray(values)
        if col_idxs.shape != values.shape or col_idxs.ndim != 2:
            raise BadDimension(
                f"ELL blocks must be matching 2-D arrays, got "
                f"{col_idxs.shape} and {values.shape}"
            )
        if col_idxs.shape[0] != size.rows:
            raise BadDimension(
                f"ELL block has {col_idxs.shape[0]} rows for a "
                f"{size.rows}-row matrix"
            )
        super().__init__(
            exec_,
            size,
            value_dtype=values.dtype,
            index_dtype=check_index_dtype(col_idxs.dtype),
        )
        self._col_idxs = exec_.alloc_like(col_idxs)
        np.copyto(self._col_idxs, col_idxs)
        self._values = exec_.alloc_like(values)
        np.copyto(self._values, values)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_scipy(
        cls,
        exec_: Executor,
        mat: sp.spmatrix,
        value_dtype=None,
        index_dtype=np.int32,
    ) -> "Ell":
        """Build from a SciPy sparse matrix, padding rows to equal length."""
        csr = sp.csr_matrix(mat)
        csr.sort_indices()
        value_dtype = check_value_dtype(value_dtype or csr.dtype)
        index_dtype = check_index_dtype(index_dtype)
        rows = csr.shape[0]
        row_nnz = np.diff(csr.indptr)
        width = int(row_nnz.max()) if rows else 0
        col_idxs = np.zeros((rows, width), dtype=index_dtype)
        values = np.zeros((rows, width), dtype=value_dtype)
        # Scatter each row's entries into its leading slots in one shot:
        # the row-major flattening of the mask enumerates (row, slot)
        # pairs in exactly CSR's row-sorted entry order.
        in_row = np.arange(width)[None, :] < row_nnz[:, None]
        col_idxs[in_row] = csr.indices
        values[in_row] = csr.data
        return cls(exec_, Dim(*csr.shape), col_idxs, values)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self._values))

    @property
    def stored_elements(self) -> int:
        """Total stored slots including padding."""
        return int(self._values.size)

    @property
    def num_stored_elements_per_row(self) -> int:
        return int(self._values.shape[1])

    @property
    def col_idxs(self) -> np.ndarray:
        """Read-only view; mutate via :meth:`writable_values` + mark_modified."""
        return self._readonly(self._col_idxs)

    @property
    def values(self) -> np.ndarray:
        """Read-only view; mutate via :meth:`writable_values` + mark_modified."""
        return self._readonly(self._values)

    # ------------------------------------------------------------------
    # SpMV: real vectorised ELL kernel
    # ------------------------------------------------------------------
    def _spmv_arrays(self, b: np.ndarray) -> np.ndarray:
        compute = np.float32 if self._value_dtype == np.float16 else self._value_dtype
        x = b.astype(compute, copy=False)
        if self._values.shape[1] == 0:
            return np.zeros((self._size.rows, x.shape[1]), dtype=self._value_dtype)
        vals = self._values.astype(compute, copy=False)
        # One gather of every referenced x row, then a contraction over
        # the slot axis — the whole SpMV in two vector kernels (padding
        # slots contribute value 0 * x[col 0]).
        y = np.einsum("rk,rkj->rj", vals, x[self._col_idxs, :])
        return y.astype(self._value_dtype, copy=False)

    def _to_scipy(self) -> sp.csr_matrix:
        rows = np.repeat(
            np.arange(self._size.rows), self._values.shape[1]
        ).reshape(self._values.shape)
        mask = self._values != 0
        return sp.csr_matrix(
            (
                self._values[mask],
                (rows[mask], self._col_idxs[mask]),
            ),
            shape=self.shape,
        )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def convert_to_csr(self, strategy: str = "load_balance"):
        """Convert to :class:`~repro.ginkgo.matrix.csr.Csr`."""
        from repro.ginkgo.matrix.csr import Csr

        self._exec.run(
            conversion_cost(
                "ell", "csr", self._size.rows, self.nnz,
                self.value_bytes, self.index_bytes,
            )
        )
        return self._cached_derived(
            f"convert_to_csr[{strategy}]",
            lambda: Csr.from_scipy(
                self._exec,
                self._scipy_view(),
                value_dtype=self._value_dtype,
                index_dtype=self._index_dtype,
                strategy=strategy,
            ),
        )

    def copy_to(self, exec_: Executor) -> "Ell":
        """Return a copy resident on ``exec_``."""
        obj = Ell.__new__(Ell)
        SparseBase.__init__(
            obj, exec_, self._size, self._value_dtype, self._index_dtype
        )
        obj._col_idxs = exec_.copy_from(self._exec, self._col_idxs)
        obj._values = exec_.copy_from(self._exec, self._values)
        return obj

    def clone(self) -> "Ell":
        return self.copy_to(self._exec)
