"""Hybrid ELL+COO format (``gko::matrix::Hybrid``).

The regular part of each row (up to a percentile-based width) is stored in
ELL; the irregular remainder spills into COO.  The SpMV applies both parts,
which the cost model reflects as two kernels.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import BadDimension
from repro.ginkgo.executor import Executor
from repro.ginkgo.matrix.base import SparseBase, check_index_dtype, check_value_dtype
from repro.ginkgo.matrix.coo import Coo
from repro.ginkgo.matrix.ell import Ell
from repro.perfmodel import conversion_cost


class Hybrid(SparseBase):
    """ELL + COO split storage."""

    _format_name = "hybrid"

    def __init__(self, exec_: Executor, size, ell: Ell, coo: Coo) -> None:
        size = Dim.of(size)
        if ell.size != size or coo.size != size:
            raise BadDimension(
                f"hybrid parts must both be {size}, got ell={ell.size}, "
                f"coo={coo.size}"
            )
        super().__init__(
            exec_, size, value_dtype=ell.dtype, index_dtype=ell.index_dtype
        )
        self._ell = ell
        self._coo = coo

    def mark_modified(self) -> None:
        # The hybrid's caches are built from the parts, so invalidation
        # cascades down; mutating a part directly requires marking the
        # hybrid itself.
        super().mark_modified()
        self._ell.mark_modified()
        self._coo.mark_modified()

    @classmethod
    def from_scipy(
        cls,
        exec_: Executor,
        mat: sp.spmatrix,
        percent: float = 0.8,
        value_dtype=None,
        index_dtype=np.int32,
    ) -> "Hybrid":
        """Split ``mat`` at the ``percent`` row-length percentile.

        Rows keep their first ``width`` entries in ELL, where ``width`` is
        the ``percent`` quantile of row lengths; the rest spill to COO.
        """
        if not 0.0 <= percent <= 1.0:
            raise ValueError(f"percent must be in [0, 1], got {percent}")
        csr = sp.csr_matrix(mat)
        csr.sort_indices()
        value_dtype = check_value_dtype(value_dtype or csr.dtype)
        index_dtype = check_index_dtype(index_dtype)
        rows = csr.shape[0]
        row_nnz = np.diff(csr.indptr)
        width = int(np.quantile(row_nnz, percent)) if rows else 0

        ell_cols = np.zeros((rows, max(width, 1)), dtype=index_dtype)
        ell_vals = np.zeros((rows, max(width, 1)), dtype=value_dtype)
        coo_r, coo_c, coo_v = [], [], []
        for r in range(rows):
            start, stop = csr.indptr[r], csr.indptr[r + 1]
            n = stop - start
            keep = min(n, width)
            ell_cols[r, :keep] = csr.indices[start : start + keep]
            ell_vals[r, :keep] = csr.data[start : start + keep]
            if n > keep:
                coo_r.extend([r] * (n - keep))
                coo_c.extend(csr.indices[start + keep : stop])
                coo_v.extend(csr.data[start + keep : stop])
        ell = Ell(exec_, Dim(*csr.shape), ell_cols, ell_vals)
        coo = Coo(
            exec_,
            Dim(*csr.shape),
            np.asarray(coo_r, dtype=index_dtype),
            np.asarray(coo_c, dtype=index_dtype),
            np.asarray(coo_v, dtype=value_dtype),
        )
        return cls(exec_, Dim(*csr.shape), ell, coo)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return self._ell.nnz + self._coo.nnz

    @property
    def ell_part(self) -> Ell:
        return self._ell

    @property
    def coo_part(self) -> Coo:
        return self._coo

    # ------------------------------------------------------------------
    # SpMV: apply both parts
    # ------------------------------------------------------------------
    def _spmv_arrays(self, b: np.ndarray) -> np.ndarray:
        y = self._ell._spmv_arrays(b).astype(
            self._value_dtype, copy=False
        )
        if self._coo.nnz:
            y = y + self._coo._spmv_arrays(b).reshape(y.shape)
        return y

    def _to_scipy(self) -> sp.csr_matrix:
        out = self._ell._to_scipy().tocsr()
        if self._coo.nnz:
            out = (out + self._coo._to_scipy().tocsr()).tocsr()
        return out

    def convert_to_csr(self, strategy: str = "load_balance"):
        """Convert to :class:`~repro.ginkgo.matrix.csr.Csr`."""
        from repro.ginkgo.matrix.csr import Csr

        self._exec.run(
            conversion_cost(
                "hybrid", "csr", self._size.rows, self.nnz,
                self.value_bytes, self.index_bytes,
            )
        )
        return self._cached_derived(
            f"convert_to_csr[{strategy}]",
            lambda: Csr.from_scipy(
                self._exec,
                self._scipy_view(),
                value_dtype=self._value_dtype,
                index_dtype=self._index_dtype,
                strategy=strategy,
            ),
        )
