"""Row permutation operators (``gko::matrix::Permutation``)."""

from __future__ import annotations

import numpy as np

from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import BadDimension
from repro.ginkgo.executor import Executor
from repro.ginkgo.lin_op import LinOp
from repro.perfmodel import blas1_cost


class Permutation(LinOp):
    """A permutation operator ``(Pb)_i = b_{perm[i]}``."""

    def __init__(self, exec_: Executor, permutation) -> None:
        perm = np.asarray(permutation)
        if perm.ndim != 1:
            raise BadDimension("permutation must be one-dimensional")
        if perm.size and not np.array_equal(np.sort(perm), np.arange(perm.size)):
            raise BadDimension(
                "permutation must contain each index 0..n-1 exactly once"
            )
        super().__init__(exec_, Dim(perm.size, perm.size))
        self._perm = exec_.alloc_like(perm.astype(np.int64))
        np.copyto(self._perm, perm.astype(np.int64))

    @property
    def permutation(self) -> np.ndarray:
        return self._perm

    def inverse(self) -> "Permutation":
        """Return ``P^{-1}`` (= ``P^T`` for permutations)."""
        inv = np.empty_like(self._perm)
        inv[self._perm] = np.arange(self._perm.size)
        return Permutation(self._exec, inv)

    def _apply_impl(self, b, x) -> None:
        np.copyto(x._data, b._data[self._perm, :])
        self._exec.run(
            blas1_cost("permute", b.size.num_elements, b.value_bytes, 2)
        )

    def _apply_advanced_impl(self, alpha, b, beta, x) -> None:
        from repro.ginkgo.matrix.dense import _scalar_value

        a = _scalar_value(alpha)
        bt = _scalar_value(beta)
        x._data *= x.dtype.type(bt)
        x._data += x.dtype.type(a) * b._data[self._perm, :]
        self._exec.run(
            blas1_cost("permute", b.size.num_elements, b.value_bytes, 3)
        )
