"""Sliced ELLPACK format, SELL-P (``gko::matrix::Sellp``).

Rows are grouped into slices of ``slice_size``; each slice is padded to its
own maximum row length, avoiding ELL's global padding blow-up on imbalanced
matrices.  We store the real sliced layout (per-slice column-major blocks,
exactly like Ginkgo) and run the SpMV slice by slice.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import BadDimension
from repro.ginkgo.executor import Executor
from repro.ginkgo.matrix.base import SparseBase, check_index_dtype, check_value_dtype
from repro.perfmodel import conversion_cost

DEFAULT_SLICE_SIZE = 32


class Sellp(SparseBase):
    """SELL-P matrix with per-slice padded blocks."""

    _format_name = "sellp"

    def __init__(
        self,
        exec_: Executor,
        size,
        slice_size: int,
        slice_lengths,
        slice_sets,
        col_idxs,
        values,
    ) -> None:
        size = Dim.of(size)
        if slice_size < 1:
            raise BadDimension(f"slice_size must be >= 1, got {slice_size}")
        slice_lengths = np.asarray(slice_lengths)
        slice_sets = np.asarray(slice_sets)
        col_idxs = np.asarray(col_idxs)
        values = np.asarray(values)
        num_slices = -(-size.rows // slice_size) if size.rows else 0
        if slice_lengths.size != num_slices:
            raise BadDimension(
                f"expected {num_slices} slice lengths, got {slice_lengths.size}"
            )
        if slice_sets.size != num_slices + 1:
            raise BadDimension(
                f"expected {num_slices + 1} slice offsets, got {slice_sets.size}"
            )
        if col_idxs.size != values.size:
            raise BadDimension("col_idxs and values differ in length")
        super().__init__(
            exec_,
            size,
            value_dtype=values.dtype,
            index_dtype=check_index_dtype(col_idxs.dtype),
        )
        self._slice_size = int(slice_size)
        self._slice_lengths = exec_.alloc_like(slice_lengths)
        np.copyto(self._slice_lengths, slice_lengths)
        self._slice_sets = exec_.alloc_like(slice_sets)
        np.copyto(self._slice_sets, slice_sets)
        self._col_idxs = exec_.alloc_like(col_idxs)
        np.copyto(self._col_idxs, col_idxs)
        self._values = exec_.alloc_like(values)
        np.copyto(self._values, values)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_scipy(
        cls,
        exec_: Executor,
        mat: sp.spmatrix,
        slice_size: int = DEFAULT_SLICE_SIZE,
        value_dtype=None,
        index_dtype=np.int32,
    ) -> "Sellp":
        """Build the sliced layout from a SciPy sparse matrix."""
        csr = sp.csr_matrix(mat)
        csr.sort_indices()
        value_dtype = check_value_dtype(value_dtype or csr.dtype)
        index_dtype = check_index_dtype(index_dtype)
        rows = csr.shape[0]
        num_slices = -(-rows // slice_size) if rows else 0
        row_nnz = np.diff(csr.indptr)

        slice_lengths = np.zeros(num_slices, dtype=index_dtype)
        for s in range(num_slices):
            lo, hi = s * slice_size, min((s + 1) * slice_size, rows)
            slice_lengths[s] = row_nnz[lo:hi].max() if hi > lo else 0
        slice_sets = np.zeros(num_slices + 1, dtype=index_dtype)
        np.cumsum(slice_lengths * slice_size, out=slice_sets[1:])

        total = int(slice_sets[-1])
        col_idxs = np.zeros(total, dtype=index_dtype)
        values = np.zeros(total, dtype=value_dtype)
        for s in range(num_slices):
            lo = s * slice_size
            hi = min(lo + slice_size, rows)
            length = int(slice_lengths[s])
            base = int(slice_sets[s])
            for local, r in enumerate(range(lo, hi)):
                start, stop = csr.indptr[r], csr.indptr[r + 1]
                n = stop - start
                # Column-major within the slice: entry k of row `local`
                # lives at base + k * slice_size + local.
                dest = base + np.arange(n) * slice_size + local
                col_idxs[dest] = csr.indices[start:stop]
                values[dest] = csr.data[start:stop]
        return cls(
            exec_,
            Dim(*csr.shape),
            slice_size,
            slice_lengths,
            slice_sets,
            col_idxs,
            values,
        )

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self._values))

    @property
    def stored_elements(self) -> int:
        return int(self._values.size)

    @property
    def slice_size(self) -> int:
        return self._slice_size

    @property
    def slice_lengths(self) -> np.ndarray:
        return self._slice_lengths

    @property
    def slice_sets(self) -> np.ndarray:
        return self._slice_sets

    @property
    def values(self) -> np.ndarray:
        return self._values

    @property
    def col_idxs(self) -> np.ndarray:
        return self._col_idxs

    # ------------------------------------------------------------------
    # SpMV: real sliced kernel
    # ------------------------------------------------------------------
    def _spmv_arrays(self, b: np.ndarray) -> np.ndarray:
        compute = np.float32 if self._value_dtype == np.float16 else self._value_dtype
        x = b.astype(compute, copy=False)
        rows = self._size.rows
        y = np.zeros((rows, x.shape[1]), dtype=compute)
        ss = self._slice_size
        for s in range(self._slice_lengths.size):
            lo = s * ss
            hi = min(lo + ss, rows)
            count = hi - lo
            length = int(self._slice_lengths[s])
            base = int(self._slice_sets[s])
            if length == 0 or count == 0:
                continue
            block = slice(base, base + length * ss)
            vals = self._values[block].reshape(length, ss)[:, :count]
            cols = self._col_idxs[block].reshape(length, ss)[:, :count]
            acc = np.einsum(
                "kr,krj->rj", vals.astype(compute, copy=False), x[cols, :]
            )
            y[lo:hi, :] = acc
        return y.astype(self._value_dtype, copy=False)

    def _to_scipy(self) -> sp.csr_matrix:
        rows_list, cols_list, vals_list = [], [], []
        ss = self._slice_size
        nrows = self._size.rows
        for s in range(self._slice_lengths.size):
            lo = s * ss
            hi = min(lo + ss, nrows)
            count = hi - lo
            length = int(self._slice_lengths[s])
            base = int(self._slice_sets[s])
            if length == 0 or count == 0:
                continue
            block = slice(base, base + length * ss)
            vals = self._values[block].reshape(length, ss)[:, :count]
            cols = self._col_idxs[block].reshape(length, ss)[:, :count]
            mask = vals != 0
            k_idx, r_idx = np.nonzero(mask)
            rows_list.append(lo + r_idx)
            cols_list.append(cols[mask])
            vals_list.append(vals[mask])
        if not rows_list:
            return sp.csr_matrix(self.shape, dtype=self._value_dtype)
        return sp.csr_matrix(
            (
                np.concatenate(vals_list),
                (np.concatenate(rows_list), np.concatenate(cols_list)),
            ),
            shape=self.shape,
        )

    def convert_to_csr(self, strategy: str = "load_balance"):
        """Convert to :class:`~repro.ginkgo.matrix.csr.Csr`."""
        from repro.ginkgo.matrix.csr import Csr

        self._exec.run(
            conversion_cost(
                "sellp", "csr", self._size.rows, self.nnz,
                self.value_bytes, self.index_bytes,
            )
        )
        return self._cached_derived(
            f"convert_to_csr[{strategy}]",
            lambda: Csr.from_scipy(
                self._exec,
                self._scipy_view(),
                value_dtype=self._value_dtype,
                index_dtype=self._index_dtype,
                strategy=strategy,
            ),
        )
