"""Sliced ELLPACK format, SELL-P (``gko::matrix::Sellp``).

Rows are grouped into slices of ``slice_size``; each slice is padded to its
own maximum row length, avoiding ELL's global padding blow-up on imbalanced
matrices.  We store the real sliced layout (per-slice column-major blocks,
exactly like Ginkgo) and run the SpMV slice by slice.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import BadDimension
from repro.ginkgo.executor import Executor
from repro.ginkgo.matrix.base import SparseBase, check_index_dtype, check_value_dtype
from repro.perfmodel import conversion_cost

DEFAULT_SLICE_SIZE = 32


class Sellp(SparseBase):
    """SELL-P matrix with per-slice padded blocks."""

    _format_name = "sellp"

    def __init__(
        self,
        exec_: Executor,
        size,
        slice_size: int,
        slice_lengths,
        slice_sets,
        col_idxs,
        values,
    ) -> None:
        size = Dim.of(size)
        if slice_size < 1:
            raise BadDimension(f"slice_size must be >= 1, got {slice_size}")
        slice_lengths = np.asarray(slice_lengths)
        slice_sets = np.asarray(slice_sets)
        col_idxs = np.asarray(col_idxs)
        values = np.asarray(values)
        num_slices = -(-size.rows // slice_size) if size.rows else 0
        if slice_lengths.size != num_slices:
            raise BadDimension(
                f"expected {num_slices} slice lengths, got {slice_lengths.size}"
            )
        if slice_sets.size != num_slices + 1:
            raise BadDimension(
                f"expected {num_slices + 1} slice offsets, got {slice_sets.size}"
            )
        if col_idxs.size != values.size:
            raise BadDimension("col_idxs and values differ in length")
        super().__init__(
            exec_,
            size,
            value_dtype=values.dtype,
            index_dtype=check_index_dtype(col_idxs.dtype),
        )
        self._slice_size = int(slice_size)
        self._slice_lengths = exec_.alloc_like(slice_lengths)
        np.copyto(self._slice_lengths, slice_lengths)
        self._slice_sets = exec_.alloc_like(slice_sets)
        np.copyto(self._slice_sets, slice_sets)
        self._col_idxs = exec_.alloc_like(col_idxs)
        np.copyto(self._col_idxs, col_idxs)
        self._values = exec_.alloc_like(values)
        np.copyto(self._values, values)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_scipy(
        cls,
        exec_: Executor,
        mat: sp.spmatrix,
        slice_size: int = DEFAULT_SLICE_SIZE,
        value_dtype=None,
        index_dtype=np.int32,
    ) -> "Sellp":
        """Build the sliced layout from a SciPy sparse matrix."""
        csr = sp.csr_matrix(mat)
        csr.sort_indices()
        value_dtype = check_value_dtype(value_dtype or csr.dtype)
        index_dtype = check_index_dtype(index_dtype)
        rows = csr.shape[0]
        num_slices = -(-rows // slice_size) if rows else 0
        row_nnz = np.diff(csr.indptr)

        # Per-slice maximum row length via a padded reshape.
        padded_nnz = np.zeros(num_slices * slice_size, dtype=np.int64)
        padded_nnz[:rows] = row_nnz
        slice_lengths = (
            padded_nnz.reshape(num_slices, slice_size)
            .max(axis=1, initial=0)
            .astype(index_dtype)
        )
        slice_sets = np.zeros(num_slices + 1, dtype=index_dtype)
        np.cumsum(slice_lengths * slice_size, out=slice_sets[1:])

        total = int(slice_sets[-1]) if num_slices else 0
        col_idxs = np.zeros(total, dtype=index_dtype)
        values = np.zeros(total, dtype=value_dtype)
        # Scatter every stored entry at once.  Column-major within the
        # slice: entry k of row `local` lives at base + k*slice_size +
        # local, computed per nonzero from its row and in-row position.
        entry_row = np.repeat(np.arange(rows), row_nnz)
        entry_slot = np.arange(csr.nnz) - np.repeat(csr.indptr[:-1], row_nnz)
        dest = (
            slice_sets[entry_row // slice_size].astype(np.int64)
            + entry_slot * slice_size
            + entry_row % slice_size
        )
        col_idxs[dest] = csr.indices
        values[dest] = csr.data
        return cls(
            exec_,
            Dim(*csr.shape),
            slice_size,
            slice_lengths,
            slice_sets,
            col_idxs,
            values,
        )

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self._values))

    @property
    def stored_elements(self) -> int:
        return int(self._values.size)

    @property
    def slice_size(self) -> int:
        return self._slice_size

    @property
    def slice_lengths(self) -> np.ndarray:
        return self._slice_lengths

    @property
    def slice_sets(self) -> np.ndarray:
        return self._slice_sets

    @property
    def values(self) -> np.ndarray:
        return self._values

    @property
    def col_idxs(self) -> np.ndarray:
        return self._col_idxs

    # ------------------------------------------------------------------
    # SpMV: real sliced kernel
    # ------------------------------------------------------------------
    def _spmv_arrays(self, b: np.ndarray) -> np.ndarray:
        compute = np.float32 if self._value_dtype == np.float16 else self._value_dtype
        x = b.astype(compute, copy=False)
        rows = self._size.rows
        y = np.zeros((rows, x.shape[1]), dtype=compute)
        ss = self._slice_size
        lengths = np.asarray(self._slice_lengths)
        if lengths.size == 0:
            return y.astype(self._value_dtype, copy=False)
        vals_all = self._values.astype(compute, copy=False)
        # Slices sharing a padded length run as one batched gather +
        # contraction; padding slots hold value 0 / column 0 and sum to
        # nothing, and trailing padding *rows* are masked off the scatter.
        for length in np.unique(lengths):
            length = int(length)
            if length == 0:
                continue
            sel = np.flatnonzero(lengths == length)
            starts = self._slice_sets[sel].astype(np.int64)
            offsets = (
                starts[:, None, None]
                + np.arange(length)[None, :, None] * ss
                + np.arange(ss)[None, None, :]
            )
            cols = self._col_idxs[offsets]
            acc = np.einsum("gkr,gkrj->grj", vals_all[offsets], x[cols, :])
            row_idx = (sel[:, None] * ss + np.arange(ss)[None, :]).reshape(-1)
            valid = row_idx < rows
            y[row_idx[valid]] = acc.reshape(-1, x.shape[1])[valid]
        return y.astype(self._value_dtype, copy=False)

    def _to_scipy(self) -> sp.csr_matrix:
        ss = self._slice_size
        nrows = self._size.rows
        total = int(self._values.size)
        if total == 0 or nrows == 0:
            return sp.csr_matrix(self.shape, dtype=self._value_dtype)
        # Invert the sliced layout for every slot at once: position p
        # belongs to slice s (searchsorted handles empty slices), and
        # within the slice the column-major offset decomposes into
        # (entry k, local row).
        pos = np.arange(total)
        s = np.searchsorted(self._slice_sets, pos, side="right") - 1
        offset = pos - self._slice_sets[s]
        row = s * ss + offset % ss
        mask = (self._values != 0) & (row < nrows)
        return sp.csr_matrix(
            (self._values[mask], (row[mask], self._col_idxs[mask])),
            shape=self.shape,
        )

    def convert_to_csr(self, strategy: str = "load_balance"):
        """Convert to :class:`~repro.ginkgo.matrix.csr.Csr`."""
        from repro.ginkgo.matrix.csr import Csr

        self._exec.run(
            conversion_cost(
                "sellp", "csr", self._size.rows, self.nnz,
                self.value_bytes, self.index_bytes,
            )
        )
        return self._cached_derived(
            f"convert_to_csr[{strategy}]",
            lambda: Csr.from_scipy(
                self._exec,
                self._scipy_view(),
                value_dtype=self._value_dtype,
                index_dtype=self._index_dtype,
                strategy=strategy,
            ),
        )
