"""Pattern-only CSR (``gko::matrix::SparsityCsr``).

Stores only the sparsity pattern; all values are implicitly one (times an
optional uniform ``value``).  Used for graph adjacency operators and as the
pattern carrier inside factorizations.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import BadDimension
from repro.ginkgo.executor import Executor
from repro.ginkgo.matrix.base import SparseBase, check_index_dtype, check_value_dtype


class SparsityCsr(SparseBase):
    """CSR pattern with a single uniform value."""

    _format_name = "sparsity_csr"

    def __init__(
        self,
        exec_: Executor,
        size,
        row_ptrs,
        col_idxs,
        value: float = 1.0,
        value_dtype=np.float64,
    ) -> None:
        size = Dim.of(size)
        row_ptrs = np.asarray(row_ptrs)
        col_idxs = np.asarray(col_idxs)
        if row_ptrs.size != size.rows + 1:
            raise BadDimension(
                f"row_ptrs has {row_ptrs.size} entries for {size.rows} rows"
            )
        super().__init__(
            exec_,
            size,
            value_dtype=check_value_dtype(value_dtype),
            index_dtype=check_index_dtype(col_idxs.dtype),
        )
        self._row_ptrs = exec_.alloc_like(row_ptrs)
        np.copyto(self._row_ptrs, row_ptrs)
        self._col_idxs = exec_.alloc_like(col_idxs)
        np.copyto(self._col_idxs, col_idxs)
        self._value = self._value_dtype.type(value)

    @classmethod
    def from_scipy(
        cls,
        exec_: Executor,
        mat: sp.spmatrix,
        value: float = 1.0,
        value_dtype=np.float64,
        index_dtype=np.int32,
    ) -> "SparsityCsr":
        """Extract the pattern of any SciPy sparse matrix."""
        csr = sp.csr_matrix(mat)
        csr.sort_indices()
        index_dtype = check_index_dtype(index_dtype)
        return cls(
            exec_,
            Dim(*csr.shape),
            csr.indptr.astype(index_dtype),
            csr.indices.astype(index_dtype),
            value=value,
            value_dtype=value_dtype,
        )

    @property
    def nnz(self) -> int:
        return int(self._col_idxs.size)

    @property
    def value(self):
        """The uniform value of all stored entries."""
        return self._value

    @property
    def row_ptrs(self) -> np.ndarray:
        return self._row_ptrs

    @property
    def col_idxs(self) -> np.ndarray:
        return self._col_idxs

    def _to_scipy(self) -> sp.csr_matrix:
        values = np.full(self.nnz, self._value, dtype=self._value_dtype)
        return sp.csr_matrix(
            (values, self._col_idxs, self._row_ptrs), shape=self.shape
        )

    def convert_to_csr(self, strategy: str = "load_balance"):
        """Materialise as a value-carrying CSR matrix."""
        from repro.ginkgo.matrix.csr import Csr

        values = np.full(self.nnz, self._value, dtype=self._value_dtype)
        return Csr(
            self._exec,
            self._size,
            self._row_ptrs,
            self._col_idxs,
            values,
            strategy=strategy,
        )
