"""Convolution/stencil operators as LinOps.

The paper's conclusion announces "the integration of a convolution kernel,
which would allow Ginkgo and pyGinkgo to support key operations required
in image processing and convolutional neural networks" as future work —
this module implements that feature: a 2-D cross-correlation with zero
padding, exposed as a LinOp over flattened images so it composes with the
whole operator ecosystem (solvers, Rayleigh-Ritz, compositions).

Internally the operator is a banded sparse matrix with one diagonal per
kernel tap, so its apply is an ordinary SpMV with the exact cost profile a
device stencil kernel would have.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import BadDimension
from repro.ginkgo.executor import Executor
from repro.ginkgo.lin_op import LinOp
from repro.ginkgo.matrix.dense import Dense, _scalar_value
from repro.perfmodel import spmv_cost


def convolution_matrix(
    image_shape: tuple, kernel: np.ndarray
) -> sp.csr_matrix:
    """Sparse matrix performing zero-padded 'same' 2-D cross-correlation.

    Args:
        image_shape: (height, width) of the input image.
        kernel: 2-D filter with odd dimensions.

    Returns:
        CSR matrix of shape ``(h*w, h*w)`` such that
        ``(M @ image.ravel()).reshape(h, w)`` equals the correlation.
    """
    height, width = image_shape
    kernel = np.asarray(kernel, dtype=np.float64)
    if kernel.ndim != 2:
        raise BadDimension("kernel must be two-dimensional")
    kh, kw = kernel.shape
    if kh % 2 == 0 or kw % 2 == 0:
        raise BadDimension(
            f"kernel dimensions must be odd, got {kernel.shape}"
        )
    if height < 1 or width < 1:
        raise BadDimension(f"invalid image shape {image_shape}")
    pad_h, pad_w = kh // 2, kw // 2
    n = height * width
    rows_idx, cols_idx, vals = [], [], []
    row_grid, col_grid = np.meshgrid(
        np.arange(height), np.arange(width), indexing="ij"
    )
    flat_row = (row_grid * width + col_grid).ravel()
    for di in range(-pad_h, pad_h + 1):
        for dj in range(-pad_w, pad_w + 1):
            weight = kernel[di + pad_h, dj + pad_w]
            if weight == 0.0:
                continue
            src_r = row_grid + di
            src_c = col_grid + dj
            valid = (
                (src_r >= 0) & (src_r < height)
                & (src_c >= 0) & (src_c < width)
            ).ravel()
            rows_idx.append(flat_row[valid])
            cols_idx.append((src_r * width + src_c).ravel()[valid])
            vals.append(np.full(valid.sum(), weight))
    return sp.csr_matrix(
        (
            np.concatenate(vals),
            (np.concatenate(rows_idx), np.concatenate(cols_idx)),
        ),
        shape=(n, n),
    )


class StencilOp(LinOp):
    """A 2-D convolution/stencil as a LinOp over flattened images."""

    def __init__(
        self, exec_: Executor, image_shape: tuple, kernel
    ) -> None:
        kernel = np.asarray(kernel, dtype=np.float64)
        self._image_shape = (int(image_shape[0]), int(image_shape[1]))
        self._kernel = kernel
        self._matrix = convolution_matrix(self._image_shape, kernel)
        n = self._matrix.shape[0]
        super().__init__(exec_, Dim(n, n))

    @property
    def image_shape(self) -> tuple:
        return self._image_shape

    @property
    def kernel(self) -> np.ndarray:
        return self._kernel

    @property
    def nnz(self) -> int:
        return int(self._matrix.nnz)

    def apply_image(self, image: np.ndarray) -> np.ndarray:
        """Convenience: filter a 2-D host image, returning a 2-D image."""
        if image.shape != self._image_shape:
            raise BadDimension(
                f"expected image of shape {self._image_shape}, got "
                f"{image.shape}"
            )
        flat = Dense(self._exec, image.reshape(-1, 1).astype(np.float64))
        out = Dense.zeros(self._exec, flat.size, np.float64)
        self.apply(flat, out)
        return out.to_numpy().reshape(self._image_shape)

    def _record(self, num_rhs: int) -> None:
        # A device stencil kernel streams the image once per tap band;
        # the banded-SpMV cost captures exactly that traffic.
        self._exec.run(
            spmv_cost(
                "csr",
                self._size.rows,
                self._size.cols,
                self.nnz,
                8,
                4,
                num_rhs=num_rhs,
            )
        )

    def _apply_impl(self, b: Dense, x: Dense) -> None:
        np.copyto(
            x._data,
            (self._matrix @ b._data).astype(x.dtype, copy=False),
        )
        self._record(b.size.cols)

    def _apply_advanced_impl(self, alpha, b: Dense, beta, x: Dense) -> None:
        a = _scalar_value(alpha)
        bt = _scalar_value(beta)
        x._data *= x.dtype.type(bt)
        x._data += x.dtype.type(a) * (self._matrix @ b._data).astype(
            x.dtype, copy=False
        )
        self._record(b.size.cols)


#: Common filters for the examples and tests.
KERNELS = {
    "identity": np.array([[0.0, 0, 0], [0, 1, 0], [0, 0, 0]]),
    "blur3": np.full((3, 3), 1.0 / 9.0),
    "sharpen": np.array([[0.0, -1, 0], [-1, 5, -1], [0, -1, 0]]),
    "laplace": np.array([[0.0, 1, 0], [1, -4, 1], [0, 1, 0]]),
    "sobel_x": np.array([[-1.0, 0, 1], [-2, 0, 2], [-1, 0, 1]]),
    "sobel_y": np.array([[-1.0, -2, -1], [0, 0, 0], [1, 2, 1]]),
}
