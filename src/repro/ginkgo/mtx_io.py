"""MatrixMarket I/O (the paper's ``pg.read`` loads ``.mtx`` files).

A self-contained MatrixMarket reader/writer supporting the coordinate and
array formats, real/integer/pattern fields, and general/symmetric/
skew-symmetric symmetries — the subset covering the SuiteSparse collection
the paper benchmarks on.
"""

from __future__ import annotations

import io
import os

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.exceptions import GinkgoError

HEADER_PREFIX = "%%MatrixMarket"
FORMATS = ("coordinate", "array")
FIELDS = ("real", "integer", "pattern")
SYMMETRIES = ("general", "symmetric", "skew-symmetric")


class MtxError(GinkgoError):
    """Malformed MatrixMarket content.

    Every malformed-input failure mode (truncated header, non-numeric
    tokens, entry-count mismatches, out-of-range indices) surfaces as this
    GinkgoError subclass — never as a raw ``ValueError``/``IndexError``.
    """


def _int(token: str, what: str) -> int:
    try:
        return int(token)
    except ValueError as exc:
        raise MtxError(f"malformed {what}: expected an integer, "
                       f"got {token!r}") from exc


def _float(token: str, what: str) -> float:
    try:
        return float(token)
    except ValueError as exc:
        raise MtxError(f"malformed {what}: expected a number, "
                       f"got {token!r}") from exc


def read_mtx(path_or_file) -> sp.coo_matrix:
    """Read a MatrixMarket file into a SciPy COO matrix.

    Args:
        path_or_file: Filesystem path or readable text file object.

    Returns:
        The matrix as ``scipy.sparse.coo_matrix`` (float64 values; pattern
        matrices get value 1.0 everywhere; symmetric storage is expanded).
    """
    if hasattr(path_or_file, "read"):
        return _read_stream(path_or_file)
    with open(os.fspath(path_or_file), "r", encoding="utf-8") as handle:
        return _read_stream(handle)


def _read_stream(stream) -> sp.coo_matrix:
    header = stream.readline()
    if not header.startswith(HEADER_PREFIX):
        raise MtxError(
            f"not a MatrixMarket file: header starts with {header[:30]!r}"
        )
    tokens = header.strip().split()
    if len(tokens) < 5 or tokens[1] != "matrix":
        raise MtxError(f"malformed MatrixMarket header: {header.strip()!r}")
    fmt, field, symmetry = tokens[2], tokens[3], tokens[4]
    if fmt not in FORMATS:
        raise MtxError(f"unsupported format {fmt!r}; supported: {FORMATS}")
    if field not in FIELDS:
        raise MtxError(f"unsupported field {field!r}; supported: {FIELDS}")
    if symmetry not in SYMMETRIES:
        raise MtxError(
            f"unsupported symmetry {symmetry!r}; supported: {SYMMETRIES}"
        )

    # Skip comments and blank lines to the size line.
    line = stream.readline()
    while line and (line.startswith("%") or not line.strip()):
        line = stream.readline()
    if not line:
        raise MtxError("missing size line")

    if fmt == "coordinate":
        return _read_coordinate(stream, line, field, symmetry)
    return _read_array(stream, line, field, symmetry)


def _read_coordinate(stream, size_line, field, symmetry) -> sp.coo_matrix:
    parts = size_line.split()
    if len(parts) != 3:
        raise MtxError(f"malformed coordinate size line: {size_line.strip()!r}")
    rows, cols, nnz = (_int(p, "size line") for p in parts)
    if rows < 0 or cols < 0 or nnz < 0:
        raise MtxError(
            f"negative dimensions in size line: {size_line.strip()!r}"
        )
    r = np.empty(nnz, dtype=np.int64)
    c = np.empty(nnz, dtype=np.int64)
    v = np.empty(nnz, dtype=np.float64)
    count = 0
    for line in stream:
        line = line.strip()
        if not line or line.startswith("%"):
            continue
        entry = line.split()
        if count >= nnz:
            raise MtxError(f"more than the declared {nnz} entries")
        if field == "pattern":
            if len(entry) < 2:
                raise MtxError(f"malformed pattern entry: {line!r}")
            r[count] = _int(entry[0], "entry row index")
            c[count] = _int(entry[1], "entry column index")
            v[count] = 1.0
        else:
            if len(entry) < 3:
                raise MtxError(f"malformed entry: {line!r}")
            r[count] = _int(entry[0], "entry row index")
            c[count] = _int(entry[1], "entry column index")
            v[count] = _float(entry[2], "entry value")
        count += 1
    if count != nnz:
        raise MtxError(f"declared {nnz} entries but found {count}")
    r -= 1  # MatrixMarket is 1-based
    c -= 1
    if np.any(r < 0) or np.any(c < 0) or np.any(r >= rows) or np.any(c >= cols):
        raise MtxError("entry indices outside the declared dimensions")

    if symmetry in ("symmetric", "skew-symmetric"):
        # Mirror the off-diagonal entries into the upper triangle.
        off = r != c
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        r, c, v = (
            np.concatenate([r, c[off]]),
            np.concatenate([c, r[off]]),
            np.concatenate([v, sign * v[off]]),
        )
    return sp.coo_matrix((v, (r, c)), shape=(rows, cols))


def _read_array(stream, size_line, field, symmetry) -> sp.coo_matrix:
    parts = size_line.split()
    if len(parts) != 2:
        raise MtxError(f"malformed array size line: {size_line.strip()!r}")
    rows, cols = (_int(p, "size line") for p in parts)
    if rows < 0 or cols < 0:
        raise MtxError(
            f"negative dimensions in size line: {size_line.strip()!r}"
        )
    values = []
    for line in stream:
        line = line.strip()
        if not line or line.startswith("%"):
            continue
        values.append(_float(line.split()[0], "array value"))
    dense = np.zeros((rows, cols))
    if symmetry == "general":
        if len(values) != rows * cols:
            raise MtxError(
                f"array matrix declared {rows * cols} values, got {len(values)}"
            )
        dense = np.asarray(values).reshape((cols, rows)).T  # column-major
    else:
        expected = rows * (rows + 1) // 2
        if len(values) != expected:
            raise MtxError(
                f"symmetric array matrix declared {expected} values, "
                f"got {len(values)}"
            )
        index = 0
        for j in range(cols):
            for i in range(j, rows):
                dense[i, j] = values[index]
                if i != j:
                    dense[j, i] = (
                        -values[index]
                        if symmetry == "skew-symmetric"
                        else values[index]
                    )
                index += 1
    return sp.coo_matrix(dense)


def write_mtx(path_or_file, matrix, symmetry: str = "general", comment: str = "") -> None:
    """Write a matrix to MatrixMarket coordinate format.

    Args:
        path_or_file: Destination path or writable text file object.
        matrix: SciPy sparse matrix, engine sparse matrix, or 2-D array.
        symmetry: ``general`` (default) writes all entries; ``symmetric``
            writes only the lower triangle (caller asserts symmetry).
        comment: Optional comment line(s) written after the header.
    """
    if symmetry not in ("general", "symmetric"):
        raise MtxError(f"unsupported write symmetry {symmetry!r}")
    if hasattr(matrix, "_scipy_view"):
        coo = matrix._scipy_view().tocoo()
    elif sp.issparse(matrix):
        coo = matrix.tocoo()
    else:
        coo = sp.coo_matrix(np.atleast_2d(np.asarray(matrix)))

    if symmetry == "symmetric":
        mask = coo.row >= coo.col
        coo = sp.coo_matrix(
            (coo.data[mask], (coo.row[mask], coo.col[mask])), shape=coo.shape
        )

    def _write(handle) -> None:
        handle.write(f"{HEADER_PREFIX} matrix coordinate real {symmetry}\n")
        for line in comment.splitlines():
            handle.write(f"% {line}\n")
        handle.write(f"{coo.shape[0]} {coo.shape[1]} {coo.nnz}\n")
        for i, j, v in zip(coo.row, coo.col, coo.data):
            handle.write(f"{i + 1} {j + 1} {float(v)!r}\n")

    if hasattr(path_or_file, "write"):
        _write(path_or_file)
    else:
        with open(os.fspath(path_or_file), "w", encoding="utf-8") as handle:
            _write(handle)


def read_mtx_string(
    text: str,
    exec_=None,
    format: str = "csr",
    value_dtype=np.float64,
    index_dtype=np.int32,
):
    """Read MatrixMarket content from a string.

    Without an executor this returns the raw ``scipy.sparse.coo_matrix``
    (the historical behaviour).  With ``exec_`` the matrix is placed on
    that executor as an engine LinOp:

    Args:
        text: MatrixMarket content (any supported field/symmetry,
            including ``pattern`` and ``integer``).
        exec_: Optional executor to place the matrix on.
        format: Target format when ``exec_`` is given: ``"csr"`` or
            ``"coo"``.
        value_dtype: Value type of the created LinOp.
        index_dtype: Index type of the created LinOp.
    """
    coo = _read_stream(io.StringIO(text))
    if exec_ is None:
        return coo
    # Imported lazily: the matrix formats import this module for their
    # read bindings.
    from repro.ginkgo.matrix import Coo, Csr

    formats = {"csr": Csr, "coo": Coo}
    key = str(format).lower()
    if key not in formats:
        raise MtxError(
            f"unsupported target format {format!r}; supported: "
            f"{sorted(formats)}"
        )
    return formats[key].from_scipy(
        exec_, coo, value_dtype=value_dtype, index_dtype=index_dtype
    )
