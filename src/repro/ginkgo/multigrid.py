"""Algebraic multigrid (``gko::multigrid::Pgm`` + ``gko::solver::Multigrid``).

An aggregation-based AMG in the style of Ginkgo's parallel graph match
(PGM): greedy pairwise aggregation on the strength graph, piecewise-
constant prolongation, Galerkin coarse operators, damped-Jacobi smoothing,
and a direct solve on the coarsest level.  One V-cycle per apply makes it
usable directly as a preconditioner for the Krylov solvers.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.ginkgo.exceptions import BadDimension, GinkgoError
from repro.ginkgo.lin_op import LinOp, LinOpFactory
from repro.ginkgo.matrix.csr import Csr
from repro.ginkgo.matrix.dense import Dense
from repro.perfmodel import KernelCost, blas1_cost, spmv_cost


def pairwise_aggregation(matrix: sp.csr_matrix) -> np.ndarray:
    """Greedy pairwise matching on the strength graph (PGM-style).

    Each node pairs with its strongest unmatched neighbour; unmatched
    leftovers join the aggregate of their strongest neighbour.

    Returns:
        Aggregate index per node (length n, values in [0, n_coarse)).
    """
    n = matrix.shape[0]
    sym = (abs(matrix) + abs(matrix).T).tocsr()
    sym.setdiag(0.0)
    sym.eliminate_zeros()
    aggregate = np.full(n, -1, dtype=np.int64)
    next_id = 0
    # Pass 1: pair each node with its strongest unmatched neighbour.
    for node in range(n):
        if aggregate[node] >= 0:
            continue
        start, stop = sym.indptr[node], sym.indptr[node + 1]
        neighbours = sym.indices[start:stop]
        weights = sym.data[start:stop]
        best, best_weight = -1, 0.0
        for neighbour, weight in zip(neighbours, weights):
            if aggregate[neighbour] < 0 and weight > best_weight:
                best, best_weight = int(neighbour), float(weight)
        aggregate[node] = next_id
        if best >= 0:
            aggregate[best] = next_id
        next_id += 1
    # Pass 2: singletons with an aggregated strong neighbour merge into it.
    for node in range(n):
        start, stop = sym.indptr[node], sym.indptr[node + 1]
        if stop - start == 0:
            continue
        # Nodes that ended up alone in their aggregate join a neighbour
        # aggregate when that improves coarsening.
        same = np.count_nonzero(aggregate == aggregate[node])
        if same == 1:
            neighbours = sym.indices[start:stop]
            weights = sym.data[start:stop]
            best = neighbours[np.argmax(weights)]
            aggregate[node] = aggregate[best]
    # Compact aggregate ids.
    unique, compact = np.unique(aggregate, return_inverse=True)
    return compact.astype(np.int64)


def prolongation_from_aggregates(aggregate: np.ndarray) -> sp.csr_matrix:
    """Piecewise-constant prolongation P with P[i, agg(i)] = 1."""
    n = aggregate.size
    n_coarse = int(aggregate.max()) + 1 if n else 0
    return sp.csr_matrix(
        (np.ones(n), (np.arange(n), aggregate)), shape=(n, n_coarse)
    )


class _Level:
    """One multigrid level: operator, prolongation, Jacobi smoother."""

    def __init__(self, matrix: sp.csr_matrix, omega: float) -> None:
        self.matrix = matrix
        diag = matrix.diagonal()
        inv = np.zeros_like(diag)
        mask = diag != 0
        inv[mask] = 1.0 / diag[mask]
        self.inv_diag = omega * inv
        aggregate = pairwise_aggregation(matrix)
        self.prolongation = prolongation_from_aggregates(aggregate)
        self.coarse_matrix = (
            self.prolongation.T @ matrix @ self.prolongation
        ).tocsr()


class MultigridOperator(LinOp):
    """Generated AMG operator: ``apply`` runs one V-cycle."""

    def __init__(self, factory: "Pgm", matrix) -> None:
        if not matrix.size.is_square:
            raise BadDimension(
                f"multigrid requires a square matrix, got {matrix.size}"
            )
        super().__init__(matrix.executor, matrix.size)
        self._matrix = matrix
        self._omega = factory.smoother_relaxation
        self._pre_smooth = factory.pre_smoother_steps
        self._post_smooth = factory.post_smoother_steps

        levels: list[_Level] = []
        current = matrix._scipy_view().tocsr().astype(np.float64)
        for _ in range(factory.max_levels):
            if current.shape[0] <= factory.coarse_size:
                break
            level = _Level(current, self._omega)
            if level.coarse_matrix.shape[0] >= current.shape[0]:
                break  # aggregation stalled
            levels.append(level)
            current = level.coarse_matrix
        self._levels = levels
        self._coarse_solver = splu(current.tocsc())
        self._coarse_n = current.shape[0]
        # Setup cost: one Galerkin triple product per level.
        for level in levels:
            self._exec.run(
                KernelCost(
                    "amg_setup_level",
                    flops=4.0 * level.matrix.nnz,
                    bytes=8.0 * level.matrix.nnz * 12,
                    launches=6,
                )
            )

    @property
    def num_levels(self) -> int:
        """Number of fine levels (excluding the direct coarsest solve)."""
        return len(self._levels)

    @property
    def level_sizes(self) -> list:
        return [lvl.matrix.shape[0] for lvl in self._levels] + [self._coarse_n]

    # ------------------------------------------------------------------
    def _smooth(self, level: _Level, rhs, x):
        """Damped-Jacobi sweeps: x += omega D^-1 (rhs - A x)."""
        for _ in range(1):
            residual = rhs - level.matrix @ x
            x = x + level.inv_diag[:, None] * residual
        return x

    def _vcycle(self, depth: int, rhs: np.ndarray) -> np.ndarray:
        if depth == len(self._levels):
            return self._coarse_solver.solve(rhs)
        level = self._levels[depth]
        x = np.zeros_like(rhs)
        for _ in range(self._pre_smooth):
            x = self._smooth(level, rhs, x)
            self._record_smooth(level, rhs.shape[1])
        residual = rhs - level.matrix @ x
        self._record_spmv(level, rhs.shape[1])
        coarse_rhs = level.prolongation.T @ residual
        self._record_transfer(level, rhs.shape[1])
        correction = self._vcycle(depth + 1, coarse_rhs)
        x = x + level.prolongation @ correction
        self._record_transfer(level, rhs.shape[1])
        for _ in range(self._post_smooth):
            x = self._smooth(level, rhs, x)
            self._record_smooth(level, rhs.shape[1])
        return x

    def _record_spmv(self, level: _Level, num_rhs: int) -> None:
        self._exec.run(
            spmv_cost(
                "csr", level.matrix.shape[0], level.matrix.shape[1],
                level.matrix.nnz, 8, 4, num_rhs=num_rhs,
            )
        )

    def _record_smooth(self, level: _Level, num_rhs: int) -> None:
        self._record_spmv(level, num_rhs)
        self._exec.run(
            blas1_cost("jacobi_smooth", level.matrix.shape[0] * num_rhs, 8, 4)
        )

    def _record_transfer(self, level: _Level, num_rhs: int) -> None:
        self._exec.run(
            spmv_cost(
                "csr", level.prolongation.shape[1],
                level.prolongation.shape[0], level.prolongation.nnz,
                8, 4, num_rhs=num_rhs,
            )
        )

    # ------------------------------------------------------------------
    def _apply_impl(self, b: Dense, x: Dense) -> None:
        result = self._vcycle(0, b._data.astype(np.float64))
        np.copyto(x._data, result.astype(x.dtype, copy=False))

    def _apply_advanced_impl(self, alpha, b: Dense, beta, x: Dense) -> None:
        from repro.ginkgo.matrix.dense import _scalar_value

        a = _scalar_value(alpha)
        bt = _scalar_value(beta)
        result = self._vcycle(0, b._data.astype(np.float64))
        x._data *= x.dtype.type(bt)
        x._data += x.dtype.type(a) * result.astype(x.dtype, copy=False)


class Pgm(LinOpFactory):
    """Aggregation-AMG factory (one V-cycle per apply).

    Args:
        exec_: Executor.
        max_levels: Hierarchy depth cap (default 10).
        coarse_size: Stop coarsening below this many rows (default 64).
        smoother_relaxation: Damped-Jacobi omega (default 2/3).
        pre_smoother_steps / post_smoother_steps: Sweeps per cycle leg.
    """

    def __init__(
        self,
        exec_,
        max_levels: int = 10,
        coarse_size: int = 64,
        smoother_relaxation: float = 2.0 / 3.0,
        pre_smoother_steps: int = 1,
        post_smoother_steps: int = 1,
    ) -> None:
        super().__init__(exec_)
        if max_levels < 1:
            raise GinkgoError(f"max_levels must be >= 1, got {max_levels}")
        if coarse_size < 1:
            raise GinkgoError(f"coarse_size must be >= 1, got {coarse_size}")
        self.max_levels = int(max_levels)
        self.coarse_size = int(coarse_size)
        self.smoother_relaxation = float(smoother_relaxation)
        self.pre_smoother_steps = int(pre_smoother_steps)
        self.post_smoother_steps = int(post_smoother_steps)

    def generate(self, matrix) -> MultigridOperator:
        return MultigridOperator(self, matrix)
