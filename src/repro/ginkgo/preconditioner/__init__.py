"""Preconditioners (``gko::preconditioner``).

All preconditioners are LinOp factories: ``Jacobi(exec, ...).generate(A)``
returns an operator whose ``apply(r, z)`` computes ``z ~= A^{-1} r``.
The paper's Listing 1 uses ILU; the config-solver example (Listing 2) uses
scalar Jacobi.
"""

from repro.ginkgo.preconditioner.jacobi import Jacobi
from repro.ginkgo.preconditioner.ilu import Ilu
from repro.ginkgo.preconditioner.ic import Ic
from repro.ginkgo.preconditioner.isai import Isai

__all__ = ["Ic", "Ilu", "Isai", "Jacobi"]
