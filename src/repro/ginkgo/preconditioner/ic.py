"""IC preconditioning (``gko::preconditioner::Ic``).

Generates an IC(0) factorisation of a symmetric positive-definite matrix
and applies ``z = L^{-T} L^{-1} r``.  ``storage_precision`` stores the
factor reduced (accessor contract: the triangular solves convert at read
and charge storage-width bytes).
"""

from __future__ import annotations

from repro.ginkgo.accessor import canonical_value_suffix
from repro.ginkgo.factorization.ic0 import ic0
from repro.ginkgo.lin_op import Composition, LinOp, LinOpFactory
from repro.ginkgo.solver.triangular import LowerTrs, UpperTrs


class IcOperator(LinOp):
    """Generated IC operator: L solve followed by L^T solve."""

    _profile_category = "precond"

    def __init__(self, factory: "Ic", matrix) -> None:
        super().__init__(matrix.executor, matrix.size)
        self._factorization = ic0(
            matrix, storage_precision=factory.storage_precision
        )
        exec_ = matrix.executor
        self._lower = LowerTrs(exec_).generate(self._factorization.l_factor)
        self._upper = UpperTrs(exec_).generate(self._factorization.lt_factor)
        self._composition = Composition(self._upper, self._lower)

    @property
    def factorization(self):
        return self._factorization

    def _apply_impl(self, b, x) -> None:
        self._composition.apply(b, x)

    def _apply_advanced_impl(self, alpha, b, beta, x) -> None:
        self._composition.apply_advanced(alpha, b, beta, x)


class Ic(LinOpFactory):
    """IC preconditioner factory.

    Args:
        exec_: Executor.
        storage_precision: Precision the L factor is stored at (``None``
            stores at the system matrix's precision).
    """

    def __init__(self, exec_, storage_precision=None) -> None:
        super().__init__(exec_)
        if storage_precision is not None:
            canonical_value_suffix(storage_precision)
        self.storage_precision = storage_precision

    def generate(self, matrix) -> IcOperator:
        return IcOperator(self, matrix)
