"""ILU preconditioning (``gko::preconditioner::Ilu``).

Generates an ILU(0) factorisation and applies ``z = U^{-1} L^{-1} r`` via
two triangular solves — the preconditioner used in the paper's Listing 1.
"""

from __future__ import annotations

from repro.ginkgo.accessor import canonical_value_suffix
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.factorization.ilu0 import ilu0
from repro.ginkgo.factorization.parilu import parilu
from repro.ginkgo.lin_op import Composition, LinOp, LinOpFactory
from repro.ginkgo.solver.triangular import LowerTrs, UpperTrs


class IluOperator(LinOp):
    """Generated ILU operator: two composed triangular solves."""

    _profile_category = "precond"

    def __init__(self, factory: "Ilu", matrix) -> None:
        super().__init__(matrix.executor, matrix.size)
        if factory.algorithm == "parilu":
            self._factorization = parilu(
                matrix,
                sweeps=factory.sweeps,
                storage_precision=factory.storage_precision,
            )
        else:
            self._factorization = ilu0(
                matrix, storage_precision=factory.storage_precision
            )
        exec_ = matrix.executor
        self._lower = LowerTrs(exec_, unit_diagonal=True).generate(
            self._factorization.l_factor
        )
        self._upper = UpperTrs(exec_).generate(self._factorization.u_factor)
        self._composition = Composition(self._upper, self._lower)

    @property
    def factorization(self):
        return self._factorization

    @property
    def lower_solver(self) -> LinOp:
        return self._lower

    @property
    def upper_solver(self) -> LinOp:
        return self._upper

    def _apply_impl(self, b, x) -> None:
        self._composition.apply(b, x)

    def _apply_advanced_impl(self, alpha, b, beta, x) -> None:
        self._composition.apply_advanced(alpha, b, beta, x)


class Ilu(LinOpFactory):
    """ILU preconditioner factory.

    Args:
        exec_: Executor.
        algorithm: ``"exact"`` (sequential IKJ ILU(0), default) or
            ``"parilu"`` (Ginkgo's fixed-point iteration — massively
            parallel, approximate for few sweeps).
        sweeps: Fixed-point sweeps when ``algorithm="parilu"``.
        storage_precision: Precision the L/U factors are stored at; the
            triangular solves read them at the solve's working precision
            (``None`` stores at the system matrix's precision).
    """

    def __init__(
        self,
        exec_,
        algorithm: str = "exact",
        sweeps: int = 5,
        storage_precision=None,
    ) -> None:
        super().__init__(exec_)
        if algorithm not in ("exact", "parilu"):
            raise GinkgoError(
                f"unknown ILU algorithm {algorithm!r}; "
                "available: 'exact', 'parilu'"
            )
        self.algorithm = algorithm
        self.sweeps = int(sweeps)
        if storage_precision is not None:
            canonical_value_suffix(storage_precision)
        self.storage_precision = storage_precision

    def generate(self, matrix) -> IluOperator:
        return IluOperator(self, matrix)
