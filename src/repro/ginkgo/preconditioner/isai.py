"""Incomplete Sparse Approximate Inverse (``gko::preconditioner::Isai``).

Builds an explicit sparse approximation ``W ~= A^{-1}`` with the sparsity
pattern of ``A^p`` (``sparsity_power``), by solving one small dense system
per row: restricted to row i's pattern J, ``W[i, J] @ A[J, J] = e_i[J]``.
Applying the preconditioner is then a single SpMV — the reason ISAI is
attractive on GPUs where triangular solves serialise.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.accessor import (
    arithmetic_dtype_for,
    canonical_value_suffix,
    resolve_storage_dtype,
)
from repro.ginkgo.exceptions import BadDimension, GinkgoError
from repro.ginkgo.lin_op import LinOp, LinOpFactory
from repro.ginkgo.matrix.csr import Csr
from repro.perfmodel import factorization_cost


class IsaiOperator(LinOp):
    """Generated ISAI operator: one SpMV with the approximate inverse."""

    _profile_category = "precond"

    def __init__(self, factory: "Isai", matrix) -> None:
        if not matrix.size.is_square:
            raise BadDimension(
                f"Isai requires a square matrix, got {matrix.size}"
            )
        super().__init__(matrix.executor, matrix.size)
        self._working_dtype = np.dtype(matrix.dtype)
        self._storage_dtype = resolve_storage_dtype(
            factory.storage_precision, self._working_dtype
        )
        # The local dense solves run at the working precision (float32
        # upcast for half systems), not a hard-coded float64.
        arith = arithmetic_dtype_for(self._working_dtype)
        a = matrix._scipy_view().tocsr().astype(arith)
        pattern = a.copy()
        for _ in range(factory.sparsity_power - 1):
            pattern = (pattern @ a).tocsr()
        pattern.sort_indices()

        n = a.shape[0]
        a_csc = a.tocsc()
        rows, cols, vals = [], [], []
        for i in range(n):
            start, stop = pattern.indptr[i], pattern.indptr[i + 1]
            j_set = pattern.indices[start:stop]
            if j_set.size == 0:
                continue
            # Solve W[i, J] A[J, J] = e_i[J]  <=>  A[J, J]^T w = e_i[J].
            sub = a_csc[:, j_set][j_set, :].toarray()
            rhs = np.zeros(j_set.size, dtype=a.dtype)
            local = np.searchsorted(j_set, i)
            if local < j_set.size and j_set[local] == i:
                rhs[local] = 1.0
            try:
                w = np.linalg.solve(sub.T, rhs)
            except np.linalg.LinAlgError as exc:
                raise GinkgoError(
                    f"ISAI: singular local system in row {i}"
                ) from exc
            rows.extend([i] * j_set.size)
            cols.extend(j_set.tolist())
            vals.extend(w.tolist())
        approx = sp.csr_matrix(
            (vals, (rows, cols)), shape=(n, n)
        )
        self._approx_inverse = Csr.from_scipy(
            matrix.executor, approx, value_dtype=self._storage_dtype,
            index_dtype=matrix.index_dtype,
        )
        self._exec.run(
            factorization_cost(
                "ilu0", n, matrix.nnz, matrix.value_bytes, matrix.index_bytes
            ).scaled(2.0)
        )

    @property
    def approximate_inverse(self) -> Csr:
        return self._approx_inverse

    @property
    def is_mixed(self) -> bool:
        """Whether the inverse is stored below the working precision."""
        return self._storage_dtype.itemsize < self._working_dtype.itemsize

    def _run_apply(self, plan) -> None:
        """Cross the mixed binding when the inverse is stored reduced.

        The apply itself is one SpMV with the (storage-precision) inverse:
        the Csr kernel reads storage-width values and charges storage-width
        bytes, while numpy promotes the arithmetic to the operand's
        working precision — the accessor contract.  Uniform applies take
        the classic route untouched.
        """
        if self.is_mixed:
            from repro.bindings import dispatch  # deferred: registry cycle

            runner = dispatch.resolve(
                "isai_apply",
                (
                    canonical_value_suffix(self._working_dtype),
                    canonical_value_suffix(self._storage_dtype),
                ),
                exec_=self._exec,
            )
            runner(self._exec, plan)
        else:
            plan()

    def _apply_impl(self, b, x) -> None:
        self._run_apply(lambda: self._approx_inverse.apply(b, x))

    def _apply_advanced_impl(self, alpha, b, beta, x) -> None:
        self._run_apply(
            lambda: self._approx_inverse.apply_advanced(alpha, b, beta, x)
        )


class Isai(LinOpFactory):
    """ISAI factory.

    Args:
        exec_: Executor.
        sparsity_power: Pattern of ``A^p`` used for the inverse (default 1).
        storage_precision: Precision the approximate inverse is stored at
            (``None`` stores at the system matrix's precision).
    """

    def __init__(
        self, exec_, sparsity_power: int = 1, storage_precision=None
    ) -> None:
        super().__init__(exec_)
        if sparsity_power < 1:
            raise GinkgoError(
                f"sparsity_power must be >= 1, got {sparsity_power}"
            )
        self.sparsity_power = int(sparsity_power)
        if storage_precision is not None:
            canonical_value_suffix(storage_precision)
        self.storage_precision = storage_precision

    def generate(self, matrix) -> IsaiOperator:
        return IsaiOperator(self, matrix)
