"""Scalar and block Jacobi preconditioning (``gko::preconditioner::Jacobi``).

``max_block_size=1`` gives scalar Jacobi (inverse diagonal).  Larger block
sizes extract contiguous diagonal blocks, invert them (densely, batched),
and apply the block inverses.  Storage precision is decoupled from the
working precision through :mod:`repro.ginkgo.accessor`:
``storage_precision=None`` (the default) stores the inverses at the system
matrix's precision and keeps the apply byte-identical to the classic
uniform path, a fixed precision (``"float"``, ``"half"``, ...) stores them
reduced, and ``"adaptive"`` picks each block's storage from its condition
estimate — Ginkgo's adaptive-precision block-Jacobi.  Reduced-storage
applies route through the mixed-suffix binding symbols
(``jacobi_apply_double_float``) and charge the cost model at storage
width.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.accessor import (
    ReducedPrecisionAccessor,
    arithmetic_dtype_for,
    canonical_value_suffix,
    resolve_storage_dtype,
    select_block_precision,
)
from repro.ginkgo.exceptions import BadDimension, GinkgoError
from repro.ginkgo.lin_op import LinOp, LinOpFactory
from repro.ginkgo.matrix.dense import Dense, _scalar_value
from repro.perfmodel import factorization_cost, spmv_cost


class JacobiOperator(LinOp):
    """Generated (block-)Jacobi operator."""

    _profile_category = "precond"

    def __init__(self, factory: "Jacobi", matrix) -> None:
        if not matrix.size.is_square:
            raise BadDimension(
                f"Jacobi requires a square matrix, got {matrix.size}"
            )
        super().__init__(matrix.executor, matrix.size)
        self._matrix = matrix
        self._block_size = factory.max_block_size
        self._working_dtype = np.dtype(matrix.dtype)
        # Arithmetic runs at the working precision (float32 for half
        # systems, mirroring the engine's half-kernel contract) — the
        # float64 upcast the old code forced on every input is the bug
        # this layer fixes.
        arith = arithmetic_dtype_for(self._working_dtype)
        self._arith_dtype = arith
        adaptive = factory.storage_precision == "adaptive"
        if adaptive:
            storage = None  # chosen per block below
        else:
            storage = resolve_storage_dtype(
                factory.storage_precision, self._working_dtype
            )
        n = matrix.size.rows
        a = matrix._scipy_view().tocsr().astype(arith)
        bs = self._block_size
        if bs == 1:
            diag = a.diagonal()
            inv = np.zeros_like(diag)
            mask = diag != 0
            inv[mask] = 1.0 / diag[mask]
            if adaptive:
                # 1x1 blocks are perfectly conditioned: narrowest width
                # the working precision allows.
                storage = select_block_precision(1.0, self._working_dtype)
            self._scalar_inverse = ReducedPrecisionAccessor(
                inv, storage, arithmetic_dtype=arith
            )
            self._block_inverses = None
        else:
            self._scalar_inverse = None
            accessors = []
            for start in range(0, n, bs):
                stop = min(start + bs, n)
                block = a[start:stop, start:stop].toarray()
                try:
                    inv_block = np.linalg.inv(block)
                except np.linalg.LinAlgError as exc:
                    raise GinkgoError(
                        f"Jacobi block [{start}:{stop}) is singular"
                    ) from exc
                if adaptive:
                    cond = float(
                        np.linalg.norm(block, 1) * np.linalg.norm(inv_block, 1)
                    )
                    block_storage = select_block_precision(
                        cond, self._working_dtype
                    )
                else:
                    block_storage = storage
                accessors.append(
                    ReducedPrecisionAccessor(
                        inv_block, block_storage, arithmetic_dtype=arith
                    )
                )
            self._block_inverses = accessors
        self._exec.run(
            factorization_cost(
                "jacobi", n, matrix.nnz, matrix.value_bytes,
                matrix.index_bytes,
            )
        )

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def storage_dtypes(self) -> tuple:
        """Per-block storage dtypes (one entry for scalar Jacobi)."""
        if self._scalar_inverse is not None:
            return (self._scalar_inverse.storage_dtype,)
        return tuple(acc.storage_dtype for acc in self._block_inverses)

    @property
    def is_mixed(self) -> bool:
        """Whether any block is stored below the working precision."""
        return any(
            dt.itemsize < self._working_dtype.itemsize
            for dt in self.storage_dtypes
        )

    def _mixed_suffixes(self) -> tuple:
        """(working, narrowest storage) suffix pair for the mixed symbol."""
        narrowest = min(self.storage_dtypes, key=lambda dt: dt.itemsize)
        return (
            canonical_value_suffix(self._working_dtype),
            canonical_value_suffix(narrowest),
        )

    def _apply_arrays(self, rhs: np.ndarray) -> np.ndarray:
        if self._scalar_inverse is not None:
            return self._scalar_inverse.read()[:, None] * rhs
        out = np.empty_like(rhs, dtype=self._arith_dtype)
        bs = self._block_size
        for index, acc in enumerate(self._block_inverses):
            start = index * bs
            inv_block = acc.read()
            stop = start + inv_block.shape[0]
            out[start:stop] = inv_block @ rhs[start:stop]
        return out

    def _record(self, num_rhs: int) -> None:
        bs = self._block_size
        # Block-diagonal storage, charged at each block's storage width:
        # one SpMV-shaped charge per distinct width (a single charge on
        # the uniform path, identical to the classic accounting).
        rows_by_width: dict = {}
        if self._scalar_inverse is not None:
            rows_by_width[self._scalar_inverse.storage_bytes] = (
                self._size.rows
            )
        else:
            for acc in self._block_inverses:
                width = acc.storage_bytes
                rows = acc.read().shape[0]
                rows_by_width[width] = rows_by_width.get(width, 0) + rows
        for width, rows in sorted(rows_by_width.items()):
            self._exec.run(
                spmv_cost(
                    "csr",
                    rows,
                    rows,
                    rows * bs,
                    width,
                    self._matrix.index_bytes,
                    num_rhs=num_rhs,
                )
            )

    def _run_apply(self, plan) -> None:
        """Run an apply plan, crossing the mixed binding when reduced.

        The uniform path calls the plan directly — no extra resolve, no
        extra crossing, byte-identical to the pre-accessor operator.
        """
        if self.is_mixed:
            from repro.bindings import dispatch  # deferred: registry cycle

            runner = dispatch.resolve(
                "jacobi_apply", self._mixed_suffixes(), exec_=self._exec
            )
            runner(self._exec, plan)
        else:
            plan()

    def _apply_impl(self, b: Dense, x: Dense) -> None:
        def plan():
            np.copyto(
                x._data,
                self._apply_arrays(b._data).astype(x.dtype, copy=False),
            )
            self._record(b.size.cols)

        self._run_apply(plan)

    def _apply_advanced_impl(self, alpha, b: Dense, beta, x: Dense) -> None:
        def plan():
            a = _scalar_value(alpha)
            bt = _scalar_value(beta)
            result = self._apply_arrays(b._data)
            x._data *= x.dtype.type(bt)
            x._data += x.dtype.type(a) * result.astype(x.dtype, copy=False)
            self._record(b.size.cols)

        self._run_apply(plan)


class Jacobi(LinOpFactory):
    """Jacobi factory.

    Args:
        exec_: Executor.
        max_block_size: Diagonal block size; 1 (default) is scalar Jacobi.
        storage_precision: Precision the inverted blocks are stored at:
            ``None`` (default) stores at the system matrix's precision,
            a value-type spelling (``"float"``, ``"float32"``, ``"half"``,
            ...) stores reduced, and ``"adaptive"`` selects each block's
            precision from its condition estimate.
    """

    def __init__(
        self,
        exec_,
        max_block_size: int = 1,
        storage_precision=None,
    ) -> None:
        super().__init__(exec_)
        if max_block_size < 1:
            raise GinkgoError(
                f"max_block_size must be >= 1, got {max_block_size}"
            )
        self.max_block_size = int(max_block_size)
        if storage_precision is not None and storage_precision != "adaptive":
            # Validate the spelling eagerly so config errors fail at
            # factory construction, not first generate().
            canonical_value_suffix(storage_precision)
        self.storage_precision = storage_precision

    def generate(self, matrix) -> JacobiOperator:
        return JacobiOperator(self, matrix)
