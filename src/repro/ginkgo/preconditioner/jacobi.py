"""Scalar and block Jacobi preconditioning (``gko::preconditioner::Jacobi``).

``max_block_size=1`` gives scalar Jacobi (inverse diagonal).  Larger block
sizes extract contiguous diagonal blocks, invert them (densely, batched),
and apply the block inverses — Ginkgo's block-Jacobi without the adaptive
precision storage optimisation.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.exceptions import BadDimension, GinkgoError
from repro.ginkgo.lin_op import LinOp, LinOpFactory
from repro.ginkgo.matrix.dense import Dense, _scalar_value
from repro.perfmodel import factorization_cost, spmv_cost


class JacobiOperator(LinOp):
    """Generated (block-)Jacobi operator."""

    _profile_category = "precond"

    def __init__(self, factory: "Jacobi", matrix) -> None:
        if not matrix.size.is_square:
            raise BadDimension(
                f"Jacobi requires a square matrix, got {matrix.size}"
            )
        super().__init__(matrix.executor, matrix.size)
        self._matrix = matrix
        self._block_size = factory.max_block_size
        n = matrix.size.rows
        dense_blocks = []
        a = matrix._scipy_view().tocsr().astype(np.float64)
        bs = self._block_size
        if bs == 1:
            diag = a.diagonal()
            inv = np.zeros_like(diag)
            mask = diag != 0
            inv[mask] = 1.0 / diag[mask]
            self._scalar_inverse = inv
            self._block_inverses = None
        else:
            self._scalar_inverse = None
            for start in range(0, n, bs):
                stop = min(start + bs, n)
                block = a[start:stop, start:stop].toarray()
                try:
                    inv_block = np.linalg.inv(block)
                except np.linalg.LinAlgError as exc:
                    raise GinkgoError(
                        f"Jacobi block [{start}:{stop}) is singular"
                    ) from exc
                dense_blocks.append(inv_block)
            self._block_inverses = dense_blocks
        self._exec.run(
            factorization_cost(
                "jacobi", n, matrix.nnz, matrix.value_bytes,
                matrix.index_bytes,
            )
        )

    @property
    def block_size(self) -> int:
        return self._block_size

    def _apply_arrays(self, rhs: np.ndarray) -> np.ndarray:
        if self._scalar_inverse is not None:
            return self._scalar_inverse[:, None] * rhs
        out = np.empty_like(rhs, dtype=np.float64)
        bs = self._block_size
        for index, inv_block in enumerate(self._block_inverses):
            start = index * bs
            stop = start + inv_block.shape[0]
            out[start:stop] = inv_block @ rhs[start:stop]
        return out

    def _record(self, num_rhs: int) -> None:
        bs = self._block_size
        stored = self._size.rows * bs  # block-diagonal storage
        self._exec.run(
            spmv_cost(
                "csr",
                self._size.rows,
                self._size.rows,
                stored,
                self._matrix.value_bytes,
                self._matrix.index_bytes,
                num_rhs=num_rhs,
            )
        )

    def _apply_impl(self, b: Dense, x: Dense) -> None:
        np.copyto(x._data, self._apply_arrays(b._data).astype(x.dtype, copy=False))
        self._record(b.size.cols)

    def _apply_advanced_impl(self, alpha, b: Dense, beta, x: Dense) -> None:
        a = _scalar_value(alpha)
        bt = _scalar_value(beta)
        result = self._apply_arrays(b._data)
        x._data *= x.dtype.type(bt)
        x._data += x.dtype.type(a) * result.astype(x.dtype, copy=False)
        self._record(b.size.cols)


class Jacobi(LinOpFactory):
    """Jacobi factory.

    Args:
        exec_: Executor.
        max_block_size: Diagonal block size; 1 (default) is scalar Jacobi.
    """

    def __init__(self, exec_, max_block_size: int = 1) -> None:
        super().__init__(exec_)
        if max_block_size < 1:
            raise GinkgoError(
                f"max_block_size must be >= 1, got {max_block_size}"
            )
        self.max_block_size = int(max_block_size)

    def generate(self, matrix) -> JacobiOperator:
        return JacobiOperator(self, matrix)
