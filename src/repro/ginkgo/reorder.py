"""Matrix reordering (``gko::reorder``).

Bandwidth-reducing permutations improve cache behaviour of SpMV and reduce
fill-in of incomplete factorizations.  Provides reverse Cuthill-McKee (as
in ``gko::reorder::Rcm``) and the symmetric application of a permutation
to a matrix.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee

from repro.ginkgo.exceptions import BadDimension
from repro.ginkgo.matrix.csr import Csr
from repro.ginkgo.matrix.permutation import Permutation
from repro.perfmodel import KernelCost


def rcm(matrix: Csr) -> Permutation:
    """Reverse Cuthill-McKee ordering of a square sparse matrix.

    Returns:
        A :class:`Permutation` ``P`` such that applying it symmetrically
        (``P A P^T``, see :func:`permute`) clusters the nonzeros near the
        diagonal.
    """
    if not matrix.size.is_square:
        raise BadDimension(f"RCM requires a square matrix, got {matrix.size}")
    pattern = matrix._scipy_view().tocsr()
    sym = (abs(pattern) + abs(pattern).T).tocsr()
    order = reverse_cuthill_mckee(sym, symmetric_mode=True)
    matrix.executor.run(
        KernelCost(
            "rcm_reorder",
            flops=0.0,
            bytes=4.0 * (matrix.nnz + matrix.size.rows) * 8,
            launches=8,
        )
    )
    return Permutation(matrix.executor, np.asarray(order, dtype=np.int64))


def permute(matrix: Csr, permutation: Permutation) -> Csr:
    """Symmetric permutation ``P A P^T`` as a new CSR matrix."""
    if matrix.size.rows != permutation.size.rows:
        raise BadDimension(
            f"permutation of size {permutation.size.rows} does not match "
            f"matrix with {matrix.size.rows} rows"
        )
    order = permutation.permutation
    scipy_matrix = matrix._scipy_view().tocsr()
    permuted = scipy_matrix[order, :][:, order].tocsr()
    matrix.executor.run(
        KernelCost(
            "symm_permute",
            flops=0.0,
            bytes=4.0 * matrix.nnz * (matrix.value_bytes + matrix.index_bytes),
            launches=4,
        )
    )
    return Csr.from_scipy(
        matrix.executor,
        permuted,
        value_dtype=matrix.dtype,
        index_dtype=matrix.index_dtype,
        strategy=matrix.strategy,
    )


def bandwidth(matrix) -> int:
    """Maximum |i - j| over the stored entries (0 for diagonal/empty)."""
    if hasattr(matrix, "_scipy_view"):
        matrix = matrix._scipy_view()
    coo = sp.coo_matrix(matrix)
    if coo.nnz == 0:
        return 0
    return int(np.abs(coo.row - coo.col).max())
