"""Row/column equilibration (``gko::matrix::Dense::compute_*_scale`` /
``ScaledReordered`` style pre-scaling).

Badly scaled systems slow Krylov convergence and break half-precision
storage; equilibration rescales ``A`` to ``D_r A D_c`` with near-unit row
and column norms.  Solving then proceeds on the scaled system:
``A x = b  <=>  (D_r A D_c) y = D_r b,  x = D_c y``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.ginkgo.exceptions import BadDimension
from repro.ginkgo.matrix.csr import Csr
from repro.ginkgo.matrix.diagonal import Diagonal
from repro.perfmodel import KernelCost


@dataclass
class Equilibration:
    """Result of equilibrating a matrix: ``scaled = row_scale A col_scale``."""

    scaled_matrix: Csr
    row_scale: Diagonal
    col_scale: Diagonal

    def scale_rhs(self, b: np.ndarray) -> np.ndarray:
        """Transform the right-hand side: ``b -> D_r b``."""
        scale = np.asarray(self.row_scale.values)
        return (b.T * scale).T

    def unscale_solution(self, y: np.ndarray) -> np.ndarray:
        """Recover the original unknowns: ``x = D_c y``."""
        scale = np.asarray(self.col_scale.values)
        return (y.T * scale).T


def equilibrate(matrix: Csr, iterations: int = 2) -> Equilibration:
    """Ruiz-style iterative equilibration (sqrt of max row/col magnitude).

    Args:
        matrix: Square CSR matrix.
        iterations: Ruiz sweeps (2 is usually enough to land within a
            factor ~2 of unit norms).

    Returns:
        :class:`Equilibration` with the scaled matrix and both diagonal
        scaling operators on the matrix's executor.
    """
    if not matrix.size.is_square:
        raise BadDimension(
            f"equilibrate requires a square matrix, got {matrix.size}"
        )
    work = matrix._scipy_view().tocsr().astype(np.float64).copy()
    n = work.shape[0]
    row_scale = np.ones(n)
    col_scale = np.ones(n)
    for _ in range(max(iterations, 1)):
        row_max = np.asarray(abs(work).max(axis=1).todense()).ravel()
        row_factor = np.where(row_max > 0, 1.0 / np.sqrt(row_max), 1.0)
        work = sp.diags(row_factor) @ work
        row_scale *= row_factor
        col_max = np.asarray(abs(work).max(axis=0).todense()).ravel()
        col_factor = np.where(col_max > 0, 1.0 / np.sqrt(col_max), 1.0)
        work = work @ sp.diags(col_factor)
        col_scale *= col_factor
    exec_ = matrix.executor
    exec_.run(
        KernelCost(
            "equilibrate",
            flops=4.0 * matrix.nnz * iterations,
            bytes=4.0 * matrix.nnz * matrix.value_bytes * iterations,
            launches=4 * iterations,
        )
    )
    return Equilibration(
        scaled_matrix=Csr.from_scipy(
            exec_, work.tocsr(), value_dtype=matrix.dtype,
            index_dtype=matrix.index_dtype, strategy=matrix.strategy,
        ),
        row_scale=Diagonal(exec_, row_scale),
        col_scale=Diagonal(exec_, col_scale),
    )
