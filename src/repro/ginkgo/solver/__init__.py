"""Iterative and direct solvers (``gko::solver``).

All solvers follow Ginkgo's two-stage pattern: a factory holds the
parameters (stopping criteria, preconditioner, solver-specific knobs), and
``factory.generate(matrix)`` binds it to a system matrix, producing a LinOp
whose ``apply(b, x)`` runs the solve with ``x`` as the initial guess.
"""

from repro.ginkgo.solver.base import IterativeSolver, SolverFactory
from repro.ginkgo.solver.cg import Cg
from repro.ginkgo.solver.fcg import Fcg
from repro.ginkgo.solver.cgs import Cgs
from repro.ginkgo.solver.bicg import Bicg
from repro.ginkgo.solver.bicgstab import Bicgstab
from repro.ginkgo.solver.gmres import Gmres
from repro.ginkgo.solver.minres import Minres
from repro.ginkgo.solver.ir import Ir
from repro.ginkgo.solver.idr import Idr
from repro.ginkgo.solver.cb_gmres import CbGmres
from repro.ginkgo.solver.triangular import LowerTrs, UpperTrs
from repro.ginkgo.solver.direct import Direct
from repro.ginkgo.solver.workspace import Workspace

__all__ = [
    "Bicg",
    "Bicgstab",
    "CbGmres",
    "Cg",
    "Cgs",
    "Direct",
    "Fcg",
    "Gmres",
    "Idr",
    "Ir",
    "IterativeSolver",
    "LowerTrs",
    "Minres",
    "SolverFactory",
    "UpperTrs",
    "Workspace",
]
