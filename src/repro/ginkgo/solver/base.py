"""Common machinery of the iterative solvers."""

from __future__ import annotations

import numpy as np

from repro.ginkgo.dim import Dim
from repro.ginkgo.exceptions import BadDimension, GinkgoError, SolverBreakdown
from repro.ginkgo.lin_op import Identity, LinOp, LinOpFactory
from repro.ginkgo.matrix.dense import Dense
from repro.ginkgo.solver.workspace import Workspace
from repro.ginkgo.stop import (
    Combined,
    CriterionContext,
    Iteration,
    ResidualNorm,
)


def _normalise_criteria(criteria):
    """Coerce a factory, list of factories, or None into one factory."""
    if criteria is None:
        return Iteration(1000) | ResidualNorm(1e-12, baseline="rhs_norm")
    if isinstance(criteria, (list, tuple)):
        if not criteria:
            raise GinkgoError("criteria list must not be empty")
        combined = criteria[0]
        for item in criteria[1:]:
            combined = combined | item
        return combined
    return criteria


class SolverFactory(LinOpFactory):
    """Factory holding solver parameters (Ginkgo's ``Solver::build()``).

    Args:
        exec_: Executor to generate solvers on.
        criteria: A criterion factory, a list of them (OR-combined), or
            None for the default (1000 iterations or relative residual
            1e-12).
        preconditioner: Either a generated LinOp applied as the
            preconditioner, or a factory with a ``generate(matrix)`` method.
        strict_breakdown: When True, a NaN/Inf residual raises
            :class:`SolverBreakdown` (``NotConverged``-style strictness);
            by default the solve just stops early and logs the breakdown.
        **params: Solver-specific parameters, validated by the subclass.
    """

    #: Concrete solver class instantiated by :meth:`generate`.
    solver_class: type | None = None
    #: Names of accepted solver-specific parameters.
    parameter_names: tuple = ()

    def __init__(
        self,
        exec_,
        criteria=None,
        preconditioner=None,
        strict_breakdown: bool = False,
        **params,
    ):
        super().__init__(exec_)
        unknown = set(params) - set(self.parameter_names)
        if unknown:
            raise GinkgoError(
                f"{type(self).__name__} got unknown parameters {sorted(unknown)}; "
                f"accepted: {sorted(self.parameter_names)}"
            )
        self.criteria = _normalise_criteria(criteria)
        self.preconditioner = preconditioner
        self.strict_breakdown = bool(strict_breakdown)
        self.params = params

    def generate(self, matrix: LinOp) -> "IterativeSolver":
        """Bind the factory to a system matrix."""
        if self.solver_class is None:
            raise NotImplementedError(
                f"{type(self).__name__} does not define solver_class"
            )
        return self.solver_class(self, matrix)


class IterativeSolver(LinOp):
    """Base of all iterative solver LinOps.

    ``apply(b, x)`` treats ``x`` as the initial guess and overwrites it with
    the solution, firing ``iteration_complete`` / ``converged`` logger
    events along the way, exactly like Ginkgo solvers.
    """

    #: Whether the solver requires a square system matrix.
    requires_square = True

    _profile_category = "solver"

    def __init__(self, factory: SolverFactory, matrix: LinOp) -> None:
        if self.requires_square and not matrix.size.is_square:
            raise BadDimension(
                f"{type(self).__name__} requires a square matrix, "
                f"got {matrix.size}"
            )
        super().__init__(matrix.executor, matrix.size)
        self._factory = factory
        self._matrix = matrix
        # Preconditioner generation (factorisations, inverses) runs real
        # kernels; span it so setup cost is attributable separately from
        # the solve itself.
        clock = matrix.executor.clock
        clock.push_span(f"{type(self).__name__}::generate", "generate")
        try:
            self._preconditioner = self._generate_preconditioner(
                factory, matrix
            )
        finally:
            clock.pop_span()
        # Scratch buffers persist across apply() calls and restart cycles;
        # the first solve populates the pool, later solves run allocation-free.
        self._workspace = Workspace(matrix.executor)
        # Populated after each apply:
        self.num_iterations = 0
        self.converged = False
        self.breakdown = False
        self.timed_out = False
        self.final_residual_norm = float("nan")

    @staticmethod
    def _generate_preconditioner(factory: SolverFactory, matrix: LinOp) -> LinOp:
        precond = factory.preconditioner
        if precond is None:
            return Identity(matrix.executor, matrix.size.rows)
        if isinstance(precond, LinOp):
            return precond
        if hasattr(precond, "generate"):
            return precond.generate(matrix)
        raise GinkgoError(
            f"preconditioner must be a LinOp or a factory, got "
            f"{type(precond).__name__}"
        )

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def system_matrix(self) -> LinOp:
        return self._matrix

    @property
    def preconditioner(self) -> LinOp:
        return self._preconditioner

    @property
    def parameters(self) -> dict:
        return dict(self._factory.params)

    @property
    def workspace(self) -> Workspace:
        """The solver's persistent scratch-buffer pool."""
        return self._workspace

    def clear_workspace(self) -> None:
        """Release all pooled scratch buffers back to the executor."""
        self._workspace.clear()

    # ------------------------------------------------------------------
    # LinOp interface
    # ------------------------------------------------------------------
    def _apply_impl(self, b: Dense, x: Dense) -> None:
        self.breakdown = False
        self.timed_out = False
        context = CriterionContext(
            rhs_norm=b.compute_norm2(),
            clock=self._exec.clock,
            start_time=self._exec.clock.now,
        )
        # Initial residual r0 = b - A x0 (pooled; charges like b.clone()).
        r = self._initial_residual_buffer(b)
        self._matrix.apply_advanced(-1.0, x, 1.0, r)
        context.initial_resnorm = r.compute_norm2()
        criterion = self._factory.criteria.generate(context)

        def monitor(iteration: int, residual_norm) -> bool:
            # Breakdown guard: a NaN/Inf residual means the iteration has
            # lost the plot (corrupted data, singular preconditioner, ...)
            # and would otherwise silently spin to max_iters.
            norms = np.asarray(residual_norm, dtype=np.float64)
            if not np.all(np.isfinite(norms)):
                self.num_iterations = iteration
                self.converged = False
                self.breakdown = True
                self.final_residual_norm = float(np.max(norms))
                self._log(
                    "breakdown",
                    iteration=iteration,
                    residual_norm=residual_norm,
                )
                self._exec.clock.annotate(
                    "breakdown",
                    iteration=iteration,
                    residual_norm=float(np.max(norms)),
                )
                if self._factory.strict_breakdown:
                    raise SolverBreakdown(iteration, float(np.max(norms)))
                return True
            self._log(
                "iteration_complete",
                iteration=iteration,
                residual_norm=residual_norm,
                solution=x,
            )
            # The host-driven iteration loop reads the stopping status back
            # from the device once per check (Ginkgo behaviour).
            self._exec.clock.synchronize()
            stop = criterion.check(iteration, residual_norm)
            self._log(
                "criterion_check_completed", iteration=iteration, stopped=stop
            )
            # Iteration boundary marker for attached profilers: the time
            # since the previous marker is this iteration's span.
            self._exec.clock.annotate(
                "iteration",
                iteration=iteration,
                residual_norm=float(np.max(norms)),
                stopped=stop,
            )
            if stop:
                self.num_iterations = iteration
                self.converged = criterion.converged
                self.timed_out = bool(getattr(criterion, "timed_out", False))
                self.final_residual_norm = float(np.max(residual_norm))
                if criterion.converged:
                    self._log(
                        "converged",
                        iteration=iteration,
                        residual_norm=residual_norm,
                    )
            return stop

        # Check the initial residual before iterating (already converged?).
        if monitor(0, context.initial_resnorm):
            return
        self._iterate(self._matrix, self._preconditioner, b, x, r, monitor)

    def _initial_residual_buffer(self, b):
        """Pooled buffer initialised to a copy of ``b``.

        Hook for subclasses whose vectors are not plain ``Dense`` (the
        distributed solvers return a pooled distributed Vector here).
        """
        return self._workspace.dense_like("base.r0", b)

    def _apply_advanced_impl(self, alpha, b, beta, x) -> None:
        tmp = self._workspace.dense_like("base.advanced_tmp", x)
        self._apply_impl(b, tmp)
        x.scale(beta)
        x.add_scaled(alpha, tmp)

    # ------------------------------------------------------------------
    # to implement
    # ------------------------------------------------------------------
    def _iterate(self, A, M, b, x, r, monitor) -> None:
        """Run the iteration.

        Args:
            A: System matrix LinOp.
            M: Preconditioner LinOp (Identity when none configured).
            b: Right-hand side (n x k Dense).
            x: Solution / initial guess, updated in place.
            r: Initial residual ``b - A x`` (may be reused as workspace).
            monitor: ``monitor(iteration, residual_norm) -> bool``; call
                once per iteration, stop when it returns True.
        """
        raise NotImplementedError
