"""Biconjugate Gradient (``gko::solver::Bicg``).

Classic BiCG for general (nonsymmetric) systems, using the transposed
system matrix for the shadow sequence.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.exceptions import NotSupported
from repro.ginkgo.matrix.dense import Dense
from repro.ginkgo.solver.base import IterativeSolver, SolverFactory
from repro.ginkgo.solver.cg import _safe_divide


class BicgSolver(IterativeSolver):
    """Generated BiCG operator."""

    def _iterate(self, A, M, b, x, r, monitor) -> None:
        if not hasattr(A, "transpose"):
            raise NotSupported(
                f"Bicg needs a transposable system matrix, got "
                f"{type(A).__name__}"
            )
        At = A.transpose()
        exec_ = self._exec
        r2 = r.clone()  # shadow residual
        z = Dense.empty(exec_, r.size, r.dtype)
        z2 = Dense.empty(exec_, r.size, r.dtype)
        q = Dense.empty(exec_, r.size, r.dtype)
        q2 = Dense.empty(exec_, r.size, r.dtype)
        M.apply(r, z)
        M.apply(r2, z2)
        p = z.clone()
        p2 = z2.clone()
        rz = r2.compute_dot(z)

        iteration = 0
        while True:
            iteration += 1
            A.apply(p, q)
            At.apply(p2, q2)
            pq = p2.compute_dot(q)
            alpha = _safe_divide(rz, pq)
            x.add_scaled(alpha, p)
            r.sub_scaled(alpha, q)
            r2.sub_scaled(alpha, q2)
            res_norm = r.compute_norm2()
            if monitor(iteration, res_norm):
                return
            M.apply(r, z)
            M.apply(r2, z2)
            rz_new = r2.compute_dot(z)
            beta = _safe_divide(rz_new, rz)
            p.scale(beta)
            p.add_scaled(1.0, z)
            p2.scale(beta)
            p2.add_scaled(1.0, z2)
            rz = rz_new


class Bicg(SolverFactory):
    """BiCG factory."""

    solver_class = BicgSolver
    parameter_names = ()
