"""Biconjugate Gradient (``gko::solver::Bicg``).

Classic BiCG for general (nonsymmetric) systems, using the transposed
system matrix for the shadow sequence.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.exceptions import NotSupported
from repro.ginkgo.solver.base import IterativeSolver, SolverFactory
from repro.ginkgo.solver.cg import _safe_divide


class BicgSolver(IterativeSolver):
    """Generated BiCG operator."""

    def _iterate(self, A, M, b, x, r, monitor) -> None:
        if not hasattr(A, "transpose"):
            raise NotSupported(
                f"Bicg needs a transposable system matrix, got "
                f"{type(A).__name__}"
            )
        At = A.transpose()
        ws = self._workspace
        r2 = ws.dense_like("bicg.r2", r)  # shadow residual
        z = ws.dense("bicg.z", r.size, r.dtype)
        z2 = ws.dense("bicg.z2", r.size, r.dtype)
        q = ws.dense("bicg.q", r.size, r.dtype)
        q2 = ws.dense("bicg.q2", r.size, r.dtype)
        M.apply(r, z)
        M.apply(r2, z2)
        p = ws.dense_like("bicg.p", z)
        p2 = ws.dense_like("bicg.p2", z2)
        rz = r2.compute_dot(z)

        iteration = 0
        while True:
            iteration += 1
            A.apply(p, q)
            At.apply(p2, q2)
            pq = p2.compute_dot(q)
            alpha = _safe_divide(rz, pq)
            x.add_scaled(alpha, p)
            r.sub_scaled(alpha, q)
            r2.sub_scaled(alpha, q2)
            res_norm = r.compute_norm2()
            if monitor(iteration, res_norm):
                return
            M.apply(r, z)
            M.apply(r2, z2)
            rz_new = r2.compute_dot(z)
            beta = _safe_divide(rz_new, rz)
            p.scale(beta)
            p.add_scaled(1.0, z)
            p2.scale(beta)
            p2.add_scaled(1.0, z2)
            rz = rz_new


class Bicg(SolverFactory):
    """BiCG factory."""

    solver_class = BicgSolver
    parameter_names = ()
