"""Biconjugate Gradient Stabilised (``gko::solver::Bicgstab``)."""

from __future__ import annotations

import numpy as np

from repro.ginkgo.solver.base import IterativeSolver, SolverFactory
from repro.ginkgo.solver.cg import _safe_divide


class BicgstabSolver(IterativeSolver):
    """Generated BiCGSTAB operator (van der Vorst's algorithm)."""

    def _iterate(self, A, M, b, x, r, monitor) -> None:
        ws = self._workspace
        r_tld = ws.dense_like("bicgstab.r_tld", r)
        p = ws.dense_like("bicgstab.p", r)
        p_hat = ws.dense("bicgstab.p_hat", r.size, r.dtype)
        s_hat = ws.dense("bicgstab.s_hat", r.size, r.dtype)
        v = ws.dense("bicgstab.v", r.size, r.dtype)
        s = ws.dense("bicgstab.s", r.size, r.dtype)
        t = ws.dense("bicgstab.t", r.size, r.dtype)
        rho_old = None
        alpha = np.ones(r.size.cols)
        omega = np.ones(r.size.cols)

        iteration = 0
        while True:
            iteration += 1
            rho = r_tld.compute_dot(r)
            if rho_old is not None:
                beta = _safe_divide(rho * alpha, rho_old * omega)
                # p = r + beta * (p - omega * v)
                p.sub_scaled(omega, v)
                p.scale(beta)
                p.add_scaled(1.0, r)
            M.apply(p, p_hat)
            A.apply(p_hat, v)
            alpha = _safe_divide(rho, r_tld.compute_dot(v))
            # s = r - alpha v
            s.copy_values_from(r)
            s.sub_scaled(alpha, v)
            # Early exit on half-step convergence.
            s_norm = s.compute_norm2()
            M.apply(s, s_hat)
            A.apply(s_hat, t)
            tt = t.compute_dot(t)
            omega = _safe_divide(t.compute_dot(s), tt)
            x.add_scaled(alpha, p_hat)
            x.add_scaled(omega, s_hat)
            # r = s - omega t
            r.copy_values_from(s)
            r.sub_scaled(omega, t)
            rho_old = rho
            res_norm = r.compute_norm2()
            if monitor(iteration, res_norm):
                return


class Bicgstab(SolverFactory):
    """BiCGSTAB factory."""

    solver_class = BicgstabSolver
    parameter_names = ()
