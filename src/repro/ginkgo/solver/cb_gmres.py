"""CB-GMRES — compressed-basis GMRES (``gko::solver::CbGmres``).

Ginkgo's flagship mixed-precision solver: the Krylov basis — the dominant
memory traffic of GMRES — is *stored* in a reduced precision while all
arithmetic happens in the full working precision.  Because GMRES is
memory-bandwidth bound, storing the basis in float32 (or float16) cuts
per-iteration time almost proportionally with, usually, negligible effect
on convergence (the basis only spans the search space; the Hessenberg
recurrence stays in full precision).

This reproduction stores the basis block in the configured storage dtype
and charges basis-touching kernels (multi-dot, rank update, x-update) with
the *storage* width, exactly the mechanism behind the real speedup.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.accessor import arithmetic_dtype_for, value_dtype_for
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.matrix.base import check_value_dtype
from repro.ginkgo.solver.base import IterativeSolver, SolverFactory
from repro.ginkgo.solver.gmres import DEFAULT_KRYLOV_DIM
from repro.perfmodel import KernelCost, blas1_cost


class CbGmresSolver(IterativeSolver):
    """Generated CB-GMRES operator (left-preconditioned)."""

    def _iterate(self, A, M, b, x, r, monitor) -> None:
        krylov_dim = int(
            self._factory.params.get("krylov_dim", DEFAULT_KRYLOV_DIM)
        )
        if krylov_dim < 1:
            raise GinkgoError(f"krylov_dim must be >= 1, got {krylov_dim}")
        # ``value_dtype_for`` accepts every value-type spelling the config
        # layer does ("float"/"float32"/...), not just numpy dtypes.
        storage = check_value_dtype(
            value_dtype_for(
                self._factory.params.get("storage_precision", np.float32)
            )
        )
        ws = self._workspace
        for c in range(b.size.cols):
            self._solve_column(
                A,
                M,
                ws.column_view(f"cb_gmres.b[{c}]", b, c),
                ws.column_view(f"cb_gmres.x[{c}]", x, c),
                krylov_dim,
                storage,
                monitor,
            )

    def _solve_column(self, A, M, b, x, m, storage, monitor) -> bool:
        exec_ = self._exec
        ws = self._workspace
        n = b.size.rows
        storage_bytes = storage.itemsize
        # Host bookkeeping (Hessenberg, Givens, g, y) lives at the working
        # precision — a float32 solve must not leak float64 arrays — and
        # the basis decompresses into the arithmetic precision (float32
        # for half working dtypes, like the engine's half kernels).
        work = np.dtype(b.dtype)
        arith = arithmetic_dtype_for(work)
        total_iteration = 0
        w = ws.dense("cb_gmres.w", b.size, b.dtype)
        r = ws.dense("cb_gmres.r", b.size, b.dtype)

        while True:
            w.copy_values_from(b)
            A.apply_advanced(-1.0, x, 1.0, w)
            M.apply(w, r)
            beta = float(r.compute_norm2()[0])
            if beta == 0.0:
                monitor(total_iteration, 0.0)
                return True
            # The compressed basis: stored in `storage` precision.
            basis = ws.array("cb_gmres.basis", (n, m + 1), dtype=storage)
            basis[:, 0] = (r._data[:, 0] / beta).astype(storage)
            exec_.run(blas1_cost("cb_gmres_init", n, storage_bytes, 2))
            hessenberg = ws.array("cb_gmres.hessenberg", (m + 1, m), dtype=work)
            givens_cos = ws.array("cb_gmres.givens_cos", m, dtype=work)
            givens_sin = ws.array("cb_gmres.givens_sin", m, dtype=work)
            g = ws.array("cb_gmres.g", m + 1, dtype=work)
            g[0] = beta

            inner = 0
            stopped = False
            for j in range(m):
                # w = M^{-1} A v_j: decompress v_j to working precision.
                w._data[:, 0] = basis[:, j].astype(arith)
                A.apply(w, r)
                M.apply(r, w)
                # Fused multi-dot against the compressed basis: the reads
                # move storage-precision bytes.
                coeffs = basis[:, : j + 1].astype(arith).T @ w._data[:, 0]
                exec_.run(
                    blas1_cost(
                        "cb_gmres_multidot", n * (j + 1), storage_bytes, 2
                    )
                )
                hessenberg[: j + 1, j] = coeffs
                w._data[:, 0] -= basis[:, : j + 1].astype(
                    arith
                ) @ coeffs
                exec_.run(
                    blas1_cost(
                        "cb_gmres_update", n * (j + 1), storage_bytes, 2
                    )
                )
                h_next = float(w.compute_norm2()[0])
                hessenberg[j + 1, j] = h_next
                if h_next != 0.0:
                    basis[:, j + 1] = (w._data[:, 0] / h_next).astype(
                        storage
                    )
                    exec_.run(
                        blas1_cost("cb_gmres_scale", n, storage_bytes, 2)
                    )
                for i in range(j):
                    hi, hi1 = hessenberg[i, j], hessenberg[i + 1, j]
                    hessenberg[i, j] = (
                        givens_cos[i] * hi + givens_sin[i] * hi1
                    )
                    hessenberg[i + 1, j] = (
                        -givens_sin[i] * hi + givens_cos[i] * hi1
                    )
                denom = np.hypot(hessenberg[j, j], hessenberg[j + 1, j])
                if denom == 0.0:
                    givens_cos[j], givens_sin[j] = 1.0, 0.0
                else:
                    givens_cos[j] = hessenberg[j, j] / denom
                    givens_sin[j] = hessenberg[j + 1, j] / denom
                hessenberg[j, j] = denom
                hessenberg[j + 1, j] = 0.0
                g[j + 1] = -givens_sin[j] * g[j]
                g[j] = givens_cos[j] * g[j]
                exec_.run(
                    KernelCost("givens_update", 6.0 * m, 24.0 * m, launches=3)
                )
                exec_.run(KernelCost("residual_check", 0.0, 64.0, launches=4))

                residual_norm = abs(g[j + 1])
                inner = j + 1
                total_iteration += 1
                stopped = monitor(total_iteration, residual_norm)
                if stopped or h_next == 0.0:
                    break

            y = ws.array("cb_gmres.y", inner, dtype=work)
            for i in range(inner - 1, -1, -1):
                y[i] = (
                    g[i] - hessenberg[i, i + 1 : inner] @ y[i + 1 : inner]
                ) / hessenberg[i, i]
            exec_.run(
                KernelCost(
                    "hessenberg_trsv",
                    flops=float(inner * inner),
                    bytes=float(work.itemsize) * inner * inner,
                    launches=max(inner, 1),
                )
            )
            # x += V y, reading the compressed basis.
            x._data[:, 0] += basis[:, :inner].astype(arith) @ y
            exec_.run(
                blas1_cost("cb_gmres_x_update", n * inner, storage_bytes, 2)
            )
            if stopped:
                return True


class CbGmres(SolverFactory):
    """CB-GMRES factory.

    Parameters:
        krylov_dim: Restart length (default 30).
        storage_precision: dtype the Krylov basis is stored in
            (default float32; float16 for the most aggressive compression).
    """

    solver_class = CbGmresSolver
    parameter_names = ("krylov_dim", "storage_precision")
