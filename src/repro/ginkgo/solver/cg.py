"""Conjugate Gradient (``gko::solver::Cg``).

The classical preconditioned CG for symmetric positive-definite systems,
with per-column coefficients so multiple right-hand sides converge
independently in one apply.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.solver.base import IterativeSolver, SolverFactory


def _safe_divide(num, den):
    """Elementwise num/den with 0 where den == 0 (breakdown guard)."""
    num = np.asarray(num, dtype=np.float64)
    den = np.asarray(den, dtype=np.float64)
    out = np.zeros_like(num)
    mask = den != 0
    np.divide(num, den, out=out, where=mask)
    return out


class CgSolver(IterativeSolver):
    """Generated CG operator (fused step kernels, as in Ginkgo)."""

    def _iterate(self, A, M, b, x, r, monitor) -> None:
        from repro.ginkgo.lazy import fused_step
        from repro.ginkgo.solver.kernels import cg_step_1, cg_step_2

        ws = self._workspace
        exec_ = self._exec
        z = ws.dense("cg.z", r.size, r.dtype)
        M.apply(r, z)
        p = ws.dense_like("cg.p", z)
        q = ws.dense("cg.q", r.size, r.dtype)
        rz = r.compute_dot(z)

        iteration = 0
        while True:
            iteration += 1
            A.apply(p, q)
            pq = p.compute_dot(q)
            alpha = _safe_divide(rz, pq)
            # cg_step_2 is one fused kernel standing in for the two eager
            # axpys (x += alpha p, r -= alpha q) — mark it as a fused
            # region so attribution counts the amortisation.
            with fused_step(exec_, "cg::step_2", ops_replaced=2):
                cg_step_2(x, r, p, q, alpha)
            res_norm = r.compute_norm2()
            if monitor(iteration, res_norm):
                return
            M.apply(r, z)
            rz_new = r.compute_dot(z)
            beta = _safe_divide(rz_new, rz)
            # cg_step_1 fuses the scale+add of p = z + beta p.
            with fused_step(exec_, "cg::step_1", ops_replaced=2):
                cg_step_1(p, z, beta)
            rz = rz_new


class Cg(SolverFactory):
    """CG factory: ``Cg(exec, criteria=..., preconditioner=...)``."""

    solver_class = CgSolver
    parameter_names = ()
