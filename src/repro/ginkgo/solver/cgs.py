"""Conjugate Gradient Squared (``gko::solver::Cgs``).

CGS is the solver where the paper measures pyGinkgo's largest advantage
over CuPy (up to 4x per iteration at small NNZ, section 6.2.1): each
iteration performs two SpMVs plus a long tail of vector updates, so
framework dispatch overhead weighs heavily.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.solver.base import IterativeSolver, SolverFactory
from repro.ginkgo.solver.cg import _safe_divide


class CgsSolver(IterativeSolver):
    """Generated CGS operator (Sonneveld's algorithm, preconditioned)."""

    def _iterate(self, A, M, b, x, r, monitor) -> None:
        ws = self._workspace
        r_tld = ws.dense_like("cgs.r_tld", r)  # fixed shadow residual r~0
        # p/u/q are READ in the first cgs_step_1 before being written, so
        # they must come back zeroed on every apply.
        p = ws.dense("cgs.p", r.size, r.dtype, zero=True)
        u = ws.dense("cgs.u", r.size, r.dtype, zero=True)
        q = ws.dense("cgs.q", r.size, r.dtype, zero=True)
        v = ws.dense("cgs.v", r.size, r.dtype)
        t = ws.dense("cgs.t", r.size, r.dtype)
        u_hat = ws.dense("cgs.u_hat", r.size, r.dtype)
        rho_old = np.ones(r.size.cols)

        from repro.ginkgo.solver.kernels import (
            cgs_step_1,
            cgs_step_2,
            cgs_step_3,
        )

        iteration = 0
        while True:
            iteration += 1
            rho = r_tld.compute_dot(r)
            beta = _safe_divide(rho, rho_old)
            # Fused: u = r + beta q ; p = u + beta (q + beta p).
            cgs_step_1(u, p, r, q, beta)
            # v = A M^{-1} p
            M.apply(p, u_hat)
            A.apply(u_hat, v)
            sigma = r_tld.compute_dot(v)
            alpha = _safe_divide(rho, sigma)
            # Fused: q = u - alpha v ; t = u + q.
            cgs_step_2(q, t, u, v, alpha)
            # x += alpha M^{-1} t ; r -= alpha A M^{-1} t.
            M.apply(t, u_hat)
            A.apply(u_hat, v)
            cgs_step_3(x, r, u_hat, v, alpha)
            rho_old = rho
            res_norm = r.compute_norm2()
            if monitor(iteration, res_norm):
                return


class Cgs(SolverFactory):
    """CGS factory."""

    solver_class = CgsSolver
    parameter_names = ()
