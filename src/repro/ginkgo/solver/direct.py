"""Sparse direct solver (``gko::experimental::solver::Direct``).

LU factorisation with fill-in (via the engine's factorization module)
followed by two triangular solves.  The paper's Figure 2 lists the direct
solver among the explicitly bound solvers.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import splu

from repro.ginkgo.exceptions import BadDimension
from repro.ginkgo.lin_op import LinOp, LinOpFactory
from repro.ginkgo.matrix.dense import Dense, _scalar_value
from repro.perfmodel import KernelCost, trsv_cost


class DirectSolver(LinOp):
    """Generated direct solver: factorise once, solve per apply."""

    def __init__(self, factory, matrix) -> None:
        if not matrix.size.is_square:
            raise BadDimension(
                f"Direct requires a square matrix, got {matrix.size}"
            )
        super().__init__(matrix.executor, matrix.size)
        self._matrix = matrix
        # Direct solves are one-shot, but the handle API exposes the same
        # post-apply stats as the iterative solvers.
        self.num_iterations = 0
        self.converged = False
        self.breakdown = False
        self.final_residual_norm = float("nan")
        csc = matrix._scipy_view().tocsc().astype(np.float64)
        self._lu = splu(csc)
        fill_nnz = self._lu.L.nnz + self._lu.U.nnz
        self._fill_nnz = fill_nnz
        # Factorisation cost: sweep over the filled pattern several times.
        self._exec.run(
            KernelCost(
                name="lu_factorize",
                flops=8.0 * fill_nnz,
                bytes=6.0 * fill_nnz * (matrix.value_bytes + matrix.index_bytes),
                launches=16,
                dtype_name=np.dtype(np.float64).name,
            )
        )

    @property
    def system_matrix(self):
        return self._matrix

    @property
    def fill_in_nnz(self) -> int:
        """Nonzeros in L + U, including fill-in."""
        return self._fill_nnz

    def _solve(self, rhs: np.ndarray) -> np.ndarray:
        result = self._lu.solve(rhs.astype(np.float64))
        for _ in range(2):  # L then U triangular solve
            self._exec.run(
                trsv_cost(
                    self._size.rows,
                    self._fill_nnz // 2,
                    self._matrix.value_bytes,
                    self._matrix.index_bytes,
                )
            )
        return result

    def _apply_impl(self, b: Dense, x: Dense) -> None:
        np.copyto(x._data, self._solve(b._data).astype(x.dtype, copy=False))
        self.converged = True

    def _apply_advanced_impl(self, alpha, b: Dense, beta, x: Dense) -> None:
        a = _scalar_value(alpha)
        bt = _scalar_value(beta)
        result = self._solve(b._data)
        x._data *= x.dtype.type(bt)
        x._data += x.dtype.type(a) * result.astype(x.dtype, copy=False)


class Direct(LinOpFactory):
    """Direct solver factory."""

    def __init__(self, exec_) -> None:
        super().__init__(exec_)

    def generate(self, matrix) -> DirectSolver:
        return DirectSolver(self, matrix)
