"""Flexible Conjugate Gradient (``gko::solver::Fcg``).

FCG recomputes the direction-update coefficient with the Polak-Ribiere-like
formula ``beta = (r_new - r_old)^T z_new / (r_old^T z_old)``, tolerating
preconditioners that change between iterations.
"""

from __future__ import annotations

from repro.ginkgo.solver.base import IterativeSolver, SolverFactory
from repro.ginkgo.solver.cg import _safe_divide


class FcgSolver(IterativeSolver):
    """Generated FCG operator."""

    def _iterate(self, A, M, b, x, r, monitor) -> None:
        ws = self._workspace
        z = ws.dense("fcg.z", r.size, r.dtype)
        M.apply(r, z)
        p = ws.dense_like("fcg.p", z)
        q = ws.dense("fcg.q", r.size, r.dtype)
        r_old = ws.dense_like("fcg.r_old", r)
        rz = r.compute_dot(z)

        iteration = 0
        while True:
            iteration += 1
            A.apply(p, q)
            pq = p.compute_dot(q)
            alpha = _safe_divide(rz, pq)
            x.add_scaled(alpha, p)
            r.sub_scaled(alpha, q)
            res_norm = r.compute_norm2()
            if monitor(iteration, res_norm):
                return
            M.apply(r, z)
            # Flexible beta: ((r - r_old), z) / rz.
            diff = ws.dense_like("fcg.diff", r)
            diff.sub_scaled(1.0, r_old)
            rz_new = diff.compute_dot(z)
            beta = _safe_divide(rz_new, rz)
            p.scale(beta)
            p.add_scaled(1.0, z)
            r_old.copy_values_from(r)
            rz = r.compute_dot(z)


class Fcg(SolverFactory):
    """FCG factory."""

    solver_class = FcgSolver
    parameter_names = ()
