"""Restarted GMRES with Givens rotations (``gko::solver::Gmres``).

This follows Ginkgo's implementation strategy, which the paper contrasts
with CuPy's in section 6.2.1:

* the Hessenberg matrix is updated with *Givens rotations* (CuPy uses an
  orthonormal-projection approach and a CPU least-squares solve);
* the residual norm is checked *after every Hessenberg update* — i.e.
  ``restart - 1`` more checks per cycle than CuPy, which only checks after
  the full Hessenberg matrix is built;
* the small triangular solve runs on the device.

Those strategy differences are exactly why CuPy's GMRES is slightly faster
per iteration in the paper's fixed-iteration benchmark, and the ablation
bench ``benchmarks/bench_ablation_gmres.py`` quantifies each one.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.solver.base import IterativeSolver, SolverFactory

#: Default Krylov dimension, matching Ginkgo and the paper's restart of 30.
DEFAULT_KRYLOV_DIM = 30


class GmresSolver(IterativeSolver):
    """Generated GMRES operator (left-preconditioned)."""

    def _iterate(self, A, M, b, x, r, monitor) -> None:
        krylov_dim = int(self._factory.params.get("krylov_dim", DEFAULT_KRYLOV_DIM))
        if krylov_dim < 1:
            raise GinkgoError(f"krylov_dim must be >= 1, got {krylov_dim}")
        # Each right-hand-side column builds its own Krylov space and is
        # solved to its own stopping verdict.  The column operands are
        # cached writable views into b/x, so per-column results land in x
        # directly and the wrapper objects are reused across restarts.
        ws = self._workspace
        cols = b.size.cols
        for c in range(cols):
            self._solve_column(
                A,
                M,
                ws.column_view(f"gmres.b[{c}]", b, c),
                ws.column_view(f"gmres.x[{c}]", x, c),
                krylov_dim,
                monitor if cols == 1 else _ColumnMonitor(monitor, c, cols),
            )

    def _solve_column(self, A, M, b, x, krylov_dim, monitor) -> bool:
        from repro.ginkgo.lazy import fused_step
        from repro.ginkgo.solver.kernels import (
            gmres_multidot,
            gmres_update,
            record_fused,
        )
        from repro.perfmodel import KernelCost, blas1_cost

        exec_ = self._exec
        ws = self._workspace
        n = b.size.rows
        m = krylov_dim
        total_iteration = 0
        w = ws.dense("gmres.w", b.size, b.dtype)
        r = ws.dense("gmres.r", b.size, b.dtype)

        while True:
            # Preconditioned residual r = M^{-1}(b - A x).
            w.copy_values_from(b)
            A.apply_advanced(-1.0, x, 1.0, w)
            M.apply(w, r)
            beta = float(r.compute_norm2()[0])
            if beta == 0.0:
                monitor(total_iteration, 0.0)
                return True
            # Krylov basis block (device-resident workspace in Ginkgo);
            # pooled across restart cycles, columns, and apply() calls.
            basis = ws.array("gmres.basis", (n, m + 1))
            basis[:, 0] = r._data[:, 0] / beta
            record_fused(exec_, "gmres_init", n, b.value_bytes, 2)
            hessenberg = ws.array("gmres.hessenberg", (m + 1, m))
            givens_cos = ws.array("gmres.givens_cos", m)
            givens_sin = ws.array("gmres.givens_sin", m)
            g = ws.array("gmres.g", m + 1)
            g[0] = beta

            inner = 0
            stopped = False
            for j in range(m):
                # w = M^{-1} A v_j
                w._data[:, 0] = basis[:, j]
                A.apply(w, r)
                M.apply(r, w)
                # Gram-Schmidt via Ginkgo's fused multi-dot + rank update:
                # each collapses j+1 eager dots / axpys into one kernel, so
                # mark the pair as a fused region for attribution.
                with fused_step(
                    exec_, "gmres::orthogonalize", ops_replaced=2 * (j + 1)
                ):
                    coeffs = gmres_multidot(basis, w, j + 1)
                    hessenberg[: j + 1, j] = coeffs
                    gmres_update(basis, w, coeffs, j + 1)
                h_next = float(w.compute_norm2()[0])
                hessenberg[j + 1, j] = h_next
                if h_next != 0.0:
                    basis[:, j + 1] = w._data[:, 0] / h_next
                    record_fused(exec_, "gmres_scale", n, b.value_bytes, 2)
                # Apply the accumulated Givens rotations to column j, then
                # compute and apply the new rotation (on-device in Ginkgo).
                for i in range(j):
                    hi, hi1 = hessenberg[i, j], hessenberg[i + 1, j]
                    hessenberg[i, j] = givens_cos[i] * hi + givens_sin[i] * hi1
                    hessenberg[i + 1, j] = -givens_sin[i] * hi + givens_cos[i] * hi1
                denom = np.hypot(hessenberg[j, j], hessenberg[j + 1, j])
                if denom == 0.0:
                    givens_cos[j], givens_sin[j] = 1.0, 0.0
                else:
                    givens_cos[j] = hessenberg[j, j] / denom
                    givens_sin[j] = hessenberg[j + 1, j] / denom
                hessenberg[j, j] = denom
                hessenberg[j + 1, j] = 0.0
                g[j + 1] = -givens_sin[j] * g[j]
                g[j] = givens_cos[j] * g[j]
                # Givens rotation generation + application to the
                # Hessenberg column and the residual vector g: three tiny
                # device kernels in Ginkgo's implementation.
                exec_.run(
                    KernelCost(
                        "givens_update", 6.0 * m, 24.0 * m, launches=3
                    )
                )

                residual_norm = abs(g[j + 1])
                inner = j + 1
                total_iteration += 1
                # Ginkgo checks the residual after EVERY Hessenberg update
                # (restart-1 more checks per cycle than CuPy): a small
                # device kernel updates the estimate and the host reads the
                # stopping status back.
                exec_.run(
                    KernelCost("residual_check", 0.0, 64.0, launches=4)
                )
                stopped = monitor(total_iteration, residual_norm)
                if stopped or h_next == 0.0:
                    break

            # Solve the small triangular system R y = g ON THE DEVICE —
            # low parallelism makes this a per-row dependency chain of
            # small kernels (CuPy instead solves it on the CPU).
            y = ws.array("gmres.y", inner)
            for i in range(inner - 1, -1, -1):
                y[i] = (
                    g[i] - hessenberg[i, i + 1 : inner] @ y[i + 1 : inner]
                ) / hessenberg[i, i]
            exec_.run(
                KernelCost(
                    "hessenberg_trsv",
                    flops=float(inner * inner),
                    bytes=8.0 * inner * inner,
                    launches=max(inner, 1),
                )
            )
            # x += V y (one fused GEMV-style kernel).
            x._data[:, 0] += basis[:, :inner] @ y
            record_fused(exec_, "gmres_x_update", n * inner, b.value_bytes, 2)
            if stopped:
                return True
            # Otherwise: restart.


class _ColumnMonitor:
    """Scales multi-RHS column iterations into the shared monitor."""

    def __init__(self, monitor, column: int, total_columns: int) -> None:
        self._monitor = monitor
        self._column = column
        self._total = total_columns

    def __call__(self, iteration: int, residual_norm) -> bool:
        # Report per-column progress; only the last column's verdict stops.
        return self._monitor(iteration, residual_norm)


class Gmres(SolverFactory):
    """GMRES factory.

    Parameters:
        krylov_dim: Restart length (default 30, as in the paper).
    """

    solver_class = GmresSolver
    parameter_names = ("krylov_dim",)
