"""IDR(s) — Induced Dimension Reduction (``gko::solver::Idr``).

The biorthogonalised IDR(s) variant of van Gijzen & Sonneveld (TOMS 2011),
as implemented in Ginkgo: a short-recurrence method for general systems
whose residuals are forced into a shrinking sequence of nested subspaces.
``s = 1`` is mathematically equivalent to BiCGSTAB; larger shadow-space
dimensions usually converge in fewer iterations at slightly higher cost
per iteration.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.solver.base import IterativeSolver, SolverFactory
from repro.ginkgo.solver.kernels import record_fused


class IdrSolver(IterativeSolver):
    """Generated IDR(s) operator (multi-RHS handled column by column)."""

    def _iterate(self, A, M, b, x, r, monitor) -> None:
        s = int(self._factory.params.get("subspace_dim", 2))
        if s < 1:
            raise GinkgoError(f"subspace_dim must be >= 1, got {s}")
        deterministic = bool(self._factory.params.get("deterministic", True))
        kappa = float(self._factory.params.get("kappa", 0.7))
        ws = self._workspace
        for c in range(b.size.cols):
            self._solve_column(
                A,
                M,
                ws.column_view(f"idr.b[{c}]", b, c),
                ws.column_view(f"idr.x[{c}]", x, c),
                s,
                deterministic,
                kappa,
                monitor,
            )

    def _solve_column(self, A, M, b, x, s, deterministic, kappa, monitor):
        exec_ = self._exec
        n = b.size.rows
        s = min(s, n)

        # Shadow space P: random orthonormal block, fixed for the solve.
        seed = 42 if deterministic else None
        rng = np.random.default_rng(seed)
        p_block, _ = np.linalg.qr(rng.standard_normal((n, s)))
        record_fused(exec_, "idr_init_shadow", n * s, b.value_bytes, 2)

        # r = b - A x (recomputed; the caller's r may alias workspace).
        ws = self._workspace
        r = ws.dense_like("idr.r", b)
        A.apply_advanced(-1.0, x, 1.0, r)

        g_block = ws.array("idr.g_block", (n, s))
        u_block = ws.array("idr.u_block", (n, s))
        m_small = ws.array("idr.m_small", (s, s))
        np.fill_diagonal(m_small, 1.0)
        omega = 1.0
        v = ws.dense("idr.v", b.size, b.dtype)
        v_hat = ws.dense("idr.v_hat", b.size, b.dtype)
        t = ws.dense("idr.t", b.size, b.dtype)

        iteration = 0
        while True:
            # f = P^T r (one fused multi-dot kernel).
            f = p_block.T @ r._data[:, 0]
            record_fused(exec_, "idr_multidot", n * s, b.value_bytes, 2)

            for k in range(s):
                # Solve the small lower-triangular system M[k:, k:] c = f[k:].
                try:
                    c = np.linalg.solve(m_small[k:, k:], f[k:])
                except np.linalg.LinAlgError:
                    monitor(iteration, float(r.compute_norm2()[0]))
                    return
                # v = r - G[:, k:] c  (fused rank-update).
                v._data[:, 0] = r._data[:, 0] - g_block[:, k:] @ c
                record_fused(
                    exec_, "idr_update_v", n * (s - k), b.value_bytes, 2
                )
                M.apply(v, v_hat)
                # U[:, k] = U[:, k:] c + omega * v_hat.
                u_block[:, k] = u_block[:, k:] @ c + omega * v_hat._data[:, 0]
                record_fused(
                    exec_, "idr_update_u", n * (s - k), b.value_bytes, 2
                )
                # G[:, k] = A U[:, k].
                v._data[:, 0] = u_block[:, k]
                A.apply(v, t)
                g_block[:, k] = t._data[:, 0]
                # Bi-orthogonalise against P[:, :k].
                for i in range(k):
                    alpha = (p_block[:, i] @ g_block[:, k]) / m_small[i, i]
                    g_block[:, k] -= alpha * g_block[:, i]
                    u_block[:, k] -= alpha * u_block[:, i]
                if k:
                    record_fused(
                        exec_, "idr_biortho", n * k, b.value_bytes, 3
                    )
                m_small[k:, k] = p_block[:, k:].T @ g_block[:, k]
                record_fused(exec_, "idr_m_update", n * (s - k),
                             b.value_bytes, 2)
                if m_small[k, k] == 0.0:
                    monitor(iteration, float(r.compute_norm2()[0]))
                    return
                beta = f[k] / m_small[k, k]
                # r -= beta G[:, k] ; x += beta U[:, k] (one fused kernel).
                r._data[:, 0] -= beta * g_block[:, k]
                x._data[:, 0] += beta * u_block[:, k]
                record_fused(exec_, "idr_step", n, b.value_bytes, 4)

                iteration += 1
                res_norm = float(r.compute_norm2()[0])
                if monitor(iteration, res_norm):
                    return
                if k + 1 < s:
                    f[k + 1 :] -= beta * m_small[k + 1 :, k]

            # Dimension-reduction step: omega from the (t, r) angle with
            # Ginkgo's kappa safeguard against tiny omegas.
            M.apply(r, v_hat)
            A.apply(v_hat, t)
            tt = float(t.compute_dot(t)[0])
            tr = float(t.compute_dot(r)[0])
            if tt == 0.0:
                monitor(iteration, float(r.compute_norm2()[0]))
                return
            omega = tr / tt
            t_norm = np.sqrt(tt)
            r_norm = float(r.compute_norm2()[0])
            rho = abs(tr) / (t_norm * r_norm) if t_norm * r_norm else 0.0
            if rho < kappa and rho > 0.0:
                omega *= kappa / rho
            x.add_scaled(omega, v_hat)
            r.sub_scaled(omega, t)
            iteration += 1
            if monitor(iteration, float(r.compute_norm2()[0])):
                return


class Idr(SolverFactory):
    """IDR(s) factory.

    Parameters:
        subspace_dim: Shadow-space dimension ``s`` (default 2).
        deterministic: Seed the shadow space reproducibly (default True).
        kappa: Omega safeguard threshold (default 0.7, as in Ginkgo).
    """

    solver_class = IdrSolver
    parameter_names = ("subspace_dim", "deterministic", "kappa")
