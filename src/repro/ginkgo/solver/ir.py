"""Iterative refinement / Richardson iteration (``gko::solver::Ir``).

``x_{k+1} = x_k + relaxation * S(b - A x_k)`` where the inner solver ``S``
defaults to the identity (plain Richardson).  With an inner solver factory
this becomes classical iterative refinement, e.g. low-precision inner
solves corrected in high precision.
"""

from __future__ import annotations

from repro.ginkgo.lin_op import Identity, LinOp
from repro.ginkgo.solver.base import IterativeSolver, SolverFactory


class IrSolver(IterativeSolver):
    """Generated IR operator."""

    def __init__(self, factory, matrix) -> None:
        super().__init__(factory, matrix)
        inner = factory.params.get("solver")
        if inner is None:
            self._inner = Identity(matrix.executor, matrix.size.rows)
        elif isinstance(inner, LinOp):
            self._inner = inner
        else:
            self._inner = inner.generate(matrix)
        self._relaxation = float(factory.params.get("relaxation_factor", 1.0))

    @property
    def inner_solver(self) -> LinOp:
        return self._inner

    def _iterate(self, A, M, b, x, r, monitor) -> None:
        correction = self._workspace.dense("ir.correction", r.size, r.dtype)
        iteration = 0
        while True:
            iteration += 1
            self._inner.apply(r, correction)
            x.add_scaled(self._relaxation, correction)
            # Recompute the true residual r = b - A x.
            r.copy_values_from(b)
            A.apply_advanced(-1.0, x, 1.0, r)
            res_norm = r.compute_norm2()
            if monitor(iteration, res_norm):
                return


class Ir(SolverFactory):
    """IR factory.

    Parameters:
        solver: Inner solver (LinOp or factory); identity when omitted.
        relaxation_factor: Richardson damping (default 1.0).
    """

    solver_class = IrSolver
    parameter_names = ("solver", "relaxation_factor")
