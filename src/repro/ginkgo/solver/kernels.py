"""Fused solver step kernels.

Ginkgo implements each solver's vector-update tail as one fused device
kernel (``cg::step_1``, ``cgs::step_2``, ...) rather than a chain of BLAS-1
calls — a key reason its Krylov iterations launch far fewer kernels than
Python-dispatched frameworks (the effect measured in the paper's Fig. 3c).

These helpers perform the update numerically on the Dense operands' buffers
and record exactly one kernel with the combined byte traffic.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.matrix.dense import Dense
from repro.perfmodel import blas1_cost


def _bc(coef, dtype):
    """Broadcastable coefficient: scalar or (1, k) row of per-column values."""
    arr = np.asarray(coef, dtype=dtype)
    return arr if arr.ndim == 0 else arr.reshape(1, -1)


def record_fused(exec_, name: str, length: int, value_bytes: int, num_vectors: int) -> None:
    """Record one fused kernel touching ``num_vectors`` vector operands."""
    exec_.run(blas1_cost(name, length, value_bytes, num_vectors))


def cg_step_1(p: Dense, z: Dense, beta) -> None:
    """Fused ``p = z + beta * p`` (one kernel, 3 vector operands)."""
    b = _bc(beta, p.dtype)
    p._data *= b
    p._data += z._data
    record_fused(p.executor, "cg_step_1", p.size.num_elements, p.value_bytes, 3)


def cg_step_2(x: Dense, r: Dense, p: Dense, q: Dense, alpha) -> None:
    """Fused ``x += alpha p ; r -= alpha q`` (one kernel, 6 operands)."""
    a = _bc(alpha, x.dtype)
    x._data += a * p._data
    r._data -= a * q._data
    record_fused(x.executor, "cg_step_2", x.size.num_elements, x.value_bytes, 6)


def cgs_step_1(u: Dense, p: Dense, r: Dense, q: Dense, beta) -> None:
    """Fused ``u = r + beta q ; p = u + beta (q + beta p)`` (one kernel)."""
    b = _bc(beta, u.dtype)
    u._data[...] = r._data + b * q._data
    p._data[...] = u._data + b * (q._data + b * p._data)
    record_fused(u.executor, "cgs_step_1", u.size.num_elements, u.value_bytes, 6)


def cgs_step_2(q: Dense, t: Dense, u: Dense, v: Dense, alpha) -> None:
    """Fused ``q = u - alpha v ; t = u + q`` (one kernel)."""
    a = _bc(alpha, q.dtype)
    q._data[...] = u._data - a * v._data
    t._data[...] = u._data + q._data
    record_fused(q.executor, "cgs_step_2", q.size.num_elements, q.value_bytes, 5)


def cgs_step_3(x: Dense, r: Dense, u_hat: Dense, w: Dense, alpha) -> None:
    """Fused ``x += alpha u_hat ; r -= alpha w`` (one kernel)."""
    a = _bc(alpha, x.dtype)
    x._data += a * u_hat._data
    r._data -= a * w._data
    record_fused(x.executor, "cgs_step_3", x.size.num_elements, x.value_bytes, 6)


def gmres_multidot(basis_block, w: Dense, count: int):
    """Fused multi-dot: coefficients of ``w`` against ``count`` basis vectors.

    One batched reduction kernel (plus its finalisation pass), as in
    Ginkgo's ``gmres::multi_dot``.  Evaluated as an einsum contraction so
    the per-system reduction order matches the batched lockstep kernels
    bit-for-bit (BLAS gemv blocks its accumulation differently).
    """
    coeffs = np.einsum("ij,i->j", basis_block[:, :count], w._data[:, 0])
    w.executor.run(
        blas1_cost(
            "gmres_multidot",
            w.size.rows * count,
            w.value_bytes,
            2,
        )
    )
    return coeffs


def gmres_update(basis_block, w: Dense, coeffs, count: int) -> None:
    """Fused rank-``count`` update ``w -= V[:, :count] @ coeffs``."""
    w._data[:, 0] -= np.einsum("ij,j->i", basis_block[:, :count], coeffs)
    record_fused(
        w.executor, "gmres_update", w.size.rows * count, w.value_bytes, 2
    )
