"""MINRES (``gko::solver::Minres``) for symmetric (indefinite) systems.

Implements the Paige & Saunders Lanczos/QR recurrence with support for a
symmetric positive-definite preconditioner; the tracked residual norm is
the ``phibar`` estimate of the preconditioned residual.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.solver.base import IterativeSolver, SolverFactory


class MinresSolver(IterativeSolver):
    """Generated MINRES operator (multi-RHS handled column by column)."""

    def _iterate(self, A, M, b, x, r, monitor) -> None:
        ws = self._workspace
        stop = False
        for c in range(b.size.cols):
            stop = self._solve_column(
                A,
                M,
                ws.column_view(f"minres.b[{c}]", b, c),
                ws.column_view(f"minres.x[{c}]", x, c),
                monitor,
            )
            if stop and b.size.cols == 1:
                return

    def _solve_column(self, A, M, b, x, monitor) -> bool:
        exec_ = self._exec
        ws = self._workspace
        # r1 = b - A x ; y = M^{-1} r1.
        r1 = ws.dense_like("minres.r1", b)
        A.apply_advanced(-1.0, x, 1.0, r1)
        y = ws.dense("minres.y", r1.size, r1.dtype)
        M.apply(r1, y)
        beta1 = float(r1.compute_dot(y)[0])
        if beta1 < 0:
            raise ValueError("MINRES preconditioner must be positive definite")
        beta1 = np.sqrt(beta1)
        if beta1 == 0.0:
            monitor(0, 0.0)
            return True

        oldb, beta = 0.0, beta1
        dbar, epsln = 0.0, 0.0
        phibar = beta1
        cs, sn = -1.0, 0.0
        # w/w2 are read with nonzero coefficients from iteration 2 on, so
        # pooled reuse must hand them back zeroed; `spare` rotates in as
        # the next w and is always fully overwritten first.
        w = ws.dense("minres.w", r1.size, r1.dtype, zero=True)
        w2 = ws.dense("minres.w2", r1.size, r1.dtype, zero=True)
        spare = ws.dense("minres.w1", r1.size, r1.dtype)
        r2 = ws.dense_like("minres.r2", r1)
        v = ws.dense("minres.v", r1.size, r1.dtype)
        tiny = np.finfo(np.float64).tiny

        iteration = 0
        while True:
            iteration += 1
            # Lanczos step.
            v.copy_values_from(y)
            v.scale(1.0 / beta)
            A.apply(v, y)
            if iteration >= 2:
                y.sub_scaled(beta / oldb, r1)
            alfa = float(v.compute_dot(y)[0])
            y.sub_scaled(alfa / beta, r2)
            r1.copy_values_from(r2)
            r2.copy_values_from(y)
            M.apply(r2, y)
            oldb = beta
            beta = float(r2.compute_dot(y)[0])
            if beta < 0:
                raise ValueError(
                    "MINRES preconditioner must be positive definite"
                )
            beta = np.sqrt(beta)

            # QR update via Givens rotations.
            oldeps = epsln
            delta = cs * dbar + sn * alfa
            gbar = sn * dbar - cs * alfa
            epsln = sn * beta
            dbar = -cs * beta
            gamma = max(np.hypot(gbar, beta), tiny)
            cs = gbar / gamma
            sn = beta / gamma
            phi = cs * phibar
            phibar = sn * phibar

            # Solution update: w = (v - oldeps*w1 - delta*w2) / gamma.
            # Three pooled buffers rotate through the w/w2/w1 roles; the
            # vacated one becomes the next iteration's w.  copy_into
            # charges the same transfer a fresh v.clone() would.
            w1 = w2
            w2 = w
            w = spare
            exec_.copy_into(v.executor, v._data, w._data)
            w.sub_scaled(oldeps, w1)
            w.sub_scaled(delta, w2)
            w.scale(1.0 / gamma)
            x.add_scaled(phi, w)
            spare = w1

            if monitor(iteration, abs(phibar)):
                return True


class Minres(SolverFactory):
    """MINRES factory."""

    solver_class = MinresSolver
    parameter_names = ()
