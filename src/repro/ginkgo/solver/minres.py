"""MINRES (``gko::solver::Minres``) for symmetric (indefinite) systems.

Implements the Paige & Saunders Lanczos/QR recurrence with support for a
symmetric positive-definite preconditioner; the tracked residual norm is
the ``phibar`` estimate of the preconditioned residual.
"""

from __future__ import annotations

import numpy as np

from repro.ginkgo.matrix.dense import Dense
from repro.ginkgo.solver.base import IterativeSolver, SolverFactory


class MinresSolver(IterativeSolver):
    """Generated MINRES operator (multi-RHS handled column by column)."""

    def _iterate(self, A, M, b, x, r, monitor) -> None:
        stop = False
        for c in range(b.size.cols):
            stop = self._solve_column(
                A,
                M,
                Dense._wrap(self._exec, b._data[:, c : c + 1]),
                Dense._wrap(self._exec, x._data[:, c : c + 1]),
                monitor,
            )
            if stop and b.size.cols == 1:
                return

    def _solve_column(self, A, M, b, x, monitor) -> bool:
        exec_ = self._exec
        # r1 = b - A x ; y = M^{-1} r1.
        r1 = b.clone()
        A.apply_advanced(-1.0, x, 1.0, r1)
        y = Dense.empty(exec_, r1.size, r1.dtype)
        M.apply(r1, y)
        beta1 = float(r1.compute_dot(y)[0])
        if beta1 < 0:
            raise ValueError("MINRES preconditioner must be positive definite")
        beta1 = np.sqrt(beta1)
        if beta1 == 0.0:
            monitor(0, 0.0)
            return True

        oldb, beta = 0.0, beta1
        dbar, epsln = 0.0, 0.0
        phibar = beta1
        cs, sn = -1.0, 0.0
        w = Dense.zeros(exec_, r1.size, r1.dtype)
        w2 = Dense.zeros(exec_, r1.size, r1.dtype)
        r2 = r1.clone()
        v = Dense.empty(exec_, r1.size, r1.dtype)
        tiny = np.finfo(np.float64).tiny

        iteration = 0
        while True:
            iteration += 1
            # Lanczos step.
            v.copy_values_from(y)
            v.scale(1.0 / beta)
            A.apply(v, y)
            if iteration >= 2:
                y.sub_scaled(beta / oldb, r1)
            alfa = float(v.compute_dot(y)[0])
            y.sub_scaled(alfa / beta, r2)
            r1.copy_values_from(r2)
            r2.copy_values_from(y)
            M.apply(r2, y)
            oldb = beta
            beta = float(r2.compute_dot(y)[0])
            if beta < 0:
                raise ValueError(
                    "MINRES preconditioner must be positive definite"
                )
            beta = np.sqrt(beta)

            # QR update via Givens rotations.
            oldeps = epsln
            delta = cs * dbar + sn * alfa
            gbar = sn * dbar - cs * alfa
            epsln = sn * beta
            dbar = -cs * beta
            gamma = max(np.hypot(gbar, beta), tiny)
            cs = gbar / gamma
            sn = beta / gamma
            phi = cs * phibar
            phibar = sn * phibar

            # Solution update: w = (v - oldeps*w1 - delta*w2) / gamma.
            w1 = w2
            w2 = w
            w = v.clone()
            w.sub_scaled(oldeps, w1)
            w.sub_scaled(delta, w2)
            w.scale(1.0 / gamma)
            x.add_scaled(phi, w)

            if monitor(iteration, abs(phibar)):
                return True


class Minres(SolverFactory):
    """MINRES factory."""

    solver_class = MinresSolver
    parameter_names = ()
