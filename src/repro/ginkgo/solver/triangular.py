"""Sparse triangular solvers (``gko::solver::LowerTrs`` / ``UpperTrs``).

Direct forward/backward substitution on triangular CSR matrices.  These are
the building blocks ILU/IC preconditioning composes, and the cost model
charges them with level-scheduling launch counts (triangular solves expose
far less parallelism than SpMV).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from repro.ginkgo.exceptions import BadDimension, GinkgoError
from repro.ginkgo.lin_op import LinOp, LinOpFactory
from repro.ginkgo.matrix.dense import Dense, _scalar_value
from repro.perfmodel import trsv_cost


class _TrsSolver(LinOp):
    """Shared implementation of the triangular solver LinOps."""

    lower: bool = True

    def __init__(self, factory, matrix) -> None:
        if not matrix.size.is_square:
            raise BadDimension(
                f"{type(self).__name__} requires a square matrix, "
                f"got {matrix.size}"
            )
        super().__init__(matrix.executor, matrix.size)
        self._matrix = matrix
        # Substitution is one-shot, but the handle API exposes the same
        # post-apply stats as the iterative solvers.
        self.num_iterations = 0
        self.converged = False
        self.breakdown = False
        self.final_residual_norm = float("nan")
        self._unit_diagonal = bool(factory.params.get("unit_diagonal", False))
        tri = sp.csr_matrix(matrix._scipy_view(), dtype=np.float64)
        if self._unit_diagonal:
            tri = tri + sp.eye(tri.shape[0], format="csr") - sp.diags(
                tri.diagonal()
            )
        else:
            diag = tri.diagonal()
            if np.any(diag == 0):
                raise GinkgoError(
                    f"{type(self).__name__}: zero on the diagonal; pass "
                    "unit_diagonal=True for unit-diagonal factors"
                )
        self._tri = tri.tocsr()

    @property
    def system_matrix(self):
        return self._matrix

    def _record(self) -> None:
        self._exec.run(
            trsv_cost(
                self._size.rows,
                self._matrix.nnz,
                self._matrix.value_bytes,
                self._matrix.index_bytes,
            )
        )

    def _apply_impl(self, b: Dense, x: Dense) -> None:
        result = spsolve_triangular(
            self._tri, b._data.astype(np.float64), lower=self.lower
        )
        np.copyto(x._data, result.astype(x.dtype, copy=False))
        self._record()
        self.converged = True

    def _apply_advanced_impl(self, alpha, b: Dense, beta, x: Dense) -> None:
        a = _scalar_value(alpha)
        bt = _scalar_value(beta)
        result = spsolve_triangular(
            self._tri, b._data.astype(np.float64), lower=self.lower
        )
        x._data *= x.dtype.type(bt)
        x._data += x.dtype.type(a) * result.astype(x.dtype, copy=False)
        self._record()


class _LowerTrsSolver(_TrsSolver):
    lower = True


class _UpperTrsSolver(_TrsSolver):
    lower = False


class _TrsFactory(LinOpFactory):
    """Factory for triangular solvers.

    Parameters:
        unit_diagonal: Treat the stored diagonal as ones (used for the L
            factor of an ILU factorisation).
    """

    solver_class: type = _LowerTrsSolver

    def __init__(self, exec_, unit_diagonal: bool = False) -> None:
        super().__init__(exec_)
        self.params = {"unit_diagonal": unit_diagonal}

    def generate(self, matrix) -> _TrsSolver:
        return self.solver_class(self, matrix)


class LowerTrs(_TrsFactory):
    """Forward-substitution solver factory for lower-triangular matrices."""

    solver_class = _LowerTrsSolver


class UpperTrs(_TrsFactory):
    """Backward-substitution solver factory for upper-triangular matrices."""

    solver_class = _UpperTrsSolver
