"""Sparse triangular solvers (``gko::solver::LowerTrs`` / ``UpperTrs``).

Direct forward/backward substitution on triangular CSR matrices.  These are
the building blocks ILU/IC preconditioning composes, and the cost model
charges them with level-scheduling launch counts (triangular solves expose
far less parallelism than SpMV).

The factor is kept at its own *storage* precision while the substitution
runs at the operand's working precision: a float64 solve over a
float32-stored factor converts the factor at read (cached, accessor
style), routes through the ``trsv_apply_double_float`` binding symbol,
and charges ``trsv_cost`` at the factor's storage width — the
mixed-precision contract of :mod:`repro.ginkgo.accessor`.  The old code
instead forced everything to float64, leaking float64 intermediates into
float32 solves.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from repro.ginkgo.accessor import arithmetic_dtype_for, canonical_value_suffix
from repro.ginkgo.exceptions import BadDimension, GinkgoError
from repro.ginkgo.lin_op import LinOp, LinOpFactory
from repro.ginkgo.matrix.dense import Dense, _scalar_value
from repro.perfmodel import trsv_cost


class _TrsSolver(LinOp):
    """Shared implementation of the triangular solver LinOps."""

    lower: bool = True

    def __init__(self, factory, matrix) -> None:
        if not matrix.size.is_square:
            raise BadDimension(
                f"{type(self).__name__} requires a square matrix, "
                f"got {matrix.size}"
            )
        super().__init__(matrix.executor, matrix.size)
        self._matrix = matrix
        # Substitution is one-shot, but the handle API exposes the same
        # post-apply stats as the iterative solvers.
        self.num_iterations = 0
        self.converged = False
        self.breakdown = False
        self.final_residual_norm = float("nan")
        self._unit_diagonal = bool(factory.params.get("unit_diagonal", False))
        # Keep the factor at its own (storage) precision — float16 is
        # upcast to float32 because SciPy cannot substitute in half.
        factor_dtype = arithmetic_dtype_for(matrix.dtype)
        tri = sp.csr_matrix(matrix._scipy_view(), dtype=factor_dtype)
        if self._unit_diagonal:
            tri = tri + sp.eye(
                tri.shape[0], format="csr", dtype=tri.dtype
            ) - sp.diags(tri.diagonal())
        else:
            diag = tri.diagonal()
            if np.any(diag == 0):
                raise GinkgoError(
                    f"{type(self).__name__}: zero on the diagonal; pass "
                    "unit_diagonal=True for unit-diagonal factors"
                )
        self._tri = tri.tocsr()
        #: Working-precision conversions of the factor, cached per dtype
        #: (the accessor read: factors are immutable once generated).
        self._tri_reads: dict = {}

    @property
    def system_matrix(self):
        return self._matrix

    def _tri_at(self, arith_dtype: np.dtype) -> sp.csr_matrix:
        """The factor converted to the solve's arithmetic precision."""
        if self._tri.dtype == arith_dtype:
            return self._tri
        cached = self._tri_reads.get(arith_dtype)
        if cached is None:
            cached = self._tri.astype(arith_dtype)
            self._tri_reads[arith_dtype] = cached
        return cached

    def _record(self) -> None:
        self._exec.run(
            trsv_cost(
                self._size.rows,
                self._matrix.nnz,
                self._matrix.value_bytes,
                self._matrix.index_bytes,
            )
        )

    def _substitute(self, b: Dense) -> np.ndarray:
        # The operand's precision is the working precision of the solve;
        # the factor is converted to it at read (up for mixed-storage
        # preconditioning, float32 for half operands).
        arith = arithmetic_dtype_for(b.dtype)
        return spsolve_triangular(
            self._tri_at(arith), b._data.astype(arith), lower=self.lower
        )

    def _run_apply(self, b: Dense, plan) -> None:
        """Cross the mixed trsv binding when factor and operand differ."""
        factor_suffix = canonical_value_suffix(self._matrix.dtype)
        working_suffix = canonical_value_suffix(b.dtype)
        if factor_suffix != working_suffix and (
            np.dtype(self._matrix.dtype).itemsize < np.dtype(b.dtype).itemsize
        ):
            from repro.bindings import dispatch  # deferred: registry cycle

            runner = dispatch.resolve(
                "trsv_apply", (working_suffix, factor_suffix), exec_=self._exec
            )
            runner(self._exec, plan)
        else:
            plan()

    def _apply_impl(self, b: Dense, x: Dense) -> None:
        def plan():
            result = self._substitute(b)
            np.copyto(x._data, result.astype(x.dtype, copy=False))
            self._record()
            self.converged = True

        self._run_apply(b, plan)

    def _apply_advanced_impl(self, alpha, b: Dense, beta, x: Dense) -> None:
        def plan():
            a = _scalar_value(alpha)
            bt = _scalar_value(beta)
            result = self._substitute(b)
            x._data *= x.dtype.type(bt)
            x._data += x.dtype.type(a) * result.astype(x.dtype, copy=False)
            self._record()

        self._run_apply(b, plan)


class _LowerTrsSolver(_TrsSolver):
    lower = True


class _UpperTrsSolver(_TrsSolver):
    lower = False


class _TrsFactory(LinOpFactory):
    """Factory for triangular solvers.

    Parameters:
        unit_diagonal: Treat the stored diagonal as ones (used for the L
            factor of an ILU factorisation).
    """

    solver_class: type = _LowerTrsSolver

    def __init__(self, exec_, unit_diagonal: bool = False) -> None:
        super().__init__(exec_)
        self.params = {"unit_diagonal": unit_diagonal}

    def generate(self, matrix) -> _TrsSolver:
        return self.solver_class(self, matrix)


class LowerTrs(_TrsFactory):
    """Forward-substitution solver factory for lower-triangular matrices."""

    solver_class = _LowerTrsSolver


class UpperTrs(_TrsFactory):
    """Backward-substitution solver factory for upper-triangular matrices."""

    solver_class = _UpperTrsSolver
