"""Per-solver workspace pools for the zero-allocation hot path.

Every iterative solver owns a :class:`Workspace` holding its Krylov basis,
Hessenberg / Givens arrays, and residual/temporary vectors, keyed by name
and validated against ``(shape, dtype)`` on every acquisition.  The first
``apply()`` populates the pool; subsequent applies (and restart cycles)
reuse the same buffers, so the steady-state solve path performs no real
allocations — mirroring real Ginkgo's persistent solver workspace arrays.

Reuse is numerically and temporally invisible:

* a pooled buffer served with ``zero=True`` is re-zeroed with a raw
  ``ndarray.fill`` carrying no simulated cost, exactly like the free
  zero-initialisation a fresh ``Executor.alloc`` provides;
* :meth:`dense_like` charges the same transfer cost as ``Dense.clone()``
  via :meth:`Executor.copy_into` — only the allocation (a free trace
  annotation) disappears;
* host-side bookkeeping arrays (:meth:`array`) were plain ``np.zeros``
  before and remain charge-free.

Buffers are re-allocated automatically when a request's shape or dtype
changes (the old buffer is returned to the executor), and :meth:`clear`
releases everything — repeated solves therefore no longer grow the
executor's ``bytes_allocated`` without bound.

Pools are safe to acquire from concurrent threads: the service layer's
shared worker pool may drive solvers on worker threads, and without
coordination two acquisitions of one slot could both miss, leak a buffer,
and hand out aliased storage.  A per-workspace re-entrant lock serialises
slot bookkeeping; the lock is uncontended (and therefore nearly free) in
single-threaded use, so the warm-path wall-clock gate is unaffected.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.ginkgo import cachestats
from repro.ginkgo.dim import Dim
from repro.ginkgo.matrix.dense import Dense


class Workspace:
    """A named pool of solver scratch buffers bound to one executor.

    Acquisitions report hits/misses to :mod:`repro.ginkgo.cachestats`
    under the ``workspace`` kind, so ``pg.profile(metrics=...)`` shows
    what reuse saves.
    """

    def __init__(self, exec_) -> None:
        self._exec = exec_
        #: Serialises slot bookkeeping under concurrent worker threads.
        self._lock = threading.RLock()
        #: name -> pooled Dense (buffers allocated on ``exec_``).
        self._dense: dict[str, Dense] = {}
        #: name -> host-side NumPy bookkeeping array.
        self._arrays: dict[str, np.ndarray] = {}
        #: name -> ((owner buffer id, column index), column wrapper Dense).
        self._columns: dict[str, tuple[tuple, Dense]] = {}
        #: name -> pooled executor-resident N-D buffer (batched state).
        self._tensors: dict[str, np.ndarray] = {}

    @property
    def executor(self):
        return self._exec

    # ------------------------------------------------------------------
    # executor-resident buffers
    # ------------------------------------------------------------------
    def dense(self, name: str, size, dtype, zero: bool = False) -> Dense:
        """A pooled ``Dense`` of the given shape/dtype.

        Args:
            name: Pool slot; each slot holds one buffer.
            size: Requested ``(rows, cols)`` (anything ``Dim.of`` accepts).
            dtype: Requested value type.
            zero: When True the buffer's contents are guaranteed zero on
                return (misses are zero-allocated; hits are re-zeroed
                without any simulated charge).  When False the contents
                are unspecified, as with ``Dense.empty`` — callers must
                fully overwrite before reading.
        """
        size = Dim.of(size)
        with self._lock:
            buf = self._dense.get(name)
            hit = (
                buf is not None
                and buf.size == size
                and buf.dtype == np.dtype(dtype)
            )
            if hit:
                if zero:
                    # A fresh alloc is zero-initialised at no simulated
                    # cost; re-zeroing a reused buffer must be equally
                    # free, so this bypasses Dense.fill (which charges a
                    # blas1 kernel).
                    buf._data.fill(0)
            else:
                if buf is not None:
                    self._exec.free(buf._data)
                buf = Dense.empty(self._exec, size, dtype)
                self._dense[name] = buf
        cachestats.record(
            "workspace", hit, clock=self._exec.clock,
            buffer=name, nbytes=buf._data.nbytes,
        )
        return buf

    def dense_like(self, name: str, src: Dense) -> Dense:
        """A pooled copy of ``src`` — the reusable form of ``src.clone()``.

        Charges exactly the transfer ``clone()`` charges (the allocation
        itself is free in the performance model), so swapping ``clone()``
        for ``dense_like`` never changes simulated timings.
        """
        buf = self.dense(name, (src.size.rows, src.size.cols), src.dtype)
        self._exec.copy_into(src.executor, src._data, buf._data)
        return buf

    def column_view(self, name: str, block: Dense, index: int) -> Dense:
        """A cached writable view of ``block``'s column ``index``.

        The wrapper aliases the block's storage, so writes through the
        view land in the block; the cached wrapper is rebuilt if the slot
        is reused for a different block or column.
        """
        with self._lock:
            cached = self._columns.get(name)
            if cached is not None:
                owner, wrapper = cached
                if owner == (id(block._data), index):
                    cachestats.record(
                        "workspace", True, clock=self._exec.clock,
                        buffer=name, column=index,
                    )
                    return wrapper
            wrapper = Dense._wrap(
                self._exec, block._data[:, index : index + 1]
            )
            self._columns[name] = ((id(block._data), index), wrapper)
        cachestats.record(
            "workspace", False, clock=self._exec.clock,
            buffer=name, column=index,
        )
        return wrapper

    def tensor(self, name: str, shape, dtype, zero: bool = False) -> np.ndarray:
        """A pooled executor-resident N-D buffer (batched solver state).

        The batched solvers keep their per-system state stacked in
        ``(num_systems, rows, cols)`` buffers, which ``Dense`` cannot
        represent; this slot type pools raw executor allocations with the
        same hit/miss and zeroing semantics as :meth:`dense`.
        """
        shape = tuple(int(s) for s in np.atleast_1d(shape))
        with self._lock:
            buf = self._tensors.get(name)
            hit = (
                buf is not None
                and buf.shape == shape
                and buf.dtype == np.dtype(dtype)
            )
            if hit:
                if zero:
                    buf.fill(0)
            else:
                if buf is not None:
                    self._exec.free(buf)
                buf = self._exec.alloc(shape, dtype)
                self._tensors[name] = buf
        cachestats.record(
            "workspace", hit, clock=self._exec.clock,
            buffer=name, nbytes=buf.nbytes,
        )
        return buf

    def tensor_like(self, name: str, src: np.ndarray) -> np.ndarray:
        """A pooled copy of the executor-resident array ``src``.

        Charges the same transfer a fresh clone would (the allocation is
        free in the performance model), mirroring :meth:`dense_like`.
        """
        buf = self.tensor(name, src.shape, src.dtype)
        self._exec.copy_into(self._exec, src, buf)
        return buf

    # ------------------------------------------------------------------
    # host-side bookkeeping arrays
    # ------------------------------------------------------------------
    def array(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """A pooled host array, always returned zeroed (``np.zeros`` drop-in).

        These hold iteration bookkeeping the solvers keep host-side
        (Hessenberg entries, Givens rotations, small projections); they
        never lived in executor memory and carry no simulated cost.
        """
        shape = tuple(np.atleast_1d(shape))
        with self._lock:
            arr = self._arrays.get(name)
            hit = (
                arr is not None
                and arr.shape == shape
                and arr.dtype == np.dtype(dtype)
            )
            if hit:
                arr.fill(0)
            else:
                arr = np.zeros(shape, dtype=dtype)
                self._arrays[name] = arr
        cachestats.record(
            "workspace", hit, clock=self._exec.clock,
            buffer=name, nbytes=arr.nbytes,
        )
        return arr

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Release every pooled buffer back to the executor."""
        with self._lock:
            for buf in self._dense.values():
                self._exec.free(buf._data)
            for buf in self._tensors.values():
                self._exec.free(buf)
            self._dense.clear()
            self._arrays.clear()
            self._columns.clear()
            self._tensors.clear()

    @property
    def num_buffers(self) -> int:
        return len(self._dense) + len(self._arrays) + len(self._tensors)

    @property
    def bytes_held(self) -> int:
        """Executor bytes currently pinned by the pool."""
        return sum(
            buf._data.nbytes for buf in self._dense.values()
        ) + sum(buf.nbytes for buf in self._tensors.values())

    def __repr__(self) -> str:
        return (
            f"Workspace(executor={self._exec.name}, "
            f"dense={len(self._dense)}, arrays={len(self._arrays)}, "
            f"bytes={self.bytes_held})"
        )
