"""Stopping criteria (``gko::stop``).

Criteria are built from factories and combined with OR semantics: the solver
stops as soon as any criterion is satisfied.  The paper's Listing 1
configures GMRES with ``max_iters=1000`` OR a relative residual reduction of
``1e-6`` — exactly an :class:`Iteration` criterion combined with a
:class:`ResidualNorm` criterion.
"""

from repro.ginkgo.stop.criterion import (
    Combined,
    Criterion,
    CriterionContext,
    Deadline,
    Divergence,
    Iteration,
    ResidualNorm,
    Time,
)

__all__ = [
    "Combined",
    "Criterion",
    "CriterionContext",
    "Deadline",
    "Divergence",
    "Iteration",
    "ResidualNorm",
    "Time",
]
