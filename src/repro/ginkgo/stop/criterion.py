"""Stopping-criterion classes.

Each criterion factory produces a stateful checker bound to one solve via
:meth:`CriterionFactory.generate`; the solver calls :meth:`Criterion.check`
once per residual update.  ``check`` returns ``True`` when the solve should
stop; :attr:`Criterion.converged` distinguishes convergence (residual-based
stops) from exhaustion (iteration/time limits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ginkgo.exceptions import GinkgoError

#: Residual-norm baselines supported by Ginkgo's ResidualNorm criterion.
RESIDUAL_BASELINES = ("rhs_norm", "initial_resnorm", "absolute")


@dataclass
class CriterionContext:
    """Per-solve quantities criteria may compare against.

    Attributes:
        rhs_norm: Euclidean norm(s) of the right-hand side.
        initial_resnorm: Norm(s) of the initial residual ``b - A x0``.
        clock: The executor's simulated clock (for Time criteria).
    """

    rhs_norm: np.ndarray | float = 1.0
    initial_resnorm: np.ndarray | float = 1.0
    clock: object = None
    start_time: float = field(default=0.0)


class CriterionFactory:
    """Base factory; ``generate(context)`` binds the criterion to a solve."""

    def generate(self, context: CriterionContext) -> "Criterion":
        raise NotImplementedError

    def __or__(self, other: "CriterionFactory") -> "Combined":
        factories = []
        for item in (self, other):
            if isinstance(item, Combined):
                factories.extend(item.factories)
            else:
                factories.append(item)
        return Combined(factories)


class Criterion:
    """Base class of bound criteria."""

    def __init__(self) -> None:
        self.converged = False

    def check(self, iteration: int, residual_norm) -> bool:
        """Return True when the solver should stop."""
        raise NotImplementedError


class Iteration(CriterionFactory):
    """Stop after a fixed number of iterations."""

    def __init__(self, max_iters: int) -> None:
        if max_iters < 0:
            raise GinkgoError(f"max_iters must be >= 0, got {max_iters}")
        self.max_iters = int(max_iters)

    def generate(self, context: CriterionContext) -> Criterion:
        factory = self

        class _Bound(Criterion):
            def check(self, iteration: int, residual_norm) -> bool:
                return iteration >= factory.max_iters

        return _Bound()

    def __repr__(self) -> str:
        return f"Iteration(max_iters={self.max_iters})"


class ResidualNorm(CriterionFactory):
    """Stop when the residual norm falls below a (relative) threshold.

    Args:
        reduction_factor: The threshold.
        baseline: What the residual is compared against — ``rhs_norm``
            (default, matches Listing 1), ``initial_resnorm``, or
            ``absolute``.
    """

    def __init__(
        self, reduction_factor: float = 1e-15, baseline: str = "rhs_norm"
    ) -> None:
        if reduction_factor < 0:
            raise GinkgoError(
                f"reduction_factor must be >= 0, got {reduction_factor}"
            )
        if baseline not in RESIDUAL_BASELINES:
            raise GinkgoError(
                f"unknown baseline {baseline!r}; available: {RESIDUAL_BASELINES}"
            )
        self.reduction_factor = float(reduction_factor)
        self.baseline = baseline

    def generate(self, context: CriterionContext) -> Criterion:
        if self.baseline == "rhs_norm":
            reference = context.rhs_norm
        elif self.baseline == "initial_resnorm":
            reference = context.initial_resnorm
        else:
            reference = 1.0
        reference = np.asarray(reference, dtype=np.float64)
        # Zero baselines (b = 0, or an exact initial guess) would make
        # the relative threshold unreachable for any nonzero residual;
        # fall back to absolute semantics for those entries, as Ginkgo
        # does, so the b = 0 solve converges to x = 0.
        reference = np.where(reference > 0.0, reference, 1.0)
        threshold = self.reduction_factor * reference
        factory = self

        class _Bound(Criterion):
            def check(self, iteration: int, residual_norm) -> bool:
                norm = np.asarray(residual_norm, dtype=np.float64)
                stop = bool(np.all(norm <= threshold))
                if stop:
                    self.converged = True
                return stop

        bound = _Bound()
        bound.threshold = threshold
        bound.factory = factory
        return bound

    def __repr__(self) -> str:
        return (
            f"ResidualNorm(reduction_factor={self.reduction_factor}, "
            f"baseline={self.baseline!r})"
        )


class Divergence(CriterionFactory):
    """Stop — without converging — when the iteration is diverging.

    Triggers when the residual norm is non-finite (NaN/Inf breakdown) or
    has grown past ``limit`` times the initial residual norm.  Used by the
    resilient solve path to abandon a doomed attempt early instead of
    burning the full iteration budget.
    """

    def __init__(self, limit: float = 1e6) -> None:
        if limit <= 0:
            raise GinkgoError(f"divergence limit must be positive, got {limit}")
        self.limit = float(limit)

    def generate(self, context: CriterionContext) -> Criterion:
        reference = np.asarray(context.initial_resnorm, dtype=np.float64)
        threshold = self.limit * np.where(reference > 0.0, reference, 1.0)

        class _Bound(Criterion):
            def check(self, iteration: int, residual_norm) -> bool:
                norm = np.asarray(residual_norm, dtype=np.float64)
                return bool(
                    np.any(~np.isfinite(norm)) or np.any(norm > threshold)
                )

        return _Bound()

    def __repr__(self) -> str:
        return f"Divergence(limit={self.limit})"


class Time(CriterionFactory):
    """Stop after a simulated-time limit (seconds on the executor clock)."""

    def __init__(self, time_limit: float) -> None:
        if time_limit <= 0:
            raise GinkgoError(f"time_limit must be positive, got {time_limit}")
        self.time_limit = float(time_limit)

    def generate(self, context: CriterionContext) -> Criterion:
        factory = self
        clock = context.clock
        start = context.start_time

        class _Bound(Criterion):
            def check(self, iteration: int, residual_norm) -> bool:
                if clock is None:
                    return False
                return (clock.now - start) >= factory.time_limit

        return _Bound()

    def __repr__(self) -> str:
        return f"Time(time_limit={self.time_limit})"


class Deadline(CriterionFactory):
    """Stop — without converging — at an absolute simulated-clock time.

    Unlike :class:`Time` (a per-solve relative budget), a deadline is an
    absolute point on the executor clock, so it keeps shrinking across
    retries and fallbacks of one resilient solve: every attempt races
    the same deadline.  The bound criterion records :attr:`timed_out`
    when it fires, which ``resilient_solve`` surfaces as
    ``ResilienceReport.timed_out`` together with the best partial
    solution instead of burning further attempts.
    """

    def __init__(self, at: float) -> None:
        if not np.isfinite(at):
            raise GinkgoError(f"deadline must be finite, got {at}")
        self.at = float(at)

    def generate(self, context: CriterionContext) -> Criterion:
        factory = self
        clock = context.clock

        class _Bound(Criterion):
            def __init__(self) -> None:
                super().__init__()
                self.timed_out = False

            def check(self, iteration: int, residual_norm) -> bool:
                if clock is None:
                    return False
                if clock.now >= factory.at:
                    self.timed_out = True
                    return True
                return False

        return _Bound()

    def __repr__(self) -> str:
        return f"Deadline(at={self.at})"


class Combined(CriterionFactory):
    """OR-combination: stop when any sub-criterion is satisfied."""

    def __init__(self, factories) -> None:
        self.factories = tuple(factories)
        if not self.factories:
            raise GinkgoError("Combined needs at least one criterion factory")

    def generate(self, context: CriterionContext) -> Criterion:
        bound = [f.generate(context) for f in self.factories]

        class _Bound(Criterion):
            def check(self, iteration: int, residual_norm) -> bool:
                stop = False
                for criterion in bound:
                    if criterion.check(iteration, residual_norm):
                        stop = True
                        if criterion.converged:
                            self.converged = True
                        if getattr(criterion, "timed_out", False):
                            self.timed_out = True
                return stop

        return _Bound()

    def __repr__(self) -> str:
        return f"Combined({list(self.factories)!r})"
